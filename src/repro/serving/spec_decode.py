"""Speculative decoding: draft-propose / target-verify step modeling.

A small *draft* model proposes ``draft_tokens`` tokens per request per
decode step; the target model then verifies all proposals **in one packed
var-len forward** — the same block-diagonal row-per-position regime the
serving engine already prices for plain decode, just with ``k + 1`` rows
per request instead of one.  The step emits every leading accepted draft
token plus the target's own "bonus" token, so a request advances between
1 and ``draft_tokens + 1`` positions per step.

Acceptance is a seedable per-token Bernoulli process
(:meth:`SpeculativeConfig.sample_accepted`): each proposal is accepted
independently with probability ``accept_rate`` until the first rejection.
The stream is forked per request id, never per step, so batch composition
and preemption cannot perturb another request's acceptance history —
two runs with the same seed produce bit-identical token streams.

Cost model:

* the draft forward is priced through the *same* row-wise kernel path as
  the target (one packed forward per proposal depth), scaled by
  ``draft_cost_ratio`` — the draft is that fraction of the target's
  per-token cost;
* the verify forward is one packed var-len problem over all proposal
  rows, so its attention cost is exact (each row gathers its own KV run)
  and the per-step overhead/dispatch constants amortize over every
  emitted token — which is precisely the speedup speculation buys.

At ``accept_rate=1.0`` every proposal lands and each request's generated
token count matches the non-speculative engine exactly (differential
test); at ``accept_rate=0.0`` every step degenerates to one emitted token
per request, with the draft cost as pure overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.rng import RngStream


@dataclass(frozen=True)
class SpeculativeConfig:
    """Knobs of the draft-propose / target-verify loop."""

    #: Proposals per request per step (``k``).  The verify forward prices
    #: ``k + 1`` rows per request (proposals + the target's bonus token).
    draft_tokens: int = 4
    #: Per-token i.i.d. acceptance probability of the Bernoulli process.
    accept_rate: float = 0.8
    #: Draft-model forward cost as a fraction of the target's (a 7B draft
    #: for a 70B target sits around 0.1; same-family small drafts 0.1–0.3).
    draft_cost_ratio: float = 0.2

    def __post_init__(self) -> None:
        if self.draft_tokens < 1:
            raise ConfigError(
                f"draft_tokens must be >= 1, got {self.draft_tokens}"
            )
        if not 0.0 <= self.accept_rate <= 1.0:
            raise ConfigError(
                f"accept_rate must be in [0, 1], got {self.accept_rate}"
            )
        if self.draft_cost_ratio < 0.0:
            raise ConfigError(
                f"draft_cost_ratio must be >= 0, got {self.draft_cost_ratio}"
            )

    def sample_accepted(self, rng: RngStream, proposed: int) -> int:
        """Leading accepted proposals out of ``proposed`` drafted tokens.

        Draws one uniform per proposal until the first rejection (the
        rejected draft and everything after it are discarded, exactly like
        real rejection sampling).  ``accept_rate=1.0`` accepts all
        ``proposed`` without consuming fewer draws than proposals made —
        `u < 1.0` always holds for ``u ~ U[0, 1)`` — so the determinism
        contract is uniform across rates.
        """
        for i in range(proposed):
            if not float(rng.random()) < self.accept_rate:
                return i
        return proposed
