"""Batch-assembly policies for the serving engine.

Two classic policies, both FCFS at admission:

* :class:`StaticBatchScheduler` — request-level (static) batching: a batch
  forms only when the device drains, reserves worst-case
  (``prompt + max_new``) KV for every member up front, and runs locked
  until *every* member exhausts its budget; finished members keep
  occupying their KV slot until the drain, and arrivals wait for it.
  This is the pre-continuous-batching serving baseline.

Both policies attribute decode work identically: a step computes exactly
the *live* rows (the shared :meth:`Scheduler.decode_members`).  Static
batching used to replay finished members' final rows as padding, which —
under the roofline's small-grid utilization penalty — made its padded
steps price *cheaper per live row* than continuous batching's exact
steps, silently breaking the continuous ≥ static throughput guarantee.
Static batching's real costs (drain-locked admission, worst-case
reservation) are modelled in ``admit``/``releasable``, not by phantom
compute.
* :class:`ContinuousBatchScheduler` — iteration-level scheduling (Orca /
  vLLM style): requests join the running batch the step they arrive and
  leave the step they finish; KV pages are reserved for the *current*
  context only, with a ``max_batch_tokens`` admission knob bounding the
  packed step size.

Schedulers only decide membership; pricing, preemption and token
accounting live in :mod:`repro.serving.engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.errors import ConfigError
from repro.serving.kvcache import PagedKVCache
from repro.serving.request import RequestState, RequestTracker


class Scheduler(ABC):
    """One admission/composition policy."""

    name: str = "scheduler"

    def __init__(self, max_batch_size: int = 16, max_batch_tokens: int = 65536):
        if max_batch_size < 1:
            raise ConfigError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_batch_tokens < 1:
            raise ConfigError(
                f"max_batch_tokens must be >= 1, got {max_batch_tokens}"
            )
        self.max_batch_size = max_batch_size
        self.max_batch_tokens = max_batch_tokens

    @abstractmethod
    def admit(
        self,
        waiting: list[RequestTracker],
        running: list[RequestTracker],
        cache: PagedKVCache,
    ) -> list[RequestTracker]:
        """Pop admitted trackers off ``waiting`` (reserving their KV) and
        return them; the engine prefills them this step."""

    def begin_step(self, now_s: float) -> None:
        """Hook: observe the simulated clock before this step's admission.

        The base policies are clock-free; SLO-aware scheduling
        (:class:`repro.serving.slo.SLOScheduler`) uses it to compute
        deadline slack.
        """

    def deadline_victims(
        self,
        waiting: list[RequestTracker],
        running: list[RequestTracker],
        cache: PagedKVCache,
    ) -> list[RequestTracker]:
        """Running trackers to preempt *now* so a deadline-critical waiter
        can be admitted this step.  Default: never preempt for deadlines
        (memory-pressure preemption in the engine is separate)."""
        return []

    def decode_members(
        self, running: list[RequestTracker]
    ) -> list[tuple[RequestTracker, int]]:
        """(tracker, mask-row position) pairs computed in this decode step.

        Shared by every policy so per-step decode cost is attributed
        identically: exactly one row per *live* member.  Members whose
        chunked prefill is still streaming in hold pages but cannot
        decode yet — they are excluded until their last chunk lands.
        """
        return [
            (tr, tr.context_len)
            for tr in running
            if not tr.done and not tr.prefill_pending
        ]

    @abstractmethod
    def releasable(self, running: list[RequestTracker]) -> list[RequestTracker]:
        """Finished trackers whose KV pages may be freed now."""

    @property
    def allows_preemption(self) -> bool:
        return False


class StaticBatchScheduler(Scheduler):
    """FCFS request-level batching with worst-case KV reservation."""

    name = "static"

    def admit(self, waiting, running, cache):
        if running:           # locked batch still draining
            return []
        admitted: list[RequestTracker] = []
        budget = 0
        while waiting and len(admitted) < self.max_batch_size:
            tr = waiting[0]
            worst = tr.request.max_context
            if admitted and budget + worst > self.max_batch_tokens:
                break         # FCFS: no skipping past the head
            if not cache.reserve(tr.req_id, worst):
                # The head does not fit right now: wait for the drain.
                # Requests that can never fit at all are rejected by the
                # engine before the simulation starts, so this is always a
                # transient condition, never a dead end.
                break
            budget += worst
            admitted.append(waiting.pop(0))
        return admitted

    def releasable(self, running):
        # KV slots stay resident until the locked batch fully drains.
        if running and all(tr.done for tr in running):
            return list(running)
        return []


class ContinuousBatchScheduler(Scheduler):
    """Iteration-level join/evict batching with paged admission."""

    name = "continuous"

    @property
    def allows_preemption(self) -> bool:
        return True

    def admit(self, waiting, running, cache):
        admitted: list[RequestTracker] = []
        tokens = sum(tr.context_len for tr in running)
        while waiting and len(running) + len(admitted) < self.max_batch_size:
            tr = waiting[0]
            ctx = tr.context_len   # prompt, plus kept tokens after preemption
            if tokens + ctx > self.max_batch_tokens:
                break              # FCFS: no skipping past the head
            if not cache.reserve(tr.req_id, ctx):
                break
            # Keep one free page per resident request as decode headroom so
            # admission does not immediately force a preemption.  An empty
            # device always admits (solo fit is validated by the engine).
            others = len(running) + len(admitted)
            if others > 0 and cache.free_pages < others + 1:
                cache.release(tr.req_id)
                break
            tokens += ctx
            admitted.append(waiting.pop(0))
        return admitted

    def releasable(self, running):
        return [tr for tr in running if tr.done]


#: Registry keyed by the CLI/benchmark policy names.
SCHEDULERS: dict[str, type[Scheduler]] = {
    StaticBatchScheduler.name: StaticBatchScheduler,
    ContinuousBatchScheduler.name: ContinuousBatchScheduler,
}


def make_scheduler(
    name: str, max_batch_size: int = 16, max_batch_tokens: int = 65536
) -> Scheduler:
    """Instantiate a policy by registry name.

    >>> make_scheduler("continuous").name
    'continuous'
    """
    if name not in SCHEDULERS:
        raise ConfigError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[name](max_batch_size, max_batch_tokens)
