"""Multi-LoRA adapter serving: gathered batched-GEMM cost + residency.

Per-request low-rank adapters (LoRA) add, for every adapted projection of
every layer, a rank-``r`` bottleneck pair ``(hidden -> r -> hidden)``
applied to exactly the tokens that carry that adapter.  Production
engines (Punica, S-LoRA, vLLM) run this as a *gathered* batched GEMM: one
kernel per projection gathers each token's adapter weights by id, so a
mixed batch pays one launch regardless of how many adapters it mixes —
but it re-reads every *distinct* resident adapter's weights and streams
every adapter token's activations.

:class:`AdapterRegistry` prices that through the real roofline
(:func:`repro.gpu.cost.estimate_kernel_time`), and models *residency*: at
most ``max_resident`` adapters live in device memory; touching a
non-resident adapter evicts the least-recently-used one and pays a
host-to-device weight copy.  The engine reports the residency gauge
(``serving.lora_resident``) and swap counter (``serving.lora_swaps``),
and mixes the adapter id into its decode plan-key salt
(:func:`repro.plan.key.adapter_fingerprint`) so per-adapter specialized
plans never collide across adapters — more adapters means more plan
families, which is exactly the cache-pressure effect multi-LoRA serving
is known for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.gpu.cost import KernelCost, LaunchConfig, estimate_kernel_time
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class LoRAConfig:
    """Shape and residency knobs of multi-adapter serving."""

    #: Low-rank bottleneck width of every adapter.
    rank: int = 16
    #: Adapted projections per layer (q, k, v, o by default).
    projections: int = 4
    #: Adapter slots in device memory; exceeding this evicts LRU and pays
    #: a host-to-device weight copy on the next touch.
    max_resident: int = 8
    #: Host-to-device copy bandwidth for adapter swap-ins (bytes/s);
    #: PCIe 4.0 x16 effective by default.
    load_bandwidth: float = 25e9

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ConfigError(f"rank must be >= 1, got {self.rank}")
        if self.projections < 1:
            raise ConfigError(
                f"projections must be >= 1, got {self.projections}"
            )
        if self.max_resident < 1:
            raise ConfigError(
                f"max_resident must be >= 1, got {self.max_resident}"
            )
        if self.load_bandwidth <= 0:
            raise ConfigError(
                f"load_bandwidth must be > 0, got {self.load_bandwidth}"
            )


class AdapterRegistry:
    """Prices one engine's gathered LoRA GEMMs and tracks residency.

    Deterministic: residency is a pure LRU over the engine's (already
    deterministic) step sequence, and pricing is a pure function of
    (spec, config, token counts).
    """

    def __init__(
        self, spec: GPUSpec, config: LoRAConfig, hidden: int, n_layers: int
    ):
        if hidden < 1 or n_layers < 1:
            raise ConfigError("hidden and n_layers must be >= 1")
        self.spec = spec
        self.config = config
        self.hidden = hidden
        self.n_layers = n_layers
        #: LRU order: index 0 is the *least* recently used resident.
        self._resident: list[str] = []
        self.swaps = 0
        self.peak_resident = 0

    @property
    def resident(self) -> tuple[str, ...]:
        return tuple(self._resident)

    def reset(self) -> None:
        """Forget residency and counters (a fresh run of the same engine)."""
        self._resident.clear()
        self.swaps = 0
        self.peak_resident = 0

    @property
    def adapter_bytes(self) -> int:
        """FP16 bytes of one adapter (A and B matrices, all layers)."""
        c = self.config
        return 2 * c.rank * self.hidden * c.projections * self.n_layers * FP16_BYTES

    def touch(self, adapters: set[str]) -> float:
        """Mark ``adapters`` used this step; return swap-in seconds.

        Non-resident adapters are loaded host-to-device (LRU eviction
        when full); already-resident ones just refresh their recency.
        """
        load_s = 0.0
        for adapter in sorted(adapters):
            if adapter in self._resident:
                self._resident.remove(adapter)
            else:
                self.swaps += 1
                load_s += self.adapter_bytes / self.config.load_bandwidth
                while len(self._resident) >= self.config.max_resident:
                    self._resident.pop(0)
            self._resident.append(adapter)
        self.peak_resident = max(self.peak_resident, len(self._resident))
        return load_s

    def gemm_time(self, tokens: int, distinct_adapters: int) -> tuple[float, int]:
        """(seconds, launches) of the gathered batched GEMM over one
        forward's adapter tokens.

        Two GEMMs per projection per layer (shrink ``hidden -> r`` and
        expand ``r -> hidden``), fused into one gathered launch pair per
        layer.  DRAM traffic covers each distinct adapter's weights once
        plus every token's activations through the bottleneck.
        """
        if tokens <= 0:
            return 0.0, 0
        c = self.config
        h, r = self.hidden, c.rank
        per_layer_flops = 2.0 * tokens * r * (h + h) * c.projections
        weight_bytes = (
            distinct_adapters * 2 * r * h * c.projections * FP16_BYTES
        )
        act_bytes = tokens * (2 * h + 2 * r) * c.projections * FP16_BYTES
        launches_per_layer = 2
        cost = KernelCost(
            name="lora-gathered-gemm",
            bytes_dram_read=(weight_bytes + act_bytes) * self.n_layers,
            bytes_dram_written=tokens * h * c.projections * FP16_BYTES
            * self.n_layers,
            flops_tensor=per_layer_flops * self.n_layers,
            launches=launches_per_layer * self.n_layers,
        )
        grid = max(1, math.ceil(tokens * c.projections / 4))
        seconds = estimate_kernel_time(
            self.spec, cost, LaunchConfig(grid_blocks=grid, warps_per_block=4)
        ).total
        return seconds, cost.launches
