"""Block-granular (paged) KV-cache management.

A serving engine cannot pre-reserve ``prompt + max_new`` KV storage for
every admitted request — that is exactly the over-allocation continuous
batching removes.  Instead the cache is carved into fixed-size *pages* of
``page_tokens`` key/value slots (vLLM's PagedAttention layout) and each
request holds just enough pages for its current context.  Byte accounting
runs through :class:`~repro.gpu.memory.MemoryTracker`, so the cache can
never exceed the capacity granted from the :class:`~repro.gpu.specs.GPUSpec`
— pressure surfaces as a failed ``reserve`` (the scheduler's cue to
preempt), never as an exception escaping the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.gpu.memory import MemoryTracker
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class KVCacheConfig:
    """Geometry of the paged KV cache for one served model."""

    heads: int
    head_size: int
    n_layers: int
    page_tokens: int = 16
    capacity_bytes: int = 0

    def __post_init__(self) -> None:
        if min(self.heads, self.head_size, self.n_layers, self.page_tokens) < 1:
            raise ConfigError(
                "heads, head_size, n_layers and page_tokens must be >= 1"
            )
        if self.capacity_bytes < self.page_bytes:
            raise ConfigError(
                f"capacity {self.capacity_bytes} bytes holds no page "
                f"({self.page_bytes} bytes each)"
            )

    @property
    def bytes_per_token(self) -> int:
        """K and V vectors across all heads and layers for one position."""
        return 2 * self.heads * self.head_size * self.n_layers * FP16_BYTES

    @property
    def page_bytes(self) -> int:
        return self.page_tokens * self.bytes_per_token

    @property
    def total_pages(self) -> int:
        return self.capacity_bytes // self.page_bytes

    def pages_for(self, tokens: int) -> int:
        """Pages needed to hold ``tokens`` KV positions."""
        return math.ceil(tokens / self.page_tokens)

    @classmethod
    def for_spec(
        cls,
        spec: GPUSpec,
        heads: int,
        head_size: int,
        n_layers: int,
        page_tokens: int = 16,
        capacity_frac: float = 0.3,
    ) -> "KVCacheConfig":
        """Carve a fraction of device memory (the rest models weights and
        activations) into KV-cache capacity."""
        if not (0.0 < capacity_frac <= 1.0):
            raise ConfigError(
                f"capacity_frac must be in (0, 1], got {capacity_frac}"
            )
        return cls(
            heads=heads,
            head_size=head_size,
            n_layers=n_layers,
            page_tokens=page_tokens,
            capacity_bytes=int(spec.memory_bytes * capacity_frac),
        )


class PagedKVCache:
    """Page allocator over a fixed KV budget.

    >>> cfg = KVCacheConfig(heads=1, head_size=8, n_layers=1, page_tokens=4,
    ...                     capacity_bytes=8 * 4 * 2 * 8 * 2)  # 8 pages
    >>> cache = PagedKVCache(cfg)
    >>> cache.reserve(0, 9)      # 3 pages
    True
    >>> cache.used_pages
    3
    >>> cache.reserve(1, 24)     # 6 pages > 5 free
    False
    >>> cache.release(0)         # frees the 3 pages
    3
    >>> cache.used_pages
    0
    """

    def __init__(self, config: KVCacheConfig):
        self.config = config
        self._tracker = MemoryTracker(config.total_pages * config.page_bytes)
        self._pages: dict[int, int] = {}
        # Incrementally maintained so used_pages/free_pages stay O(1): they
        # sit on the admit/decode hot path of every simulated engine step.
        self._used_pages = 0

    # ----------------------------------------------------------- accounting

    @property
    def total_pages(self) -> int:
        return self.config.total_pages

    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.used_pages

    @property
    def used_bytes(self) -> int:
        return self._tracker.live_bytes

    @property
    def peak_bytes(self) -> int:
        return self._tracker.peak_bytes

    @property
    def occupancy(self) -> float:
        return self.used_pages / self.total_pages

    @property
    def peak_occupancy(self) -> float:
        return self.peak_bytes / (self.total_pages * self.config.page_bytes)

    def pages_of(self, req_id: int) -> int:
        return self._pages.get(req_id, 0)

    def fits_alone(self, tokens: int) -> bool:
        """Whether a context of ``tokens`` fits an otherwise empty cache."""
        return self.config.pages_for(tokens) <= self.total_pages

    # ----------------------------------------------------------- allocation

    def reserve(self, req_id: int, context_tokens: int) -> bool:
        """Grow ``req_id``'s page run to cover ``context_tokens`` positions.

        Returns ``False`` (allocating nothing) when the growth does not fit
        — the caller decides whether to preempt.  Shrinking never happens
        here; pages are returned only via :meth:`release`.
        """
        if context_tokens < 0:
            raise ConfigError(f"context_tokens must be >= 0, got {context_tokens}")
        held = self._pages.get(req_id, 0)
        need = self.config.pages_for(context_tokens)
        grow = need - held
        if grow <= 0:
            return True
        if grow > self.free_pages:
            return False
        for p in range(held, need):
            self._tracker.allocate(f"kv/{req_id}/{p}", self.config.page_bytes)
        self._pages[req_id] = need
        self._used_pages += grow
        return True

    def release(self, req_id: int) -> int:
        """Free every page of a finished or preempted request."""
        held = self._pages.pop(req_id, 0)
        for p in range(held):
            self._tracker.free(f"kv/{req_id}/{p}")
        self._used_pages -= held
        return held

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedKVCache(used={self.used_pages}/{self.total_pages} pages, "
            f"requests={len(self._pages)})"
        )
