"""Block-granular (paged) KV-cache management with prefix sharing.

A serving engine cannot pre-reserve ``prompt + max_new`` KV storage for
every admitted request — that is exactly the over-allocation continuous
batching removes.  Instead the cache is carved into fixed-size *pages* of
``page_tokens`` key/value slots (vLLM's PagedAttention layout) and each
request holds just enough pages for its current context.  Byte accounting
runs through :class:`~repro.gpu.memory.MemoryTracker`, so the cache can
never exceed the capacity granted from the :class:`~repro.gpu.specs.GPUSpec`
— pressure surfaces as a failed ``reserve`` (the scheduler's cue to
preempt), never as an exception escaping the engine.

**Prefix sharing** (the radix-cache / shared-system-prompt win): requests
registered under one ``prefix_id`` (:meth:`PagedKVCache.register_prefix`)
share the full pages covering that prefix.  Shared pages are refcounted —
the first holder to ``reserve`` materializes them, later holders attach
for free, and the pages are returned only when the last holder releases.
A prefix whose token count is not page-aligned leaves its boundary page
*private* to each holder: appending past the shared region would mutate a
page other requests still read, so the holder copy-on-write forks it
(counted in :attr:`PagedKVCache.cow_forks`).  ``reserve``/``release``
keep their signatures, ``used_pages``/``occupancy`` stay O(1), and a
cache with no registered prefixes behaves bit-identically to the
pre-sharing allocator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.gpu.memory import MemoryTracker
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class KVCacheConfig:
    """Geometry of the paged KV cache for one served model."""

    heads: int
    head_size: int
    n_layers: int
    page_tokens: int = 16
    capacity_bytes: int = 0

    def __post_init__(self) -> None:
        if min(self.heads, self.head_size, self.n_layers, self.page_tokens) < 1:
            raise ConfigError(
                "heads, head_size, n_layers and page_tokens must be >= 1"
            )
        if self.capacity_bytes < self.page_bytes:
            raise ConfigError(
                f"capacity {self.capacity_bytes} bytes holds no page "
                f"({self.page_bytes} bytes each)"
            )

    @property
    def bytes_per_token(self) -> int:
        """K and V vectors across all heads and layers for one position."""
        return 2 * self.heads * self.head_size * self.n_layers * FP16_BYTES

    @property
    def page_bytes(self) -> int:
        return self.page_tokens * self.bytes_per_token

    @property
    def total_pages(self) -> int:
        return self.capacity_bytes // self.page_bytes

    def pages_for(self, tokens: int) -> int:
        """Pages needed to hold ``tokens`` KV positions."""
        return math.ceil(tokens / self.page_tokens)

    @classmethod
    def for_spec(
        cls,
        spec: GPUSpec,
        heads: int,
        head_size: int,
        n_layers: int,
        page_tokens: int = 16,
        capacity_frac: float = 0.3,
    ) -> "KVCacheConfig":
        """Carve a fraction of device memory (the rest models weights and
        activations) into KV-cache capacity."""
        if not (0.0 < capacity_frac <= 1.0):
            raise ConfigError(
                f"capacity_frac must be in (0, 1], got {capacity_frac}"
            )
        return cls(
            heads=heads,
            head_size=head_size,
            n_layers=n_layers,
            page_tokens=page_tokens,
            capacity_bytes=int(spec.memory_bytes * capacity_frac),
        )


@dataclass(eq=False)
class _SharedPrefix:
    """Refcounted run of full pages holding one shared prefix's KV."""

    tokens: int                 # registered prefix length, in positions
    pages: int                  # full pages shared (tokens // page_tokens)
    partial: bool               # prefix ends mid-page (boundary page is COW)
    refcount: int = 0
    holders: set[int] = field(default_factory=set)


class PagedKVCache:
    """Page allocator over a fixed KV budget.

    >>> cfg = KVCacheConfig(heads=1, head_size=8, n_layers=1, page_tokens=4,
    ...                     capacity_bytes=8 * 4 * 2 * 8 * 2)  # 8 pages
    >>> cache = PagedKVCache(cfg)
    >>> cache.reserve(0, 9)      # 3 pages
    True
    >>> cache.used_pages
    3
    >>> cache.reserve(1, 24)     # 6 pages > 5 free
    False
    >>> cache.release(0)         # frees the 3 pages
    3
    >>> cache.used_pages
    0

    Prefix sharing: two requests registered under one prefix share its
    full pages (physical ``used_pages`` counts them once):

    >>> cache.register_prefix(2, "sys", 8)   # 2 shared pages
    >>> cache.register_prefix(3, "sys", 8)
    >>> cache.reserve(2, 12) and cache.reserve(3, 12)
    True
    >>> cache.used_pages                     # 2 shared + 1 private each
    4
    >>> cache.logical_pages                  # what an unshared pair needs
    6
    """

    def __init__(self, config: KVCacheConfig):
        self.config = config
        self._tracker = MemoryTracker(config.total_pages * config.page_bytes)
        #: Private pages per request, counted from the end of the request's
        #: shared region (requests with no registered prefix own all their
        #: pages privately — the pre-sharing layout, bit for bit).
        self._pages: dict[int, int] = {}
        # Incrementally maintained so used_pages/free_pages stay O(1): they
        # sit on the admit/decode hot path of every simulated engine step.
        self._used_pages = 0
        #: Logical pages: what the same residency would cost with sharing
        #: disabled (shared pages counted once per holder).  Maintained
        #: incrementally beside ``_used_pages``.
        self._logical_pages = 0
        self._peak_used_pages = 0
        self._peak_logical_pages = 0
        self._prefixes: dict[str, _SharedPrefix] = {}
        self._req_prefix: dict[int, str] = {}
        #: Prefix KV positions already resident (computed by another
        #: holder) when each request attached — the engine's cue to skip
        #: recomputing them at prefill.
        self._attach_cached: dict[int, int] = {}
        #: Copy-on-write forks of unaligned prefix boundary pages.
        self.cow_forks = 0

    # ----------------------------------------------------------- accounting

    @property
    def total_pages(self) -> int:
        return self.config.total_pages

    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.used_pages

    @property
    def used_bytes(self) -> int:
        return self._tracker.live_bytes

    @property
    def peak_bytes(self) -> int:
        return self._tracker.peak_bytes

    @property
    def occupancy(self) -> float:
        return self.used_pages / self.total_pages

    @property
    def peak_occupancy(self) -> float:
        return self.peak_bytes / (self.total_pages * self.config.page_bytes)

    @property
    def logical_pages(self) -> int:
        """Pages the current residency would cost with sharing disabled."""
        return self._logical_pages

    @property
    def peak_used_pages(self) -> int:
        return self._peak_used_pages

    @property
    def peak_logical_pages(self) -> int:
        return self._peak_logical_pages

    def pages_of(self, req_id: int) -> int:
        """Pages backing ``req_id``: private plus its share of prefix pages."""
        held = self._pages.get(req_id, 0)
        pid = self._req_prefix.get(req_id)
        if pid is not None and req_id in self._prefixes[pid].holders:
            held += self._prefixes[pid].pages
        return held

    def reclaimable_pages_of(self, req_id: int) -> int:
        """Physical pages :meth:`release` would return right now — shared
        prefix pages count only when ``req_id`` is their last holder."""
        held = self._pages.get(req_id, 0)
        pid = self._req_prefix.get(req_id)
        if pid is not None:
            pfx = self._prefixes[pid]
            if req_id in pfx.holders and pfx.refcount == 1:
                held += pfx.pages
        return held

    def fits_alone(self, tokens: int) -> bool:
        """Whether a context of ``tokens`` fits an otherwise empty cache."""
        return self.config.pages_for(tokens) <= self.total_pages

    # ------------------------------------------------------- prefix sharing

    def register_prefix(self, req_id: int, prefix_id: str, tokens: int) -> None:
        """Declare that ``req_id``'s first ``tokens`` positions are the
        shared prefix ``prefix_id``.

        Registration is pure bookkeeping — pages move only in ``reserve``.
        A prefix shorter than one page has no full page to share and the
        request stays on the private path.  All holders of one
        ``prefix_id`` must agree on its length, and a request must
        register before its first ``reserve`` — its private pages would
        otherwise already cover the region the prefix is about to share.
        """
        if tokens < 0:
            raise ConfigError(f"prefix tokens must be >= 0, got {tokens}")
        if self._pages.get(req_id, 0) > 0:
            raise ConfigError(
                f"request {req_id} already holds pages; prefixes must be "
                "registered before the first reserve"
            )
        pages = tokens // self.config.page_tokens
        if pages == 0:
            return
        pfx = self._prefixes.get(prefix_id)
        if pfx is None:
            pfx = _SharedPrefix(
                tokens=tokens,
                pages=pages,
                partial=tokens % self.config.page_tokens != 0,
            )
            self._prefixes[prefix_id] = pfx
        elif pfx.tokens != tokens:
            raise ConfigError(
                f"prefix {prefix_id!r} registered with {tokens} tokens but "
                f"already holds {pfx.tokens}"
            )
        prior = self._req_prefix.get(req_id)
        if prior is not None and prior != prefix_id:
            raise ConfigError(
                f"request {req_id} already registered under prefix {prior!r}"
            )
        self._req_prefix[req_id] = prefix_id

    def cached_prefix_tokens(self, req_id: int) -> int:
        """Prefix KV positions already resident when ``req_id`` attached
        (the engine skips recomputing them at prefill)."""
        return self._attach_cached.get(req_id, 0)

    # ----------------------------------------------------------- allocation

    def _bump_peaks(self) -> None:
        if self._used_pages > self._peak_used_pages:
            self._peak_used_pages = self._used_pages
        if self._logical_pages > self._peak_logical_pages:
            self._peak_logical_pages = self._logical_pages

    def reserve(self, req_id: int, context_tokens: int) -> bool:
        """Grow ``req_id``'s page run to cover ``context_tokens`` positions.

        Returns ``False`` (allocating nothing) when the growth does not fit
        — the caller decides whether to preempt.  Shrinking never happens
        here; pages are returned only via :meth:`release`.  A request
        registered under a shared prefix pays only for pages past the
        shared region; its first successful reserve attaches it to the
        prefix (materializing the shared pages if it is the first holder).
        Registration declares the prefix part of the request's context,
        so a reserve that does not cover it is a ``ConfigError``.
        """
        if context_tokens < 0:
            raise ConfigError(f"context_tokens must be >= 0, got {context_tokens}")
        pid = self._req_prefix.get(req_id)
        if pid is None:
            held = self._pages.get(req_id, 0)
            need = self.config.pages_for(context_tokens)
            grow = need - held
            if grow <= 0:
                return True
            if grow > self.free_pages:
                return False
            for p in range(held, need):
                self._tracker.allocate(f"kv/{req_id}/{p}", self.config.page_bytes)
            self._pages[req_id] = need
            self._used_pages += grow
            self._logical_pages += grow
            self._bump_peaks()
            return True

        pfx = self._prefixes[pid]
        if context_tokens < pfx.tokens:
            raise ConfigError(
                f"request {req_id} is registered under prefix {pid!r} "
                f"({pfx.tokens} tokens) but reserved a {context_tokens}-token "
                "context — a context must cover its registered prefix"
            )
        attached = req_id in pfx.holders
        held_private = self._pages.get(req_id, 0)
        need_total = self.config.pages_for(context_tokens)
        need_private = max(0, need_total - pfx.pages)
        grow_private = max(0, need_private - held_private)
        new_shared = pfx.pages if (not attached and pfx.refcount == 0) else 0
        if attached and grow_private == 0:
            return True
        # Atomic fit check: either the whole growth lands or none of it.
        if grow_private + new_shared > self.free_pages:
            return False
        if not attached:
            if pfx.refcount == 0:
                for p in range(pfx.pages):
                    self._tracker.allocate(
                        f"kv/prefix/{pid}/{p}", self.config.page_bytes
                    )
                self._used_pages += pfx.pages
                self._attach_cached[req_id] = 0
            else:
                # Shared pages already warm: this holder's prefill can skip
                # every full shared page.  The unaligned boundary page (if
                # any) is private, so attaching forks it copy-on-write.
                self._attach_cached[req_id] = pfx.pages * self.config.page_tokens
                if pfx.partial:
                    self.cow_forks += 1
            pfx.refcount += 1
            pfx.holders.add(req_id)
            self._logical_pages += pfx.pages
        for p in range(held_private, held_private + grow_private):
            self._tracker.allocate(f"kv/{req_id}/{p}", self.config.page_bytes)
        self._pages[req_id] = held_private + grow_private
        self._used_pages += grow_private
        self._logical_pages += grow_private
        self._bump_peaks()
        return True

    def release(self, req_id: int) -> int:
        """Free every page of a finished or preempted request.

        Returns the number of *physical* pages returned to the pool.
        Shared prefix pages are freed only when the last holder leaves;
        the request's prefix registration survives release, so a
        preempted request re-attaches on its next ``reserve``.
        """
        held = self._pages.pop(req_id, 0)
        for p in range(held):
            self._tracker.free(f"kv/{req_id}/{p}")
        self._used_pages -= held
        self._logical_pages -= held
        freed = held
        pid = self._req_prefix.get(req_id)
        if pid is not None:
            pfx = self._prefixes[pid]
            if req_id in pfx.holders:
                pfx.holders.discard(req_id)
                pfx.refcount -= 1
                self._logical_pages -= pfx.pages
                if pfx.refcount == 0:
                    for p in range(pfx.pages):
                        self._tracker.free(f"kv/prefix/{pid}/{p}")
                    self._used_pages -= pfx.pages
                    freed += pfx.pages
            self._attach_cached.pop(req_id, None)
        return freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedKVCache(used={self.used_pages}/{self.total_pages} pages, "
            f"requests={len(self._pages)})"
        )
