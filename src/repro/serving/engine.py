"""The discrete-event continuous-batching serving engine.

Simulates a single-GPU inference server: requests arrive over (simulated)
time, a :class:`~repro.serving.scheduler.Scheduler` composes each engine
step, and the step's attention work is priced through the existing kernel
substrate — prefills as square masked problems through
:class:`~repro.mha.module.UnifiedMHA`, and the whole decode batch as ONE
packed rectangular :class:`~repro.mha.problem.AttentionProblem` (a
block-diagonal row-per-request mask, the var-len decode regime) through
the row-wise kernel.  Batching therefore pays one launch + dispatch per
step regardless of batch size, and sparse masks shrink each row's gathered
KV — the two effects the serving study measures.

KV storage goes through :class:`~repro.serving.kvcache.PagedKVCache`.
When a decode step cannot grow a request's page run, the engine preempts
the *latest-arrived* resident request (recompute-style: pages are freed,
the request re-queues and re-prefills its kept context), so memory
pressure degrades throughput instead of raising out of the scheduler.

Everything is a pure function of (trace, scheduler, config, seed): two
runs produce bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.core.rng import RngStream
from repro.gpu.cost import estimate_kernel_time
from repro.gpu.specs import GPUSpec
from repro.mha.module import UnifiedMHA
from repro.mha.problem import AttentionProblem
from repro.mha.rowwise import RowWiseKernel, plan_rowwise_launches
from repro.masks.patterns import causal_mask, make_pattern
from repro.obs.metrics import current_metrics
from repro.obs.tracer import Tracer, current_tracer
from repro.plan import (
    BucketGuard,
    GuardSet,
    PlanCache,
    PlanKey,
    SymbolicPlanKey,
    adapter_fingerprint,
    params_key,
)
from repro.serving.kvcache import KVCacheConfig, PagedKVCache
from repro.serving.lora import AdapterRegistry, LoRAConfig
from repro.serving.metrics import RequestMetrics, ServingReport, tenant_reports
from repro.serving.request import Request, RequestState, RequestTracker
from repro.serving.scheduler import Scheduler
from repro.serving.spec_decode import SpeculativeConfig


@dataclass(frozen=True)
class ServingConfig:
    """Model shape and host-side constants of the simulated server."""

    heads: int = 12
    head_size: int = 64
    n_layers: int = 12
    kv_page_tokens: int = 16
    kv_capacity_frac: float = 0.3    # device memory granted to the KV cache
    dispatch_s: float = 1e-6         # per-launch host dispatch (CUDA-graph)
    step_overhead_s: float = 2e-5    # scheduler bookkeeping per engine step
    use_plan_cache: bool = True      # replay plans instead of re-deriving
    plan_cache_entries: int = 4096   # LRU bound of the shared plan cache
    plan_bucket_tokens: int = 64     # decode row-stat chunk, in positions
    #: Share decode plan families *across* requests whose masks are a pure
    #: function of (pattern, pinned params, position): the family base drops
    #: the per-request mask fingerprint, so any two requests — of any
    #: length — reuse one entry per position bucket.  Off by default to
    #: keep per-request keying (and every report) identical to before;
    #: see docs/symbolic_shapes.md.
    symbolic_plan_keys: bool = False
    #: Speculative decoding: a cheap draft model proposes up to
    #: ``draft_tokens`` per request per step and the target verifies them
    #: in one batched var-len forward (see repro.serving.spec_decode).
    #: ``None`` keeps classic one-token-per-step decoding.
    spec_decode: SpeculativeConfig | None = None
    #: Chunked prefill: > 0 splits prompts into slices of at most this
    #: many tokens, interleaved with decode steps so a long prefill stops
    #: blocking every resident request's inter-token latency.  0 keeps
    #: whole-prompt prefills.
    chunk_prefill_tokens: int = 0
    #: Multi-LoRA serving: price per-request adapters with a gathered
    #: batched-GEMM surcharge and an LRU residency model
    #: (see repro.serving.lora).  ``None`` ignores request adapter ids.
    lora: LoRAConfig | None = None

    def __post_init__(self) -> None:
        if min(self.heads, self.head_size, self.n_layers) < 1:
            raise ConfigError("heads, head_size and n_layers must be >= 1")
        if self.dispatch_s < 0 or self.step_overhead_s < 0:
            raise ConfigError("overheads must be >= 0")
        if self.plan_cache_entries < 1:
            raise ConfigError("plan_cache_entries must be >= 1")
        if self.plan_bucket_tokens < 1:
            raise ConfigError("plan_bucket_tokens must be >= 1")
        if self.spec_decode is not None and not isinstance(
            self.spec_decode, SpeculativeConfig
        ):
            raise ConfigError(
                f"spec_decode must be a SpeculativeConfig or None, "
                f"got {type(self.spec_decode).__name__}"
            )
        if self.chunk_prefill_tokens < 0:
            raise ConfigError(
                f"chunk_prefill_tokens must be >= 0, "
                f"got {self.chunk_prefill_tokens}"
            )
        if self.lora is not None and not isinstance(self.lora, LoRAConfig):
            raise ConfigError(
                f"lora must be a LoRAConfig or None, "
                f"got {type(self.lora).__name__}"
            )


class ServingEngine:
    """One simulated inference server: a GPU, a policy, a KV cache."""

    #: Trace lanes of the simulated serving timeline.
    LANE_STEPS = 0
    LANE_REQUESTS = 1

    def __init__(
        self,
        spec: GPUSpec,
        scheduler: Scheduler,
        config: ServingConfig | None = None,
        tracer: Tracer | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.spec = spec
        self.scheduler = scheduler
        self.config = config or ServingConfig()
        #: Explicit tracer for the run's simulated timeline; ``None`` falls
        #: back to the ambient :func:`repro.obs.tracer.current_tracer`.
        self.tracer = tracer
        #: The shared plan cache.  Prefill plans are replayed through
        #: UnifiedMHA (kind "mha"); decode row statistics live under kind
        #: "serving-decode", chunked by context-length bucket.  An explicit
        #: ``plan_cache`` lets several engines (e.g. data-parallel replicas)
        #: share one cache.
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(max_entries=self.config.plan_cache_entries)
        )
        self._mha = UnifiedMHA(
            spec, cache=self.plan_cache if self.config.use_plan_cache else None
        )
        self._decode_kernel = RowWiseKernel()
        #: Shard-config fingerprint mixed into every decode PlanKey; ""
        #: for the single-device engine.  Sharded engines (repro.parallel)
        #: set it so per-rank plans never collide with unsharded ones.
        self.shard_fingerprint = ""
        #: Simulated collective-communication seconds of the current step;
        #: always 0 on the single-device engine, accumulated by sharded
        #: subclasses inside their pricing overrides.
        self._step_comm_s = 0.0
        #: The run's KV cache (set by ``run``); ``_prefill_time`` consults
        #: it for shared-prefix positions it may skip recomputing.
        self._cache: PagedKVCache | None = None
        #: Rows actually computed by the latest ``_prefill_time`` call —
        #: sharded subclasses price their collectives on this, so a
        #: prefix-cached prefill also shrinks its communication volume.
        self._last_prefill_rows = 0
        #: Adapter pricing + residency when multi-LoRA serving is on.
        self._lora = (
            AdapterRegistry(
                spec,
                self.config.lora,
                hidden=self.config.heads * self.config.head_size,
                n_layers=self.config.n_layers,
            )
            if self.config.lora is not None
            else None
        )
        # Per-run workload counters (reset by ``run``).
        self._spec_proposed = 0
        self._spec_accepted = 0
        self._prefill_chunks = 0

    # ----------------------------------------------------------- step pricing

    def _prefill_time(self, tr: RequestTracker, rng: RngStream) -> tuple[float, int]:
        """Simulated seconds + launch count of (re)computing the context.

        When the request attached to a shared prefix whose pages another
        holder already materialized, only the *suffix* rows past the
        cached positions are computed — rectangular rows over the full
        context, priced through the same row-wise machinery as decode.
        With nothing cached this is the historical square-prefill path,
        bit for bit.
        """
        ctx = tr.context_len
        cached = (
            self._cache.cached_prefix_tokens(tr.req_id)
            if self._cache is not None
            else 0
        )
        if cached <= 0 or cached >= ctx:
            self._last_prefill_rows = 0 if cached >= ctx else ctx
            if cached >= ctx:
                return 0.0, 0
            problem = AttentionProblem(
                batch=1,
                heads=self.config.heads,
                seq_len=ctx,
                head_size=self.config.head_size,
                mask=tr.prefill_mask(rng),
                pattern="custom",
            )
            plan = self._mha.plan(problem)
            launches = sum(cost.launches for cost, _ in plan.launches)
            return (
                plan.estimated_s * self.config.n_layers,
                launches * self.config.n_layers,
            )
        rows = tr.full_mask(rng)[cached:ctx, :ctx]
        self._last_prefill_rows = ctx - cached
        nnz = int(rows.sum())
        padded = np.concatenate(
            [np.zeros((rows.shape[0], 1), dtype=bool), rows], axis=1
        )
        rises = ((~padded[:, :-1]) & padded[:, 1:]).sum(axis=1)
        nonempty = int((rises > 0).sum())
        single = int((rises == 1).sum())
        contig = 1.0 if nonempty == 0 else float(single) / float(nonempty)
        num_warps = self._decode_kernel.default_params(None, self.spec)["num_warps"]
        seconds = 0.0
        launches = 0
        for cost, launch_cfg in plan_rowwise_launches(
            self.spec,
            num_warps=num_warps,
            n_bh=self.config.heads,
            seq_len=ctx - cached,
            kv_seq_len=ctx,
            head_size=self.config.head_size,
            nnz=nnz,
            contiguous_fraction=contig,
            kernel_name=self._decode_kernel.name,
        ):
            seconds += estimate_kernel_time(self.spec, cost, launch_cfg).total
            launches += cost.launches
        return (
            seconds * self.config.n_layers,
            launches * self.config.n_layers,
        )

    def _decode_time(
        self, members: list[tuple[RequestTracker, int]], rng: RngStream
    ) -> tuple[float, int]:
        """Price one packed decode step: one row per member, block-diagonal
        over each member's own KV run."""
        if not members:
            return 0.0, 0
        rows = [tr.full_mask(rng)[pos, : pos + 1] for tr, pos in members]
        kv_lens = [len(r) for r in rows]
        total_kv = sum(kv_lens)
        mask = np.zeros((len(rows), total_kv), dtype=bool)
        offset = 0
        for i, row in enumerate(rows):
            mask[i, offset : offset + len(row)] = row
            offset += len(row)
        problem = AttentionProblem(
            batch=1,
            heads=self.config.heads,
            seq_len=len(rows),
            head_size=self.config.head_size,
            mask=mask,
            pattern="serving-packed",
            kv_seq_len=total_kv,
        )
        seconds = 0.0
        launches = 0
        for cost, cfg in self._decode_kernel.plan(problem, self.spec):
            seconds += estimate_kernel_time(self.spec, cost, cfg).total
            launches += cost.launches
        return seconds * self.config.n_layers, launches * self.config.n_layers

    # -------------------------------------------------------- cached decode

    def _decode_stats(
        self, tr: RequestTracker, pos: int, rng: RngStream
    ) -> tuple[int, int]:
        """(nnz, transition count) of the request's decode row ``pos``.

        Rows are cached in chunks of ``plan_bucket_tokens`` consecutive
        positions under a guarded plan family: the key leaves the decode
        position symbolic and a ``pos // width == bucket`` guard
        (:class:`~repro.plan.symbolic.BucketGuard`) names the chunk, so
        one mask scan serves a request's next ``plan_bucket_tokens``
        decode steps and steady-state steps run entirely off the cache.
        The statistics are exact per position — the guard shapes the
        cache *key*, never the cost.  With
        :attr:`ServingConfig.symbolic_plan_keys`, eligible requests of
        *different lengths* share the same families (see
        ``_decode_base``).
        """
        width = self.config.plan_bucket_tokens
        bucket, offset = divmod(pos, width)
        fam = tr._plan_keys.get(bucket)
        if fam is None:
            fam = self._decode_family(tr, bucket, pos, rng)
            tr._plan_keys[bucket] = fam
        nnz, rises = self.plan_cache.get_or_build(
            fam, lambda: self._decode_bucket_stats(tr, fam, bucket, rng)
        )
        return nnz[offset], rises[offset]

    def _decode_family(
        self, tr: RequestTracker, bucket: int, pos: int, rng: RngStream
    ) -> SymbolicPlanKey:
        """The guarded family key owning decode position ``pos``.

        Scans the cache's families under this request's base first, so a
        bucket another request already planned is reused; otherwise a new
        sibling guarded by this position's bucket is keyed (the cache
        counts its insertion as a family split).
        """
        base = tr._plan_base
        if base is None:
            base = self._decode_base(tr, rng)
            tr._plan_base = base
        fam = self.plan_cache.find_family(base, ("pos",), {"pos": pos})
        if fam is None:
            width = self.config.plan_bucket_tokens
            fam = SymbolicPlanKey(
                base, ("pos",), GuardSet((BucketGuard("pos", width, bucket),))
            )
        return fam

    def _decode_base(self, tr: RequestTracker, rng: RngStream) -> PlanKey:
        """The concrete part of a request's decode family keys.

        Default: the request's full-mask fingerprint — families are
        per-mask, exactly as sharp as the old per-bucket concrete keys.
        With ``symbolic_plan_keys``, a request whose mask entries are a
        pure function of (pattern, pinned params, position) drops the
        fingerprint for that function's identity: every such request
        shares one family per bucket regardless of its length, because
        under the causal AND, row ``p``'s statistics never depend on the
        mask's build size.  Requests that don't qualify (random patterns,
        size-derived widths) keep fingerprint keying.
        """
        width = self.config.plan_bucket_tokens
        pinned = (
            tr.pinned_pattern_params() if self.config.symbolic_plan_keys else None
        )
        if pinned is not None:
            pattern = tr.request.pattern
            mask_id = f"sym:{params_key(pinned)!r}"
        else:
            pattern = ""
            mask_id = tr.mask_fingerprint(rng)
        # With LoRA on, the plan specializes for the request's gathered
        # adapter GEMM, so the adapter id joins the family salt; the
        # base-model ("" adapter) salt stays byte-identical to before.
        adapter = ""
        if self._lora is not None:
            adapter = adapter_fingerprint(
                tr.request.adapter, self._lora.config.rank
            )
        return PlanKey(
            kind="serving-decode",
            pattern=pattern,
            mask=mask_id,
            salt=f"rows:w={width}{adapter}",
            shard=self.shard_fingerprint,
        )

    def _decode_bucket_stats(
        self, tr: RequestTracker, fam: SymbolicPlanKey, bucket: int, rng: RngStream
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(nnz, rise count) per row of one ``plan_bucket_tokens`` chunk.

        Shared (``sym:``) families rebuild the mask at the *canonical*
        size for the bucket — just large enough to contain its rows — so
        the cached tuples are a function of the family key alone, never
        of whichever request happened to build them first.
        """
        width = self.config.plan_bucket_tokens
        if fam.base.mask.startswith("sym:"):
            size = (bucket + 1) * width
            full = make_pattern(
                tr.request.pattern, size, **(tr.pinned_pattern_params() or {})
            ) & causal_mask(size)
        else:
            full = tr.full_mask(rng)
        rows = full[bucket * width : (bucket + 1) * width]
        # The mask is causal, so row p is all-False beyond column p:
        # whole-row statistics equal the [:p+1] prefix's exactly.
        padded = np.concatenate(
            [np.zeros((rows.shape[0], 1), dtype=bool), rows], axis=1
        )
        rises = ((~padded[:, :-1]) & padded[:, 1:]).sum(axis=1)
        nnz = rows.sum(axis=1)
        return (
            tuple(int(x) for x in nnz),
            tuple(int(x) for x in rises),
        )

    def _decode_time_cached(
        self, members: list[tuple[RequestTracker, int]], rng: RngStream
    ) -> tuple[float, int]:
        """`_decode_time` composed from cached per-row statistics.

        The row-wise kernel prices a mask only through its nnz and its
        contiguous-row fraction, and the packed block-diagonal layout
        preserves both per row, so the packed problem's plan is recomposed
        here bit-identically — without materializing the packed mask or
        re-scanning it on every engine step.
        """
        if not members:
            return 0.0, 0
        cfg = self.config
        total_kv = 0
        nnz = 0
        nonempty = 0
        single = 0
        for tr, pos in members:
            row_nnz, row_rises = self._decode_stats(tr, pos, rng)
            total_kv += pos + 1
            nnz += row_nnz
            if row_rises > 0:
                nonempty += 1
                if row_rises == 1:
                    single += 1
        contig = 1.0 if nonempty == 0 else float(single) / float(nonempty)
        num_warps = self._decode_kernel.default_params(None, self.spec)["num_warps"]
        launch_list = plan_rowwise_launches(
            self.spec,
            num_warps=num_warps,
            n_bh=cfg.heads,                 # packed problem has batch=1
            seq_len=len(members),
            kv_seq_len=total_kv,
            head_size=cfg.head_size,
            nnz=nnz,
            contiguous_fraction=contig,
            kernel_name=self._decode_kernel.name,
        )
        seconds = 0.0
        launches = 0
        for cost, launch_cfg in launch_list:
            seconds += estimate_kernel_time(self.spec, cost, launch_cfg).total
            launches += cost.launches
        return seconds * cfg.n_layers, launches * cfg.n_layers

    # ------------------------------------------------- workload-specific pricing

    def _prefill_collective_s(self, rows: int) -> float:
        """Collective seconds for ``rows`` chunk-prefill activations; the
        single-device engine has none (sharded engines override)."""
        return 0.0

    def _chunk_prefill_time(
        self, tr: RequestTracker, rng: RngStream, max_rows: int
    ) -> tuple[float, int, int]:
        """Price the request's next prefill chunk (at most ``max_rows``
        rows); returns ``(seconds, launches, rows)`` and advances
        ``tr.prefilled``.

        A chunk covering positions ``[a, b)`` attends all of ``[0, b)`` —
        a rectangular *tiled* problem through the same kernel selection as
        whole prefills (the rows are dense and contiguous, so pricing them
        through the gathered decode path would overcharge them ~10x).
        Full-width chunk plans are memoized under guarded plan families
        keyed like decode's (:meth:`_decode_base` identity, a
        ``pos // chunk == bucket`` :class:`~repro.plan.BucketGuard`, plus
        the start's in-bucket offset), so a chunk planned for one request
        replays for every other request with the same mask identity —
        under ``symbolic_plan_keys``, for *any* same-pattern request
        regardless of length, exactly the decode-family sharing contract.
        """
        cfg = self.config
        width = cfg.chunk_prefill_tokens
        a = tr.prefilled
        b = min(a + min(width, max_rows), tr.context_len)
        if cfg.use_plan_cache and b - a == width:
            base = tr._plan_base
            if base is None:
                base = self._decode_base(tr, rng)
                tr._plan_base = base
            # (bucket, in-bucket offset) uniquely name the start position,
            # and full width pins the extent, so the cached price is a
            # pure function of the family key.
            chunk_base = PlanKey(
                kind="serving-chunk",
                pattern=base.pattern,
                mask=base.mask,
                salt=f"chunk:w={width}:o={a % width}",
                shard=self.shard_fingerprint,
            )
            fam = self.plan_cache.find_family(chunk_base, ("pos",), {"pos": a})
            if fam is None:
                fam = SymbolicPlanKey(
                    chunk_base,
                    ("pos",),
                    GuardSet((BucketGuard("pos", width, a // width),)),
                )
            seconds, launches = self.plan_cache.get_or_build(
                fam, lambda: self._price_chunk(tr, a, b, rng)
            )
        else:
            seconds, launches = self._price_chunk(tr, a, b, rng)
        tr.prefilled = b
        self._prefill_chunks += 1
        return (
            seconds + self._prefill_collective_s(b - a),
            launches,
            b - a,
        )

    def _price_chunk(
        self, tr: RequestTracker, a: int, b: int, rng: RngStream
    ) -> tuple[float, int]:
        """(seconds, launches) of chunk rows ``[a, b)`` over KV ``[0, b)``.

        For cache-shared (``sym:``) families the slice content is a pure
        function of positions (that is what pinned params guarantee), so
        the value is independent of which request builds it first.
        """
        problem = AttentionProblem(
            batch=1,
            heads=self.config.heads,
            seq_len=b - a,
            head_size=self.config.head_size,
            mask=tr.full_mask(rng)[a:b, :b],
            pattern="custom",
            kv_seq_len=b,
        )
        plan = self._mha.plan(problem)
        launches = sum(cost.launches for cost, _ in plan.launches)
        return (
            plan.estimated_s * self.config.n_layers,
            launches * self.config.n_layers,
        )

    def _draft_forward_time(
        self, members: list[tuple[RequestTracker, int]], rng: RngStream
    ) -> tuple[float, int]:
        """One draft-model packed forward over one proposal depth.

        Deliberately calls the *base* pricing, not ``self``'s override:
        drafts are small enough that sharded deployments replicate them
        per rank (vLLM/TRT-LLM practice), so the draft pays compute but
        never tensor-parallel collectives.
        """
        if self.config.use_plan_cache:
            return ServingEngine._decode_time_cached(self, members, rng)
        return ServingEngine._decode_time(self, members, rng)

    def _spec_decode_step(
        self, members: list[tuple[RequestTracker, int]], rng: RngStream
    ) -> tuple[float, int, list[tuple[RequestTracker, int]]]:
        """Price one propose+verify speculative step.

        Returns ``(seconds, launches, emits)`` where ``emits`` pairs each
        member with its emitted token count (accepted drafts + the
        target's bonus token).  Proposals are capped so a request can
        never overshoot its generation budget: ``k_i = min(k,
        remaining - 1)`` keeps ``k_i + 1 <= remaining``.
        """
        spec = self.config.spec_decode
        proposals: list[tuple[RequestTracker, int, int]] = []
        for tr, pos in members:
            remaining = tr.request.max_new_tokens - tr.generated
            proposals.append((tr, pos, min(spec.draft_tokens, remaining - 1)))
        seconds = 0.0
        launches = 0
        # The draft autoregressively proposes depth-by-depth: one packed
        # forward per depth over the members still proposing at it.
        depth = max((k for _tr, _pos, k in proposals), default=0)
        for j in range(depth):
            mj = [(tr, pos + j) for tr, pos, k in proposals if j < k]
            t, n = self._draft_forward_time(mj, rng)
            seconds += spec.draft_cost_ratio * t
            launches += n
        # The target verifies every proposal row plus its own bonus row in
        # ONE packed var-len forward (k_i + 1 rows per member).
        expanded = [
            (tr, pos + j) for tr, pos, k in proposals for j in range(k + 1)
        ]
        if self.config.use_plan_cache:
            t, n = self._decode_time_cached(expanded, rng)
        else:
            t, n = self._decode_time(expanded, rng)
        seconds += t
        launches += n
        emits: list[tuple[RequestTracker, int]] = []
        for tr, _pos, k in proposals:
            accepted = spec.sample_accepted(tr.spec_rng(rng), k)
            self._spec_proposed += k
            self._spec_accepted += accepted
            emits.append((tr, accepted + 1))
        return seconds, launches, emits

    # -------------------------------------------------------- step composition

    def _begin_step(self) -> None:
        """Reset per-step accumulators before a step's pricing calls."""
        self._step_comm_s = 0.0

    def _step_time(
        self,
        prefill_s: float,
        prefill_comm_s: float,
        decode_s: float,
        decode_comm_s: float,
        launches: int,
    ) -> float:
        """Compose one engine step's simulated seconds.

        A step that both admits and decodes models a piggybacked join
        (one fused forward over prefill tokens + decode rows): the
        shorter phase's compute hides under the longer one's.
        Collectives still serialize on the ring, and the host still
        dispatches every launch.  Static batching admits only into an
        empty device, so one phase is always zero and this is exactly
        the serial price for it.  Sharded engines override this to
        overlap the collectives and wrap pipeline stages.
        """
        cfg = self.config
        return (
            cfg.step_overhead_s
            + max(prefill_s - prefill_comm_s, decode_s - decode_comm_s)
            + self._step_comm_s
            + cfg.dispatch_s * launches
        )

    # ----------------------------------------------------------------- spans

    def _record_step(
        self,
        tracer: Tracer,
        clock: float,
        step_s: float,
        step: int,
        admitted: int,
        members: int,
        launches: int,
    ) -> None:
        """Lay one engine step on the simulated timeline.

        Sharded engines override this to add per-rank compute/comm lanes;
        the single-device engine emits just the step span.
        """
        if not tracer.enabled:
            return
        tracer.add_span(
            "serve.step",
            cat="serving",
            t0=clock,
            dur=step_s,
            tid=self.LANE_STEPS,
            step=step,
            admitted=admitted,
            decode_members=members,
            launches=launches,
        ).add_model_time(step_s - self.config.step_overhead_s)

    # ------------------------------------------------------------- simulation

    def run(self, trace: list[Request], rng: RngStream | None = None) -> ServingReport:
        """Simulate the full trace to completion and report fleet metrics."""
        if not trace:
            raise ConfigError("empty request trace")
        rng = rng or RngStream()
        mask_rng = rng.fork("serving-masks")
        cfg = self.config
        self._spec_proposed = 0
        self._spec_accepted = 0
        self._prefill_chunks = 0
        if self._lora is not None:
            self._lora.reset()
        cache = PagedKVCache(
            KVCacheConfig.for_spec(
                self.spec,
                cfg.heads,
                cfg.head_size,
                cfg.n_layers,
                page_tokens=cfg.kv_page_tokens,
                capacity_frac=cfg.kv_capacity_frac,
            )
        )
        # Requests that can never be served — their worst-case context
        # exceeds an *empty* cache or the scheduler's token budget — are
        # rejected up front and surfaced in the report; the simulation
        # proceeds with the rest instead of crashing mid-run.  (Truly
        # unservable *configurations*, e.g. a cache smaller than one page,
        # still fail hard at construction, in KVCacheConfig.)
        trackers = {r.req_id: RequestTracker(r) for r in trace}
        active: list[Request] = []
        rejected: list[RequestTracker] = []
        for req in sorted(trace, key=lambda r: (r.arrival_s, r.req_id)):
            servable = (
                cache.fits_alone(req.max_context)
                and req.max_context <= self.scheduler.max_batch_tokens
            )
            if servable:
                active.append(req)
            else:
                trackers[req.req_id].state = RequestState.REJECTED
                rejected.append(trackers[req.req_id])
        self._cache = cache
        for req in active:
            if req.prefix_id:
                cache.register_prefix(req.req_id, req.prefix_id, req.prefix_len)

        pending = list(active)
        waiting: list[RequestTracker] = []
        running: list[RequestTracker] = []
        finished: list[RequestTracker] = []

        tracer = self.tracer if self.tracer is not None else current_tracer()
        if tracer.enabled:
            tracer.lane_names.setdefault(self.LANE_STEPS, "engine steps")
            tracer.lane_names.setdefault(self.LANE_REQUESTS, "requests")
        metrics = current_metrics()
        kv_gauge = (
            metrics.gauge("serving.kv_occupancy") if metrics.enabled else None
        )

        clock = 0.0
        steps = 0

        def credit_token(tr: RequestTracker) -> None:
            tr.generated += 1
            tr.token_times_s.append(clock)
            if tr.ttft_s is None:
                tr.ttft_s = clock
            if tr.done:
                tr.finish_s = clock
                tr.state = RequestState.FINISHED
                if tr in waiting:      # preempted in the same step it finished
                    waiting.remove(tr)
                finished.append(tr)
                if tracer.enabled:
                    arrival = tr.request.arrival_s
                    span = tracer.add_span(
                        f"request {tr.req_id}",
                        cat="serving.request",
                        t0=arrival,
                        dur=clock - arrival,
                        tid=self.LANE_REQUESTS,
                        req_id=tr.req_id,
                        prompt_len=tr.request.prompt_len,
                        tokens=tr.generated,
                        ttft_s=(tr.ttft_s or 0.0) - arrival,
                        preemptions=tr.preemptions,
                    )
                    for ts in tr.token_times_s:
                        span.event("token", ts)

        def preempt(tr: RequestTracker) -> None:
            cache.release(tr.req_id)
            running.remove(tr)
            tr.state = RequestState.WAITING
            tr.preemptions += 1
            # Recompute-style preemption discards the KV, so an in-flight
            # chunked prefill restarts from whatever re-admission finds
            # cached, not from its old chunk watermark.
            tr.prefilled = None
            waiting.append(tr)
            waiting.sort(key=lambda t: (t.request.arrival_s, t.req_id))

        if metrics.enabled and rejected:
            metrics.counter("serving.rejected").inc(len(rejected))

        while len(finished) < len(active):
            while pending and pending[0].arrival_s <= clock:
                tr = trackers[pending.pop(0).req_id]
                waiting.append(tr)
            waiting.sort(key=lambda t: (t.request.arrival_s, t.req_id))

            self.scheduler.begin_step(clock)
            # Preempt-to-meet-deadline (SLO policies): evict lower-priority
            # residents *before* the step forms, so the at-risk waiter is
            # admitted this very step rather than after their drain.
            for victim in self.scheduler.deadline_victims(waiting, running, cache):
                if victim in running:
                    preempt(victim)

            was_running = list(running)
            admitted = self.scheduler.admit(waiting, running, cache)
            for tr in admitted:
                tr.state = RequestState.RUNNING
                running.append(tr)

            if not was_running and not admitted:
                if not pending:   # pragma: no cover - admission always progresses
                    raise ConfigError("serving deadlock: nothing runnable")
                clock = pending[0].arrival_s
                continue

            self._begin_step()
            launches = 0
            prefill_s = 0.0
            #: Trackers whose prefill finishes this step (they earn their
            #: first token at step end).  Without chunking this is exactly
            #: ``admitted``.
            prefill_completed: list[RequestTracker] = []
            #: Adapter -> prefill rows computed this step (LoRA pricing).
            lora_prefill: dict[str, int] = {}
            for tr in admitted:
                cached = cache.cached_prefix_tokens(tr.req_id)
                if cfg.chunk_prefill_tokens <= 0 or (
                    tr.context_len - cached <= cfg.chunk_prefill_tokens
                ):
                    # Whole remaining context fits one chunk: take the
                    # historical whole-prefill path, bit for bit.
                    t, n = self._prefill_time(tr, mask_rng)
                    prefill_s += t
                    launches += n
                    prefill_completed.append(tr)
                    if self._lora is not None and tr.request.adapter:
                        lora_prefill[tr.request.adapter] = (
                            lora_prefill.get(tr.request.adapter, 0)
                            + self._last_prefill_rows
                        )
                else:
                    tr.prefilled = cached
            if cfg.chunk_prefill_tokens > 0:
                # Advance in-flight chunked prefills — including those
                # admitted this very step — fused into the step alongside
                # decode.  ``chunk_prefill_tokens`` is a *per-step* prefill
                # token budget shared FCFS across pending prefills
                # (Sarathi-style): the step's total prefill work stays
                # bounded by one chunk, so decode rows never stall behind
                # a whole long prompt — or behind several chunks at once.
                budget = cfg.chunk_prefill_tokens
                fills = sorted(
                    (t for t in running if t.prefill_pending),
                    key=lambda t: (t.request.arrival_s, t.req_id),
                )
                for tr in fills:
                    if budget <= 0:
                        break
                    t, n, rows = self._chunk_prefill_time(
                        tr, mask_rng, budget
                    )
                    budget -= rows
                    prefill_s += t
                    launches += n
                    if self._lora is not None and tr.request.adapter:
                        lora_prefill[tr.request.adapter] = (
                            lora_prefill.get(tr.request.adapter, 0) + rows
                        )
                    if tr.prefilled >= tr.context_len:
                        tr.prefilled = None
                        prefill_completed.append(tr)
            prefill_comm_s = self._step_comm_s

            members = self.scheduler.decode_members(was_running)
            if self.scheduler.allows_preemption:
                members.sort(key=lambda tp: (tp[0].request.arrival_s, tp[0].req_id))
                survivors: list[tuple[RequestTracker, int]] = []
                for tr, pos in members:
                    if tr not in running:   # evicted earlier in this pass
                        continue
                    preempted_self = False
                    need = tr.context_len + 1
                    if cfg.spec_decode is not None:
                        # Speculative members may advance k+1 positions in
                        # one step; reserve that headroom (clamped to the
                        # budget the request can actually reach).
                        need = min(
                            need + cfg.spec_decode.draft_tokens,
                            tr.request.max_context,
                        )
                    while not cache.reserve(tr.req_id, need):
                        evictable = [
                            t
                            for t in running
                            if t is not tr
                            and all(t is not s for s, _ in survivors)
                        ]
                        if not evictable:   # pragma: no cover - solo fit holds
                            preempt(tr)
                            preempted_self = True
                            break
                        victim = max(
                            evictable,
                            key=lambda t: (t.request.arrival_s, t.req_id),
                        )
                        preempt(victim)
                    if not preempted_self:
                        survivors.append((tr, pos))
                members = survivors
            if cfg.spec_decode is not None and members:
                decode_s, n, emits = self._spec_decode_step(members, mask_rng)
            else:
                if cfg.use_plan_cache:
                    decode_s, n = self._decode_time_cached(members, mask_rng)
                else:
                    decode_s, n = self._decode_time(members, mask_rng)
                emits = [(tr, 1) for tr, _pos in members]
            launches += n
            decode_comm_s = self._step_comm_s - prefill_comm_s

            lora_swap_s = 0.0
            if self._lora is not None:
                # Gathered adapter GEMMs ride each phase's forward (the
                # fused-step max applies); swap-ins serialize on PCIe.
                lora_decode: dict[str, int] = {}
                for tr, n_tok in emits:
                    ad = tr.request.adapter
                    if not ad:
                        continue
                    rows = n_tok if cfg.spec_decode is None else (
                        # Verified rows, not emitted: k_i + 1 per member.
                        min(
                            cfg.spec_decode.draft_tokens,
                            tr.request.max_new_tokens - tr.generated - 1,
                        )
                        + 1
                    )
                    lora_decode[ad] = lora_decode.get(ad, 0) + rows
                if lora_prefill:
                    t, n = self._lora.gemm_time(
                        sum(lora_prefill.values()), len(lora_prefill)
                    )
                    prefill_s += t
                    launches += n
                if lora_decode:
                    t, n = self._lora.gemm_time(
                        sum(lora_decode.values()), len(lora_decode)
                    )
                    decode_s += t
                    launches += n
                touched = set(lora_prefill) | set(lora_decode)
                if touched:
                    swaps_before = self._lora.swaps
                    lora_swap_s = self._lora.touch(touched)
                    if metrics.enabled and self._lora.swaps > swaps_before:
                        metrics.counter("serving.lora_swaps").inc(
                            self._lora.swaps - swaps_before
                        )

            step_s = (
                self._step_time(
                    prefill_s, prefill_comm_s, decode_s, decode_comm_s, launches
                )
                + lora_swap_s
            )

            self._record_step(
                tracer, clock, step_s, steps, len(admitted), len(members),
                launches,
            )
            if kv_gauge is not None:
                kv_gauge.set(cache.occupancy)
            if metrics.enabled:
                metrics.counter("serving.tokens").inc(
                    len(prefill_completed) + sum(n for _tr, n in emits)
                )
                if self._lora is not None:
                    metrics.gauge("serving.lora_resident").set(
                        len(self._lora.resident)
                    )

            clock += step_s
            steps += 1

            for tr in prefill_completed:
                credit_token(tr)
            for tr, n_tok in emits:
                for _ in range(n_tok):
                    if not tr.done:
                        credit_token(tr)

            for tr in self.scheduler.releasable(running):
                cache.release(tr.req_id)
                running.remove(tr)
                if tr not in finished:   # pragma: no cover - defensive
                    finished.append(tr)

        first_arrival = min(r.arrival_s for r in trace)
        last_finish = (
            max(tr.finish_s or 0.0 for tr in finished)
            if finished else first_arrival
        )
        patterns = sorted({r.pattern for r in trace})
        completed_metrics = sorted(
            (RequestMetrics.from_tracker(tr) for tr in finished),
            key=lambda m: m.req_id,
        )
        tenants = ()
        if any(r.tenant for r in trace):
            tenants = tenant_reports(
                completed_metrics,
                slo_policy=getattr(self.scheduler, "slo_policy", None),
            )
        return ServingReport(
            policy=self.scheduler.name,
            pattern="+".join(patterns),
            device=self.spec.name,
            n_requests=len(trace),
            completed=len(finished),
            makespan_s=last_finish - first_arrival,
            total_tokens=sum(tr.generated for tr in finished),
            total_steps=steps,
            preemptions=sum(tr.preemptions for tr in trackers.values()),
            kv_peak_occupancy=cache.peak_occupancy,
            rejected_ids=tuple(tr.req_id for tr in rejected),
            requests=completed_metrics,
            kv_peak_used_pages=cache.peak_used_pages,
            kv_peak_logical_pages=cache.peak_logical_pages,
            cow_forks=cache.cow_forks,
            tenants=tenants,
            plan_cache=self.plan_cache.stats() if cfg.use_plan_cache else None,
            spec_proposed=self._spec_proposed,
            spec_accepted=self._spec_accepted,
            prefill_chunks=self._prefill_chunks,
            lora_swaps=self._lora.swaps if self._lora is not None else 0,
            lora_peak_resident=(
                self._lora.peak_resident if self._lora is not None else 0
            ),
        )


def simulate_serving(
    trace: list[Request],
    spec: GPUSpec,
    scheduler: Scheduler,
    config: ServingConfig | None = None,
    rng: RngStream | None = None,
) -> ServingReport:
    """One-call façade: run ``trace`` under ``scheduler`` on ``spec``."""
    return ServingEngine(spec, scheduler, config).run(trace, rng=rng)
