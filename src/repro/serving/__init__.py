"""Continuous-batching serving simulation (S12; extension beyond the paper).

The paper evaluates single static batches; production inference serves a
*stream* of requests.  This package simulates that regime on the existing
substrate — the decode/var-len attention problems of :mod:`repro.mha`
priced by the :mod:`repro.gpu` cost model — with request-level (static)
and iteration-level (continuous) batching policies, a paged KV-cache
manager bounded by the device spec, and fleet latency/throughput metrics.

* :mod:`repro.serving.request`   — requests, trackers, synthetic traces.
* :mod:`repro.serving.workload`  — arrival processes and tenant mixes.
* :mod:`repro.serving.kvcache`   — paged KV allocation + prefix sharing.
* :mod:`repro.serving.scheduler` — static vs continuous batch assembly.
* :mod:`repro.serving.slo`       — per-tenant SLO targets and scheduling.
* :mod:`repro.serving.spec_decode` — draft-propose / target-verify steps.
* :mod:`repro.serving.lora`      — multi-LoRA pricing and residency.
* :mod:`repro.serving.engine`    — the discrete-event simulation loop.
* :mod:`repro.serving.metrics`   — TTFT / ITL / tokens-per-second reports.
"""

from repro.serving.engine import ServingConfig, ServingEngine, simulate_serving
from repro.serving.kvcache import KVCacheConfig, PagedKVCache
from repro.serving.lora import AdapterRegistry, LoRAConfig
from repro.serving.metrics import (
    UNSET_S,
    RequestMetrics,
    ServingReport,
    TenantReport,
    percentile,
    tenant_reports,
)
from repro.serving.request import (
    Request,
    RequestState,
    RequestTracker,
    synthetic_trace,
)
from repro.serving.scheduler import (
    SCHEDULERS,
    ContinuousBatchScheduler,
    Scheduler,
    StaticBatchScheduler,
    make_scheduler,
)
from repro.serving.slo import SLOPolicy, SLOScheduler, TenantSLO
from repro.serving.spec_decode import SpeculativeConfig
from repro.serving.workload import (
    SCENARIOS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TenantSpec,
    WorkloadSpec,
    assign_adapters,
    make_scenario,
)

__all__ = [
    "AdapterRegistry",
    "ArrivalProcess",
    "assign_adapters",
    "BurstyArrivals",
    "ContinuousBatchScheduler",
    "DiurnalArrivals",
    "KVCacheConfig",
    "LoRAConfig",
    "PagedKVCache",
    "percentile",
    "PoissonArrivals",
    "Request",
    "RequestMetrics",
    "RequestState",
    "RequestTracker",
    "Scheduler",
    "SCHEDULERS",
    "SCENARIOS",
    "ServingConfig",
    "ServingEngine",
    "ServingReport",
    "simulate_serving",
    "SLOPolicy",
    "SLOScheduler",
    "SpeculativeConfig",
    "StaticBatchScheduler",
    "TenantReport",
    "TenantSLO",
    "TenantSpec",
    "UNSET_S",
    "WorkloadSpec",
    "make_scenario",
    "make_scheduler",
    "synthetic_trace",
    "tenant_reports",
]
