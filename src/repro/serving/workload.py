"""Multi-tenant workload generation: arrival processes and tenant mixes.

The fleet simulator needs traffic that looks like production — not a
single synthetic stream.  This module provides the two halves of that:

* **Arrival processes** (:class:`PoissonArrivals`, :class:`DiurnalArrivals`,
  :class:`BurstyArrivals`): seedable point processes over wall-clock time.
  Time-varying rates are sampled by Lewis–Shedler *thinning* — candidates
  are drawn at the peak rate and accepted with probability
  ``rate_at(t) / peak`` — so any bounded rate curve plugs in.  Every
  process exposes ``scaled(factor)``; the "millions of users" knob is a
  single multiplicative scale on the arrival rate.

* **Tenant mixes** (:class:`TenantSpec`, :class:`WorkloadSpec`): each
  arrival is assigned to a weighted tenant class carrying its own prompt
  and generation-length distributions, mask pattern, scheduling
  ``priority``, and optionally a shared *system prompt*.  A tenant with
  ``system_prompt_len > 0`` stamps every request with
  ``prefix_id="sys:<tenant>"`` so the paged KV cache can share those
  pages across the tenant's whole population.

Determinism contract: :meth:`WorkloadSpec.generate` is a pure function of
``(spec, rng)``.  The single-tenant Poisson case consumes RNG draws in
exactly the order the original ``synthetic_trace`` did, so traces for
existing seeds are bit-identical (golden-tested).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

from repro.core.errors import ConfigError
from repro.core.rng import RngStream
from repro.masks.patterns import PATTERN_REGISTRY
from repro.serving.request import Request


class ArrivalProcess(ABC):
    """A seedable point process: successive request arrival times."""

    @abstractmethod
    def rate_at(self, t_s: float) -> float:
        """Instantaneous arrival rate (requests/s) at time ``t_s``."""

    @abstractmethod
    def next_arrival(self, t_s: float, rng: RngStream) -> float:
        """The first arrival strictly after ``t_s``."""

    @abstractmethod
    def scaled(self, factor: float) -> "ArrivalProcess":
        """The same process with every rate multiplied by ``factor``."""

    def mean_rate(self) -> float:
        """Long-run average rate; subclasses with varying rate override."""
        return self.rate_at(0.0)


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be > 0, got {value}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process: exponential inter-arrival gaps.

    Consumes exactly one uniform draw per arrival — the contract the
    byte-identical ``synthetic_trace`` goldens pin down.
    """

    rate_rps: float

    def __post_init__(self) -> None:
        _require_positive("rate_rps", self.rate_rps)

    def rate_at(self, t_s: float) -> float:
        return self.rate_rps

    def next_arrival(self, t_s: float, rng: RngStream) -> float:
        return t_s - math.log(1.0 - float(rng.random())) / self.rate_rps

    def scaled(self, factor: float) -> "PoissonArrivals":
        _require_positive("factor", factor)
        return replace(self, rate_rps=self.rate_rps * factor)


class _ThinnedArrivals(ArrivalProcess):
    """Inhomogeneous Poisson sampling via thinning at the peak rate."""

    def peak_rate(self) -> float:
        raise NotImplementedError

    def next_arrival(self, t_s: float, rng: RngStream) -> float:
        peak = self.peak_rate()
        t = t_s
        while True:
            t -= math.log(1.0 - float(rng.random())) / peak
            if float(rng.random()) * peak < self.rate_at(t):
                return t


@dataclass(frozen=True)
class DiurnalArrivals(_ThinnedArrivals):
    """Sinusoidal day/night cycle around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2*pi * t / period))`` —
    the trace starts on the rising edge of the "day".
    """

    base_rate_rps: float
    amplitude: float = 0.5
    period_s: float = 1.0

    def __post_init__(self) -> None:
        _require_positive("base_rate_rps", self.base_rate_rps)
        _require_positive("period_s", self.period_s)
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )

    def rate_at(self, t_s: float) -> float:
        phase = 2.0 * math.pi * t_s / self.period_s
        return self.base_rate_rps * (1.0 + self.amplitude * math.sin(phase))

    def peak_rate(self) -> float:
        return self.base_rate_rps * (1.0 + self.amplitude)

    def mean_rate(self) -> float:
        return self.base_rate_rps

    def scaled(self, factor: float) -> "DiurnalArrivals":
        _require_positive("factor", factor)
        return replace(self, base_rate_rps=self.base_rate_rps * factor)


@dataclass(frozen=True)
class BurstyArrivals(_ThinnedArrivals):
    """Square-wave bursts: the first ``burst_fraction`` of every period
    runs at ``base * burst_multiplier``, the rest at ``base``."""

    base_rate_rps: float
    burst_multiplier: float = 4.0
    burst_fraction: float = 0.25
    period_s: float = 1.0

    def __post_init__(self) -> None:
        _require_positive("base_rate_rps", self.base_rate_rps)
        _require_positive("period_s", self.period_s)
        if self.burst_multiplier < 1.0:
            raise ConfigError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )
        if not 0.0 < self.burst_fraction < 1.0:
            raise ConfigError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )

    def rate_at(self, t_s: float) -> float:
        in_burst = (t_s % self.period_s) < self.burst_fraction * self.period_s
        return self.base_rate_rps * (self.burst_multiplier if in_burst else 1.0)

    def peak_rate(self) -> float:
        return self.base_rate_rps * self.burst_multiplier

    def mean_rate(self) -> float:
        burst = self.burst_fraction * self.burst_multiplier
        return self.base_rate_rps * (burst + (1.0 - self.burst_fraction))

    def scaled(self, factor: float) -> "BurstyArrivals":
        _require_positive("factor", factor)
        return replace(self, base_rate_rps=self.base_rate_rps * factor)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class: traffic share, request shape, and SLO priority.

    ``system_prompt_len > 0`` prepends that many tokens to every prompt
    and marks them as the shared prefix ``sys:<name>`` — the KV cache
    then keeps one copy of those pages for the whole tenant.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    prompt_range: tuple[int, int] = (32, 160)
    max_new_range: tuple[int, int] = (16, 64)
    pattern: str = "causal"
    pattern_overrides: tuple[tuple[str, object], ...] = ()
    system_prompt_len: int = 0
    #: Distinct LoRA adapters this tenant's requests draw from (uniformly);
    #: 0 means every request runs the base model.  Adapter ids are
    #: ``"<tenant>-a<i>"`` so two tenants never share an adapter.
    adapter_pool: int = 0

    def __post_init__(self) -> None:
        _require_positive("weight", self.weight)
        for what, (lo, hi) in (
            ("prompt", self.prompt_range),
            ("max_new", self.max_new_range),
        ):
            if not (1 <= lo <= hi):
                raise ConfigError(f"invalid {what}_range ({lo}, {hi})")
        if self.system_prompt_len < 0:
            raise ConfigError(
                f"system_prompt_len must be >= 0, got {self.system_prompt_len}"
            )
        if self.adapter_pool < 0:
            raise ConfigError(
                f"adapter_pool must be >= 0, got {self.adapter_pool}"
            )
        if self.pattern not in PATTERN_REGISTRY:
            raise ConfigError(
                f"unknown mask pattern {self.pattern!r}; "
                f"known: {sorted(PATTERN_REGISTRY)}"
            )

    @property
    def prefix_id(self) -> str:
        return f"sys:{self.name}" if self.system_prompt_len > 0 else ""


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete traffic description: arrival process x tenant mix.

    ``generate`` draws the trace deterministically from the given rng.
    Draw order (pinned by the byte-compat goldens): one ``"arrivals"``
    fork consumed by the arrival process, one ``"lengths"`` fork consumed
    two draws per request, and — only when there is more than one tenant —
    a ``"tenants"`` fork consumed one draw per request, so single-tenant
    workloads replay legacy ``synthetic_trace`` streams exactly.
    """

    n_requests: int
    arrivals: ArrivalProcess
    tenants: tuple[TenantSpec, ...] = (TenantSpec(name=""),)
    name: str = ""

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if not isinstance(self.arrivals, ArrivalProcess):
            raise ConfigError(
                "arrivals must be an ArrivalProcess, got "
                f"{type(self.arrivals).__name__}"
            )
        if not self.tenants:
            raise ConfigError("tenants must be non-empty")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {names}")

    def scaled(self, factor: float) -> "WorkloadSpec":
        """The same mix under ``factor``x traffic."""
        return replace(self, arrivals=self.arrivals.scaled(factor))

    def _pick_tenant(self, u: float) -> TenantSpec:
        total = sum(t.weight for t in self.tenants)
        acc = 0.0
        for t in self.tenants:
            acc += t.weight / total
            if u < acc:
                return t
        return self.tenants[-1]

    def generate(self, rng: RngStream) -> list[Request]:
        """Draw the request trace (pure function of ``(self, rng)``)."""
        arrivals_rng = rng.fork("arrivals")
        lengths_rng = rng.fork("lengths")
        tenants_rng = rng.fork("tenants") if len(self.tenants) > 1 else None
        # The adapter stream exists only when some tenant declares a pool,
        # and draws only for requests of such tenants — so adapter-free
        # workloads (and adapter-free tenants inside mixed workloads)
        # consume exactly the legacy draw sequence, byte for byte.
        adapters_rng = (
            rng.fork("adapters")
            if any(t.adapter_pool > 0 for t in self.tenants)
            else None
        )

        clock = 0.0
        trace: list[Request] = []
        for i in range(self.n_requests):
            clock = self.arrivals.next_arrival(clock, arrivals_rng)
            if tenants_rng is None:
                tenant = self.tenants[0]
            else:
                tenant = self._pick_tenant(float(tenants_rng.random()))
            lo, hi = tenant.prompt_range
            prompt = tenant.system_prompt_len + int(
                lengths_rng.integers(lo, hi + 1)
            )
            lo, hi = tenant.max_new_range
            max_new = int(lengths_rng.integers(lo, hi + 1))
            adapter = ""
            if adapters_rng is not None and tenant.adapter_pool > 0:
                slot = int(adapters_rng.integers(0, tenant.adapter_pool))
                adapter = f"{tenant.name or 'lora'}-a{slot}"
            trace.append(
                Request(
                    req_id=i,
                    arrival_s=clock,
                    prompt_len=prompt,
                    max_new_tokens=max_new,
                    pattern=tenant.pattern,
                    pattern_overrides=tenant.pattern_overrides,
                    tenant=tenant.name,
                    priority=tenant.priority,
                    prefix_id=tenant.prefix_id,
                    prefix_len=tenant.system_prompt_len,
                    adapter=adapter,
                )
            )
        return trace


def assign_adapters(
    trace: list[Request], n_adapters: int, prefix: str = "lora"
) -> list[Request]:
    """Round-robin ``n_adapters`` adapter ids over an existing trace.

    The deterministic (RNG-free) way to put adapters on a trace that was
    generated without them — the CLI's ``--lora-adapters`` path.  Ids
    cycle by trace position: ``prefix-a0, prefix-a1, ...``.

    >>> from repro.core.rng import RngStream
    >>> from repro.serving.request import synthetic_trace
    >>> t = assign_adapters(synthetic_trace(3, 50.0, RngStream(1)), 2)
    >>> [r.adapter for r in t]
    ['lora-a0', 'lora-a1', 'lora-a0']
    """
    if n_adapters < 1:
        raise ConfigError(f"n_adapters must be >= 1, got {n_adapters}")
    return [
        replace(r, adapter=f"{prefix}-a{i % n_adapters}")
        for i, r in enumerate(trace)
    ]


# --------------------------------------------------------------- scenarios

#: The default multi-tenant mix: interactive chat traffic with a shared
#: system prompt, latency-tolerant batch jobs, and tool-using agents with
#: a longer shared scaffold prompt.
DEFAULT_TENANTS = (
    TenantSpec(
        name="chat",
        weight=0.6,
        priority=2,
        prompt_range=(32, 128),
        max_new_range=(16, 64),
        system_prompt_len=64,
    ),
    TenantSpec(
        name="batch",
        weight=0.3,
        priority=0,
        prompt_range=(64, 224),
        max_new_range=(32, 96),
    ),
    TenantSpec(
        name="agent",
        weight=0.1,
        priority=1,
        prompt_range=(48, 160),
        max_new_range=(16, 48),
        system_prompt_len=96,
    ),
)

SCENARIOS = ("steady", "diurnal", "bursty")


def make_scenario(
    name: str,
    n_requests: int = 64,
    rate_rps: float = 2000.0,
    tenants: tuple[TenantSpec, ...] = DEFAULT_TENANTS,
) -> WorkloadSpec:
    """A named preset from the fleet scenario matrix.

    The diurnal/bursty periods are tied to the expected trace span
    (``n_requests / rate``) so every trace sees a few full cycles
    regardless of scale.
    """
    if name not in SCENARIOS:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    span_s = n_requests / rate_rps
    if name == "steady":
        arrivals: ArrivalProcess = PoissonArrivals(rate_rps)
    elif name == "diurnal":
        arrivals = DiurnalArrivals(
            rate_rps, amplitude=0.6, period_s=span_s / 3.0
        )
    else:
        arrivals = BurstyArrivals(
            rate_rps,
            burst_multiplier=4.0,
            burst_fraction=0.25,
            period_s=span_s / 3.0,
        )
    return WorkloadSpec(
        n_requests=n_requests, arrivals=arrivals, tenants=tenants, name=name
    )
