"""Serving metrics: per-request latency accounting and fleet aggregates.

Definitions (the ones every serving paper and dashboard uses):

* **TTFT** — time to first token: first-token emission minus arrival.
  Includes queueing delay, so it is the metric scheduling policy moves.
* **ITL** — inter-token latency: the gap between consecutive tokens of one
  request after the first (also called TPOT, time per output token).
* **tokens/s** — fleet decode throughput: total generated tokens divided
  by the makespan (first arrival to last completion).
* **goodput** — completed requests per second over the same span.

Percentiles use the nearest-rank convention over the exact simulated
values; everything here is a pure function of the engine's event log, so
reports are bit-identical across runs with the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import RequestTracker

#: Explicit sentinel for "this request never produced the event":
#: a token-less tracker has no TTFT and an unfinished one no finish time.
#: NaN (not 0.0, not a negative) so arithmetic can never smuggle a bogus
#: value into an SLO comparison — ``nan <= target`` is always False, and
#: the aggregate properties below exclude sentinels outright.
UNSET_S = math.nan


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a sample (0 for an empty one).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    """
    if not values:
        return 0.0
    arr = np.sort(np.asarray(values, dtype=np.float64))
    rank = max(0, int(np.ceil(q / 100.0 * len(arr))) - 1)
    return float(arr[rank])


@dataclass(frozen=True)
class RequestMetrics:
    """Latency summary of one request.

    Engine reports only contain *finished* requests, but this class is
    also the public conversion point for arbitrary trackers (cancelled,
    preempted-and-abandoned, still-running).  A tracker that never
    produced a token has ``ttft_s = UNSET_S`` and an unfinished one
    ``finish_s = UNSET_S`` — never a negative latency fabricated from a
    missing timestamp.
    """

    req_id: int
    arrival_s: float
    prompt_len: int
    tokens: int
    ttft_s: float
    finish_s: float
    preemptions: int
    itl_mean_s: float
    tenant: str = ""
    priority: int = 0
    #: Tail of this request's own inter-token gaps (nearest-rank p99 and
    #: max); 0.0 for requests with fewer than two tokens.  The fleet-level
    #: "p99 ITL" the chunked-prefill study reports aggregates these —
    #: unlike ``itl_mean_s``, a single long stall (a giant fused prefill
    #: blocking every decoder) cannot hide in a per-request mean.
    itl_p99_s: float = 0.0
    itl_max_s: float = 0.0

    @property
    def has_first_token(self) -> bool:
        """True iff the request ever emitted a token (TTFT is defined)."""
        return self.tokens > 0 and not math.isnan(self.ttft_s)

    @property
    def is_finished(self) -> bool:
        """True iff the request ran to completion (latency is defined)."""
        return not math.isnan(self.finish_s)

    @property
    def latency_s(self) -> float:
        """End-to-end: arrival to final token (``UNSET_S`` if unfinished)."""
        return self.finish_s - self.arrival_s

    @classmethod
    def from_tracker(cls, tr: RequestTracker) -> "RequestMetrics":
        gaps = (
            [float(g) for g in np.diff(tr.token_times_s)]
            if len(tr.token_times_s) > 1
            else []
        )
        return cls(
            req_id=tr.req_id,
            arrival_s=tr.request.arrival_s,
            prompt_len=tr.request.prompt_len,
            tokens=tr.generated,
            ttft_s=(
                tr.ttft_s - tr.request.arrival_s
                if tr.ttft_s is not None
                else UNSET_S
            ),
            finish_s=tr.finish_s if tr.finish_s is not None else UNSET_S,
            preemptions=tr.preemptions,
            itl_mean_s=float(np.mean(gaps)) if gaps else 0.0,
            itl_p99_s=percentile(gaps, 99),
            itl_max_s=max(gaps) if gaps else 0.0,
            tenant=tr.request.tenant,
            priority=tr.request.priority,
        )


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant latency aggregates and SLO attainment.

    Targets of 0 mean "no SLO declared" — the attainment fields are then
    vacuously 1.0 and the summary omits them.
    """

    tenant: str
    priority: int
    completed: int
    tokens: int
    ttft_p50_s: float
    ttft_p99_s: float
    itl_p95_s: float
    ttft_target_s: float = 0.0
    itl_target_s: float = 0.0
    ttft_attainment: float = 1.0
    itl_attainment: float = 1.0

    @property
    def slo_attainment(self) -> float:
        """The binding (worse) of the two attainment fractions."""
        return min(self.ttft_attainment, self.itl_attainment)


def tenant_reports(
    requests: list[RequestMetrics], slo_policy: object = None
) -> tuple[TenantReport, ...]:
    """Group completed requests by tenant, highest priority first.

    ``slo_policy`` is an optional :class:`~repro.serving.slo.SLOPolicy`;
    when given, each tenant's attainment is measured against its target.
    """
    groups: dict[tuple[str, int], list[RequestMetrics]] = {}
    for m in requests:
        groups.setdefault((m.tenant, m.priority), []).append(m)
    reports = []
    for (tenant, priority), ms in groups.items():
        # One sample per metric family, shared by the percentile AND the
        # attainment so the two can never disagree on population:
        # * TTFT aggregates cover requests that actually emitted a token
        #   (token-less trackers carry the UNSET_S sentinel, and counting
        #   them as "missed" would let cancelled work poison attainment
        #   just as counting a negative TTFT inflated it before);
        # * ITL aggregates cover multi-token requests — a single-token
        #   request has no inter-token gap, so a single-token tenant is
        #   pinned to itl_p95_s == 0.0 and vacuous itl_attainment == 1.0
        #   (same convention as an undeclared SLO).
        first = [m for m in ms if m.has_first_token]
        multi = [m for m in ms if m.tokens > 1]
        ttft_target = itl_target = 0.0
        ttft_att = itl_att = 1.0
        if slo_policy is not None:
            target = slo_policy.target_for(tenant)
            ttft_target = target.ttft_target_s
            itl_target = target.itl_target_s
            if first:
                ttft_att = sum(
                    m.ttft_s <= ttft_target for m in first
                ) / len(first)
            if multi:
                itl_att = sum(
                    m.itl_mean_s <= itl_target for m in multi
                ) / len(multi)
        reports.append(
            TenantReport(
                tenant=tenant,
                priority=priority,
                completed=len(ms),
                tokens=sum(m.tokens for m in ms),
                ttft_p50_s=percentile([m.ttft_s for m in first], 50),
                ttft_p99_s=percentile([m.ttft_s for m in first], 99),
                itl_p95_s=percentile([m.itl_mean_s for m in multi], 95),
                ttft_target_s=ttft_target,
                itl_target_s=itl_target,
                ttft_attainment=ttft_att,
                itl_attainment=itl_att,
            )
        )
    return tuple(
        sorted(reports, key=lambda t: (-t.priority, t.tenant))
    )


@dataclass
class ServingReport:
    """Outcome of one simulated serving run."""

    policy: str
    pattern: str
    device: str
    n_requests: int
    completed: int
    makespan_s: float
    total_tokens: int
    total_steps: int
    preemptions: int
    kv_peak_occupancy: float
    #: Requests that can never be served on this engine (KV cache or token
    #: budget too small even when the device is empty).  They are marked
    #: up front and the simulation proceeds with the rest.
    rejected_ids: tuple[int, ...] = ()
    requests: list[RequestMetrics] = field(repr=False, default_factory=list)
    #: Peak physical KV pages vs what the same residency would cost with
    #: prefix sharing disabled; equal when no prefix was ever shared.
    kv_peak_used_pages: int = 0
    kv_peak_logical_pages: int = 0
    #: Copy-on-write forks of unaligned shared-prefix boundary pages.
    cow_forks: int = 0
    #: Per-tenant aggregates; empty for single-tenant (legacy) traces.
    tenants: tuple[TenantReport, ...] = ()
    #: Speculative decoding totals: drafts proposed and accepted over the
    #: whole run (both 0 when the engine ran without speculation).
    spec_proposed: int = 0
    spec_accepted: int = 0
    #: Chunked-prefill slices priced (0 when every prefill ran whole).
    prefill_chunks: int = 0
    #: Multi-LoRA residency outcome (0 when no request carried an adapter).
    lora_swaps: int = 0
    lora_peak_resident: int = 0
    #: Plan-cache statistics of the run (``PlanCache.stats()`` form), or
    #: ``None`` when the cache is disabled.  Excluded from equality: a
    #: cached and an uncached run of the same workload produce identical
    #: *serving* outcomes, which is exactly what the tests assert.
    plan_cache: dict | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ aggregates

    @property
    def rejected(self) -> int:
        return len(self.rejected_ids)

    @property
    def tokens_per_s(self) -> float:
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s else 0.0

    @property
    def ttfts(self) -> list[float]:
        """TTFT samples — requests that emitted at least one token."""
        return [r.ttft_s for r in self.requests if r.has_first_token]

    @property
    def itls(self) -> list[float]:
        return [r.itl_mean_s for r in self.requests if r.tokens > 1]

    def ttft_p(self, q: float) -> float:
        return percentile(self.ttfts, q)

    def itl_p(self, q: float) -> float:
        return percentile(self.itls, q)

    def itl_tail_p(self, q: float) -> float:
        """Percentile over per-request *p99* inter-token gaps.

        The chunked-prefill headline metric: a long fused prefill stalls
        every concurrent decoder for one giant gap, which a per-request
        *mean* dilutes but a per-request tail cannot.
        """
        return percentile(
            [r.itl_p99_s for r in self.requests if r.tokens > 1], q
        )

    @property
    def itl_max_s(self) -> float:
        """Worst single inter-token gap any request observed."""
        return max((r.itl_max_s for r in self.requests), default=0.0)

    @property
    def mean_latency_s(self) -> float:
        done = [r.latency_s for r in self.requests if r.is_finished]
        if not done:
            return 0.0
        return float(np.mean(done))

    # -------------------------------------------------------------- rendering

    def summary(self) -> str:
        from repro.core.units import format_time

        lines = [
            f"{self.policy} batching · {self.pattern} masks · {self.device}",
            f"  requests     : {self.completed}/{self.n_requests} completed"
            + (f" ({self.rejected} rejected)" if self.rejected else "")
            + f", {self.total_tokens} tokens in {self.total_steps} steps",
            f"  throughput   : {self.tokens_per_s:,.0f} tok/s, "
            f"goodput {self.goodput_rps:,.1f} req/s",
            f"  TTFT         : p50 {format_time(self.ttft_p(50))}, "
            f"p95 {format_time(self.ttft_p(95))}, "
            f"p99 {format_time(self.ttft_p(99))}",
            f"  ITL          : p50 {format_time(self.itl_p(50))}, "
            f"p95 {format_time(self.itl_p(95))}",
            f"  KV cache     : peak occupancy {self.kv_peak_occupancy:.1%}, "
            f"{self.preemptions} preemptions",
        ]
        # New fleet-era / workload lines are conditional so legacy runs
        # keep producing the historical (golden-tested) summary byte for
        # byte.
        if self.spec_proposed:
            acc = self.spec_accepted / self.spec_proposed
            lines.append(
                f"  speculative  : {self.spec_accepted}/{self.spec_proposed} "
                f"drafts accepted ({acc:.0%} measured)"
            )
        if self.prefill_chunks:
            lines.append(
                f"  chunked fill : {self.prefill_chunks} prefill chunks"
            )
        if self.lora_peak_resident:
            lines.append(
                f"  lora         : peak {self.lora_peak_resident} resident "
                f"adapters, {self.lora_swaps} swaps"
            )
        if self.kv_peak_logical_pages > self.kv_peak_used_pages or self.cow_forks:
            saved = 1.0 - self.kv_peak_used_pages / max(
                1, self.kv_peak_logical_pages
            )
            lines.append(
                f"  prefix share : peak {self.kv_peak_used_pages} pages vs "
                f"{self.kv_peak_logical_pages} unshared ({saved:.1%} saved), "
                f"{self.cow_forks} COW forks"
            )
        for t in self.tenants:
            line = (
                f"  tenant {t.tenant or '-':<7}: prio {t.priority}, "
                f"{t.completed} req, {t.tokens} tok, "
                f"TTFT p99 {format_time(t.ttft_p99_s)}"
            )
            if t.ttft_target_s > 0:
                line += (
                    f" (target {format_time(t.ttft_target_s)}, "
                    f"{t.ttft_attainment:.0%} met)"
                )
            lines.append(line)
        return "\n".join(lines)
