"""Serving metrics: per-request latency accounting and fleet aggregates.

Definitions (the ones every serving paper and dashboard uses):

* **TTFT** — time to first token: first-token emission minus arrival.
  Includes queueing delay, so it is the metric scheduling policy moves.
* **ITL** — inter-token latency: the gap between consecutive tokens of one
  request after the first (also called TPOT, time per output token).
* **tokens/s** — fleet decode throughput: total generated tokens divided
  by the makespan (first arrival to last completion).
* **goodput** — completed requests per second over the same span.

Percentiles use the nearest-rank convention over the exact simulated
values; everything here is a pure function of the engine's event log, so
reports are bit-identical across runs with the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import RequestTracker


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a sample (0 for an empty one).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    """
    if not values:
        return 0.0
    arr = np.sort(np.asarray(values, dtype=np.float64))
    rank = max(0, int(np.ceil(q / 100.0 * len(arr))) - 1)
    return float(arr[rank])


@dataclass(frozen=True)
class RequestMetrics:
    """Latency summary of one completed request."""

    req_id: int
    arrival_s: float
    prompt_len: int
    tokens: int
    ttft_s: float
    finish_s: float
    preemptions: int
    itl_mean_s: float

    @property
    def latency_s(self) -> float:
        """End-to-end: arrival to final token."""
        return self.finish_s - self.arrival_s

    @classmethod
    def from_tracker(cls, tr: RequestTracker) -> "RequestMetrics":
        gaps = np.diff(tr.token_times_s) if len(tr.token_times_s) > 1 else []
        return cls(
            req_id=tr.req_id,
            arrival_s=tr.request.arrival_s,
            prompt_len=tr.request.prompt_len,
            tokens=tr.generated,
            ttft_s=(tr.ttft_s or 0.0) - tr.request.arrival_s,
            finish_s=tr.finish_s or 0.0,
            preemptions=tr.preemptions,
            itl_mean_s=float(np.mean(gaps)) if len(gaps) else 0.0,
        )


@dataclass
class ServingReport:
    """Outcome of one simulated serving run."""

    policy: str
    pattern: str
    device: str
    n_requests: int
    completed: int
    makespan_s: float
    total_tokens: int
    total_steps: int
    preemptions: int
    kv_peak_occupancy: float
    #: Requests that can never be served on this engine (KV cache or token
    #: budget too small even when the device is empty).  They are marked
    #: up front and the simulation proceeds with the rest.
    rejected_ids: tuple[int, ...] = ()
    requests: list[RequestMetrics] = field(repr=False, default_factory=list)
    #: Plan-cache statistics of the run (``PlanCache.stats()`` form), or
    #: ``None`` when the cache is disabled.  Excluded from equality: a
    #: cached and an uncached run of the same workload produce identical
    #: *serving* outcomes, which is exactly what the tests assert.
    plan_cache: dict | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ aggregates

    @property
    def rejected(self) -> int:
        return len(self.rejected_ids)

    @property
    def tokens_per_s(self) -> float:
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s else 0.0

    @property
    def ttfts(self) -> list[float]:
        return [r.ttft_s for r in self.requests]

    @property
    def itls(self) -> list[float]:
        return [r.itl_mean_s for r in self.requests if r.tokens > 1]

    def ttft_p(self, q: float) -> float:
        return percentile(self.ttfts, q)

    def itl_p(self, q: float) -> float:
        return percentile(self.itls, q)

    @property
    def mean_latency_s(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.latency_s for r in self.requests]))

    # -------------------------------------------------------------- rendering

    def summary(self) -> str:
        from repro.core.units import format_time

        lines = [
            f"{self.policy} batching · {self.pattern} masks · {self.device}",
            f"  requests     : {self.completed}/{self.n_requests} completed"
            + (f" ({self.rejected} rejected)" if self.rejected else "")
            + f", {self.total_tokens} tokens in {self.total_steps} steps",
            f"  throughput   : {self.tokens_per_s:,.0f} tok/s, "
            f"goodput {self.goodput_rps:,.1f} req/s",
            f"  TTFT         : p50 {format_time(self.ttft_p(50))}, "
            f"p95 {format_time(self.ttft_p(95))}, "
            f"p99 {format_time(self.ttft_p(99))}",
            f"  ITL          : p50 {format_time(self.itl_p(50))}, "
            f"p95 {format_time(self.itl_p(95))}",
            f"  KV cache     : peak occupancy {self.kv_peak_occupancy:.1%}, "
            f"{self.preemptions} preemptions",
        ]
        return "\n".join(lines)
