"""Serving requests and the synthetic arrival-trace generator.

A serving workload is a list of :class:`Request` objects — each one an
(arrival time, prompt length, generation budget, mask pattern) tuple — and
the engine's job is to turn that list into tokens under a scheduling
policy.  :func:`synthetic_trace` draws such a list from seeded
distributions (Poisson arrivals, uniform prompt/generation lengths), so
every benchmark and test works from bit-identical workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.rng import RngStream
from repro.masks.patterns import PATTERN_REGISTRY, causal_mask, make_pattern


class RequestState(enum.Enum):
    """Lifecycle of a request inside the serving engine."""

    WAITING = "waiting"        # arrived, not yet admitted (or preempted)
    RUNNING = "running"        # holds KV-cache pages, produces tokens
    FINISHED = "finished"      # reached its generation budget
    REJECTED = "rejected"      # can never be served (cache/budget too small)


@dataclass(frozen=True)
class Request:
    """One inference request as submitted by a client.

    Multi-tenant fields default to the single-tenant trivial case:
    ``tenant``/``priority`` feed SLO-aware scheduling, and a non-empty
    ``prefix_id`` declares that the first ``prefix_len`` prompt tokens are
    a shared prefix (e.g. a tenant's system prompt) eligible for KV-page
    sharing in :class:`~repro.serving.kvcache.PagedKVCache`.
    """

    req_id: int
    arrival_s: float
    prompt_len: int
    max_new_tokens: int
    pattern: str = "causal"
    pattern_overrides: tuple[tuple[str, object], ...] = ()
    tenant: str = ""
    priority: int = 0
    prefix_id: str = ""
    prefix_len: int = 0
    #: LoRA adapter id ("" = the base model).  Requests carrying an
    #: adapter pay the gathered batched-GEMM surcharge and key their
    #: decode plan families per adapter (see repro.serving.lora).
    adapter: str = ""

    def __post_init__(self) -> None:
        if self.prompt_len < 1:
            raise ConfigError(f"prompt_len must be >= 1, got {self.prompt_len}")
        if self.max_new_tokens < 1:
            raise ConfigError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.arrival_s < 0:
            raise ConfigError(f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.pattern not in PATTERN_REGISTRY:
            raise ConfigError(
                f"unknown mask pattern {self.pattern!r}; "
                f"known: {sorted(PATTERN_REGISTRY)}"
            )
        if (self.prefix_len > 0) != bool(self.prefix_id):
            raise ConfigError(
                "prefix_id and prefix_len must be set together "
                f"(got {self.prefix_id!r}, {self.prefix_len})"
            )
        if not 0 <= self.prefix_len <= self.prompt_len:
            raise ConfigError(
                f"prefix_len must be in [0, prompt_len={self.prompt_len}], "
                f"got {self.prefix_len}"
            )

    @property
    def max_context(self) -> int:
        """Longest KV context this request can ever hold."""
        return self.prompt_len + self.max_new_tokens


@dataclass(eq=False)
class RequestTracker:
    """Mutable per-request runtime state owned by the engine.

    Identity-compared (``eq=False``): the engine keeps trackers in queues
    and membership must mean *this* tracker, not field equality.
    """

    request: Request
    state: RequestState = RequestState.WAITING
    generated: int = 0
    ttft_s: float | None = None
    finish_s: float | None = None
    token_times_s: list[float] = field(default_factory=list, repr=False)
    preemptions: int = 0
    _full_mask: np.ndarray | None = field(default=None, repr=False)
    _mask_fp: str | None = field(default=None, repr=False)
    # Interned decode-chunk plan-family keys by bucket index (hot path:
    # one lookup per running request per engine step).
    _plan_keys: dict = field(default_factory=dict, repr=False)
    # Interned family base (the decode PlanKey with the position dim left
    # symbolic); resolved once per request by the engine.
    _plan_base: object = field(default=None, repr=False)
    # Chunked-prefill progress: positions whose KV is already computed
    # this residency, or None when no chunked prefill is in flight
    # (whole-prefill mode, or the chunks completed).  Reset on preemption
    # — recompute-style preemption restarts the prefill.
    prefilled: int | None = field(default=None, repr=False)
    # Per-request acceptance stream of speculative decoding; forked from
    # the run's mask rng on first use (by req_id, never by step), so
    # batch composition cannot perturb another request's acceptances.
    _spec_rng: RngStream | None = field(default=None, repr=False)

    @property
    def req_id(self) -> int:
        return self.request.req_id

    @property
    def prefill_pending(self) -> bool:
        """True while a chunked prefill is still streaming this context
        in; the request joins decode only once it turns False."""
        return self.prefilled is not None

    def spec_rng(self, rng: RngStream) -> RngStream:
        """The request's acceptance stream (created once, then stateful)."""
        if self._spec_rng is None:
            self._spec_rng = rng.fork(f"spec-{self.req_id}")
        return self._spec_rng

    @property
    def context_len(self) -> int:
        """Tokens currently in (or due to re-enter) the KV cache."""
        return self.request.prompt_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.max_new_tokens

    def full_mask(self, rng: RngStream) -> np.ndarray:
        """The request's (causal ∧ pattern) mask at ``max_context`` (cached).

        Seeded by the request id, never by admission order, so preemption
        and re-admission replay the identical mask.
        """
        if self._full_mask is None:
            size = self.request.max_context
            pattern = make_pattern(
                self.request.pattern,
                size,
                rng=rng.fork(f"req-{self.req_id}-{self.request.pattern}"),
                **dict(self.request.pattern_overrides),
            )
            self._full_mask = pattern & causal_mask(size)
        return self._full_mask

    def mask_fingerprint(self, rng: RngStream) -> str:
        """Content hash of the full mask (cached alongside it).

        This is the request's identity in the plan cache: every decode-row
        statistic and plan derived from this mask is keyed under it.
        """
        if self._mask_fp is None:
            from repro.plan.key import mask_fingerprint

            self._mask_fp = mask_fingerprint(self.full_mask(rng))
        return self._mask_fp

    def pinned_pattern_params(self) -> dict | None:
        """Size-independent pattern parameters, or ``None``.

        Non-``None`` means this request's mask entries are a pure
        function of (pattern, params, position) — independent of
        ``max_context`` — so its decode row statistics can live in a plan
        family shared across requests of *any* length
        (see :meth:`repro.masks.patterns.MaskPattern.pinned_params`).
        """
        pattern = PATTERN_REGISTRY[self.request.pattern]
        return pattern.pinned_params(dict(self.request.pattern_overrides))

    def decode_row(self, rng: RngStream) -> np.ndarray:
        """Mask row of the next token: position ``context_len`` attends
        the first ``context_len + 1`` cached positions."""
        t = self.context_len
        return self.full_mask(rng)[t, : t + 1]

    def prefill_mask(self, rng: RngStream) -> np.ndarray:
        """Square mask of the (re)compute pass over the current context."""
        t = self.context_len
        return self.full_mask(rng)[:t, :t]


def synthetic_trace(
    n_requests: int,
    arrival_rate_rps: float = 0.0,
    rng: RngStream | None = None,
    prompt_range: tuple[int, int] = (32, 160),
    max_new_range: tuple[int, int] = (16, 64),
    pattern: str = "causal",
    pattern_overrides: dict | None = None,
    arrivals: "object | None" = None,
) -> list[Request]:
    """Draw a seeded request trace — the trivial single-tenant case of
    :class:`~repro.serving.workload.WorkloadSpec`.

    By default inter-arrival gaps are exponential with mean
    ``1 / arrival_rate_rps``; pass ``arrivals=`` (any
    :class:`~repro.serving.workload.ArrivalProcess`, e.g.
    ``DiurnalArrivals``) to replace the baked-in Poisson process.  Prompt
    lengths and generation budgets are uniform over the given inclusive
    ranges.  The same ``rng`` always produces the same trace, bit for bit
    — including traces generated before the workload layer existed.

    >>> t = synthetic_trace(3, 100.0, rng=RngStream(7))
    >>> [r.req_id for r in t]
    [0, 1, 2]
    >>> t == synthetic_trace(3, 100.0, rng=RngStream(7))
    True
    """
    from repro.serving.workload import (
        ArrivalProcess,
        PoissonArrivals,
        TenantSpec,
        WorkloadSpec,
    )

    if arrivals is None:
        if arrival_rate_rps <= 0:
            raise ConfigError(
                f"arrival_rate_rps must be > 0, got {arrival_rate_rps}"
            )
        arrivals = PoissonArrivals(arrival_rate_rps)
    elif not isinstance(arrivals, ArrivalProcess):
        raise ConfigError(
            f"arrivals must be an ArrivalProcess, got {type(arrivals).__name__}"
        )
    spec = WorkloadSpec(
        n_requests=n_requests,
        arrivals=arrivals,
        tenants=(
            TenantSpec(
                name="",
                prompt_range=prompt_range,
                max_new_range=max_new_range,
                pattern=pattern,
                pattern_overrides=tuple(sorted((pattern_overrides or {}).items())),
            ),
        ),
    )
    return spec.generate(rng or RngStream())
