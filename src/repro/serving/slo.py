"""SLO-aware admission: per-tenant latency targets drive scheduling.

A production scheduler is judged by *SLO attainment* — the fraction of
requests meeting their tenant's TTFT/ITL targets — not raw throughput.
This module adds that regime on top of continuous batching:

* :class:`TenantSLO` / :class:`SLOPolicy` — declarative per-tenant
  targets (time-to-first-token and inter-token latency) with a
  ``deadline_headroom`` knob saying how much of the TTFT budget may be
  consumed by queueing before the scheduler intervenes.

* :class:`SLOScheduler` — a :class:`ContinuousBatchScheduler` that (a)
  admits in *priority-then-deadline* order instead of FCFS: waiting
  requests sort by descending tenant priority, then ascending slack
  (time left until the TTFT deadline); and (b) implements
  *preempt-to-meet-deadline* via the :meth:`Scheduler.deadline_victims`
  hook — when the most urgent waiter has burnt through its headroom and
  lower-priority work holds the pages it needs, those victims are
  recompute-preempted (the engine's existing mechanism) to let it in.
  Victims are chosen lowest-priority-first, latest-arrival-first, and
  only when the eviction actually reclaims enough pages to admit the
  waiter — otherwise nothing is evicted (no thrashing under hopeless
  pressure).

Attainment shows up per tenant in
:class:`~repro.serving.metrics.TenantReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.serving.kvcache import PagedKVCache
from repro.serving.request import RequestTracker
from repro.serving.scheduler import SCHEDULERS, ContinuousBatchScheduler


@dataclass(frozen=True)
class TenantSLO:
    """Latency targets for one tenant class."""

    tenant: str
    ttft_target_s: float = 0.25
    itl_target_s: float = 0.05

    def __post_init__(self) -> None:
        if self.ttft_target_s <= 0 or self.itl_target_s <= 0:
            raise ConfigError(
                f"SLO targets must be > 0, got ttft={self.ttft_target_s}, "
                f"itl={self.itl_target_s}"
            )


@dataclass(frozen=True)
class SLOPolicy:
    """Per-tenant targets plus the scheduler's intervention threshold.

    ``deadline_headroom`` is the fraction of a waiter's TTFT budget that
    may elapse in the queue before the scheduler starts evicting
    lower-priority work on its behalf (0.8 → intervene once 80% of the
    budget is gone).  Tenants without an explicit target fall back to
    the defaults.
    """

    targets: tuple[TenantSLO, ...] = ()
    default_ttft_s: float = 0.25
    default_itl_s: float = 0.05
    deadline_headroom: float = 0.8

    def __post_init__(self) -> None:
        if self.default_ttft_s <= 0 or self.default_itl_s <= 0:
            raise ConfigError("default SLO targets must be > 0")
        if not 0.0 < self.deadline_headroom <= 1.0:
            raise ConfigError(
                f"deadline_headroom must be in (0, 1], got "
                f"{self.deadline_headroom}"
            )
        names = [t.tenant for t in self.targets]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO tenants: {names}")

    def target_for(self, tenant: str) -> TenantSLO:
        for t in self.targets:
            if t.tenant == tenant:
                return t
        return TenantSLO(tenant, self.default_ttft_s, self.default_itl_s)


class SLOScheduler(ContinuousBatchScheduler):
    """Priority + deadline-slack admission with preempt-to-meet-deadline."""

    name = "slo"

    def __init__(
        self,
        max_batch_size: int = 16,
        max_batch_tokens: int = 65536,
        policy: SLOPolicy | None = None,
    ):
        super().__init__(max_batch_size, max_batch_tokens)
        self.slo_policy = policy or SLOPolicy()
        self._now_s = 0.0

    def begin_step(self, now_s: float) -> None:
        self._now_s = now_s

    def _slack_s(self, tr: RequestTracker) -> float:
        """Seconds left until ``tr`` misses its TTFT target."""
        target = self.slo_policy.target_for(tr.request.tenant)
        return tr.request.arrival_s + target.ttft_target_s - self._now_s

    def _urgency(self, tr: RequestTracker) -> tuple:
        return (
            -tr.request.priority,
            self._slack_s(tr),
            tr.request.arrival_s,
            tr.req_id,
        )

    def admit(self, waiting, running, cache):
        # Highest priority first, then least slack: the head-of-line
        # blocking FCFS imposes is exactly what SLO admission removes.
        waiting.sort(key=self._urgency)
        return super().admit(waiting, running, cache)

    def deadline_victims(
        self,
        waiting: list[RequestTracker],
        running: list[RequestTracker],
        cache: PagedKVCache,
    ) -> list[RequestTracker]:
        if not waiting or not running:
            return []
        head = min(waiting, key=self._urgency)
        target = self.slo_policy.target_for(head.request.tenant)
        burn = self.slo_policy.deadline_headroom * target.ttft_target_s
        if self._now_s - head.request.arrival_s < burn:
            return []      # still inside the queueing budget
        # A page of decode headroom on top of the waiter's context, the
        # same margin ContinuousBatchScheduler.admit keeps.
        need = cache.config.pages_for(head.context_len + 1) + 1
        if cache.free_pages >= need and len(running) < self.max_batch_size:
            return []      # already admissible; plain admission handles it
        evictable = sorted(
            (
                tr
                for tr in running
                if tr.request.priority < head.request.priority and not tr.done
            ),
            key=lambda tr: (
                tr.request.priority,
                -tr.request.arrival_s,
                -tr.req_id,
            ),
        )
        victims: list[RequestTracker] = []
        freed = cache.free_pages
        slots = self.max_batch_size - len(running)
        for tr in evictable:
            if freed >= need and slots >= 1:
                break
            victims.append(tr)
            freed += cache.reclaimable_pages_of(tr.req_id)
            slots += 1
        if freed < need or slots < 1:
            return []      # eviction would not admit the waiter: don't thrash
        return victims


SCHEDULERS[SLOScheduler.name] = SLOScheduler
