"""Span-based structured tracing.

The tracer records a tree of **spans** — named intervals with a category,
wall-clock timing, free-form arguments, and (optionally) *model-time*
attribution: the simulated device seconds the interval accounts for.  Two
kinds of spans exist:

* **live spans** — opened as context managers around real host work
  (``with tracer.span("plan.attention", cat="planner"):``); wall-clock
  start/duration come from :func:`time.perf_counter`, nesting from the
  per-thread span stack.
* **manual spans** — added with explicit timestamps
  (:meth:`Tracer.add_span`) for events that live on a *simulated*
  timeline, like serving-engine request lifecycles whose clock is the
  discrete-event simulation clock, not the host's.

Thread safety: each thread nests through its own stack; finished roots
and manual spans are appended under a lock.  Disabled tracers are
zero-cost on the hot path: :meth:`Tracer.span` returns one shared no-op
span object — no allocation, no recording — which the tests pin.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator


class Span:
    """One named interval: timing, arguments, children, model time.

    ``t0``/``dur`` are seconds.  For live spans they are wall-clock times
    relative to the owning tracer's epoch; for manual spans (``sim=True``)
    they are whatever clock the caller recorded — by convention the
    simulated-model clock.  ``model_s`` attributes simulated device
    seconds to the span regardless of which clock times it.
    """

    __slots__ = (
        "name", "cat", "t0", "dur", "tid", "args", "children", "events",
        "sim", "model_s", "_tracer",
    )

    def __init__(
        self,
        name: str,
        cat: str = "host",
        t0: float = 0.0,
        dur: float = 0.0,
        tid: int = 0,
        args: dict[str, Any] | None = None,
        sim: bool = False,
    ) -> None:
        self.name = name
        self.cat = cat
        self.t0 = t0
        self.dur = dur
        self.tid = tid
        self.args: dict[str, Any] = args if args is not None else {}
        self.children: list[Span] = []
        self.events: list[tuple[str, float, dict[str, Any]]] = []
        self.sim = sim
        self.model_s: float | None = None
        self._tracer: "Tracer | None" = None

    # ------------------------------------------------------------- recording

    def add(self, **kv: Any) -> "Span":
        """Attach arguments to the span (merged into ``args``)."""
        self.args.update(kv)
        return self

    def add_model_time(self, seconds: float) -> "Span":
        """Accumulate simulated device seconds attributed to this span."""
        self.model_s = (self.model_s or 0.0) + float(seconds)
        return self

    def event(self, name: str, ts: float, **kv: Any) -> "Span":
        """Record an instantaneous event inside the span (same clock)."""
        self.events.append((name, float(ts), kv))
        return self

    # ---------------------------------------------------------- live nesting

    def __enter__(self) -> "Span":
        tracer = self._tracer
        assert tracer is not None, "span not created by a tracer"
        self.t0 = time.perf_counter() - tracer._epoch
        tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        assert tracer is not None
        self.dur = (time.perf_counter() - tracer._epoch) - self.t0
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tracer._pop(self)

    # ------------------------------------------------------------- traversal

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Depth-first (span, depth) over this span and its subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.cat!r}, t0={self.t0:.6f}, "
            f"dur={self.dur:.6f}, children={len(self.children)})"
        )


class _NullSpan:
    """The shared no-op span a disabled tracer hands out.

    Supports the full recording surface (context manager, ``add``,
    ``add_model_time``, ``event``) without allocating or storing anything.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def add(self, **kv: Any) -> "_NullSpan":
        return self

    def add_model_time(self, seconds: float) -> "_NullSpan":
        return self

    def event(self, name: str, ts: float, **kv: Any) -> "_NullSpan":
        return self


#: The singleton no-op span (identity-tested by the overhead tests).
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans; thread-safe; no-op when disabled.

    >>> tracer = Tracer()
    >>> with tracer.span("outer", cat="demo") as outer:
    ...     with tracer.span("inner") as inner:
    ...         _ = inner.add(detail=1)
    >>> [s.name for s, _ in tracer.walk()]
    ['outer', 'inner']
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: list[Span] = []
        #: Optional thread/lane labels for the Chrome export
        #: (``{tid: name}``); lanes without a label show their number.
        self.lane_names: dict[int, str] = {}

    # --------------------------------------------------------------- spans

    def span(self, name: str, cat: str = "host", **args: Any):
        """A live span; use as a context manager.

        Disabled tracers return the shared :data:`NULL_SPAN` — nothing is
        allocated or recorded.
        """
        if not self.enabled:
            return NULL_SPAN
        span = Span(name, cat=cat, args=args)
        span.tid = threading.get_ident() & 0xFFFF
        span._tracer = self
        return span

    def add_span(
        self,
        name: str,
        cat: str = "sim",
        t0: float = 0.0,
        dur: float = 0.0,
        tid: int = 0,
        parent: Span | None = None,
        **args: Any,
    ) -> Span | None:
        """Record a manual span with explicit (simulated-clock) timing.

        Attaches under ``parent`` when given, otherwise as a root — never
        under the live span stack, because simulated clocks and the wall
        clock are unrelated timelines.  Returns the span, or ``None`` when
        the tracer is disabled.
        """
        if not self.enabled:
            return None
        span = Span(name, cat=cat, t0=t0, dur=dur, tid=tid, args=args, sim=True)
        span._tracer = self
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        return span

    # ------------------------------------------------------------- internals

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        assert stack and stack[-1] is span, "span stack corrupted"
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # ------------------------------------------------------------- traversal

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) over every recorded root."""
        for root in list(self.roots):
            yield from root.walk()

    def find(self, name: str | None = None, cat: str | None = None) -> list[Span]:
        """All spans matching a name and/or category."""
        return [
            s
            for s, _ in self.walk()
            if (name is None or s.name == name)
            and (cat is None or s.cat == cat)
        ]

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())


#: Process-wide disabled tracer: the default "off" state of the library.
NULL_TRACER = Tracer(enabled=False)

_active_tracer: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The tracer instrumentation sites record into (disabled by default)."""
    return _active_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (or the disabled default for ``None``).

    Returns the previously active tracer so callers can restore it;
    prefer :func:`use_tracer` which does that automatically.
    """
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None):
    """Activate a tracer for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
