"""Unified observability layer: spans, metrics, exporters.

Every hot subsystem of the reproduction — the MHA kernels, the
planner/plan-cache, the two-stage tuner, and the serving engine — records
into this layer when it is enabled, and costs (almost) nothing when it is
not.  The three pieces:

* :mod:`repro.obs.tracer`  — nested spans with wall-clock *and*
  simulated-model-time attribution; thread-safe; zero-cost disabled.
* :mod:`repro.obs.metrics` — counters, gauges, histograms with labels.
* :mod:`repro.obs.export`  — Chrome ``trace_event`` JSON (what
  ``repro profile`` writes and ``chrome://tracing`` / Perfetto load),
  Prometheus text, and CSV.

Instrumentation sites read the *active* tracer/registry through
:func:`current_tracer` / :func:`current_metrics`; both default to shared
disabled instances.  Activate real ones around any workload::

    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer
    from repro.obs.export import write_chrome_trace

    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        compiled = compile_model("bert-small", 1, 128)
    write_chrome_trace(tracer, "profile.json")

or pass ``trace=tracer`` straight to :func:`repro.compile_model` /
``ServingEngine.run`` — or use the ``repro profile`` CLI, which wires all
of this for you.
"""

from repro.obs.export import (
    chrome_trace_payload,
    metrics_csv,
    prometheus_text,
    span_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "chrome_trace_payload",
    "current_metrics",
    "current_tracer",
    "metrics_csv",
    "prometheus_text",
    "set_metrics",
    "set_tracer",
    "span_events",
    "use_metrics",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]
