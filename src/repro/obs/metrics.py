"""Metrics registry: counters, gauges, and histograms with labels.

Instruments follow the Prometheus data model: a metric *name* plus a set
of key=value *labels* identifies one time series.  The registry memoizes
instruments per (name, labels), so hot paths can re-request the same
counter cheaply; a disabled registry hands out one shared no-op
instrument and records nothing.

Everything is process-local and deterministic — there is no background
collection thread; exporters (:mod:`repro.obs.export`) snapshot the
registry on demand.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavored, but unitless).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (float increments allowed)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down; tracks the observed peak."""

    __slots__ = ("_lock", "value", "peak")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            if value > self.peak:
                self.peak = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            if self.value > self.peak:
                self.peak = self.value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)   # +inf overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # Prometheus buckets are inclusive upper bounds (le): the first
        # bound >= value owns the observation.
        i = bisect_left(self.bounds, float(value))
        with self._lock:
            self.counts[i] += 1
            self.sum += float(value)
            self.count += 1

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the q-quantile (q in [0, 1])."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


class _NullInstrument:
    """Shared no-op stand-in for every instrument type when disabled."""

    __slots__ = ()
    value = 0.0
    peak = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Instrument factory + store; disabled registries record nothing.

    >>> reg = MetricsRegistry()
    >>> reg.counter("requests", policy="continuous").inc()
    >>> reg.counter("requests", policy="continuous").value
    1.0
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelKey], Any] = {}
        self._types: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: dict[str, Any], factory):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, _label_key(labels))
        inst = self._metrics.get(key)
        if inst is not None and self._types.get(name) == kind:
            return inst
        with self._lock:
            seen = self._types.setdefault(name, kind)
            if seen != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {seen}, "
                    f"requested {kind}"
                )
            inst = self._metrics.get(key)
            if inst is None:
                inst = self._metrics[key] = factory()
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get("histogram", name, labels, lambda: Histogram(bounds))

    # -------------------------------------------------------------- snapshot

    def collect(self) -> Iterator[tuple[str, LabelKey, str, Any]]:
        """Yield (name, labels, type, instrument), sorted for stable output."""
        with self._lock:
            items = sorted(self._metrics.items())
        for (name, labels), inst in items:
            yield name, labels, self._types[name], inst

    def as_dict(self) -> dict[str, Any]:
        """Nested plain-data snapshot (for JSON/debugging)."""
        out: dict[str, Any] = {}
        for name, labels, kind, inst in self.collect():
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            series = out.setdefault(name, {"type": kind, "series": {}})
            if kind == "counter":
                series["series"][label_str] = inst.value
            elif kind == "gauge":
                series["series"][label_str] = {
                    "value": inst.value, "peak": inst.peak,
                }
            else:
                series["series"][label_str] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "buckets": dict(zip(inst.bounds, inst.counts)),
                }
        return out

    def __len__(self) -> int:
        return len(self._metrics)


#: Process-wide disabled registry: the default "off" state of the library.
NULL_METRICS = MetricsRegistry(enabled=False)

_active_metrics: MetricsRegistry = NULL_METRICS


def current_metrics() -> MetricsRegistry:
    """The registry instrumentation sites write to (disabled by default)."""
    return _active_metrics


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (or the disabled default); returns the old one."""
    global _active_metrics
    previous = _active_metrics
    _active_metrics = registry if registry is not None else NULL_METRICS
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | None):
    """Activate a registry for the duration of a ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
