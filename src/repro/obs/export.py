"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, CSV.

The Chrome exporter serializes a :class:`~repro.obs.tracer.Tracer`'s span
forest into the Trace Event Format that ``chrome://tracing`` / Perfetto
load: live (wall-clock) spans on process 1, manual simulated-timeline
spans on process 2, span events as instant ("i") slices, model-time
attribution in the event args.  :func:`span_events` is the low-level
serializer — :mod:`repro.gpu.trace` reuses it to keep its historical
plan-trace output byte-for-byte stable.

:func:`validate_chrome_trace` is the schema check CI runs against the
``repro profile`` output; it returns a list of problems (empty = valid)
instead of raising, so callers choose their own severity.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

#: Process ids of the two Chrome-trace timelines.
PID_WALL = 1
PID_SIM = 2

_PROCESS_NAMES = {
    PID_WALL: "host (wall clock)",
    PID_SIM: "simulated timeline",
}


def _x_event(
    name: str, cat: str, ts: float, dur: float, pid: int, tid: int,
    args: dict[str, Any],
) -> dict[str, Any]:
    return {
        "name": name,
        "cat": cat,
        "ph": "X",            # complete event
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def span_events(
    spans: Iterable[Span],
    *,
    pid: int = PID_WALL,
    scale: float = 1e6,
    min_dur: float = 0.01,
) -> list[dict[str, Any]]:
    """Serialize spans (recursively) to Trace Event dicts.

    ``scale`` converts span time units to microseconds (1e6 when spans
    hold seconds; 1.0 when the caller already recorded microseconds, as
    the plan trace does).  ``min_dur`` keeps zero-duration slices visible.
    """
    events: list[dict[str, Any]] = []
    for top in spans:
        for span, _depth in top.walk():
            args = dict(span.args)
            if span.model_s is not None:
                args["model_us"] = round(span.model_s * 1e6, 3)
            events.append(
                _x_event(
                    span.name, span.cat, span.t0 * scale,
                    max(span.dur * scale, min_dur), pid, span.tid, args,
                )
            )
            for ename, ts, eargs in span.events:
                events.append(
                    {
                        "name": ename,
                        "cat": span.cat,
                        "ph": "i",
                        "ts": ts * scale,
                        "pid": pid,
                        "tid": span.tid,
                        "s": "t",          # thread-scoped instant
                        "args": dict(eargs),
                    }
                )
    return events


def chrome_trace_payload(
    tracer: Tracer, metadata: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The full Chrome-trace JSON payload for one tracer.

    Wall-clock spans land on process 1, simulated-timeline spans on
    process 2 (their clocks are unrelated, so Chrome must not overlay
    them).  ``metadata`` is attached as ``otherData``.
    """
    wall = [s for s in tracer.roots if not s.sim]
    sim = [s for s in tracer.roots if s.sim]
    events: list[dict[str, Any]] = []
    for pid, group in ((PID_WALL, wall), (PID_SIM, sim)):
        if not group:
            continue
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": _PROCESS_NAMES[pid]}}
        )
        for tid in sorted({s.tid for g in group for s, _ in g.walk()}):
            label = tracer.lane_names.get(tid, f"lane {tid}")
            events.append(
                {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"name": label}}
            )
    events += span_events(wall, pid=PID_WALL, scale=1e6, min_dur=0.001)
    events += span_events(sim, pid=PID_SIM, scale=1e6, min_dur=0.001)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    tracer: Tracer, path: str | Path, metadata: dict[str, Any] | None = None
) -> Path:
    """Write the tracer's Chrome-trace JSON; returns the written path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace_payload(tracer, metadata)))
    return path


# ---------------------------------------------------------------- validation

#: Required keys per event phase (the subset of the Trace Event Format the
#: exporters emit; the CI schema check enforces exactly this contract).
_REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
    "M": ("name", "pid"),
}


def validate_chrome_trace(payload: dict[str, Any]) -> list[str]:
    """Schema-check a Chrome-trace payload; returns problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        required = _REQUIRED_BY_PHASE.get(ph)
        if required is None:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for key in required:
            if key not in ev:
                problems.append(f"event {i} ({ph}): missing key {key!r}")
        for key in ("ts", "dur"):
            if key in ev and not isinstance(ev[key], (int, float)):
                problems.append(f"event {i}: {key} is not numeric")
        if ph == "X" and isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
            problems.append(f"event {i}: negative duration")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"event {i}: args is not an object")
    return problems


# ------------------------------------------------------------------- metrics

def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition-format snapshot of a registry."""
    lines: list[str] = []
    last_name = None
    for name, labels, kind, inst in registry.collect():
        pname = name.replace(".", "_").replace("-", "_")
        if pname != last_name:
            lines.append(f"# TYPE {pname} {kind}")
            last_name = pname
        label_str = ",".join(f'{k}="{v}"' for k, v in labels)
        blob = f"{{{label_str}}}" if label_str else ""
        if kind == "counter":
            lines.append(f"{pname}{blob} {_num(inst.value)}")
        elif kind == "gauge":
            lines.append(f"{pname}{blob} {_num(inst.value)}")
        else:  # histogram
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.counts):
                cumulative += count
                le = _lblmerge(label_str, f'le="{_num(bound)}"')
                lines.append(f"{pname}_bucket{{{le}}} {cumulative}")
            cumulative += inst.counts[-1]
            le = _lblmerge(label_str, 'le="+Inf"')
            lines.append(f"{pname}_bucket{{{le}}} {cumulative}")
            lines.append(f"{pname}_sum{blob} {_num(inst.sum)}")
            lines.append(f"{pname}_count{blob} {inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_csv(registry: MetricsRegistry) -> str:
    """CSV snapshot: name,labels,type,field,value rows."""
    rows = ["name,labels,type,field,value"]
    for name, labels, kind, inst in registry.collect():
        label_str = ";".join(f"{k}={v}" for k, v in labels)
        if kind == "counter":
            rows.append(f"{name},{label_str},counter,value,{_num(inst.value)}")
        elif kind == "gauge":
            rows.append(f"{name},{label_str},gauge,value,{_num(inst.value)}")
            rows.append(f"{name},{label_str},gauge,peak,{_num(inst.peak)}")
        else:
            rows.append(f"{name},{label_str},histogram,count,{inst.count}")
            rows.append(f"{name},{label_str},histogram,sum,{_num(inst.sum)}")
    return "\n".join(rows) + "\n"


def _num(x: float) -> str:
    """Render numbers without a trailing ``.0`` for integral values."""
    f = float(x)
    return str(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def _lblmerge(label_str: str, extra: str) -> str:
    return f"{label_str},{extra}" if label_str else extra
