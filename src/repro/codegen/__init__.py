"""Plan-to-code generation: specialized Python/NumPy kernels per compiled plan.

The codegen tier sits above the execution backends (``exec_backend`` on the
MHA kernels): instead of walking the generic bucketing/gather machinery of
the vectorized backend on every call, it *emits Python source specialized to
one mask* — block layout, bucket membership, strides, and chunk sizes baked
in as literals, dead branches (bias adds, masked-row guards, chunk loops)
eliminated when the mask proves them unreachable — then ``exec``/imports the
module and caches it keyed by the plan's :class:`repro.plan.PlanKey` hash.

Layout (modelled on torchinductor's template codegen):

* :mod:`repro.codegen.emit` — ``IndentedBuffer`` source emission.
* :mod:`repro.codegen.templates` — the template registry; each template has
  a ``version`` that participates in the plan key, so upgrading a template
  invalidates stale cached modules instead of silently executing old code.
* :mod:`repro.codegen.blockwise` / :mod:`repro.codegen.rowwise` — the
  specializers mirroring the vectorized backends' math operation for
  operation (differentially tested to the FP16 noise floor).
* :mod:`repro.codegen.cache` — content-addressed generated-code cache:
  in-process (zero rebind cost) and optionally on disk (warm starts skip
  emission entirely; corrupted entries are detected by hash and re-emitted).
* :mod:`repro.codegen.backend` — the glue the kernels dispatch to, with
  ``codegen.emit`` / ``codegen.cache`` tracer spans and metrics.

With ``STOF_CODEGEN_SYMBOLIC=1`` (or :func:`use_symbolic_codegen`) the
cache key frees ``n_bh`` into a guarded family: modules whose emitted
text does not depend on the freed dimension are shared across every
``n_bh`` the recorded guards admit (see ``docs/symbolic_shapes.md``).

See ``docs/codegen.md``.
"""

from repro.codegen.backend import (
    codegen_plan_key,
    generated_family_kernel,
    generated_kernel,
    run_blockwise,
    run_rowwise,
    symbolic_codegen_enabled,
    use_symbolic_codegen,
)
from repro.codegen.cache import (
    GeneratedCodeCache,
    codegen_cache,
    set_codegen_cache,
    use_codegen_cache,
)
from repro.codegen.emit import IndentedBuffer
from repro.codegen.templates import (
    Template,
    get_template,
    register_template,
    template_names,
)

__all__ = [
    "GeneratedCodeCache",
    "IndentedBuffer",
    "Template",
    "codegen_cache",
    "codegen_plan_key",
    "generated_family_kernel",
    "generated_kernel",
    "get_template",
    "register_template",
    "run_blockwise",
    "run_rowwise",
    "set_codegen_cache",
    "symbolic_codegen_enabled",
    "template_names",
    "use_codegen_cache",
    "use_symbolic_codegen",
]
