"""Blockwise plan-to-code specializer.

Emits one straight-line Python/NumPy module per (mask, geometry, block
parameters): the vectorized backend's per-``concat_groups`` traversal is
unrolled at emission time, with bucket membership, tile columns, strides,
and chunk sizes baked in as literals.  Dead branches are eliminated by
*proof from the mask*:

* groups whose bias slab is absent (or all zero) skip the ``s += bias`` add,
* the fully-masked-row guards (``isfinite`` max fixup, ``where=`` divide)
  are emitted only for groups the slab proves contain an all ``-inf`` row,
* banded/uniform groups lower to a single strided einsum — zero-copy
  ``as_strided`` K/V views feeding one batched matmul, no gather, no
  batch-chunking loop,
* the chunk loop of gathered groups collapses to straight-line code when
  one chunk covers the whole ``batch*heads`` axis.

The emitted arithmetic mirrors ``BlockWiseKernel._run_vectorized``
operation for operation, so outputs agree with both existing backends at
the FP16 noise floor (differentially tested, no tolerance widening).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.codegen.emit import IndentedBuffer
from repro.codegen.templates import GeneratedSource, module_header, register_template
from repro.masks.bsr import BlockSparseMask
from repro.mha.kernel import GATHER_CHUNK_ELEMS

if TYPE_CHECKING:  # annotation-only: the plan layer never runs at emit time
    from repro.plan.symbolic import GuardRecorder

#: Bump when the emitted code changes shape: stale cached modules (disk and
#: in-memory) are invalidated through the plan key, never silently reused.
BLOCKWISE_TEMPLATE_VERSION = 1

#: Dense lowering: when the mask is near-dense at block granularity, the
#: group-wise traversal degenerates into many small batched GEMMs plus tile
#: gathers, while one dense masked softmax-matmul runs a single large GEMM
#: at far better BLAS efficiency.  Lower to dense when the total block count
#: is within this factor of the (padded) valid block count — i.e. the dense
#: FLOP overhead stays below the measured small-GEMM/gather penalty — and
#: the per-batch-row score tile still fits in cache.
DENSE_LOWER_FACTOR = 2.5
DENSE_LOWER_MAX_ELEMS = 1 << 18

#: Fully banded masks already lower to zero-gather strided einsums, so the
#: dense rewrite only pays off when it adds almost no redundant FLOPs.
#: Measured crossover on the wallclock grid: the banded sparse lowering
#: beats dense by ~25% at 1.6x block overhead, while at 1.0-1.25x the two
#: are within noise and dense saves the strided-view setup.
BANDED_DENSE_FACTOR = 1.25


def _banded_layout(cols: np.ndarray) -> tuple[int, int] | None:
    """(start, step) when a group's tile columns admit a strided view.

    Mirrors ``repro.mha.blockwise._banded_view`` legality: per-row tile
    columns consecutive, first column advancing by one uniform non-negative
    step — the banded/uniform-pattern case.
    """
    n_g, cap = cols.shape
    if cap > 1 and not (np.diff(cols, axis=1) == 1).all():
        return None
    step = 0
    if n_g > 1:
        steps = np.diff(cols[:, 0])
        if not (steps == steps[0]).all() or steps[0] < 0:
            return None
        step = int(steps[0])
    return int(cols[0, 0]), step


#: Smallest tile edge the retile scan will consider.  Below 16 the
#: per-tile GEMMs are too skinny for BLAS and group bookkeeping dominates.
MIN_RETILE_BLOCK = 16


def _all_banded(bsr: BlockSparseMask) -> bool:
    return all(
        _banded_layout(bsr.load_col_idx[idx].astype(np.int64)) is not None
        for _, idx, _ in bsr.concat_groups()
    )


def _padded_elems(bsr: BlockSparseMask) -> int:
    groups = bsr.concat_groups()
    tiles = sum(idx.shape[0] * idx.shape[1] for _, idx, _ in groups)
    return tiles * bsr.block_m * bsr.block_n


def _retile_banded(bsr: BlockSparseMask, mask: np.ndarray) -> BlockSparseMask:
    """Re-tile a fully banded mask at a finer granularity when that shrinks it.

    The kernel's block size is chosen by the vectorized backend's cost
    model, where big tiles amortize gather bookkeeping.  The banded
    lowering has *no* gather — K/V feed the einsum through zero-copy
    strided views — so the only cost that scales with tile size is band
    over-coverage: a 64-wide tile row covers a ~45-wide band with ~40%
    padding that a 16-wide tiling avoids.  Scan power-of-two refinements
    and keep the one with the fewest padded score elements, provided every
    group stays banded (scattered groups would reintroduce gathers, which
    small tiles make strictly worse).  Measured on the wallclock grid this
    is 25-45% off the banded patterns' runtime at seq 128-512.
    """
    if bsr.n_valid == 0 or not _all_banded(bsr):
        return bsr
    best, best_cost = bsr, _padded_elems(bsr)
    for f in (2, 4):
        bm, bn = bsr.block_m // f, bsr.block_n // f
        if min(bm, bn) < MIN_RETILE_BLOCK:
            continue
        cand = BlockSparseMask.from_dense(mask, bm, bn)
        if cand.n_valid and _all_banded(cand):
            cost = _padded_elems(cand)
            if cost < best_cost:
                best, best_cost = cand, cost
    return best


def _dense_lowering(bsr: BlockSparseMask, mask: np.ndarray | None) -> bool:
    """Whether this mask should lower to one dense masked softmax.

    Padded tile count (what the group-wise traversal actually computes,
    including bucket padding) within ``DENSE_LOWER_FACTOR`` of the full
    block grid, and a score matrix small enough that the dense GEMM stays
    cache-friendly.  Measured on the wallclock grid: dense wins 2-4x at
    seq<=256 for every pattern and keeps winning for high-density masks
    (bigbird) at 512, while low-density large-seq masks (where the factor
    gate fails) stay on the sparse traversal.
    """
    if mask is None or bsr.n_valid == 0:
        return False
    if bsr.seq_len * bsr.kv_len > DENSE_LOWER_MAX_ELEMS:
        return False
    groups = bsr.concat_groups()
    padded = sum(idx.shape[0] * idx.shape[1] for _, idx, _ in groups)
    total = bsr.n_block_rows * bsr.n_block_cols
    if total > DENSE_LOWER_FACTOR * padded:
        return False
    all_banded = all(
        _banded_layout(bsr.load_col_idx[idx].astype(np.int64)) is not None
        for _, idx, _ in groups
    )
    if all_banded and total > BANDED_DENSE_FACTOR * padded:
        return False
    return True


def specialize_blockwise(
    bsr: BlockSparseMask,
    n_bh: int,
    digest: str = "",
    pattern: str = "custom",
    mask: np.ndarray | None = None,
    sym: "GuardRecorder | None" = None,
) -> GeneratedSource:
    """Render the specialized module for one BSR mask view.

    ``mask`` (the element-level boolean mask) enables the dense lowering:
    near-dense block structures collapse to a single masked softmax GEMM
    instead of the group-wise tile traversal.  Without it, only the sparse
    lowering is available.

    ``sym`` (a :class:`repro.plan.symbolic.GuardRecorder` binding
    ``n_bh``) routes every n_bh-dependent emission decision through guard
    recording, so one emitted module is shared across the whole n_bh
    region that takes the same branches (the emitted text reads ``n_bh``
    from ``q.shape[0]`` at run time; nothing n_bh-derived is baked in
    beyond those decisions).
    """
    if mask is not None:
        bsr = _retile_banded(bsr, mask)
    if _dense_lowering(bsr, mask):
        return _specialize_dense(bsr, mask, n_bh, digest, pattern, sym)
    bm, bn = bsr.block_m, bsr.block_n
    seq, kv = bsr.seq_len, bsr.kv_len
    nbr, nbc = bsr.n_block_rows, bsr.n_block_cols
    groups = bsr.concat_groups()

    buf = IndentedBuffer()
    consts: list[np.ndarray] = []

    def const(arr: np.ndarray) -> str:
        consts.append(arr)
        return f"consts[{len(consts) - 1}]"

    buf.writelines(
        module_header(
            "blockwise",
            BLOCKWISE_TEMPLATE_VERSION,
            digest,
            {
                "pattern": pattern,
                "seq": seq,
                "kv": kv,
                "block": f"({bm},{bn})",
                "n_bh": "sym" if sym is not None else n_bh,
                "valid_blocks": bsr.n_valid,
                "groups": len(groups),
            },
        )
    )
    buf.writeline("import numpy as np")
    any_banded = any(
        _banded_layout(bsr.load_col_idx[idx].astype(np.int64)) is not None
        for _, idx, _ in groups
    )
    if any_banded:
        buf.writeline("from numpy.lib.stride_tricks import as_strided")
    buf.writeline()
    buf.writeline()
    buf.writeline("def run(q, k, v, consts):")
    with buf.indent():
        buf.writeline("n_bh = q.shape[0]")
        buf.writeline("d = q.shape[2]")
        if bsr.n_valid == 0:
            buf.writeline(f"return np.zeros((n_bh, {seq}, d), dtype=np.float16)")
            return GeneratedSource(
                "blockwise", BLOCKWISE_TEMPLATE_VERSION, buf.getvalue(), consts
            )

        _emit_tiles(buf, "q", "qb", seq, nbr, bm)
        _emit_tiles(buf, "k", "kb", kv, nbc, bn)
        _emit_tiles(buf, "v", "vb", kv, nbc, bn)
        buf.writeline(
            f"out = np.zeros((n_bh, {nbr * bm}, d), dtype=np.float16)"
        )
        buf.writeline(f"outb = out.reshape(n_bh, {nbr}, {bm}, d)")
        if any_banded:
            buf.writeline(f"flatk = kb.reshape(n_bh, {nbc * bn}, d)")
            buf.writeline(f"flatv = vb.reshape(n_bh, {nbc * bn}, d)")
            buf.writeline("ks0, ks1, ks2 = flatk.strides")
            buf.writeline("vs0, vs1, vs2 = flatv.strides")

        for gi, (rows_g, idx, slab) in enumerate(groups):
            _emit_group(buf, const, bsr, gi, rows_g, idx, slab, n_bh, sym)

        buf.writeline(f"return out[:, :{seq}]")
    return GeneratedSource(
        "blockwise", BLOCKWISE_TEMPLATE_VERSION, buf.getvalue(), consts
    )


def _specialize_dense(
    bsr: BlockSparseMask,
    mask: np.ndarray,
    n_bh: int,
    digest: str,
    pattern: str,
    sym: "GuardRecorder | None" = None,
) -> GeneratedSource:
    """Dense lowering: one masked softmax over the full score matrix.

    No tiling, no gathers, no group loop — the mask participates only as
    an additive ``0/-inf`` bias constant (omitted entirely when the mask
    is all-true), so the whole kernel is two large GEMMs around an
    in-place softmax.  Fully-masked rows need no extra zeroing: their
    scores are uniformly ``-inf``, so after the max fixup every ``exp``
    is 0, the context GEMM writes zeros, and the guarded divide skips.
    """
    seq, kv = bsr.seq_len, bsr.kv_len
    buf = IndentedBuffer()
    consts: list[np.ndarray] = []
    biased = not bool(mask.all())
    dead = bool((~mask.any(axis=1)).any())

    buf.writelines(
        module_header(
            "blockwise",
            BLOCKWISE_TEMPLATE_VERSION,
            digest,
            {
                "pattern": pattern,
                "seq": seq,
                "kv": kv,
                "n_bh": "sym" if sym is not None else n_bh,
                "lowering": "dense",
                "density": f"{mask.mean():.3f}",
            },
        )
    )
    buf.writeline("import numpy as np")
    buf.writeline()
    buf.writeline()
    buf.writeline("def run(q, k, v, consts):")
    with buf.indent():
        buf.writeline("n_bh = q.shape[0]")
        buf.writeline("d = q.shape[2]")
        if biased:
            bias_ref = (
                "consts["
                + str(len(consts))
                + "]"
            )
            consts.append(
                np.where(mask, np.float32(0.0), np.float32(-np.inf)).astype(
                    np.float32
                )
            )
        where = ", where=l > 0.0" if dead else ""
        alloc = "zeros" if dead else "empty"
        g_chunk = max(1, int(GATHER_CHUNK_ELEMS // max(1, seq * kv)))
        buf.writeline(f"out = np.{alloc}((n_bh, {seq}, d), dtype=np.float16)")
        one_chunk = (
            sym.le("n_bh", g_chunk) if sym is not None else g_chunk >= n_bh
        )
        if one_chunk:
            buf.writeline("s = q @ k.swapaxes(-1, -2)")
            if biased:
                buf.writeline(f"s += {bias_ref}")
            _emit_dense_softmax(buf, dead)
            buf.writeline("o = s @ v")
            buf.writeline(f"np.divide(o, l, out=out{where})")
        else:
            buf.writeline(f"for g0 in range(0, n_bh, {g_chunk}):")
            with buf.indent():
                buf.writeline(f"gs = slice(g0, g0 + {g_chunk})")
                buf.writeline("s = q[gs] @ k[gs].swapaxes(-1, -2)")
                if biased:
                    buf.writeline(f"s += {bias_ref}")
                _emit_dense_softmax(buf, dead)
                buf.writeline("o = s @ v[gs]")
                buf.writeline(f"np.divide(o, l, out=out[gs]{where})")
        buf.writeline("return out")
    return GeneratedSource(
        "blockwise", BLOCKWISE_TEMPLATE_VERSION, buf.getvalue(), consts
    )


def _emit_dense_softmax(buf: IndentedBuffer, dead: bool) -> None:
    buf.writeline("m_ref = s.max(axis=-1, keepdims=True)")
    if dead:
        buf.writeline(
            "m_ref = np.where(np.isfinite(m_ref), m_ref, np.float32(0.0))"
        )
    buf.writeline("np.subtract(s, m_ref, out=s)")
    buf.writeline("np.exp(s, out=s)")
    buf.writeline("l = s.sum(axis=-1, keepdims=True)")


def _emit_tiles(
    buf: IndentedBuffer, src: str, dst: str, length: int, n_tiles: int, b: int
) -> None:
    """Stage one operand as a tile view (padding emitted only when ragged)."""
    if length == n_tiles * b:
        buf.writeline(f"{dst} = {src}.reshape(n_bh, {n_tiles}, {b}, d)")
    else:
        buf.writeline(
            f"{dst}_p = np.zeros((n_bh, {n_tiles * b}, d), dtype={src}.dtype)"
        )
        buf.writeline(f"{dst}_p[:, :{length}] = {src}")
        buf.writeline(f"{dst} = {dst}_p.reshape(n_bh, {n_tiles}, {b}, d)")


def _emit_group(
    buf: IndentedBuffer,
    const,
    bsr: BlockSparseMask,
    gi: int,
    rows_g: np.ndarray,
    idx: np.ndarray,
    slab: np.ndarray | None,
    n_bh: int,
    sym: "GuardRecorder | None" = None,
) -> None:
    bm, bn = bsr.block_m, bsr.block_n
    n_g, cap = idx.shape
    cols = bsr.load_col_idx[idx].astype(np.int64)
    banded = _banded_layout(cols)
    contig = int(rows_g[-1]) - int(rows_g[0]) + 1 == n_g
    a, b_hi = int(rows_g[0]), int(rows_g[-1]) + 1
    # A fully-masked query row is exactly a slab row that is all -inf; only
    # those groups need the NaN guards the vectorized backend always pays.
    dead = slab is not None and bool(np.isinf(slab).all(axis=-1).any())
    bias_ref = const(slab) if slab is not None else None

    kind = f"banded start={banded[0]} step={banded[1]}" if banded else "gathered"
    buf.writeline(
        f"# group {gi}: {n_g} block rows, cap {cap}, {kind}"
        + (", masked-row guards" if dead else "")
    )
    rows_ref = f"{a}:{b_hi}" if contig else None
    if not contig:
        rows_ref_arr = const(rows_g.astype(np.int64))

    if banded is not None:
        start, step = banded
        shape = f"(n_bh, {n_g}, {cap * bn}, d)"
        buf.writeline(
            f"kg = as_strided(flatk[:, {start * bn}:], shape={shape}, "
            f"strides=(ks0, {step * bn} * ks1, ks1, ks2), writeable=False)"
        )
        buf.writeline(
            f"vg = as_strided(flatv[:, {start * bn}:], shape={shape}, "
            f"strides=(vs0, {step * bn} * vs1, vs1, vs2), writeable=False)"
        )
        qg = f"qb[:, {rows_ref}]" if contig else f"qb[:, {rows_ref_arr}]"
        buf.writeline(f"qg = {qg}")
        _emit_softmax_matmul(
            buf, bias_ref, dead, contig,
            out_ref=(f"outb[:, {rows_ref}]" if contig else None),
            scatter_ref=(None if contig else f"outb[:, {rows_ref_arr}]"),
        )
        return

    # Gathered group: per-chunk tile gathers bounded by GATHER_CHUNK_ELEMS.
    cg = const(cols)
    g_chunk = max(1, int(GATHER_CHUNK_ELEMS // max(1, n_g * bm * cap * bn)))
    one_chunk = (
        sym.le("n_bh", g_chunk) if sym is not None else g_chunk >= n_bh
    )
    if one_chunk:
        buf.writeline(f"kg = kb[:, {cg}].reshape(n_bh, {n_g}, {cap * bn}, d)")
        buf.writeline(f"vg = vb[:, {cg}].reshape(n_bh, {n_g}, {cap * bn}, d)")
        qg = f"qb[:, {rows_ref}]" if contig else f"qb[:, {rows_ref_arr}]"
        buf.writeline(f"qg = {qg}")
        _emit_softmax_matmul(
            buf, bias_ref, dead, contig,
            out_ref=(f"outb[:, {rows_ref}]" if contig else None),
            scatter_ref=(None if contig else f"outb[:, {rows_ref_arr}]"),
        )
        return

    buf.writeline(f"for g0 in range(0, n_bh, {g_chunk}):")
    with buf.indent():
        buf.writeline(f"gs = slice(g0, min(g0 + {g_chunk}, n_bh))")
        buf.writeline("g = gs.stop - gs.start")
        buf.writeline(f"kg = kb[gs][:, {cg}].reshape(g, {n_g}, {cap * bn}, d)")
        buf.writeline(f"vg = vb[gs][:, {cg}].reshape(g, {n_g}, {cap * bn}, d)")
        qg = f"qb[gs, {rows_ref}]" if contig else f"qb[gs, {rows_ref_arr}]"
        buf.writeline(f"qg = {qg}")
        _emit_softmax_matmul(
            buf, bias_ref, dead, contig,
            out_ref=(f"outb[gs, {rows_ref}]" if contig else None),
            scatter_ref=(None if contig else f"outb[gs, {rows_ref_arr}]"),
        )


def _emit_softmax_matmul(
    buf: IndentedBuffer,
    bias_ref: str | None,
    dead: bool,
    contig: bool,
    out_ref: str | None,
    scatter_ref: str | None,
) -> None:
    """The shared score → softmax → context tail of every group.

    The final divide writes straight into the FP16 output (one rounding,
    same as the backend-level ``to_fp16`` downcast it replaces) — the
    generated module returns FP16 and the kernel's cast becomes a no-op.
    """
    buf.writeline("s = qg @ kg.swapaxes(-1, -2)")
    if bias_ref is not None:
        buf.writeline(f"s += {bias_ref}")
    buf.writeline("m_ref = s.max(axis=-1, keepdims=True)")
    if dead:
        buf.writeline(
            "m_ref = np.where(np.isfinite(m_ref), m_ref, np.float32(0.0))"
        )
    buf.writeline("np.subtract(s, m_ref, out=s)")
    buf.writeline("np.exp(s, out=s)")
    buf.writeline("l = s.sum(axis=-1, keepdims=True)")
    where = ", where=l > 0.0" if dead else ""
    buf.writeline("o = s @ vg")
    if contig:
        buf.writeline(f"np.divide(o, l, out={out_ref}{where})")
    else:
        buf.writeline(f"np.divide(o, l, out=o{where})")
        buf.writeline(f"{scatter_ref} = o")


register_template("blockwise", BLOCKWISE_TEMPLATE_VERSION, specialize_blockwise)
