"""Indented source emission for the codegen templates.

:class:`IndentedBuffer` is the torchinductor-style building block: templates
write logical lines and open/close indentation scopes; the buffer renders
the final module text.  Emission is fully deterministic — identical
specializer inputs produce byte-identical source, which the on-disk cache
round-trip tests pin.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

INDENT = "    "


class IndentedBuffer:
    """Line-oriented source buffer with scoped indentation.

    >>> buf = IndentedBuffer()
    >>> buf.writeline("def f():")
    >>> with buf.indent():
    ...     buf.writeline("return 1")
    >>> print(buf.getvalue(), end="")
    def f():
        return 1
    """

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    def writeline(self, line: str = "") -> None:
        """Append one line at the current indentation (blank lines bare)."""
        if line:
            self._lines.append(INDENT * self._depth + line)
        else:
            self._lines.append("")

    def writelines(self, lines: list[str]) -> None:
        for line in lines:
            self.writeline(line)

    @contextmanager
    def indent(self, levels: int = 1) -> Iterator["IndentedBuffer"]:
        """Indent by ``levels`` for the duration of the ``with`` block."""
        self._depth += levels
        try:
            yield self
        finally:
            self._depth -= levels

    def splice(self, source: str) -> None:
        """Append a multi-line chunk, re-indenting to the current depth."""
        for line in source.splitlines():
            self.writeline(line)

    def getvalue(self) -> str:
        return "\n".join(self._lines) + "\n"

    def __len__(self) -> int:
        return len(self._lines)
