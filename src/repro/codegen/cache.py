"""Content-addressed cache for generated kernel modules.

Two tiers, both keyed by the codegen :class:`repro.plan.PlanKey` digest:

* **in-memory** — bound, executable entries (module + consts pool); hits
  cost a dict lookup, nothing is re-emitted or re-``exec``'d.
* **on disk** (optional) — the emitted *source* as ``<digest>.py`` next to
  a ``<digest>.json`` sidecar recording the SHA-256 of the source, the
  template name/version, and the full plan key.  A warm process loads the
  source, verifies the hash and version, and re-``exec``'s it — zero
  emission cost, byte-identical module text.  A corrupted or stale entry
  (hash mismatch, version skew, unreadable sidecar) is *never* imported:
  it is dropped and the module is regenerated in place.

The default cache directory comes from ``STOF_CODEGEN_CACHE_DIR``; unset,
the cache is in-memory only — tests opt into disk via
:func:`use_codegen_cache`.

Symbolic *families* add a third index on top: a family groups every
``n_bh`` that emits byte-identical source under one guarded digest (see
:mod:`repro.plan.symbolic` and :func:`repro.codegen.backend.`
``generated_family_kernel``).  The cache stores, per family *base*
digest, the list of ``(guards, family digest)`` pairs —
:meth:`GeneratedCodeCache.find_family` scans it with the probe shape and
returns the admitting family's digest, which then resolves through the
ordinary two tiers above.  On disk the index is one
``<base_digest>.families.json`` sidecar per base.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from types import ModuleType
from typing import Any, Iterator

import numpy as np

from repro.plan.key import PlanKey
from repro.plan.symbolic import GuardSet

#: Environment variable selecting the on-disk cache directory.
CACHE_DIR_ENV = "STOF_CODEGEN_CACHE_DIR"


def source_hash(source: str) -> str:
    """SHA-256 of the module text — the integrity check for disk entries."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class CacheEntry:
    """One bound generated kernel: executable module + its constant pool."""

    __slots__ = ("key", "template", "version", "source", "module", "consts")

    def __init__(
        self,
        key: PlanKey,
        template: str,
        version: int,
        source: str,
        module: ModuleType,
        consts: list,
    ) -> None:
        self.key = key
        self.template = template
        self.version = version
        self.source = source
        self.module = module
        self.consts = consts

    def run(self, q, k, v):
        return self.module.run(q, k, v, self.consts)


class GeneratedCodeCache:
    """Digest-keyed generated-code cache (in-memory + optional disk tier)."""

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, CacheEntry] = {}
        # base digest -> [(guards, family digest), ...] in insertion order;
        # later siblings come from splits, so order is the split history.
        self._families: dict[str, list[tuple[GuardSet, str]]] = {}
        self._family_index_loaded: set[str] = set()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.rejected = 0
        self.family_hits = 0
        self.family_splits = 0

    # ------------------------------------------------------------- in-memory

    def get(self, digest: str) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self.hits_memory += 1
            return entry

    def put(self, digest: str, entry: CacheEntry) -> None:
        with self._lock:
            self._entries[digest] = entry

    def clear_memory(self) -> None:
        """Drop bound entries (disk files survive) — the warm-start test."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ disk

    def source_path(self, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.py"

    def meta_path(self, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.json"

    def consts_path(self, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.npz"

    def store_disk(
        self,
        digest: str,
        key: PlanKey,
        template: str,
        version: int,
        source: str,
        consts: list[np.ndarray],
    ) -> None:
        """Write ``<digest>.py`` + sidecar + consts (atomic renames)."""
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        meta = {
            "sha256": source_hash(source),
            "template": template,
            "version": int(version),
            "n_consts": len(consts),
            "key": key.to_dict(),
        }
        if consts:
            cpath = self.consts_path(digest)
            tmp = cpath.with_suffix(f".tmp{os.getpid()}.npz")
            with open(tmp, "wb") as fh:
                np.savez(fh, *consts)
            os.replace(tmp, cpath)
        for path, text in (
            (self.source_path(digest), source),
            (self.meta_path(digest), json.dumps(meta, indent=2, sort_keys=True)),
        ):
            tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)

    def load_disk(
        self, digest: str, template: str, version: int
    ) -> tuple[str, list[np.ndarray], dict[str, Any]] | None:
        """Return verified ``(source, consts, meta)`` or ``None``.

        Rejects — and deletes, so the slot regenerates cleanly — any entry
        whose sidecar is missing/unreadable, whose recorded hash does not
        match the actual bytes (corruption), whose template version differs
        from the current emission (staleness), or whose constant pool is
        missing or short.
        """
        src_path, meta_path = self.source_path(digest), self.meta_path(digest)
        if src_path is None or not src_path.exists():
            return None
        try:
            source = src_path.read_text(encoding="utf-8")
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._reject(digest)
            return None
        if (
            meta.get("sha256") != source_hash(source)
            or meta.get("template") != template
            or int(meta.get("version", -1)) != int(version)
        ):
            self._reject(digest)
            return None
        n_consts = int(meta.get("n_consts", 0))
        consts: list[np.ndarray] = []
        if n_consts:
            try:
                with np.load(self.consts_path(digest)) as npz:
                    consts = [npz[f"arr_{i}"] for i in range(n_consts)]
            except (OSError, ValueError, KeyError):
                self._reject(digest)
                return None
        self.hits_disk += 1
        return source, consts, meta

    def _reject(self, digest: str) -> None:
        self.rejected += 1
        for path in (
            self.source_path(digest),
            self.meta_path(digest),
            self.consts_path(digest),
        ):
            if path is not None:
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass

    # -------------------------------------------------------------- families

    def families_path(self, base_digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{base_digest}.families.json"

    def _load_family_index(self, base_digest: str) -> None:
        """Merge the disk family index for one base (once per process)."""
        if base_digest in self._family_index_loaded:
            return
        self._family_index_loaded.add(base_digest)
        path = self.families_path(base_digest)
        if path is None or not path.exists():
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            loaded = [
                (GuardSet.from_payload(item["guards"]), str(item["digest"]))
                for item in payload["families"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            self.rejected += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return
        known = {digest for _, digest in self._families.get(base_digest, [])}
        self._families.setdefault(base_digest, []).extend(
            item for item in loaded if item[1] not in known
        )

    def find_family(self, base_digest: str, shape: dict[str, int]) -> str | None:
        """The digest of the family of ``base_digest`` admitting ``shape``."""
        with self._lock:
            self._load_family_index(base_digest)
            for guards, digest in self._families.get(base_digest, ()):
                if guards.check(shape):
                    self.family_hits += 1
                    return digest
        return None

    def put_family(self, base_digest: str, guards: GuardSet, digest: str) -> None:
        """Register a new family (memory + atomic disk index rewrite)."""
        with self._lock:
            self._load_family_index(base_digest)
            siblings = self._families.setdefault(base_digest, [])
            if any(d == digest for _, d in siblings):
                return
            if siblings:
                self.family_splits += 1
            siblings.append((guards, digest))
            path = self.families_path(base_digest)
            if path is None:
                return
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "base": base_digest,
                "families": [
                    {"guards": g.to_payload(), "digest": d} for g, d in siblings
                ],
            }
            tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
            tmp.write_text(
                json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "rejected": self.rejected,
            "families": sum(len(v) for v in self._families.values()),
            "family_hits": self.family_hits,
            "family_splits": self.family_splits,
        }


_DEFAULT: GeneratedCodeCache | None = None
_DEFAULT_LOCK = threading.Lock()


def codegen_cache() -> GeneratedCodeCache:
    """The process-wide cache (disk tier from ``STOF_CODEGEN_CACHE_DIR``)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = GeneratedCodeCache(os.environ.get(CACHE_DIR_ENV) or None)
        return _DEFAULT


def set_codegen_cache(cache: GeneratedCodeCache | None) -> GeneratedCodeCache | None:
    """Swap the process-wide cache; returns the previous one."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        prev, _DEFAULT = _DEFAULT, cache
        return prev


@contextmanager
def use_codegen_cache(
    cache_dir: str | os.PathLike | None = None,
) -> Iterator[GeneratedCodeCache]:
    """Scope a fresh cache (optionally disk-backed) — the test fixture."""
    cache = GeneratedCodeCache(cache_dir)
    prev = set_codegen_cache(cache)
    try:
        yield cache
    finally:
        set_codegen_cache(prev)
