"""Content-addressed cache for generated kernel modules.

Two tiers, both keyed by the codegen :class:`repro.plan.PlanKey` digest:

* **in-memory** — bound, executable entries (module + consts pool); hits
  cost a dict lookup, nothing is re-emitted or re-``exec``'d.
* **on disk** (optional) — the emitted *source* as ``<digest>.py`` next to
  a ``<digest>.json`` sidecar recording the SHA-256 of the source, the
  template name/version, and the full plan key.  A warm process loads the
  source, verifies the hash and version, and re-``exec``'s it — zero
  emission cost, byte-identical module text.  A corrupted or stale entry
  (hash mismatch, version skew, unreadable sidecar) is *never* imported:
  it is dropped and the module is regenerated in place.

The default cache directory comes from ``STOF_CODEGEN_CACHE_DIR``; unset,
the cache is in-memory only — tests opt into disk via
:func:`use_codegen_cache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from types import ModuleType
from typing import Any, Iterator

import numpy as np

from repro.plan.key import PlanKey

#: Environment variable selecting the on-disk cache directory.
CACHE_DIR_ENV = "STOF_CODEGEN_CACHE_DIR"


def source_hash(source: str) -> str:
    """SHA-256 of the module text — the integrity check for disk entries."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class CacheEntry:
    """One bound generated kernel: executable module + its constant pool."""

    __slots__ = ("key", "template", "version", "source", "module", "consts")

    def __init__(
        self,
        key: PlanKey,
        template: str,
        version: int,
        source: str,
        module: ModuleType,
        consts: list,
    ) -> None:
        self.key = key
        self.template = template
        self.version = version
        self.source = source
        self.module = module
        self.consts = consts

    def run(self, q, k, v):
        return self.module.run(q, k, v, self.consts)


class GeneratedCodeCache:
    """Digest-keyed generated-code cache (in-memory + optional disk tier)."""

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, CacheEntry] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.rejected = 0

    # ------------------------------------------------------------- in-memory

    def get(self, digest: str) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self.hits_memory += 1
            return entry

    def put(self, digest: str, entry: CacheEntry) -> None:
        with self._lock:
            self._entries[digest] = entry

    def clear_memory(self) -> None:
        """Drop bound entries (disk files survive) — the warm-start test."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ disk

    def source_path(self, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.py"

    def meta_path(self, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.json"

    def consts_path(self, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.npz"

    def store_disk(
        self,
        digest: str,
        key: PlanKey,
        template: str,
        version: int,
        source: str,
        consts: list[np.ndarray],
    ) -> None:
        """Write ``<digest>.py`` + sidecar + consts (atomic renames)."""
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        meta = {
            "sha256": source_hash(source),
            "template": template,
            "version": int(version),
            "n_consts": len(consts),
            "key": key.to_dict(),
        }
        if consts:
            cpath = self.consts_path(digest)
            tmp = cpath.with_suffix(f".tmp{os.getpid()}.npz")
            with open(tmp, "wb") as fh:
                np.savez(fh, *consts)
            os.replace(tmp, cpath)
        for path, text in (
            (self.source_path(digest), source),
            (self.meta_path(digest), json.dumps(meta, indent=2, sort_keys=True)),
        ):
            tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)

    def load_disk(
        self, digest: str, template: str, version: int
    ) -> tuple[str, list[np.ndarray], dict[str, Any]] | None:
        """Return verified ``(source, consts, meta)`` or ``None``.

        Rejects — and deletes, so the slot regenerates cleanly — any entry
        whose sidecar is missing/unreadable, whose recorded hash does not
        match the actual bytes (corruption), whose template version differs
        from the current emission (staleness), or whose constant pool is
        missing or short.
        """
        src_path, meta_path = self.source_path(digest), self.meta_path(digest)
        if src_path is None or not src_path.exists():
            return None
        try:
            source = src_path.read_text(encoding="utf-8")
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._reject(digest)
            return None
        if (
            meta.get("sha256") != source_hash(source)
            or meta.get("template") != template
            or int(meta.get("version", -1)) != int(version)
        ):
            self._reject(digest)
            return None
        n_consts = int(meta.get("n_consts", 0))
        consts: list[np.ndarray] = []
        if n_consts:
            try:
                with np.load(self.consts_path(digest)) as npz:
                    consts = [npz[f"arr_{i}"] for i in range(n_consts)]
            except (OSError, ValueError, KeyError):
                self._reject(digest)
                return None
        self.hits_disk += 1
        return source, consts, meta

    def _reject(self, digest: str) -> None:
        self.rejected += 1
        for path in (
            self.source_path(digest),
            self.meta_path(digest),
            self.consts_path(digest),
        ):
            if path is not None:
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "rejected": self.rejected,
        }


_DEFAULT: GeneratedCodeCache | None = None
_DEFAULT_LOCK = threading.Lock()


def codegen_cache() -> GeneratedCodeCache:
    """The process-wide cache (disk tier from ``STOF_CODEGEN_CACHE_DIR``)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = GeneratedCodeCache(os.environ.get(CACHE_DIR_ENV) or None)
        return _DEFAULT


def set_codegen_cache(cache: GeneratedCodeCache | None) -> GeneratedCodeCache | None:
    """Swap the process-wide cache; returns the previous one."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        prev, _DEFAULT = _DEFAULT, cache
        return prev


@contextmanager
def use_codegen_cache(
    cache_dir: str | os.PathLike | None = None,
) -> Iterator[GeneratedCodeCache]:
    """Scope a fresh cache (optionally disk-backed) — the test fixture."""
    cache = GeneratedCodeCache(cache_dir)
    prev = set_codegen_cache(cache)
    try:
        yield cache
    finally:
        set_codegen_cache(prev)
