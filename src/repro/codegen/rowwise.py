"""Rowwise plan-to-code specializer.

Emits one module per (mask, geometry): the vectorized backend's 64-row
grouping, dense-range-vs-gather split, and power-of-two length bucketing
are all decided at emission time from the element CSR, leaving straight-line
NumPy with literal slice bounds, baked bias constants, and pre-gathered
index/padding tables.  Dead branches go away: the bias add is skipped for
full-dense row ranges, padding-lane masking is skipped for exact buckets,
and chunk loops collapse when one chunk covers the axis.

The emitted arithmetic mirrors ``RowWiseKernel._run_vectorized`` /
``_gather_buckets`` operation for operation — outputs agree with both
existing backends at the FP16 noise floor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.codegen.emit import IndentedBuffer
from repro.codegen.templates import GeneratedSource, module_header, register_template
from repro.mha.kernel import GATHER_CHUNK_ELEMS
from repro.mha.rowwise import DENSE_RANGE_FACTOR, ROW_GROUP

if TYPE_CHECKING:  # annotation-only: the plan layer never runs at emit time
    from repro.plan.symbolic import GuardRecorder

#: Bump when the emitted code changes shape (see blockwise counterpart).
ROWWISE_TEMPLATE_VERSION = 1


def specialize_rowwise(
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    mask: np.ndarray,
    n_bh: int,
    head_size: int,
    digest: str = "",
    pattern: str = "custom",
    sym: "GuardRecorder | None" = None,
) -> GeneratedSource:
    """Render the specialized module for one element-CSR mask.

    With a ``sym`` recorder (:class:`repro.plan.symbolic.GuardRecorder`
    binding ``n_bh``), every emission decision that reads the batch*heads
    extent goes through the recorder, which accumulates the guards under
    which this exact module re-emits — the caller caches it once per
    guard family instead of once per concrete ``n_bh``.  The emitted
    text itself always reads ``n_bh`` from ``q.shape[0]`` at run time.
    """
    seq, kv = mask.shape
    d = head_size
    lengths = np.diff(row_ptr)
    nonempty = np.flatnonzero(lengths)

    buf = IndentedBuffer()
    consts: list[np.ndarray] = []

    def const(arr: np.ndarray) -> str:
        consts.append(arr)
        return f"consts[{len(consts) - 1}]"

    buf.writelines(
        module_header(
            "rowwise",
            ROWWISE_TEMPLATE_VERSION,
            digest,
            {
                "pattern": pattern,
                "seq": seq,
                "kv": kv,
                "n_bh": "sym" if sym is not None else n_bh,
                "nnz": int(row_ptr[-1]),
                "nonempty_rows": int(nonempty.size),
            },
        )
    )
    buf.writeline("import numpy as np")
    buf.writeline()
    buf.writeline()
    buf.writeline("def run(q, k, v, consts):")
    with buf.indent():
        buf.writeline("n_bh = q.shape[0]")
        buf.writeline("d = q.shape[2]")
        buf.writeline(f"out = np.zeros((n_bh, {seq}, d), dtype=np.float16)")
        if nonempty.size == 0:
            buf.writeline("return out")
            return GeneratedSource(
                "rowwise", ROWWISE_TEMPLATE_VERSION, buf.getvalue(), consts
            )

        lens = lengths[nonempty].astype(np.int64)
        starts = row_ptr[nonempty].astype(np.int64)
        first = col_idx[starts].astype(np.int64)
        last = col_idx[starts + lens - 1].astype(np.int64) + 1

        scattered: list[np.ndarray] = []
        for a in range(0, len(nonempty), ROW_GROUP):
            b = min(a + ROW_GROUP, len(nonempty))
            lo, hi = int(first[a:b].min()), int(last[a:b].max())
            longest = int(lens[a:b].max())
            if hi - lo > DENSE_RANGE_FACTOR * max(longest, d):
                scattered.append(np.arange(a, b))
                continue
            _emit_dense_group(
                buf, const, mask, nonempty[a:b], a // ROW_GROUP, lo, hi, n_bh,
                sym,
            )

        for sel in scattered:
            _emit_gather_buckets(
                buf, const, row_ptr, col_idx, nonempty[sel], lens[sel], n_bh, d,
                sym,
            )

        buf.writeline("return out")
    return GeneratedSource(
        "rowwise", ROWWISE_TEMPLATE_VERSION, buf.getvalue(), consts
    )


def _rows_expr(const, rows_g: np.ndarray) -> tuple[str, bool]:
    """A literal slice when the rows are consecutive, else a baked array."""
    r0, r1 = int(rows_g[0]), int(rows_g[-1]) + 1
    if r1 - r0 == len(rows_g):
        return f"{r0}:{r1}", True
    return const(rows_g.astype(np.int64)), False


def _emit_dense_group(
    buf: IndentedBuffer,
    const,
    mask: np.ndarray,
    rows_g: np.ndarray,
    gi: int,
    lo: int,
    hi: int,
    n_bh: int,
    sym: "GuardRecorder | None" = None,
) -> None:
    """Contiguous-slice path: one dense masked softmax-matmul per group."""
    bias = np.where(
        mask[rows_g, lo:hi], np.float32(0.0), np.float32(-np.inf)
    ).astype(np.float32)
    biased = bool(np.isinf(bias).any())
    bias_ref = const(bias) if biased else None
    rows_ref, contig = _rows_expr(const, rows_g)
    g_chunk = max(1, int(GATHER_CHUNK_ELEMS // max(1, len(rows_g) * (hi - lo))))

    buf.writeline(
        f"# group {gi}: {len(rows_g)} rows, dense range [{lo}:{hi})"
        + ("" if biased else ", full-dense (no bias)")
    )

    def body(gs: str) -> None:
        qg = f"q[{gs}, {rows_ref}]" if contig else f"q[{gs}][:, {rows_ref}]"
        buf.writeline(f"s = {qg} @ k[{gs}, {lo}:{hi}].swapaxes(-1, -2)")
        if bias_ref is not None:
            buf.writeline(f"s += {bias_ref}")
        buf.writeline("smax = s.max(axis=-1, keepdims=True)")
        buf.writeline("np.subtract(s, smax, out=s)")
        buf.writeline("np.exp(s, out=s)")
        buf.writeline("l = s.sum(axis=-1, keepdims=True)")
        buf.writeline(f"o = s @ v[{gs}, {lo}:{hi}]")
        if contig:
            # The divide writes straight into the FP16 output view — one
            # rounding, same as the backend-level downcast it replaces.
            buf.writeline(f"np.divide(o, l, out=out[{gs}, {rows_ref}])")
        else:
            buf.writeline("np.divide(o, l, out=o)")
            buf.writeline(f"out[{gs}, {rows_ref}] = o")

    one_chunk = (
        sym.le("n_bh", g_chunk) if sym is not None else g_chunk >= n_bh
    )
    if one_chunk:
        body(":")
    else:
        buf.writeline(f"for g0 in range(0, n_bh, {g_chunk}):")
        with buf.indent():
            buf.writeline(f"gs = slice(g0, g0 + {g_chunk})")
            body("gs")


def _emit_gather_buckets(
    buf: IndentedBuffer,
    const,
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    rows: np.ndarray,
    lens: np.ndarray,
    n_bh: int,
    d: int,
    sym: "GuardRecorder | None" = None,
) -> None:
    """Padded-gather fallback: pow2 length buckets, indices baked as consts."""
    caps = np.int64(1) << np.ceil(np.log2(lens)).astype(np.int64)
    for cap in np.unique(caps):
        in_bucket = caps == cap
        rows_b = rows[in_bucket]
        lens_b = lens[in_bucket]
        lanes = np.arange(cap)
        pos = row_ptr[rows_b].astype(np.int64)[:, None] + np.minimum(
            lanes[None, :], lens_b[:, None] - 1
        )
        idx = col_idx[pos].astype(np.int64)
        pad = lanes[None, :] >= lens_b[:, None]
        padded = bool(pad.any())
        n_b = len(rows_b)
        if sym is not None:
            # The baked chunk size is the one n_bh-derived *constant* in
            # the module; the recorder pins the exact n_bh region over
            # which this value (and thus the emitted text) is unchanged.
            row_chunk = sym.floordiv("n_bh", GATHER_CHUNK_ELEMS, int(cap) * d)
        else:
            row_chunk = max(1, int(GATHER_CHUNK_ELEMS // max(1, n_bh * cap * d)))

        idx_ref = const(idx)
        pad_ref = const(pad) if padded else None
        rows_ref = const(rows_b.astype(np.int64))
        buf.writeline(
            f"# bucket cap {int(cap)}: {n_b} scattered rows"
            + ("" if padded else ", exact (no padding lanes)")
        )

        def body(rs: str | None) -> None:
            sub = f"[{rs}]" if rs else ""
            buf.writeline(f"rows_c = {rows_ref}{sub}")
            buf.writeline(f"kg = k[:, {idx_ref}{sub}]")
            buf.writeline(f"vg = v[:, {idx_ref}{sub}]")
            buf.writeline(
                "scores = (q[:, rows_c, None, :] @ kg.swapaxes(-1, -2))[:, :, 0, :]"
            )
            if pad_ref is not None:
                buf.writeline(f"scores[:, {pad_ref}{sub}] = -np.inf")
            buf.writeline("smax = scores.max(axis=-1, keepdims=True)")
            buf.writeline("ex = np.exp(scores - smax)")
            buf.writeline("probs = ex / ex.sum(axis=-1, keepdims=True)")
            buf.writeline("out[:, rows_c] = (probs[:, :, None, :] @ vg)[:, :, 0, :]")

        if row_chunk >= n_b:
            body(None)
        else:
            buf.writeline(f"for r0 in range(0, {n_b}, {row_chunk}):")
            with buf.indent():
                buf.writeline(f"rs = slice(r0, r0 + {row_chunk})")
                body("rs")


register_template("rowwise", ROWWISE_TEMPLATE_VERSION, specialize_rowwise)
