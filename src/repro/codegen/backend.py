"""The codegen execution backend the MHA kernels dispatch to.

Bind path for one problem:

1. :func:`codegen_plan_key` — a :class:`repro.plan.PlanKey` whose ``salt``
   carries the template name *and emission version* (satellite of the plan
   layer: bumping a template version changes every digest it produced, so
   stale cached modules can never be looked up again).
2. :func:`generated_kernel` — consult the :mod:`repro.codegen.cache`
   (memory, then disk, verified by content hash), emit only on a miss.
   Every lookup records a ``codegen.cache`` tracer span with its outcome;
   emission records a ``codegen.emit`` span — warm runs therefore show
   *zero* ``codegen.emit`` spans, which the round-trip tests pin.
3. ``entry.run(q, k, v)`` — the generated module's ``run`` with its bound
   constant pool.  Operands arrive pre-scaled fp32, exactly as the loop
   and vectorized backends receive them.

With symbolic codegen enabled (``STOF_CODEGEN_SYMBOLIC=1`` or
:func:`use_symbolic_codegen`), step 1 frees ``n_bh`` (the only dimension
whose value can steer emission without changing the mask) and step 2 goes
through :func:`generated_family_kernel` instead: emission runs under a
:class:`repro.plan.symbolic.GuardRecorder`, the recorded guards become
the family's admission predicate, and every ``n_bh`` the guards admit
shares one cached module.  A guard failure emits a sibling family —
never reuses the old module.  The flag defaults off; the concrete path
and its digests are byte-identical to before.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from types import ModuleType
from typing import Any, Callable, Iterator

import numpy as np

from repro.codegen.blockwise import specialize_blockwise
from repro.codegen.cache import CacheEntry, codegen_cache
from repro.codegen.rowwise import specialize_rowwise
from repro.codegen.templates import GeneratedSource, get_template
from repro.masks.bsr import BlockSparseMask
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer
from repro.plan.key import PlanKey, params_key
from repro.plan.symbolic import GuardRecorder, SymbolicPlanKey

#: Environment variable opting into symbolic (guarded-family) codegen.
SYMBOLIC_ENV = "STOF_CODEGEN_SYMBOLIC"

_symbolic_override = threading.local()


def symbolic_codegen_enabled() -> bool:
    """Whether codegen keys free ``n_bh`` into guarded families."""
    override = getattr(_symbolic_override, "value", None)
    if override is not None:
        return override
    return os.environ.get(SYMBOLIC_ENV, "").strip().lower() in {
        "1", "true", "yes", "on"
    }


@contextmanager
def use_symbolic_codegen(enabled: bool = True) -> Iterator[None]:
    """Scope symbolic codegen on (or off) for the current thread."""
    prev = getattr(_symbolic_override, "value", None)
    _symbolic_override.value = enabled
    try:
        yield
    finally:
        _symbolic_override.value = prev


def codegen_plan_key(
    kind: str,
    problem: Any,
    params: dict[str, Any] | None = None,
    template: str = "blockwise",
    symbolic: tuple[str, ...] = (),
) -> PlanKey:
    """Content-address one specialization.

    The key is pure problem identity (geometry + mask bits + kernel
    parameters) — no device spec, because the emitted NumPy is
    device-independent.  ``salt`` folds in the template name and version so
    a template upgrade invalidates every module the old emission produced.

    ``symbolic=("n_bh",)`` builds the family *base* instead: batch and
    heads are zeroed (their product is the freed dimension) and the salt
    marks the key as symbolic so family bases can never collide with
    concrete keys of the same geometry.
    """
    tmpl = get_template(template)
    salt = f"codegen:{tmpl.name}:v{tmpl.version}"
    batch, heads = problem.batch, problem.heads
    if "n_bh" in symbolic:
        batch = heads = 0
        salt += ":sym(n_bh)"
    return PlanKey(
        kind=kind,
        batch=batch,
        heads=heads,
        seq_len=problem.seq_len,
        kv_seq_len=problem.kv_seq_len,
        head_size=problem.head_size,
        pattern=problem.pattern,
        mask=problem.mask_fingerprint(),
        params=params_key(params),
        salt=salt,
    )


def _exec_module(source: str, digest: str) -> ModuleType:
    """Compile + exec generated source as an anonymous module."""
    mod = ModuleType(f"repro_codegen_{digest[:16]}")
    mod.__dict__["__codegen_digest__"] = digest
    code = compile(source, f"<codegen:{digest[:16]}>", "exec")
    exec(code, mod.__dict__)
    return mod


def generated_kernel(
    key: PlanKey,
    template: str,
    build: Callable[[str], GeneratedSource],
) -> CacheEntry:
    """The bound generated kernel for ``key`` (emitting only on a miss)."""
    tmpl = get_template(template)
    cache = codegen_cache()
    digest = key.digest
    tracer = current_tracer()
    m = current_metrics()

    with tracer.span("codegen.cache", cat="codegen", template=template) as sp:
        entry = cache.get(digest)
        if entry is not None:
            sp.add(outcome="hit-memory")
            if m.enabled:
                m.counter(
                    "codegen.cache", template=template, outcome="hit-memory"
                ).inc()
            return entry
        loaded = cache.load_disk(digest, tmpl.name, tmpl.version)
        if loaded is not None:
            source, consts, _meta = loaded
            entry = CacheEntry(
                key, tmpl.name, tmpl.version, source,
                _exec_module(source, digest), consts,
            )
            cache.put(digest, entry)
            sp.add(outcome="hit-disk")
            if m.enabled:
                m.counter(
                    "codegen.cache", template=template, outcome="hit-disk"
                ).inc()
            return entry
        sp.add(outcome="miss")
        if m.enabled:
            m.counter("codegen.cache", template=template, outcome="miss").inc()
    cache.misses += 1

    with tracer.span("codegen.emit", cat="codegen", template=template) as sp:
        gen = build(digest)
        sp.add(
            lines=gen.source.count("\n"),
            consts=len(gen.consts),
            version=gen.version,
        )
        if m.enabled:
            m.counter("codegen.emit", template=template).inc()
    entry = CacheEntry(
        key, gen.template, gen.version, gen.source,
        _exec_module(gen.source, digest), gen.consts,
    )
    cache.put(digest, entry)
    cache.store_disk(digest, key, gen.template, gen.version, gen.source, gen.consts)
    return entry


def family_digest(base: PlanKey, guards) -> str:
    """Content address of one guarded family: base digest + guard digest."""
    return hashlib.sha256(
        f"{base.digest}:{guards.digest}".encode()
    ).hexdigest()


def generated_family_kernel(
    base: PlanKey,
    template: str,
    shape: dict[str, int],
    build: Callable[[str, GuardRecorder], GeneratedSource],
) -> CacheEntry:
    """The bound generated kernel for a *family* probe.

    ``base`` is the family base key (:func:`codegen_plan_key` with
    ``symbolic=``); ``shape`` binds the freed dims to this problem's
    concrete values.  The family index is scanned first — a family whose
    guards admit ``shape`` resolves through the ordinary memory/disk
    tiers under its family digest.  On a miss, ``build`` emits under a
    fresh :class:`GuardRecorder`; the guards it records become the new
    family's admission predicate, and the module is cached under
    ``sha256(base.digest + ":" + guards.digest)``.

    The header digest baked into the source is the *family placeholder*
    (``family:<base16>``), identical across siblings of one base — the
    emitted text must be a pure function of the recorded branches, never
    of the concrete probe values.
    """
    tmpl = get_template(template)
    cache = codegen_cache()
    tracer = current_tracer()
    m = current_metrics()

    with tracer.span(
        "codegen.cache", cat="codegen", template=template, family=True
    ) as sp:
        digest = cache.find_family(base.digest, shape)
        if digest is not None:
            entry = cache.get(digest)
            if entry is not None:
                sp.add(outcome="hit-memory")
                if m.enabled:
                    m.counter(
                        "codegen.cache", template=template, outcome="hit-memory"
                    ).inc()
                return entry
            loaded = cache.load_disk(digest, tmpl.name, tmpl.version)
            if loaded is not None:
                source, consts, meta = loaded
                key = SymbolicPlanKey.from_dict(meta["key"])
                entry = CacheEntry(
                    key, tmpl.name, tmpl.version, source,
                    _exec_module(source, digest), consts,
                )
                cache.put(digest, entry)
                sp.add(outcome="hit-disk")
                if m.enabled:
                    m.counter(
                        "codegen.cache", template=template, outcome="hit-disk"
                    ).inc()
                return entry
        sp.add(outcome="miss")
        if m.enabled:
            m.counter("codegen.cache", template=template, outcome="miss").inc()
    cache.misses += 1

    placeholder = f"family:{base.digest[:16]}"
    with tracer.span("codegen.emit", cat="codegen", template=template) as sp:
        rec = GuardRecorder(**shape)
        gen = build(placeholder, rec)
        guards = rec.guard_set()
        sp.add(
            lines=gen.source.count("\n"),
            consts=len(gen.consts),
            version=gen.version,
            guards=guards.describe(),
        )
        if m.enabled:
            m.counter("codegen.emit", template=template).inc()
    digest = family_digest(base, guards)
    key = SymbolicPlanKey(base, tuple(sorted(shape)), guards)
    entry = CacheEntry(
        key, gen.template, gen.version, gen.source,
        _exec_module(gen.source, digest), gen.consts,
    )
    cache.put(digest, entry)
    cache.store_disk(digest, key, gen.template, gen.version, gen.source, gen.consts)
    cache.put_family(base.digest, guards, digest)
    return entry


def _problem_entry(problem: Any, memo_key: tuple, resolve) -> CacheEntry:
    """Per-problem memo of the resolved cache entry.

    The generated module depends only on mask content, geometry, and
    kernel parameters — all immutable on a problem (like its ``_bsr_cache``
    /``_csr_cache`` views) — so repeated ``run()`` calls skip plan-key
    construction, digest hashing, and cache lookup entirely.  The global
    :func:`codegen_cache` stays the source of truth across problems.
    """
    entries = problem.__dict__.setdefault("_codegen_entries", {})
    entry = entries.get(memo_key)
    if entry is None:
        entry = resolve()
        entries[memo_key] = entry
    return entry


def run_blockwise(
    problem: Any,
    bsr: BlockSparseMask,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
) -> np.ndarray:
    """Execute one blockwise problem through its generated module."""
    symbolic = symbolic_codegen_enabled()

    def resolve() -> CacheEntry:
        params = {"block_m": bsr.block_m, "block_n": bsr.block_n}
        if symbolic:
            base = codegen_plan_key(
                "codegen-blockwise", problem, params,
                template="blockwise", symbolic=("n_bh",),
            )
            return generated_family_kernel(
                base,
                "blockwise",
                {"n_bh": problem.n_bh},
                lambda digest, rec: specialize_blockwise(
                    bsr, problem.n_bh, digest, problem.pattern,
                    mask=problem.mask, sym=rec,
                ),
            )
        key = codegen_plan_key(
            "codegen-blockwise", problem, params, template="blockwise"
        )
        return generated_kernel(
            key,
            "blockwise",
            lambda digest: specialize_blockwise(
                bsr, problem.n_bh, digest, problem.pattern, mask=problem.mask
            ),
        )

    entry = _problem_entry(
        problem, ("blockwise", bsr.block_m, bsr.block_n, symbolic), resolve
    )
    return _traced_run(entry, "blockwise", q, k, v)


def run_rowwise(
    problem: Any,
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
) -> np.ndarray:
    """Execute one rowwise problem through its generated module."""
    symbolic = symbolic_codegen_enabled()

    def resolve() -> CacheEntry:
        if symbolic:
            base = codegen_plan_key(
                "codegen-rowwise", problem, None,
                template="rowwise", symbolic=("n_bh",),
            )
            return generated_family_kernel(
                base,
                "rowwise",
                {"n_bh": problem.n_bh},
                lambda digest, rec: specialize_rowwise(
                    row_ptr, col_idx, problem.mask, problem.n_bh,
                    problem.head_size, digest, problem.pattern, sym=rec,
                ),
            )
        key = codegen_plan_key(
            "codegen-rowwise", problem, None, template="rowwise"
        )
        return generated_kernel(
            key,
            "rowwise",
            lambda digest: specialize_rowwise(
                row_ptr, col_idx, problem.mask, problem.n_bh,
                problem.head_size, digest, problem.pattern,
            ),
        )

    entry = _problem_entry(problem, ("rowwise", symbolic), resolve)
    return _traced_run(entry, "rowwise", q, k, v)


def _traced_run(
    entry: CacheEntry, template: str, q: np.ndarray, k: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Run the bound module, under a ``codegen.exec`` span when tracing.

    With the emission span on the cold path and this span on every call,
    a ``repro profile`` trace separates one-time emission cost from warm
    per-call execution — the guarded fast path keeps the untraced hot
    loop at a single attribute check.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return entry.run(q, k, v)
    with tracer.span("codegen.exec", cat="codegen", template=template):
        return entry.run(q, k, v)
