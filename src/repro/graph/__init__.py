"""Computational-graph IR, tracing, pattern matching, and rewriting.

The substitution for ``torch.fx`` (DESIGN.md §1): models are built through
:class:`~repro.graph.trace.GraphBuilder` into a :class:`~repro.graph.ir.Graph`
of operator nodes; :mod:`repro.graph.pattern` captures the MHA sub-graph and
operator chains; :mod:`repro.graph.rewrite` replaces matches with fused
nodes (paper Fig. 8's capture -> map -> rewrite pipeline).
"""

from repro.graph.ir import Graph, Node, NodeKind
from repro.graph.trace import GraphBuilder, Symbol
from repro.graph.pattern import (
    MHA_PATTERN,
    find_chain,
    find_mha_subgraphs,
    op_sequence,
)
from repro.graph.rewrite import replace_subgraph, FusedNodePayload

__all__ = [
    "Graph",
    "Node",
    "NodeKind",
    "GraphBuilder",
    "Symbol",
    "MHA_PATTERN",
    "find_chain",
    "find_mha_subgraphs",
    "op_sequence",
    "replace_subgraph",
    "FusedNodePayload",
]
