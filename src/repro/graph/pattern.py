"""Sub-graph pattern matching (paper Fig. 8, "graph matching").

Provides the generic single-consumer chain matcher used both to capture the
MHA sub-graph (BatchedGemm -> Scale -> MaskAdd -> Softmax -> BatchedGemm)
and to locate downstream operator chains for the fusion-scheme converter.
"""

from __future__ import annotations

from typing import Sequence, Type

from repro.graph.ir import Graph, Node, NodeKind
from repro.ops.base import Operator
from repro.ops.elementwise import MaskAdd, Scale
from repro.ops.gemm import BatchedGemm
from repro.ops.normalization import Softmax

#: The native-operator spelling of scaled-dot-product attention that the
#: DL framework emits and STOF captures (paper Fig. 2 / Fig. 8).
MHA_PATTERN: tuple[Type[Operator], ...] = (
    BatchedGemm,
    Scale,
    MaskAdd,
    Softmax,
    BatchedGemm,
)


def op_sequence(graph: Graph) -> list[Node]:
    """The downstream operator sequence: OP/FUSED nodes in topo order."""
    return graph.op_nodes()


def find_chain(
    graph: Graph, pattern: Sequence[Type[Operator]]
) -> list[list[str]]:
    """Find all single-consumer chains matching a sequence of op types.

    A match is a list of node names ``[n0, ..., nk]`` where ``n_i`` is an OP
    node of type ``pattern[i]``, ``n_{i+1}`` consumes ``n_i``, and every
    interior node has exactly one consumer (so fusing it is always legal).
    Matches are non-overlapping, reported in topological order.
    """
    counts = graph.consumer_counts()
    claimed: set[str] = set()
    matches: list[list[str]] = []

    for start in graph.order:
        node = graph.nodes[start]
        if node.kind is not NodeKind.OP or not isinstance(node.op, pattern[0]):
            continue
        if start in claimed:
            continue
        chain = [start]
        ok = True
        current = node
        for next_type in pattern[1:]:
            if counts[current.name] != 1:
                ok = False
                break
            nxt = graph.consumers(current.name)
            if len(nxt) != 1:
                ok = False
                break
            candidate = nxt[0]
            if (
                candidate.kind is not NodeKind.OP
                or not isinstance(candidate.op, next_type)
                or candidate.name in claimed
            ):
                ok = False
                break
            chain.append(candidate.name)
            current = candidate
        if ok:
            matches.append(chain)
            claimed.update(chain)
    return matches


def find_mha_subgraphs(graph: Graph) -> list[list[str]]:
    """All captured MHA sub-graphs in the graph.

    >>> from repro.graph.trace import GraphBuilder
    >>> from repro.ops import BatchedGemm, Scale, MaskAdd, Softmax
    >>> import numpy as np
    >>> gb = GraphBuilder()
    >>> q = gb.input("q", (2, 8, 4)); kt = gb.input("kt", (2, 4, 8))
    >>> v = gb.input("v", (2, 8, 4)); m = gb.input("m", (8, 8))
    >>> s = gb.call(BatchedGemm(), q, kt)
    >>> s = gb.call(Scale(0.5), s)
    >>> s = gb.call(MaskAdd(), s, m)
    >>> p = gb.call(Softmax(), s)
    >>> o = gb.call(BatchedGemm(), p, v)
    >>> gb.output(o)
    >>> len(find_mha_subgraphs(gb.finish()))
    1
    """
    return find_chain(graph, MHA_PATTERN)
