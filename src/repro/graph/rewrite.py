"""Graph rewriting: replace a matched region with one fused node.

"The captured adjacent nodes are replaced with fused nodes to complete the
graph rewriting" (paper §4.3).  The fused node carries a
:class:`FusedNodePayload` that the runtime dispatches on — either an MHA
kernel binding or a compilation-template binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import GraphError
from repro.graph.ir import Graph, Node, NodeKind


@dataclass
class FusedNodePayload:
    """What a FUSED node executes.

    ``kind`` selects the dispatch path in the runtime:

    * ``"mha"`` — ``binding`` is an attention-kernel handle; ``meta`` holds
      the :class:`~repro.mha.problem.AttentionProblem` geometry.
    * ``"template"`` — ``binding`` is a compilation template instance over
      the original operator chain; ``meta`` holds the segment description.
    """

    kind: str
    binding: Any
    meta: dict[str, Any] = field(default_factory=dict)
    original_nodes: list[str] = field(default_factory=list)


def replace_subgraph(
    graph: Graph,
    node_names: list[str],
    payload: FusedNodePayload,
    fused_name: str | None = None,
) -> Graph:
    """Return a new graph with ``node_names`` collapsed into one FUSED node.

    Requirements (checked): the nodes form a contiguous region whose only
    value escaping to the rest of the graph is the *last* node's output.
    External inputs of the region become the fused node's inputs, in first-
    use order.
    """
    if not node_names:
        raise GraphError("cannot fuse an empty node list")
    region = set(node_names)
    for n in node_names:
        if n not in graph.nodes:
            raise GraphError(f"unknown node {n!r} in fusion region")
        if graph.nodes[n].kind not in (NodeKind.OP, NodeKind.FUSED):
            raise GraphError(f"cannot fuse non-op node {n!r}")

    last = node_names[-1]
    counts = graph.consumer_counts()
    for n in node_names[:-1]:
        external = [c for c in graph.consumers(n) if c.name not in region]
        if external or n in graph.outputs:
            raise GraphError(
                f"interior node {n!r} of fusion region escapes to "
                f"{[c.name for c in external]}; only the last node may"
            )

    # External inputs in first-use order, deduplicated.
    ext_inputs: list[str] = []
    for n in node_names:
        for dep in graph.nodes[n].inputs:
            if dep not in region and dep not in ext_inputs:
                ext_inputs.append(dep)

    fused_name = fused_name or f"fused_{last}"
    if fused_name in graph.nodes and fused_name not in region:
        raise GraphError(f"fused node name {fused_name!r} collides")

    payload.original_nodes = list(node_names)
    new = Graph(graph.name)
    inserted = False
    for name in graph.order:
        if name in region:
            if name == last:
                new.add_node(
                    Node(
                        name=fused_name,
                        kind=NodeKind.FUSED,
                        shape=tuple(graph.nodes[last].shape),
                        inputs=list(ext_inputs),
                        payload=payload,
                    )
                )
                inserted = True
            continue
        old = graph.nodes[name]
        new.add_node(
            Node(
                name=old.name,
                kind=old.kind,
                shape=tuple(old.shape),
                op=old.op,
                inputs=[fused_name if d in region else d for d in old.inputs],
                initializer=old.initializer,
                payload=old.payload,
                tags=dict(old.tags),
            )
        )
    if not inserted:  # pragma: no cover - guarded by earlier checks
        raise GraphError("fusion region last node never reached")

    for out in graph.outputs:
        new.mark_output(fused_name if out in region else out)
    return new
