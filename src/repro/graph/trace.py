"""Graph construction API — the ``torch.fx`` stand-in.

Model code receives a :class:`GraphBuilder` and writes ordinary-looking
tensor programs against :class:`Symbol` handles; every ``call`` records an
OP node with inferred shapes.  Deterministic parameter initializers are
derived from the node name and a root seed, so two builds of the same model
produce identical graphs *and* identical weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.errors import GraphError
from repro.core.rng import RngStream
from repro.graph.ir import Graph, Node, NodeKind
from repro.ops.base import Operator, Shape


@dataclass(frozen=True)
class Symbol:
    """A handle to one graph node's output."""

    name: str
    shape: Shape


class GraphBuilder:
    """Builds a :class:`Graph` through a tensor-program-like API.

    >>> from repro.ops import Gemm
    >>> gb = GraphBuilder("tiny")
    >>> x = gb.input("x", (4, 8))
    >>> w = gb.param("w", (8, 16))
    >>> y = gb.call(Gemm(), x, w)
    >>> gb.output(y)
    >>> g = gb.finish()
    >>> len(g.op_nodes())
    1
    """

    def __init__(self, name: str = "graph", seed: int | None = None):
        self.graph = Graph(name)
        self._rng = RngStream(seed if seed is not None else 0).fork(f"params-{name}")
        self._counter = 0

    # ------------------------------------------------------------- node API

    def input(self, name: str, shape: Shape) -> Symbol:
        self.graph.add_node(Node(name=name, kind=NodeKind.INPUT, shape=tuple(shape)))
        return Symbol(name, tuple(shape))

    def param(
        self,
        name: str,
        shape: Shape,
        initializer: Callable[[], np.ndarray] | None = None,
        scale: float = 0.02,
        dtype=np.float16,
    ) -> Symbol:
        """Declare a weight; default init is seeded normal(0, scale)."""
        if initializer is None:
            stream = self._rng.fork(name)
            shape_t = tuple(shape)

            def initializer(stream=stream, shape_t=shape_t):
                return (stream.fork("w").standard_normal(shape_t) * scale).astype(dtype)

        self.graph.add_node(
            Node(
                name=name,
                kind=NodeKind.PARAM,
                shape=tuple(shape),
                initializer=initializer,
            )
        )
        return Symbol(name, tuple(shape))

    def const_param(self, name: str, value: np.ndarray) -> Symbol:
        """Declare a weight with a fixed value (e.g. LayerNorm ones)."""
        value = np.asarray(value)
        self.graph.add_node(
            Node(
                name=name,
                kind=NodeKind.PARAM,
                shape=tuple(value.shape),
                initializer=lambda v=value: v,
            )
        )
        return Symbol(name, tuple(value.shape))

    def call(self, op: Operator, *args: Symbol, name: str | None = None) -> Symbol:
        """Record an operator application."""
        if name is None:
            self._counter += 1
            name = f"{op.name}_{self._counter}"
        in_shapes = [a.shape for a in args]
        out_shape = op.infer_shape(*in_shapes)
        self.graph.add_node(
            Node(
                name=name,
                kind=NodeKind.OP,
                shape=tuple(out_shape),
                op=op,
                inputs=[a.name for a in args],
            )
        )
        return Symbol(name, tuple(out_shape))

    def output(self, *syms: Symbol) -> None:
        for s in syms:
            self.graph.mark_output(s.name)

    # ------------------------------------------------------------- finalize

    def finish(self) -> Graph:
        if not self.graph.outputs:
            raise GraphError("graph has no outputs")
        self.graph.validate()
        return self.graph
