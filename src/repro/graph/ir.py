"""Graph intermediate representation.

A :class:`Graph` is a DAG of named :class:`Node` objects in topological
order.  Node kinds:

* ``INPUT`` — runtime tensors (token ids, hidden states, attention mask).
* ``PARAM`` — weights, with an initializer so functional execution can
  materialize them deterministically.
* ``OP`` — an :class:`~repro.ops.base.Operator` application.
* ``FUSED`` — a rewritten region carrying an opaque payload (an attention
  kernel binding or a compilation-template binding); see
  :mod:`repro.graph.rewrite`.

Graphs execute functionally via :meth:`Graph.run` (NumPy, FP16 storage) —
the ground truth every engine's output is checked against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.core.errors import GraphError
from repro.ops.base import Operator, Shape


class NodeKind(enum.Enum):
    INPUT = "input"
    PARAM = "param"
    OP = "op"
    FUSED = "fused"


@dataclass
class Node:
    """One graph vertex."""

    name: str
    kind: NodeKind
    shape: Shape
    op: Operator | None = None
    inputs: list[str] = field(default_factory=list)
    initializer: Callable[[], np.ndarray] | None = None
    payload: Any = None          # fused-node binding (kernel/template)
    tags: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = f", op={self.op.name}" if self.op is not None else ""
        return f"Node({self.name!r}, {self.kind.value}, shape={self.shape}{op})"


class Graph:
    """A topologically ordered operator DAG."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.order: list[str] = []
        self.outputs: list[str] = []

    # ------------------------------------------------------------- building

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        for dep in node.inputs:
            if dep not in self.nodes:
                raise GraphError(
                    f"node {node.name!r} depends on unknown node {dep!r}"
                )
        self.nodes[node.name] = node
        self.order.append(node.name)
        return node

    def mark_output(self, name: str) -> None:
        if name not in self.nodes:
            raise GraphError(f"cannot mark unknown node {name!r} as output")
        if name not in self.outputs:
            self.outputs.append(name)

    # -------------------------------------------------------------- queries

    def node(self, name: str) -> Node:
        if name not in self.nodes:
            raise GraphError(f"no node named {name!r}")
        return self.nodes[name]

    def op_nodes(self) -> list[Node]:
        """All OP/FUSED nodes in topological order."""
        return [
            self.nodes[n]
            for n in self.order
            if self.nodes[n].kind in (NodeKind.OP, NodeKind.FUSED)
        ]

    def consumers(self, name: str) -> list[Node]:
        """Nodes that read ``name``."""
        return [
            self.nodes[n] for n in self.order if name in self.nodes[n].inputs
        ]

    def consumer_counts(self) -> dict[str, int]:
        """Read count per node (outputs count as one external consumer)."""
        counts: dict[str, int] = {n: 0 for n in self.nodes}
        for n in self.order:
            for dep in self.nodes[n].inputs:
                counts[dep] += 1
        for out in self.outputs:
            counts[out] += 1
        return counts

    def validate(self) -> None:
        """Check topological consistency and per-node shape inference."""
        seen: set[str] = set()
        for name in self.order:
            node = self.nodes[name]
            for dep in node.inputs:
                if dep not in seen:
                    raise GraphError(
                        f"node {name!r} reads {dep!r} before it is defined"
                    )
            if node.kind is NodeKind.OP:
                assert node.op is not None
                in_shapes = [self.nodes[d].shape for d in node.inputs]
                inferred = node.op.infer_shape(*in_shapes)
                if tuple(inferred) != tuple(node.shape):
                    raise GraphError(
                        f"node {name!r}: recorded shape {node.shape} != "
                        f"inferred {inferred}"
                    )
            seen.add(name)
        for out in self.outputs:
            if out not in self.nodes:
                raise GraphError(f"unknown output {out!r}")

    # ------------------------------------------------------------ execution

    def run(
        self,
        inputs: dict[str, np.ndarray],
        fused_executor: Callable[[Node, list[np.ndarray]], np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Functionally execute the graph.

        ``inputs`` maps INPUT node names to arrays; PARAM nodes materialize
        from their initializers.  FUSED nodes need ``fused_executor`` (the
        runtime supplies one that dispatches to the bound kernel/template).
        Returns ``{output_name: array}``.
        """
        env: dict[str, np.ndarray] = {}
        for name in self.order:
            node = self.nodes[name]
            if node.kind is NodeKind.INPUT:
                if name not in inputs:
                    raise GraphError(f"missing runtime input {name!r}")
                env[name] = np.asarray(inputs[name])
            elif node.kind is NodeKind.PARAM:
                if node.initializer is None:
                    raise GraphError(f"param {name!r} has no initializer")
                env[name] = node.initializer()
            elif node.kind is NodeKind.OP:
                args = [env[d] for d in node.inputs]
                env[name] = node.op.compute(*args)
            else:  # FUSED
                if fused_executor is None:
                    raise GraphError(
                        f"graph contains fused node {name!r} but no "
                        "fused_executor was provided"
                    )
                args = [env[d] for d in node.inputs]
                env[name] = fused_executor(node, args)
        return {out: env[out] for out in self.outputs}

    # ----------------------------------------------------------------- misc

    def clone(self) -> "Graph":
        """Shallow structural copy (nodes are copied, ops/payloads shared)."""
        g = Graph(self.name)
        for name in self.order:
            n = self.nodes[name]
            g.add_node(
                Node(
                    name=n.name,
                    kind=n.kind,
                    shape=tuple(n.shape),
                    op=n.op,
                    inputs=list(n.inputs),
                    initializer=n.initializer,
                    payload=n.payload,
                    tags=dict(n.tags),
                )
            )
        for out in self.outputs:
            g.mark_output(out)
        return g

    def __len__(self) -> int:
        return len(self.order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = sum(1 for n in self.nodes.values() if n.kind is NodeKind.OP)
        fused = sum(1 for n in self.nodes.values() if n.kind is NodeKind.FUSED)
        return (
            f"Graph({self.name!r}, nodes={len(self.nodes)}, ops={ops}, "
            f"fused={fused}, outputs={self.outputs})"
        )
