"""MHA sub-graph capture for the runtime engines.

Extends the core pattern match (BatchedGemm/Scale/MaskAdd/Softmax/
BatchedGemm, Fig. 8) outward to the SplitHeads / TransposeLast2 producers
and the MergeHeads consumer: a fused attention kernel reads Q/K/V strided
directly from the projection outputs, so the copies disappear into the
fused node.  The result carries everything the engines need to construct
:class:`~repro.mha.problem.AttentionProblem` objects at plan/run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import GraphError
from repro.graph.ir import Graph, NodeKind
from repro.graph.pattern import find_mha_subgraphs
from repro.ops.movement import MergeHeads, SplitHeads, TransposeLast2


@dataclass(frozen=True)
class MHACapture:
    """One captured attention site."""

    region: tuple[str, ...]       # node names, graph order, last = MergeHeads
    q_src: str                    # (B*S, H) tensors feeding the head splits
    k_src: str
    v_src: str
    mask_input: str               # graph node holding the (S, S) bool mask
    batch: int
    heads: int
    seq_len: int                  # query length
    kv_seq_len: int               # key/value length (cross-attn may differ)
    head_size: int


def capture_attention_sites(graph: Graph) -> list[MHACapture]:
    """Find every extended MHA region in the graph.

    Raises :class:`GraphError` if a core match lacks the surrounding
    movement ops (our model builders always emit them).
    """
    captures: list[MHACapture] = []
    counts = graph.consumer_counts()

    for core in find_mha_subgraphs(graph):
        qk, scale, maskadd, softmax, pv = (graph.node(n) for n in core)

        qh = graph.node(qk.inputs[0])
        kt = graph.node(qk.inputs[1])
        vh = graph.node(pv.inputs[1])
        mask_input = maskadd.inputs[1]

        if not isinstance(qh.op, SplitHeads) or counts[qh.name] != 1:
            raise GraphError(f"MHA at {qk.name}: Q producer is not a dedicated SplitHeads")
        if not isinstance(kt.op, TransposeLast2) or counts[kt.name] != 1:
            raise GraphError(f"MHA at {qk.name}: K^T producer is not a dedicated transpose")
        kh = graph.node(kt.inputs[0])
        if not isinstance(kh.op, SplitHeads) or counts[kh.name] != 1:
            raise GraphError(f"MHA at {qk.name}: K producer is not a dedicated SplitHeads")
        if not isinstance(vh.op, SplitHeads) or counts[vh.name] != 1:
            raise GraphError(f"MHA at {qk.name}: V producer is not a dedicated SplitHeads")

        consumers = graph.consumers(pv.name)
        if counts[pv.name] != 1 or len(consumers) != 1 or not isinstance(
            consumers[0].op, MergeHeads
        ):
            raise GraphError(f"MHA at {qk.name}: PV output is not merged back")
        merge = consumers[0]

        region_set = {qh.name, kh.name, kt.name, vh.name, *core, merge.name}
        region = tuple(n for n in graph.order if n in region_set)

        q_split: SplitHeads = qh.op
        k_split: SplitHeads = kh.op
        captures.append(
            MHACapture(
                region=region,
                q_src=qh.inputs[0],
                k_src=kh.inputs[0],
                v_src=vh.inputs[0],
                mask_input=mask_input,
                batch=q_split.batch,
                heads=q_split.heads,
                seq_len=q_split.seq_len,
                kv_seq_len=k_split.seq_len,
                head_size=qh.shape[-1],
            )
        )
    return captures
