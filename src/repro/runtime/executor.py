"""Model preparation, planning, and functional execution.

A :class:`PreparedModel` is an engine's view of one model instance:

* the graph with every attention site rewritten to a FUSED node bound to
  the engine's attention strategy (or left native),
* a segmentation of each downstream operator chain into compilation
  templates with chosen parameters,
* the engine's dispatch overhead and workspace model.

``plan`` prices the whole forward pass on the simulated device and checks
the memory footprint (raising the OOM that produces the paper's missing
bars); ``execute`` runs it functionally, exercising the bound attention
kernels — outputs are identical across engines up to FP16 rounding, which
the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.errors import ConfigError, DeviceOutOfMemoryError, GraphError
from repro.core.fp16 import FP16_BYTES
from repro.fusion.converter import FusionSchemeConverter, OperatorChain, extract_chains
from repro.fusion.templates import CompilationTemplate
from repro.graph.ir import Graph, Node, NodeKind
from repro.graph.rewrite import FusedNodePayload, replace_subgraph
from repro.gpu.cost import estimate_kernel_time
from repro.gpu.specs import GPUSpec
from repro.mha.kernel import AttentionKernel
from repro.mha.problem import AttentionProblem
from repro.models.build import ModelInstance
from repro.obs.tracer import current_tracer
from repro.ops.base import numel
from repro.plan import (
    CompiledPlan,
    PlanCache,
    PlanKey,
    compile_kernel_plan,
    compile_launches,
    params_key,
    spec_fingerprint,
)
from repro.runtime.capture import MHACapture, capture_attention_sites
from repro.tuner.engine import segment_signature


@dataclass
class MHABinding:
    """One attention site resolved to a kernel and a symbolic problem."""

    capture: MHACapture
    kernel: AttentionKernel
    params: dict[str, Any] | None
    problem: AttentionProblem   # symbolic (mask only; tensors filled at run)

    def plan(self, spec: GPUSpec):
        return self.kernel.plan(self.problem, spec, self.params)

    def compiled_plan(
        self,
        spec: GPUSpec,
        cache: PlanCache | None = None,
        shard: str = "",
        family: "tuple | None" = None,
    ) -> CompiledPlan:
        """The site's plan through the shared plan layer (cached).

        Layer dedup is the trivial family: repeated layers probe equal
        concrete keys and replay one plan.  A caller holding guards that
        make the plan shape-stable (e.g. a bound on the site's row count)
        may pass ``family=(dims, shape, guards)`` to widen dedup to every
        admitted shape — see :data:`repro.plan.planner.Family`.
        """
        return compile_kernel_plan(
            self.kernel,
            self.problem,
            spec,
            params=self.params,
            cache=cache,
            kind="runtime-mha",
            shard=shard,
            family=family,
        )

    def run(self, q2: np.ndarray, k2: np.ndarray, v2: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Execute on (B*S, H)-shaped inputs, returning (B*S, H)."""
        c = self.capture
        b, h, d = c.batch, c.heads, c.head_size

        def split(x: np.ndarray, s: int) -> np.ndarray:
            return (
                x.reshape(b, s, h, d).transpose(0, 2, 1, 3).reshape(b, h, s, d)
            )

        prob = AttentionProblem(
            batch=b,
            heads=h,
            seq_len=c.seq_len,
            head_size=d,
            mask=np.asarray(mask, dtype=bool),
            pattern=self.problem.pattern,
            q=split(q2, c.seq_len).astype(np.float16),
            k=split(k2, c.kv_seq_len).astype(np.float16),
            v=split(v2, c.kv_seq_len).astype(np.float16),
        )
        out = self.kernel.run(prob, self.params)        # (B, h, S, d)
        return out.reshape(b, h, c.seq_len, d).transpose(0, 2, 1, 3).reshape(
            b * c.seq_len, h * d
        )


@dataclass
class ChainPlan:
    """A downstream chain's segmentation with per-segment templates/params."""

    chain: OperatorChain
    scheme: tuple[int, ...]
    templates: list[CompilationTemplate]
    params: list[dict[str, Any]]


@dataclass
class EngineReport:
    """Planning outcome for one (engine, model, device, mask) combination."""

    engine: str
    time_s: float
    mha_time_s: float
    downstream_time_s: float
    kernel_launches: int
    dram_bytes: float
    flops: float
    memory_bytes: float
    tuning_time_s: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class PreparedModel:
    """An engine-transformed model ready to plan or execute."""

    engine_name: str
    instance: ModelInstance
    spec: GPUSpec
    graph: Graph
    attention: list[tuple[str, MHABinding]]   # (fused node name, binding)
    chains: list[ChainPlan]
    dispatch_overhead_s: float
    workspace_bytes: float = 0.0
    tuning_time_s: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)
    #: Shared compiled-plan cache.  When None, each ``plan()`` call uses an
    #: ephemeral cache (repeated layers still deduplicate within the call).
    plan_cache: PlanCache | None = field(default=None, repr=False)
    #: Parallel-layout fingerprint ("" for unsharded models).  A per-rank
    #: prepared model carries e.g. ``"tp4dp1:nvlink"`` so its plans never
    #: collide in a shared cache with same-geometry unsharded plans.
    shard: str = ""

    # ------------------------------------------------------------------ plan

    def plan(self, check_memory: bool = True) -> EngineReport:
        """Price the forward pass; raises OOM when the footprint exceeds
        device memory."""
        if check_memory:
            mem = self.estimate_memory_bytes()
            if mem > self.spec.memory_bytes:
                raise DeviceOutOfMemoryError(
                    requested_bytes=int(mem),
                    capacity_bytes=self.spec.memory_bytes,
                    what=f"{self.engine_name} running {self.instance.config.name}",
                )
        else:
            mem = self.estimate_memory_bytes()

        mha_t = 0.0
        down_t = 0.0
        launches = 0
        dram = 0.0
        flops = 0.0

        tracer = current_tracer()
        if tracer.enabled:
            tracer.lane_names.setdefault(0, "host dispatch")
            tracer.lane_names.setdefault(1, "attention kernels")
            tracer.lane_names.setdefault(2, "downstream kernels")
        sim_cursor = 0.0   # simulated-timeline position (seconds)

        def record_launch(cost, config, bd, cat: str, lane: int) -> None:
            """Lay the launch on the tracer's simulated kernel timeline."""
            nonlocal sim_cursor
            dispatch = self.dispatch_overhead_s * cost.launches
            if dispatch > 0:
                tracer.add_span(
                    "dispatch", cat="host", t0=sim_cursor, dur=dispatch,
                    tid=0, kernel=cost.name,
                )
                sim_cursor += dispatch
            tracer.add_span(
                cost.name, cat=cat, t0=sim_cursor, dur=bd.total, tid=lane,
                bound=bd.bound,
                grid_blocks=config.grid_blocks,
                occupancy=round(bd.occupancy, 3),
            ).add_model_time(bd.total)
            sim_cursor += bd.total

        plan_span = tracer.span(
            "runtime.plan", cat="planner",
            engine=self.engine_name, model=self.instance.config.name,
        )
        with plan_span:
            # Every site plans through the shared cache: repeated layers
            # (same mask content + geometry + params) replay one
            # CompiledPlan instead of re-running the kernel's mask
            # analysis.  The per-launch pricing below is unchanged, so
            # reports are identical with or without a persistent cache.
            cache = (
                self.plan_cache if self.plan_cache is not None else PlanCache()
            )
            device = spec_fingerprint(self.spec)

            for _, binding in self.attention:
                site_plan = binding.compiled_plan(self.spec, cache, shard=self.shard)
                for cost, config in site_plan.launches:
                    bd = estimate_kernel_time(self.spec, cost, config)
                    mha_t += bd.total + self.dispatch_overhead_s * cost.launches
                    launches += cost.launches
                    dram += cost.bytes_dram
                    flops += cost.flops
                    if tracer.enabled:
                        record_launch(cost, config, bd, "mha", 1)

            for cp in self.chains:
                for template, params in zip(cp.templates, cp.params):
                    key = PlanKey(
                        kind="runtime-chain",
                        device=device,
                        params=params_key(params),
                        salt=repr(segment_signature(template)),
                        shard=self.shard,
                    )
                    seg_plan = compile_launches(
                        key,
                        lambda template=template, params=params: template.plan(
                            self.spec, params
                        ),
                        cache=cache,
                        kernel_name=template.segment.names,
                    )
                    for cost, config in seg_plan.launches:
                        bd = estimate_kernel_time(self.spec, cost, config)
                        down_t += (
                            bd.total + self.dispatch_overhead_s * cost.launches
                        )
                        launches += cost.launches
                        dram += cost.bytes_dram
                        flops += cost.flops
                        if tracer.enabled:
                            record_launch(cost, config, bd, "fused", 2)

            plan_span.add(
                launches=launches, attention_sites=len(self.attention),
            ).add_model_time(mha_t + down_t)

        return EngineReport(
            engine=self.engine_name,
            time_s=mha_t + down_t,
            mha_time_s=mha_t,
            downstream_time_s=down_t,
            kernel_launches=launches,
            dram_bytes=dram,
            flops=flops,
            memory_bytes=mem,
            tuning_time_s=self.tuning_time_s,
            extras=dict(self.extras),
        )

    # ---------------------------------------------------------------- memory

    def estimate_memory_bytes(self) -> float:
        """Resident footprint: weights + peak activations + workspace."""
        params = 0.0
        largest_node = 0.0
        for node in self.graph.nodes.values():
            nbytes = numel(node.shape) * FP16_BYTES
            if node.kind is NodeKind.PARAM:
                params += nbytes
            elif node.kind in (NodeKind.OP, NodeKind.FUSED):
                largest_node = max(largest_node, nbytes)
        # Double-buffered working set: a handful of live intermediates.
        activations = 4.0 * largest_node
        return params + activations + self.workspace_bytes

    # --------------------------------------------------------------- execute

    def execute(self, inputs: dict[str, np.ndarray]) -> np.ndarray:
        """Functional forward pass (single graph output)."""
        bindings = dict(self.attention)

        def fused_executor(node: Node, args: list[np.ndarray]) -> np.ndarray:
            payload: FusedNodePayload = node.payload
            if payload.kind != "mha":
                raise GraphError(f"unexpected fused payload {payload.kind!r}")
            binding = bindings[node.name]
            by_name = dict(zip(node.inputs, args))
            c = binding.capture
            return binding.run(
                by_name[c.q_src], by_name[c.k_src], by_name[c.v_src],
                by_name[c.mask_input],
            )

        outputs = self.graph.run(inputs, fused_executor=fused_executor)
        if len(outputs) != 1:
            raise GraphError(f"expected a single output, got {sorted(outputs)}")
        return next(iter(outputs.values()))


# ---------------------------------------------------------------------------
# Preparation helpers shared by the engines
# ---------------------------------------------------------------------------


def rewrite_attention(
    graph: Graph,
    masks: dict[str, np.ndarray],
    make_binding: Callable[[MHACapture, AttentionProblem], MHABinding],
    mask_patterns: dict[str, str] | None = None,
) -> tuple[Graph, list[tuple[str, MHABinding]]]:
    """Capture every MHA site, bind kernels, and rewrite the graph.

    ``masks`` maps mask-input node names to boolean arrays; ``mask_patterns``
    optionally names the generator pattern of each mask (lets kernels with
    positional fast paths recognise it, like the real implementations).
    """
    bindings: list[tuple[str, MHABinding]] = []
    current = graph
    # Identical attention sites (same mask input + geometry, i.e. repeated
    # layers) share one AttentionProblem so its cached BSR/CSR analysis is
    # computed once per model, not once per layer.
    problem_memo: dict[tuple, AttentionProblem] = {}
    for capture in capture_attention_sites(graph):
        if capture.mask_input not in masks:
            raise ConfigError(
                f"no mask provided for attention input {capture.mask_input!r}"
            )
        if capture.seq_len != capture.kv_seq_len:
            raise ConfigError(
                "attention problems with differing query/key lengths are not "
                f"supported by the kernel suite (got {capture.seq_len} vs "
                f"{capture.kv_seq_len})"
            )
        pattern = (mask_patterns or {}).get(capture.mask_input, "custom")
        memo_key = (
            capture.mask_input,
            capture.batch,
            capture.heads,
            capture.seq_len,
            capture.head_size,
        )
        problem = problem_memo.get(memo_key)
        if problem is None:
            problem = AttentionProblem(
                batch=capture.batch,
                heads=capture.heads,
                seq_len=capture.seq_len,
                head_size=capture.head_size,
                mask=np.asarray(masks[capture.mask_input], dtype=bool),
                pattern=pattern,
            )
            problem_memo[memo_key] = problem
        binding = make_binding(capture, problem)
        fused_name = f"mha@{capture.region[-1]}"
        payload = FusedNodePayload(kind="mha", binding=binding)
        current = replace_subgraph(
            current, [n for n in capture.region], payload, fused_name
        )
        bindings.append((fused_name, binding))
    return current, bindings


def plan_chains(
    graph: Graph,
    spec: GPUSpec,
    scheme_policy: Callable[[FusionSchemeConverter, int], tuple[int, ...]],
    tokens: int,
    params_policy: Callable[[CompilationTemplate], dict[str, Any]] | None = None,
) -> list[ChainPlan]:
    """Segment every downstream chain per the engine's policy."""
    plans: list[ChainPlan] = []
    for chain in extract_chains(graph):
        converter = FusionSchemeConverter(graph, chain)
        scheme = scheme_policy(converter, tokens)
        templates = converter.scheme_templates(scheme)
        if templates is None:
            scheme = tuple(1 for _ in range(chain.n_ops))
            templates = converter.scheme_templates(scheme)
            if templates is None:
                raise GraphError(
                    f"chain starting at {chain.node_names[0]!r} has an "
                    "untemplatable single operator"
                )
        # Feasibility repair: a fused segment whose kernel cannot launch on
        # this device (e.g. a GEMM-chain over a 3,072-wide FFN exceeding the
        # RTX 4090's SMEM carveout) falls back to detached ops — exactly
        # what a failed template compile does in production.
        repaired: list[int] = []
        for length, template in zip(scheme, templates):
            if length > 1 and not _segment_feasible(template, spec):
                repaired.extend([1] * length)
            else:
                repaired.append(length)
        if tuple(repaired) != scheme:
            scheme = tuple(repaired)
            templates = converter.scheme_templates(scheme)
            assert templates is not None

        params = [
            params_policy(t) if params_policy else _first_feasible_params(t, spec)
            for t in templates
        ]
        plans.append(ChainPlan(chain, scheme, templates, params))
    return plans


def _first_feasible_params(
    template: CompilationTemplate, spec: GPUSpec
) -> dict[str, Any] | None:
    """Defaults if they launch; otherwise the first launchable setting."""
    import itertools

    from repro.core.errors import ConfigError

    space = template.param_space()
    keys = list(space)
    candidates = [template.default_params(spec)]
    candidates += [
        dict(zip(keys, vals)) for vals in itertools.product(*space.values())
    ]
    for params in candidates:
        try:
            for cost, config in template.plan(spec, params):
                estimate_kernel_time(spec, cost, config)  # occupancy check
            return params
        except ConfigError:
            continue
    return None


def _segment_feasible(template: CompilationTemplate, spec: GPUSpec) -> bool:
    """Whether any parameter setting of the template can launch on ``spec``."""
    return _first_feasible_params(template, spec) is not None
