"""End-to-end engines: the comparison frameworks of §5.1.2.

Every engine is one *strategy* over the shared substrate: which attention
kernel it binds, how it segments the downstream chains, what it tunes, how
much host dispatch each kernel launch costs, and what workspace it keeps
resident.  Capability notes (Table 1) live on the classes.

========================  =========  ==========================  ==========
Engine                    dispatch   attention                   downstream
========================  =========  ==========================  ==========
PyTorchNativeEngine       8 us       native 5-kernel SDPA        detached
PyTorchCompileEngine      1 us       FlashAttention2             MI fused
FlashAttention2Engine     5 us       FlashAttention2             MI fused
FlexAttentionEngine       2 us       FlexAttention               MI fused
ByteTransformerEngine     3 us       ByteTransformer (<=1024)    epilogues
BoltEngine                1 us       none (no MHA optimization)  templates+tuned
MCFuserEngine             1 us       MCFuser GEMM chain          CI chains+tuned
STOFEngine (stof.py)      1 us       unified MHA module          two-stage
========================  =========  ==========================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.errors import UnsupportedInputError
from repro.fusion.converter import FusionSchemeConverter
from repro.gpu.specs import GPUSpec
from repro.mha.baselines import (
    ByteTransformerAttention,
    FlashAttention2Attention,
    FlexAttention,
    MCFuserAttention,
    MCFUSER_WORKSPACE_MULTIPLIER,
)
from repro.mha.kernel import AttentionKernel
from repro.mha.problem import AttentionProblem
from repro.models.build import ModelInstance
from repro.ops.base import OpCategory
from repro.runtime.capture import MHACapture
from repro.runtime.executor import (
    MHABinding,
    PreparedModel,
    plan_chains,
    rewrite_attention,
)
from repro.tuner.baseline_tuners import ExhaustiveLoopTuner, TemplateEnumerationTuner
from repro.tuner.engine import segment_signature

# Host dispatch overhead per kernel launch, by runtime style.
EAGER_DISPATCH_S = 8e-6          # Python-eager op dispatch (PyTorch Native)
STANDALONE_DISPATCH_S = 5e-6     # eager custom-op call (FlashAttention2 ext)
COMPILED_DISPATCH_S = 1e-6       # CUDA-graph replay (compile/Bolt/MCFuser/STOF)
CPP_RUNTIME_DISPATCH_S = 3e-6    # hand-rolled C++ serving runtime (ByteTransformer)
FLEX_DISPATCH_S = 2e-6           # torch.compile-generated FlexAttention call


# ---------------------------------------------------------------------------
# Downstream segmentation policies
# ---------------------------------------------------------------------------


def singleton_scheme(converter: FusionSchemeConverter, tokens: int) -> tuple[int, ...]:
    """Every operator its own kernel (eager execution)."""
    return tuple(1 for _ in range(converter.chain.n_ops))


def inductor_scheme(converter: FusionSchemeConverter, tokens: int) -> tuple[int, ...]:
    """torch.inductor-style: fuse MI runs, keep CI ops at vendor kernels."""
    cats = converter.chain.categories
    n = len(cats)
    lengths: list[int] = []
    i = 0
    while i < n:
        if cats[i] is OpCategory.CI:
            lengths.append(1)
            i += 1
        else:
            j = i + 1
            while (
                j < n
                and cats[j] is not OpCategory.CI
                and converter.template(i, j - i + 1) is not None
            ):
                j += 1
            lengths.append(j - i)
            i = j
    return tuple(lengths)


def epilogue_scheme(converter: FusionSchemeConverter, tokens: int) -> tuple[int, ...]:
    """CI ops absorb their element-wise epilogues; MI runs fuse (manual
    kernel libraries like ByteTransformer; Bolt's CUTLASS templates)."""
    from repro.fusion.templates import _is_reduction

    cats = converter.chain.categories
    ops = [converter.graph.node(n).op for n in converter.chain.node_names]
    n = len(cats)
    lengths: list[int] = []
    i = 0
    while i < n:
        if cats[i] is OpCategory.CI:
            j = i + 1
            while (
                j < n
                and cats[j] is not OpCategory.CI
                and not _is_reduction(ops[j])
                and converter.template(i, j - i + 1) is not None
            ):
                j += 1
            lengths.append(j - i)
            i = j
        else:
            j = i + 1
            while (
                j < n
                and cats[j] is not OpCategory.CI
                and converter.template(i, j - i + 1) is not None
            ):
                j += 1
            lengths.append(j - i)
            i = j
    return tuple(lengths)


def ci_chain_scheme(converter: FusionSchemeConverter, tokens: int) -> tuple[int, ...]:
    """MCFuser-style: CI ops fuse through intervening element-wise ops to
    the next CI op whenever a GEMM-chain template exists — regardless of
    input scale (its known weakness, §2.3.1)."""
    cats = converter.chain.categories
    n = len(cats)
    lengths: list[int] = []
    i = 0
    while i < n:
        if cats[i] is OpCategory.CI:
            j = i + 1
            while j < n and cats[j] is not OpCategory.CI:
                j += 1
            if j < n and converter.template(i, j - i + 1) is not None:
                lengths.append(j - i + 1)
                i = j + 1
                continue
        lengths.append(1)
        i += 1
    return tuple(lengths)


# ---------------------------------------------------------------------------
# Engine base
# ---------------------------------------------------------------------------


class Engine:
    """One end-to-end execution strategy."""

    name: str = "engine"
    dispatch_overhead_s: float = COMPILED_DISPATCH_S

    #: None = keep native attention ops in the downstream chains.
    attention_kernel: AttentionKernel | None = None
    scheme_policy: Callable = staticmethod(singleton_scheme)

    def workspace_bytes(self, inst: ModelInstance, problems: list[AttentionProblem]) -> float:
        return 0.0

    def check_supported(self, inst: ModelInstance, masks: dict[str, np.ndarray]) -> None:
        """Engine-wide input gating (e.g. ByteTransformer's 1,024 limit)."""

    def make_binding(self, capture: MHACapture, problem: AttentionProblem) -> MHABinding:
        assert self.attention_kernel is not None
        self.attention_kernel.check_supported(problem)
        return MHABinding(
            capture=capture,
            kernel=self.attention_kernel,
            params=None,
            problem=problem,
        )

    def prepare(
        self,
        inst: ModelInstance,
        spec: GPUSpec,
        masks: dict[str, np.ndarray],
        mask_patterns: dict[str, str] | None = None,
    ) -> PreparedModel:
        self.check_supported(inst, masks)
        if self.attention_kernel is not None or self._captures_attention():
            graph, bindings = rewrite_attention(
                inst.graph, masks, self.make_binding, mask_patterns
            )
        else:
            graph, bindings = inst.graph, []
        chains = plan_chains(graph, spec, self.scheme_policy, inst.tokens)
        problems = [b.problem for _, b in bindings]
        prepared = PreparedModel(
            engine_name=self.name,
            instance=inst,
            spec=spec,
            graph=graph,
            attention=bindings,
            chains=chains,
            dispatch_overhead_s=self.dispatch_overhead_s,
            workspace_bytes=self.workspace_bytes(inst, problems),
        )
        self._post_prepare(prepared, spec)
        return prepared

    def _captures_attention(self) -> bool:
        return self.attention_kernel is not None

    def _post_prepare(self, prepared: PreparedModel, spec: GPUSpec) -> None:
        """Hook for tuning engines to refine parameters."""


# ---------------------------------------------------------------------------
# Concrete baselines
# ---------------------------------------------------------------------------


class PyTorchNativeEngine(Engine):
    """Eager PyTorch: every native op a separate kernel, dense attention
    with a materialized score matrix and additive mask."""

    name = "pytorch-native"
    dispatch_overhead_s = EAGER_DISPATCH_S
    attention_kernel = None
    scheme_policy = staticmethod(singleton_scheme)


class PyTorchCompileEngine(Engine):
    """torch.compile: inductor MI fusion + integrated FlashAttention2."""

    name = "pytorch-compile"
    dispatch_overhead_s = COMPILED_DISPATCH_S
    attention_kernel = FlashAttention2Attention()
    scheme_policy = staticmethod(inductor_scheme)


class FlashAttention2Engine(Engine):
    """FlashAttention2 as a standalone extension (MHA-focused method)."""

    name = "flashattention2"
    dispatch_overhead_s = STANDALONE_DISPATCH_S
    attention_kernel = FlashAttention2Attention()
    scheme_policy = staticmethod(inductor_scheme)


class FlexAttentionEngine(Engine):
    """FlexAttention (MHA-focused method)."""

    name = "flexattention"
    dispatch_overhead_s = FLEX_DISPATCH_S
    attention_kernel = FlexAttention()
    scheme_policy = staticmethod(inductor_scheme)


class ByteTransformerEngine(Engine):
    """ByteTransformer: hand-written fused kernels, seq <= 1,024."""

    name = "bytetransformer"
    dispatch_overhead_s = CPP_RUNTIME_DISPATCH_S
    attention_kernel = ByteTransformerAttention()
    scheme_policy = staticmethod(epilogue_scheme)

    def check_supported(self, inst: ModelInstance, masks) -> None:
        from repro.mha.baselines import BYTETRANSFORMER_MAX_SEQ

        if inst.seq_len > BYTETRANSFORMER_MAX_SEQ:
            raise UnsupportedInputError(
                f"{self.name}: sequence length {inst.seq_len} exceeds the "
                f"hand-written kernels' limit of {BYTETRANSFORMER_MAX_SEQ}"
            )


class BoltEngine(Engine):
    """Bolt: CUTLASS-derived GEMM+epilogue templates with full-grid tuning;
    no MHA-specific optimization (attention stays native)."""

    name = "bolt"
    dispatch_overhead_s = COMPILED_DISPATCH_S
    attention_kernel = None
    scheme_policy = staticmethod(epilogue_scheme)

    def _post_prepare(self, prepared: PreparedModel, spec: GPUSpec) -> None:
        tuner = TemplateEnumerationTuner(spec)
        result = tuner.tune_graph(prepared.graph, prepared.instance.tokens)
        best = {segment_signature(s.template): s.best_params for s in result.segments}
        for cp in prepared.chains:
            cp.params = [
                best.get(segment_signature(t), p)
                for t, p in zip(cp.templates, cp.params)
            ]
        prepared.tuning_time_s = result.tuning_time_s


class MCFuserEngine(Engine):
    """MCFuser: loop-scheduled CI-chain fusion (incl. the attention GEMM
    chain) with exhaustive tuning and a large resident workspace."""

    name = "mcfuser"
    dispatch_overhead_s = COMPILED_DISPATCH_S
    attention_kernel = MCFuserAttention()
    scheme_policy = staticmethod(ci_chain_scheme)

    def workspace_bytes(self, inst, problems) -> float:
        if not problems:
            return 0.0
        return MCFUSER_WORKSPACE_MULTIPLIER * max(p.scores_bytes for p in problems)

    def _post_prepare(self, prepared: PreparedModel, spec: GPUSpec) -> None:
        tuner = ExhaustiveLoopTuner(spec)
        result = tuner.tune_graph(prepared.graph, prepared.instance.tokens)
        best = {segment_signature(s.template): s.best_params for s in result.segments}
        for cp in prepared.chains:
            cp.params = [
                best.get(segment_signature(t), p)
                for t, p in zip(cp.templates, cp.params)
            ]
        prepared.tuning_time_s = result.tuning_time_s


#: Engines compared in the end-to-end study (Fig. 12), STOF added by
#: :mod:`repro.runtime.stof`.
BASELINE_ENGINES: tuple[type[Engine], ...] = (
    PyTorchNativeEngine,
    PyTorchCompileEngine,
    ByteTransformerEngine,
    BoltEngine,
    MCFuserEngine,
)
