"""Runtime engines and the execution planner.

* :mod:`repro.runtime.capture` — extended MHA sub-graph capture.
* :mod:`repro.runtime.executor` — :class:`PreparedModel` (plan + execute),
  memory-footprint checks, chain segmentation helpers.
* :mod:`repro.runtime.frameworks` — the baseline engines (PyTorch Native,
  PyTorch Compile, FlashAttention2, FlexAttention, ByteTransformer, Bolt,
  MCFuser).
* :mod:`repro.runtime.stof` — :class:`STOFEngine` with ablation flags.
"""

from repro.runtime.capture import MHACapture, capture_attention_sites
from repro.runtime.executor import (
    ChainPlan,
    EngineReport,
    MHABinding,
    PreparedModel,
    plan_chains,
    rewrite_attention,
)
from repro.runtime.frameworks import (
    BASELINE_ENGINES,
    BoltEngine,
    ByteTransformerEngine,
    Engine,
    FlashAttention2Engine,
    FlexAttentionEngine,
    MCFuserEngine,
    PyTorchCompileEngine,
    PyTorchNativeEngine,
)
from repro.runtime.stof import STOFEngine

__all__ = [
    "MHACapture",
    "capture_attention_sites",
    "ChainPlan",
    "EngineReport",
    "MHABinding",
    "PreparedModel",
    "plan_chains",
    "rewrite_attention",
    "BASELINE_ENGINES",
    "BoltEngine",
    "ByteTransformerEngine",
    "Engine",
    "FlashAttention2Engine",
    "FlexAttentionEngine",
    "MCFuserEngine",
    "PyTorchCompileEngine",
    "PyTorchNativeEngine",
    "STOFEngine",
]
