"""The STOF engine: unified MHA module + two-stage operator fusion.

Ties the whole framework together (paper Fig. 5):

* every captured attention site goes through the analytical kernel
  selector (:mod:`repro.mha.selector`) and runs the row-wise or block-wise
  kernel with its selected parameters;
* every downstream chain is tuned by the two-stage search engine
  (:mod:`repro.tuner.engine`) — rule-based init, fusion expansion,
  reward-based parameter sampling — all served from a shared performance
  cache.

Ablation flags drive Fig. 13: ``use_mha_module=False`` falls back to the
integrated FlashAttention2 kernel (what ``torch.compile`` provides);
``use_fusion_module=False`` falls back to inductor-style MI fusion with
default parameters.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.rng import RngStream
from repro.gpu.specs import GPUSpec
from repro.mha.baselines import FlashAttention2Attention
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.problem import AttentionProblem
from repro.mha.rowwise import RowWiseKernel
from repro.mha.selector import KernelChoice, select_kernel
from repro.models.build import ModelInstance
from repro.runtime.capture import MHACapture
from repro.runtime.executor import MHABinding, PreparedModel
from repro.runtime.frameworks import (
    COMPILED_DISPATCH_S,
    Engine,
    inductor_scheme,
)
from repro.tuner.cache import EvalCostModel, PerformanceCache
from repro.tuner.engine import OverheadBreakdown, TwoStageEngine, segment_signature


class STOFEngine(Engine):
    """STOF with optional module ablation (Fig. 13)."""

    dispatch_overhead_s = COMPILED_DISPATCH_S
    scheme_policy = staticmethod(inductor_scheme)  # fallback when fusion off

    def __init__(
        self,
        use_mha_module: bool = True,
        use_fusion_module: bool = True,
        selector_mode: str = "model",
        rng: RngStream | None = None,
        cost_model: EvalCostModel | None = None,
        stage1_samples: int = 2,
        stage2_rounds: int = 3,
        stage2_total: int = 16,
        exec_backend: str = "vectorized",
    ):
        self.use_mha_module = use_mha_module
        self.use_fusion_module = use_fusion_module
        self.selector_mode = selector_mode
        self.rng = rng or RngStream()
        self.cost_model = cost_model or EvalCostModel()
        self.stage1_samples = stage1_samples
        self.stage2_rounds = stage2_rounds
        self.stage2_total = stage2_total
        self.exec_backend = exec_backend
        self._fallback_attention = FlashAttention2Attention()
        self._row = RowWiseKernel(exec_backend=exec_backend)
        self._block = BlockWiseKernel(exec_backend=exec_backend)
        self.last_overhead: OverheadBreakdown | None = None

        suffix = {
            (True, True): "",
            (True, False): "-mha-only",
            (False, True): "-fusion-only",
            (False, False): "-neither",
        }[(use_mha_module, use_fusion_module)]
        self.name = f"stof{suffix}"

    # ------------------------------------------------------------- attention

    @property
    def attention_kernel(self):
        # Attention is always captured; which kernel binds depends on the
        # ablation flag and, for the full module, the analytical selector.
        return self._fallback_attention

    def make_binding(self, capture: MHACapture, problem: AttentionProblem) -> MHABinding:
        if not self.use_mha_module:
            return MHABinding(
                capture=capture,
                kernel=self._fallback_attention,
                params=None,
                problem=problem,
            )
        # Shared problems (repeated layers) select once.
        cached = self._selection_memo.get(id(problem))
        if cached is None:
            t0 = time.perf_counter()
            cached = select_kernel(problem, self._spec, mode=self.selector_mode)
            self._analysis_s += time.perf_counter() - t0
            self._selection_memo[id(problem)] = cached
        choice, params = cached
        kernel = self._row if choice is KernelChoice.ROW_WISE else self._block
        return MHABinding(capture=capture, kernel=kernel, params=params, problem=problem)

    # ------------------------------------------------------------ preparation

    def prepare(
        self,
        inst: ModelInstance,
        spec: GPUSpec,
        masks: dict[str, np.ndarray],
        mask_patterns: dict[str, str] | None = None,
    ) -> PreparedModel:
        # The selector needs the device spec inside make_binding.
        self._spec = spec
        self._analysis_s = 0.0
        self._selection_memo: dict[int, tuple] = {}
        prepared = super().prepare(inst, spec, masks, mask_patterns)
        prepared.extras["use_mha_module"] = self.use_mha_module
        prepared.extras["use_fusion_module"] = self.use_fusion_module
        return prepared

    def _post_prepare(self, prepared: PreparedModel, spec: GPUSpec) -> None:
        overhead = OverheadBreakdown(analytical_model_s=self._analysis_s)
        if self.use_fusion_module:
            engine = TwoStageEngine(
                spec,
                rng=self.rng,
                stage1_samples=self.stage1_samples,
                stage2_rounds=self.stage2_rounds,
                stage2_total=self.stage2_total,
                cost_model=self.cost_model,
                cache=PerformanceCache(self.cost_model),
            )
            results = engine.tune_graph(prepared.graph, prepared.instance.tokens)
            # Re-segment the prepared chains per the tuned schemes.
            by_first = {
                cp.chain.node_names[0]: cp for cp in prepared.chains
            }
            from repro.fusion.converter import FusionSchemeConverter

            for first, result in results.items():
                cp = by_first.get(first)
                if cp is None:
                    continue
                cp.scheme = result.scheme
                cp.templates = [s.template for s in result.segments]
                cp.params = [s.best_params for s in result.segments]
                overhead = overhead.merged(result.overhead)
            prepared.tuning_time_s = engine.total_tuning_time_s
        self.last_overhead = overhead
        prepared.extras["overhead"] = overhead
