"""The analytical kernel-selection model (paper §4.2, Eqs. 1-2).

Two selector modes are provided:

* ``mode="paper"`` — Eq. 1 and Eq. 2 implemented verbatim:

      threshold = n_valid / n_rows^2  -  tau / (log2 n_rows)^2          (Eq. 1)

  at a hard-coded 16x16 granularity with ``tau = 1.2``; ``threshold < 0``
  selects the row-wise kernel.  For the block-wise kernel:

      req_SMEM = (2*BM + BN) * (w + padding) + BM * (BN + padding)
      OCC      = num_warps * min(SMEM_SIZE/req_SMEM, MAX_WARP/num_warps)
                 / MAX_WARP                                             (Eq. 2)
      score    = OCC * sqrt(SM_NUM / BM * seq_len * h * bs / BM)

  choosing the highest score.

* ``mode="model"`` (STOF's default here) — the same decision made by
  evaluating the device cost model analytically: both kernels (and every
  feasible block setting) are priced by
  :func:`repro.gpu.cost.estimate_kernel_time` and the cheapest wins.  No
  execution is involved; this *is* an analytical model, parameterized by
  the hardware spec exactly as the paper's is.

Why both: under our simulated substrate, verbatim Eq. 2's score is monotone
in ``1/BLOCK_M`` and always degenerates to (16, 16), while the substrate's
optimum moves to larger blocks at scale (as the paper's own evaluation
implies).  EXPERIMENTS.md quantifies the gap; the tests pin both modes.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.gpu.cost import estimate_kernel_time
from repro.gpu.specs import GPUSpec
from repro.mha.blockwise import (
    DEFAULT_PADDING,
    BlockWiseKernel,
    required_smem_elems,
)
from repro.mha.kernel import AttentionKernel
from repro.mha.problem import AttentionProblem
from repro.mha.rowwise import RowWiseKernel
from repro.obs.tracer import current_tracer
from repro.plan import CompiledPlan, PlanCache, PlanKey

#: Paper's empirical coefficient in Eq. 1.
TAU = 1.2

#: Eq. 1's hard-coded granularity for the valid-block ratio.
EQ1_BLOCK = 16


class KernelChoice(enum.Enum):
    ROW_WISE = "row-wise"
    BLOCK_WISE = "block-wise"


def eq1_threshold(problem: AttentionProblem, tau: float = TAU) -> float:
    """Paper Eq. 1, verbatim.

    Uses ``load_row_ptr`` of the 16x16 BSR view: the numerator of the first
    term is the total count of valid ("full" + "part") blocks.
    """
    bsr = problem.bsr(EQ1_BLOCK, EQ1_BLOCK)
    n_rows = bsr.n_block_rows
    if n_rows < 2:
        # log2(1) = 0 would divide by zero; a single block row is by
        # definition the small-input regime Eq. 1 routes to row-wise.
        return -math.inf
    valid_ratio = float(bsr.load_row_ptr[-1]) / float(n_rows * n_rows)
    penalty = tau / (math.log2(n_rows) ** 2)
    return valid_ratio - penalty


@dataclass(frozen=True)
class Eq2Candidate:
    """One scored setting from the Eq. 2 sweep (kept for introspection)."""

    block_m: int
    block_n: int
    num_warps: int
    req_smem_bytes: int
    occ: float
    score: float


def eq2_score(
    problem: AttentionProblem,
    spec: GPUSpec,
    block_m: int,
    block_n: int,
    num_warps: int,
    padding: int = DEFAULT_PADDING,
) -> Eq2Candidate:
    """Paper Eq. 2, verbatim, for one candidate setting."""
    req_elems = required_smem_elems(block_m, block_n, problem.head_size, padding)
    req_bytes = req_elems * FP16_BYTES
    occ = (
        num_warps
        * min(spec.smem_carveout_per_sm / req_bytes, spec.max_warps_per_sm / num_warps)
        / spec.max_warps_per_sm
    )
    score = occ * math.sqrt(
        (spec.sm_count / block_m)
        * (problem.seq_len * problem.heads * problem.batch / block_m)
    )
    return Eq2Candidate(
        block_m=block_m,
        block_n=block_n,
        num_warps=num_warps,
        req_smem_bytes=req_bytes,
        occ=occ,
        score=score,
    )


def _feasible_settings(
    problem: AttentionProblem, spec: GPUSpec, padding: int
) -> list[tuple[int, int, int]]:
    """All (BM, BN, warps) settings that fit in SMEM and the sequence."""
    out = []
    for bm in (16, 32, 64, 128):
        if bm > max(16, problem.seq_len):
            continue
        for bn in (16, 32, 64, 128):
            if bn > max(16, problem.seq_len):
                continue
            req = required_smem_elems(bm, bn, problem.head_size, padding) * FP16_BYTES
            if req > spec.smem_carveout_per_sm:
                continue
            for warps in (1, 2, 4, 8):
                out.append((bm, bn, warps))
    if not out:
        raise ConfigError(
            f"no feasible block-wise setting fits in SMEM for head_size="
            f"{problem.head_size} on {spec.name}"
        )
    return out


def eq2_candidates(
    problem: AttentionProblem,
    spec: GPUSpec,
    padding: int = DEFAULT_PADDING,
) -> list[Eq2Candidate]:
    """All feasible Eq. 2 candidates, best score first."""
    cands = [
        eq2_score(problem, spec, bm, bn, warps, padding)
        for bm, bn, warps in _feasible_settings(problem, spec, padding)
    ]
    cands.sort(key=lambda c: c.score, reverse=True)
    return cands


def select_block_params(
    problem: AttentionProblem,
    spec: GPUSpec,
    padding: int = DEFAULT_PADDING,
    mode: str = "model",
) -> dict[str, Any]:
    """Block-wise kernel parameters by analytical selection.

    ``mode="paper"``: Eq. 2's arg-max.  ``mode="model"``: cheapest setting
    under the device cost model (still purely analytical).
    """
    if mode == "paper":
        best = eq2_candidates(problem, spec, padding)[0]
        return {
            "block_m": best.block_m,
            "block_n": best.block_n,
            "num_warps": best.num_warps,
            "padding": padding,
        }
    if mode == "model":
        kernel = BlockWiseKernel()
        best_params: dict[str, Any] | None = None
        best_t = math.inf
        for bm, bn, warps in _feasible_settings(problem, spec, padding):
            params = {
                "block_m": bm,
                "block_n": bn,
                "num_warps": warps,
                "padding": padding,
            }
            try:
                t = kernel.estimate_time(problem, spec, params)
            except ConfigError:
                continue  # infeasible launch (occupancy) — skip like a tuner
            if t < best_t:
                best_t, best_params = t, params
        if best_params is None:
            raise ConfigError("no feasible block-wise launch configuration")
        return best_params
    raise ConfigError(f"unknown selector mode {mode!r}")


def select_kernel(
    problem: AttentionProblem,
    spec: GPUSpec,
    tau: float = TAU,
    mode: str = "model",
) -> tuple[KernelChoice, dict[str, Any]]:
    """Pick the MHA kernel (and its parameters) for a problem.

    ``mode="paper"`` applies Eq. 1 verbatim; ``mode="model"`` compares the
    two kernels under the device cost model.  Returns
    ``(KernelChoice, params)``.
    """
    if mode == "paper":
        if eq1_threshold(problem, tau) < 0.0:
            kernel = RowWiseKernel()
            return KernelChoice.ROW_WISE, kernel.default_params(problem, spec)
        return KernelChoice.BLOCK_WISE, select_block_params(
            problem, spec, mode="paper"
        )

    if mode == "model":
        row = RowWiseKernel()
        row_params = row.default_params(problem, spec)
        block_params = select_block_params(problem, spec, mode="model")
        t_row = row.estimate_time(problem, spec, row_params)
        t_block = BlockWiseKernel().estimate_time(problem, spec, block_params)
        if t_row < t_block:
            return KernelChoice.ROW_WISE, row_params
        return KernelChoice.BLOCK_WISE, block_params

    raise ConfigError(f"unknown selector mode {mode!r}")


# --------------------------------------------------------------------- plans
#
# The selector is the compilation front-end of the plan layer: it turns an
# (problem, spec, mode, tau) query into a CompiledPlan, replayed from a
# PlanCache whenever the content-addressed key matches.  Kernels are
# stateless, so module-level instances are shared by every compiled plan.

_ROW = RowWiseKernel()
_BLOCK = BlockWiseKernel()


def kernel_for_choice(choice: KernelChoice | str) -> AttentionKernel:
    """The (shared, stateless) kernel object implementing a choice."""
    if not isinstance(choice, KernelChoice):
        choice = KernelChoice(choice)
    return _ROW if choice is KernelChoice.ROW_WISE else _BLOCK


def compile_attention_plan(
    problem: AttentionProblem,
    spec: GPUSpec,
    mode: str = "model",
    tau: float | None = None,
    cache: PlanCache | None = None,
    kind: str = "mha",
    family: "tuple | None" = None,
) -> CompiledPlan:
    """Select, parameterize, and price attention — once per plan key.

    The key's salt carries the selector settings (mode, tau), so plans
    compiled under different selection policies never alias.  A cache hit
    replays the exact prior decision (including its recorded analysis
    overhead); a miss runs the analytical selector and prices the chosen
    kernel's launches, identically to the historical ``UnifiedMHA.plan``.

    ``family`` is an optional ``(dims, shape, guards)`` triple (see
    :data:`repro.plan.planner.Family`) making the lookup guarded: callers
    that know the selector's decision is shape-stable over a region —
    e.g. ``nnz_blocks <= K`` keeps the block-wise choice — share one
    cached plan across every shape the guards admit instead of one per
    concrete key.  ``None`` (and ``dims=()``) is the exact concrete path.
    """
    eff_tau = TAU if tau is None else tau
    key = PlanKey.for_problem(
        kind, problem, spec, salt=f"select:{mode}:tau={eff_tau!r}"
    )

    def make() -> CompiledPlan:
        with current_tracer().span(
            "plan.attention", cat="planner", kind=kind, mode=mode,
            pattern=problem.pattern, batch=problem.batch,
            seq_len=problem.seq_len,
        ) as span:
            t0 = time.perf_counter()
            choice, params = select_kernel(problem, spec, tau=eff_tau, mode=mode)
            analysis_s = time.perf_counter() - t0
            kernel = kernel_for_choice(choice)
            launches = kernel.plan(problem, spec, params)
            est = sum(
                estimate_kernel_time(spec, cost, cfg).total for cost, cfg in launches
            )
            span.add(kernel=kernel.name).add_model_time(est)
        return CompiledPlan(
            kernel_name=kernel.name,
            choice=choice,
            params=params,
            launches=launches,
            estimated_s=est,
            analysis_overhead_s=analysis_s,
            key=key,
            kernel=kernel,
        )

    if cache is None:
        return make()
    if family is None:
        plan = cache.get_or_build(key, make)
    else:
        dims, shape, guards = family
        plan = cache.get_or_build_family(
            key, tuple(dims), shape, make, guards=guards
        )
    if not isinstance(plan.choice, KernelChoice) and plan.choice is not None:
        plan.choice = KernelChoice(plan.choice)   # rehydrate after warm start
    if plan.kernel is None and plan.choice is not None:
        plan.kernel = kernel_for_choice(plan.choice)
    return plan
