"""Common interface for attention kernel implementations.

Both STOF's kernels and the baseline strategies implement
:class:`AttentionKernel`: a ``plan`` that yields the kernel launches the
strategy would issue (for the simulated device) and a ``run`` that computes
real values (verified against :func:`repro.mha.reference.reference_attention`
in the tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError, UnsupportedInputError
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.mha.problem import AttentionProblem

Launch = tuple[KernelCost, LaunchConfig]

#: Functional execution backends.  ``"vectorized"`` executes the whole mask
#: traversal as flat gathered einsums with segmented reductions (the fast
#: default); ``"loop"`` is the original per-row/per-block Python traversal,
#: retained as the readable oracle the vectorized path is differentially
#: tested against; ``"codegen"`` emits Python source specialized to the
#: mask (:mod:`repro.codegen`) — bucket layout, strides, and chunk sizes
#: baked in as constants, dead branches eliminated — and executes the
#: cached generated module.  The choice only affects how ``run`` computes
#: values — ``plan``/counter output is backend-independent.
EXEC_BACKENDS = ("vectorized", "loop", "codegen")

#: Peak fp32 elements one vectorized gather stage may materialize at once;
#: the vectorized backends chunk their batched gathers below this bound.
#: 2**21 elements (8 MiB fp32) keeps each gather inside freshly-touched
#: pages / cache instead of page-faulting through hundreds of MB — measured
#: ~3x faster end-to-end than 2**25 chunks on the Fig. 10 sweep shapes.
GATHER_CHUNK_ELEMS = 1 << 21


class AttentionKernel(ABC):
    """One attention execution strategy."""

    name: str = "attention"

    def __init__(self, exec_backend: str = "vectorized"):
        if exec_backend not in EXEC_BACKENDS:
            raise ConfigError(
                f"unknown exec_backend {exec_backend!r}; known: {EXEC_BACKENDS}"
            )
        self.exec_backend = exec_backend

    def supports(self, problem: AttentionProblem) -> tuple[bool, str]:
        """Whether this strategy can run the problem; (ok, reason-if-not)."""
        return True, ""

    def check_supported(self, problem: AttentionProblem) -> None:
        ok, reason = self.supports(problem)
        if not ok:
            raise UnsupportedInputError(f"{self.name}: {reason}")

    @abstractmethod
    def plan(
        self,
        problem: AttentionProblem,
        spec: GPUSpec,
        params: dict[str, Any] | None = None,
    ) -> list[Launch]:
        """The sequence of kernel launches this strategy issues."""

    @abstractmethod
    def run(
        self, problem: AttentionProblem, params: dict[str, Any] | None = None
    ) -> np.ndarray:
        """Functionally compute the attention output (FP16)."""

    def param_space(self) -> dict[str, tuple]:
        """Tunable parameters (empty for fixed-strategy baselines)."""
        return {}

    def default_params(
        self, problem: AttentionProblem, spec: GPUSpec
    ) -> dict[str, Any]:
        return {k: v[0] for k, v in self.param_space().items()}

    def estimate_time(
        self,
        problem: AttentionProblem,
        spec: GPUSpec,
        params: dict[str, Any] | None = None,
    ) -> float:
        """Total simulated seconds of all launches in the plan."""
        from repro.gpu.cost import estimate_kernel_time

        return sum(
            estimate_kernel_time(spec, cost, config).total
            for cost, config in self.plan(problem, spec, params)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
