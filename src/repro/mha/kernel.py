"""Common interface for attention kernel implementations.

Both STOF's kernels and the baseline strategies implement
:class:`AttentionKernel`: a ``plan`` that yields the kernel launches the
strategy would issue (for the simulated device) and a ``run`` that computes
real values (verified against :func:`repro.mha.reference.reference_attention`
in the tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.core.errors import UnsupportedInputError
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.mha.problem import AttentionProblem

Launch = tuple[KernelCost, LaunchConfig]


class AttentionKernel(ABC):
    """One attention execution strategy."""

    name: str = "attention"

    def supports(self, problem: AttentionProblem) -> tuple[bool, str]:
        """Whether this strategy can run the problem; (ok, reason-if-not)."""
        return True, ""

    def check_supported(self, problem: AttentionProblem) -> None:
        ok, reason = self.supports(problem)
        if not ok:
            raise UnsupportedInputError(f"{self.name}: {reason}")

    @abstractmethod
    def plan(
        self,
        problem: AttentionProblem,
        spec: GPUSpec,
        params: dict[str, Any] | None = None,
    ) -> list[Launch]:
        """The sequence of kernel launches this strategy issues."""

    @abstractmethod
    def run(
        self, problem: AttentionProblem, params: dict[str, Any] | None = None
    ) -> np.ndarray:
        """Functionally compute the attention output (FP16)."""

    def param_space(self) -> dict[str, tuple]:
        """Tunable parameters (empty for fixed-strategy baselines)."""
        return {}

    def default_params(
        self, problem: AttentionProblem, spec: GPUSpec
    ) -> dict[str, Any]:
        return {k: v[0] for k, v in self.param_space().items()}

    def estimate_time(
        self,
        problem: AttentionProblem,
        spec: GPUSpec,
        params: dict[str, Any] | None = None,
    ) -> float:
        """Total simulated seconds of all launches in the plan."""
        from repro.gpu.cost import estimate_kernel_time

        return sum(
            estimate_kernel_time(spec, cost, config).total
            for cost, config in self.plan(problem, spec, params)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
