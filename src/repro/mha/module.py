"""The unified MHA facade (paper Fig. 5, left half).

:class:`UnifiedMHA` ties the pieces together: the analytical selector picks
row-wise vs block-wise and the block parameters, and the chosen kernel
serves both the functional ``run`` and the simulated ``plan``.  Planning
goes through :func:`repro.mha.selector.compile_attention_plan`, so the
returned plan is a :class:`repro.plan.CompiledPlan` (``MHAPlan`` remains
as an alias) and an optional shared :class:`repro.plan.PlanCache` replays
identical decisions instead of re-deriving them.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.specs import GPUSpec
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.problem import AttentionProblem
from repro.mha.rowwise import RowWiseKernel
from repro.mha.selector import compile_attention_plan
from repro.plan import CompiledPlan, PlanCache

#: Historical name for the attention plan record.  The plan layer unified
#: it with every other site's plan artifact; the fields consumers read
#: (choice, params, kernel, launches, estimated_s, analysis_overhead_s,
#: kernel_name) are unchanged.
MHAPlan = CompiledPlan


class UnifiedMHA:
    """STOF's unified MHA module.

    >>> from repro.gpu.specs import A100
    >>> prob = AttentionProblem.build("sliding_window", 1, 2, 64, 32,
    ...                               with_tensors=True)
    >>> mha = UnifiedMHA(A100)
    >>> plan = mha.plan(prob)
    >>> out = mha.run(prob)
    >>> out.shape
    (1, 2, 64, 32)
    """

    def __init__(
        self,
        spec: GPUSpec,
        tau: float | None = None,
        mode: str = "model",
        cache: PlanCache | None = None,
        exec_backend: str = "vectorized",
    ):
        self.spec = spec
        self.tau = tau
        self.mode = mode
        self.cache = cache
        self.exec_backend = exec_backend
        self._row = RowWiseKernel(exec_backend=exec_backend)
        self._block = BlockWiseKernel(exec_backend=exec_backend)

    def plan(self, problem: AttentionProblem) -> MHAPlan:
        """Select kernel + parameters and price the launches (cached)."""
        return compile_attention_plan(
            problem,
            self.spec,
            mode=self.mode,
            tau=self.tau,
            cache=self.cache,
        )

    def run(self, problem: AttentionProblem) -> np.ndarray:
        """Functionally execute with the selected kernel.

        The plan's kernel choice is honoured, but execution goes through
        this module's own kernel instances so ``exec_backend`` applies even
        when the plan was compiled (or cache-replayed) elsewhere.
        """
        plan = self.plan(problem)
        own = {self._row.name: self._row, self._block.name: self._block}
        kernel = own.get(plan.kernel_name, plan.kernel)
        return kernel.run(problem, plan.params)
