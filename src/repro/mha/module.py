"""The unified MHA facade (paper Fig. 5, left half).

:class:`UnifiedMHA` ties the pieces together: the analytical selector picks
row-wise vs block-wise and the block parameters, and the chosen kernel
serves both the functional ``run`` and the simulated ``plan``.  The
``MHAPlan`` it returns records the decision for introspection (the ablation
and overhead benchmarks read these fields).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.gpu.specs import GPUSpec
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.kernel import AttentionKernel, Launch
from repro.mha.problem import AttentionProblem
from repro.mha.rowwise import RowWiseKernel
from repro.mha.selector import KernelChoice, select_kernel


@dataclass
class MHAPlan:
    """The resolved execution plan for one attention problem."""

    choice: KernelChoice
    params: dict[str, Any]
    kernel: AttentionKernel
    launches: list[Launch]
    estimated_s: float
    analysis_overhead_s: float   # host-side time spent in the analytical model

    @property
    def kernel_name(self) -> str:
        return self.kernel.name


class UnifiedMHA:
    """STOF's unified MHA module.

    >>> from repro.gpu.specs import A100
    >>> prob = AttentionProblem.build("sliding_window", 1, 2, 64, 32,
    ...                               with_tensors=True)
    >>> mha = UnifiedMHA(A100)
    >>> plan = mha.plan(prob)
    >>> out = mha.run(prob)
    >>> out.shape
    (1, 2, 64, 32)
    """

    def __init__(self, spec: GPUSpec, tau: float | None = None, mode: str = "model"):
        self.spec = spec
        self.tau = tau
        self.mode = mode
        self._row = RowWiseKernel()
        self._block = BlockWiseKernel()

    def plan(self, problem: AttentionProblem) -> MHAPlan:
        """Select kernel + parameters and price the launches."""
        t0 = time.perf_counter()
        kwargs = {} if self.tau is None else {"tau": self.tau}
        choice, params = select_kernel(problem, self.spec, mode=self.mode, **kwargs)
        analysis_s = time.perf_counter() - t0

        kernel = self._row if choice is KernelChoice.ROW_WISE else self._block
        launches = kernel.plan(problem, self.spec, params)
        from repro.gpu.cost import estimate_kernel_time

        est = sum(
            estimate_kernel_time(self.spec, c, cfg).total for c, cfg in launches
        )
        return MHAPlan(
            choice=choice,
            params=params,
            kernel=kernel,
            launches=launches,
            estimated_s=est,
            analysis_overhead_s=analysis_s,
        )

    def run(self, problem: AttentionProblem) -> np.ndarray:
        """Functionally execute with the selected kernel."""
        plan = self.plan(problem)
        return plan.kernel.run(problem, plan.params)
