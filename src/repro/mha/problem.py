"""The attention problem bundle shared by every MHA kernel.

:class:`AttentionProblem` describes either a *symbolic* problem (shapes and
mask only — what the benchmark harness builds at paper scale) or a *concrete*
one (with Q/K/V arrays — what the tests and examples run functionally).  It
caches the mask's derived views (BSR at arbitrary block sizes, element-level
CSR, sparsity statistics) so kernels and the selector share one analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.core.rng import RngStream
from repro.masks.bsr import BlockSparseMask
from repro.masks.patterns import make_pattern
from repro.masks.stats import classify_distribution


@dataclass
class AttentionProblem:
    """One MHA computation: shapes, mask, and optional concrete tensors.

    ``mask`` is the shared ``(seq_len, seq_len)`` boolean pattern applied to
    every batch and head (the paper's setting).  ``pattern`` carries the
    generator name when known, which lets baselines that special-case
    certain patterns (FlashAttention's causal/sliding fast paths) recognise
    them the way their real implementations do.
    """

    batch: int
    heads: int
    seq_len: int
    head_size: int
    mask: np.ndarray
    pattern: str = "custom"
    kv_seq_len: int | None = None   # key/value length; None = seq_len

    q: np.ndarray | None = None
    k: np.ndarray | None = None
    v: np.ndarray | None = None

    _bsr_cache: dict[tuple[int, int], BlockSparseMask] = field(
        default_factory=dict, repr=False
    )
    _csr_cache: tuple[np.ndarray, np.ndarray] | None = field(default=None, repr=False)
    _mask_fp: str | None = field(default=None, repr=False)
    _contig_cache: float | None = field(default=None, repr=False)
    _f32_cache: tuple | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if min(self.batch, self.heads, self.seq_len, self.head_size) < 1:
            raise ConfigError(
                f"all dims must be >= 1: batch={self.batch}, heads={self.heads}, "
                f"seq_len={self.seq_len}, head_size={self.head_size}"
            )
        if self.kv_seq_len is None:
            self.kv_seq_len = self.seq_len
        if self.kv_seq_len < 1:
            raise ConfigError(f"kv_seq_len must be >= 1, got {self.kv_seq_len}")
        self.mask = np.asarray(self.mask)
        if self.mask.shape != (self.seq_len, self.kv_seq_len):
            raise ConfigError(
                f"mask shape {self.mask.shape} does not match "
                f"(seq_len, kv_seq_len) = ({self.seq_len}, {self.kv_seq_len})"
            )
        if self.mask.dtype != bool:
            self.mask = self.mask.astype(bool)
        expected = {"q": self.qkv_shape, "k": self.kv_shape, "v": self.kv_shape}
        for name in ("q", "k", "v"):
            t = getattr(self, name)
            if t is not None and t.shape != expected[name]:
                raise ConfigError(
                    f"{name} shape {t.shape} does not match expected {expected[name]}"
                )

    # ---------------------------------------------------------- constructors

    @classmethod
    def build(
        cls,
        pattern: str,
        batch: int,
        heads: int,
        seq_len: int,
        head_size: int,
        rng: RngStream | None = None,
        with_tensors: bool = False,
        **pattern_overrides,
    ) -> "AttentionProblem":
        """Construct a problem from a registered mask pattern.

        Band/global widths default to the paper's ``sqrt(seq_len)``.  With
        ``with_tensors=True``, Q/K/V are sampled standard-normal in FP16.
        """
        rng = rng or RngStream()
        mask = make_pattern(pattern, seq_len, rng=rng.fork(f"mask-{pattern}"), **pattern_overrides)
        prob = cls(
            batch=batch,
            heads=heads,
            seq_len=seq_len,
            head_size=head_size,
            mask=mask,
            pattern=pattern,
        )
        if with_tensors:
            data = rng.fork("qkv")
            prob.q = (data.standard_normal(prob.qkv_shape) * 0.5).astype(np.float16)
            prob.k = (data.standard_normal(prob.kv_shape) * 0.5).astype(np.float16)
            prob.v = (data.standard_normal(prob.kv_shape) * 0.5).astype(np.float16)
        return prob

    # -------------------------------------------------------------- geometry

    @property
    def qkv_shape(self) -> tuple[int, int, int, int]:
        """Query (and output) tensor shape."""
        return (self.batch, self.heads, self.seq_len, self.head_size)

    @property
    def kv_shape(self) -> tuple[int, int, int, int]:
        """Key/value tensor shape (differs from Q in decode problems)."""
        return (self.batch, self.heads, self.kv_seq_len, self.head_size)

    @property
    def is_rectangular(self) -> bool:
        return self.kv_seq_len != self.seq_len

    @property
    def n_bh(self) -> int:
        """Flattened batch*heads parallel dimension."""
        return self.batch * self.heads

    @property
    def scale(self) -> float:
        """Score scaling factor ``1 / sqrt(head_size)``."""
        return 1.0 / float(np.sqrt(self.head_size))

    @property
    def qkv_bytes(self) -> int:
        """Device bytes of Q (== bytes of the output)."""
        return self.n_bh * self.seq_len * self.head_size * FP16_BYTES

    @property
    def kv_bytes(self) -> int:
        """Device bytes of one of K/V."""
        return self.n_bh * self.kv_seq_len * self.head_size * FP16_BYTES

    @property
    def scores_bytes(self) -> int:
        """Device bytes of the dense score matrix S (what baselines spill)."""
        return self.n_bh * self.seq_len * self.kv_seq_len * FP16_BYTES

    # ------------------------------------------------------------ mask views

    def bsr(self, block_m: int, block_n: int) -> BlockSparseMask:
        """BSR view of the mask at a block granularity (cached)."""
        key = (int(block_m), int(block_n))
        if key not in self._bsr_cache:
            self._bsr_cache[key] = BlockSparseMask.from_dense(self.mask, *key)
        return self._bsr_cache[key]

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Element-level CSR (row_ptr, col_idx) of the mask (cached).

        This is the row-wise kernel's storage format.  Both arrays are
        ``int32``, matching the BSR views (an attention mask is at most
        ~4k x ~4k here, so nnz stays far below the int32 ceiling).
        """
        if self._csr_cache is None:
            row_ptr = np.zeros(self.seq_len + 1, dtype=np.int32)
            np.cumsum(self.mask.sum(axis=1), out=row_ptr[1:])
            col_idx = np.flatnonzero(self.mask.ravel()) % self.kv_seq_len
            self._csr_cache = (row_ptr, col_idx.astype(np.int32))
        return self._csr_cache

    def staged_f32(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pre-scaled Q and K/V as flat FP32 compute arrays (cached).

        Every execution backend needs the same staging — Q upcast fused
        with the ``1/sqrt(d)`` score scale, K/V upcast, all flattened to
        ``(batch*heads, len, head_size)``.  On small problems that staging
        rivals the kernel math itself, so it is memoized alongside the
        other derived views (tensors, like the mask, are treated as
        immutable once attached; re-assigning ``q`` invalidates the cache).
        """
        if self._f32_cache is None or self._f32_cache[0] is not self.q:
            if self.q is None:
                raise ConfigError(
                    "problem has no tensors; build with with_tensors=True"
                )
            n_bh, d = self.n_bh, self.head_size
            q = np.multiply(
                self.q.reshape(n_bh, self.seq_len, d), np.float32(self.scale),
                dtype=np.float32,
            )
            k = self.k.reshape(n_bh, self.kv_seq_len, d).astype(np.float32)
            v = self.v.reshape(n_bh, self.kv_seq_len, d).astype(np.float32)
            self._f32_cache = (self.q, q, k, v)
        return self._f32_cache[1:]

    def contiguous_row_fraction(self) -> float:
        """Fraction of non-empty mask rows forming one contiguous run (cached).

        The row-wise kernel's gather-efficiency term rescans the dense mask
        for this on every ``plan()`` otherwise; memoizing it follows the
        ``_bsr_cache``/``_csr_cache`` pattern.
        """
        if self._contig_cache is None:
            from repro.masks.stats import contiguous_row_fraction

            self._contig_cache = contiguous_row_fraction(self.mask)
        return self._contig_cache

    def mask_fingerprint(self) -> str:
        """Content hash of the mask (cached) — the plan layer's guard.

        Equal fingerprints mean element-wise identical masks, so a plan
        replayed under this fingerprint is exact, not approximate.
        """
        if self._mask_fp is None:
            from repro.plan.key import mask_fingerprint

            self._mask_fp = mask_fingerprint(self.mask)
        return self._mask_fp

    @property
    def nnz(self) -> int:
        """Attended element count of the mask."""
        row_ptr, _ = self.csr()
        return int(row_ptr[-1])

    @property
    def density(self) -> float:
        return self.nnz / (self.seq_len * self.kv_seq_len)

    def column_distribution_continuous(self) -> bool:
        """Whether the mask's columns are continuous runs (FlashMask's gate)."""
        _, col = classify_distribution(self.mask)
        return col == "continuous"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AttentionProblem({self.pattern}, b={self.batch}, h={self.heads}, "
            f"s={self.seq_len}, d={self.head_size}, density={self.density:.3f})"
        )
