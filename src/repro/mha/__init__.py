"""Unified multi-head attention module (paper §4.2).

The package provides:

* :mod:`repro.mha.problem` — :class:`AttentionProblem`, the (Q, K, V, mask)
  bundle every kernel consumes, with cached BSR/CSR views of the mask.
* :mod:`repro.mha.reference` — the dense ground-truth attention all kernels
  are verified against.
* :mod:`repro.mha.rowwise` — the row-wise kernel (warp-per-row, shuffle
  reductions, no inter-warp synchronization; wins at small inputs).
* :mod:`repro.mha.blockwise` — the block-wise kernel (BSR block skipping,
  online softmax, wmma tiling, bank-conflict-free padding, async-copy
  pipelining; wins at scale).
* :mod:`repro.mha.selector` — the analytical model: Eq. 1 picks the kernel,
  Eq. 2 picks ``BLOCK_M / BLOCK_N / num_warps``.
* :mod:`repro.mha.module` — :class:`UnifiedMHA`, the user-facing facade.
* :mod:`repro.mha.baselines` — re-implementations of the comparison
  methods' attention strategies (Native, FlashAttention2, FlexAttention,
  FlashMask, ByteTransformer).
"""

from repro.mha.problem import AttentionProblem
from repro.mha.reference import reference_attention
from repro.mha.rowwise import RowWiseKernel
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.selector import (
    KernelChoice,
    compile_attention_plan,
    eq1_threshold,
    eq2_score,
    select_kernel,
    select_block_params,
)
from repro.mha.module import UnifiedMHA, MHAPlan
from repro.mha.decode import DecodeReport, decode_step_problem, simulate_decode
from repro.mha.varlen import VarLenBatch, packed_varlen_problem, padded_problem

__all__ = [
    "AttentionProblem",
    "reference_attention",
    "RowWiseKernel",
    "BlockWiseKernel",
    "KernelChoice",
    "compile_attention_plan",
    "eq1_threshold",
    "eq2_score",
    "select_kernel",
    "select_block_params",
    "UnifiedMHA",
    "MHAPlan",
    "DecodeReport",
    "decode_step_problem",
    "simulate_decode",
    "VarLenBatch",
    "packed_varlen_problem",
    "padded_problem",
]
