"""Dense reference attention — the ground truth for every kernel.

Computes scaled-dot-product attention with an arbitrary boolean mask in
FP32 and rounds to FP16 at the end.  Rows with no attended position produce
an all-zero output row; every kernel in this package and every baseline
follows the same convention, so cross-implementation equality tests are
exact up to FP16 rounding.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import to_fp16
from repro.mha.problem import AttentionProblem


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    scale: float | None = None,
) -> np.ndarray:
    """Masked SDPA: ``softmax(mask(Q K^T * scale)) V`` in FP32, output FP16.

    ``q/k/v`` are ``(..., seq_len, head_size)``; ``mask`` is a boolean
    ``(seq_len, seq_len)`` broadcast over leading dims.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    mask = np.asarray(mask, dtype=bool)
    seq_len, head_size = q.shape[-2], q.shape[-1]
    if mask.shape != (seq_len, k.shape[-2]):
        raise ConfigError(
            f"mask shape {mask.shape} incompatible with q {q.shape}, k {k.shape}"
        )
    if scale is None:
        scale = 1.0 / float(np.sqrt(head_size))

    scores = (q @ np.swapaxes(k, -1, -2)) * scale
    scores = np.where(mask, scores, -np.inf)

    # Stable softmax with the all-masked-row -> zeros convention.
    row_max = scores.max(axis=-1, keepdims=True)
    finite = np.isfinite(row_max)
    safe_max = np.where(finite, row_max, 0.0)
    ex = np.exp(scores - safe_max)
    ex = np.where(np.isfinite(scores), ex, 0.0)
    denom = ex.sum(axis=-1, keepdims=True)
    probs = np.divide(ex, denom, out=np.zeros_like(ex), where=denom > 0)
    return to_fp16(probs @ v)


def solve_reference(problem: AttentionProblem) -> np.ndarray:
    """Run the reference on a concrete :class:`AttentionProblem`."""
    if problem.q is None or problem.k is None or problem.v is None:
        raise ConfigError("problem has no concrete tensors; build with with_tensors=True")
    return reference_attention(
        problem.q, problem.k, problem.v, problem.mask, problem.scale
    )
