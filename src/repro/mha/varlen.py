"""Variable-length batching (extension; ByteTransformer's home turf).

Serving batches mix sequence lengths.  The classic strategy *pads* every
sequence to the batch maximum and wastes work on padding tokens; the
modern strategy *packs* sequences back to back and runs one attention over
a block-diagonal mask (FlashAttention's ``cu_seqlens`` view).

STOF needs no special path for packing: the block-diagonal ∧ pattern mask
is just another arbitrary mask, and the BSR format's block skipping
automatically avoids every cross-sequence block.  This module builds both
formulations so their costs (and numerics) can be compared:

* :func:`packed_varlen_problem` — one batch-1 problem over the packed
  mask, with ``cu_seqlens`` offsets,
* :func:`padded_problem` — the pad-to-max baseline,
* :func:`padding_waste` — the fraction of padded work that is pure waste.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.rng import RngStream
from repro.masks.patterns import PATTERN_REGISTRY, make_pattern
from repro.mha.problem import AttentionProblem


@dataclass(frozen=True)
class VarLenBatch:
    """A batch of sequences with individual lengths."""

    lengths: tuple[int, ...]
    heads: int
    head_size: int
    pattern: str = "causal"

    def __post_init__(self) -> None:
        if not self.lengths or any(l < 1 for l in self.lengths):
            raise ConfigError(f"lengths must be positive, got {self.lengths}")

    @property
    def total_tokens(self) -> int:
        return int(sum(self.lengths))

    @property
    def max_len(self) -> int:
        return int(max(self.lengths))

    @property
    def cu_seqlens(self) -> np.ndarray:
        """Cumulative offsets of each sequence in the packed layout."""
        return np.concatenate([[0], np.cumsum(self.lengths)]).astype(np.int64)


def packed_varlen_mask(
    batch: VarLenBatch, rng: RngStream | None = None, **overrides
) -> np.ndarray:
    """Block-diagonal mask: each sequence gets its own pattern instance.

    >>> b = VarLenBatch((2, 3), heads=1, head_size=8, pattern="causal")
    >>> packed_varlen_mask(b).astype(int)
    array([[1, 0, 0, 0, 0],
           [1, 1, 0, 0, 0],
           [0, 0, 1, 0, 0],
           [0, 0, 1, 1, 0],
           [0, 0, 1, 1, 1]])
    """
    rng = rng or RngStream().fork("varlen")
    total = batch.total_tokens
    mask = np.zeros((total, total), dtype=bool)
    offsets = batch.cu_seqlens
    # Deterministic patterns ignore their rng fork, so equal-length
    # sequences produce identical tiles — build each length once.  Random
    # patterns keep their per-sequence forks (each tile is distinct).
    spec = PATTERN_REGISTRY.get(batch.pattern)
    deterministic = spec is not None and not spec.uses_randomness
    tiles: dict[int, np.ndarray] = {}
    for i, length in enumerate(batch.lengths):
        s, e = int(offsets[i]), int(offsets[i + 1])
        if deterministic:
            if length not in tiles:
                tiles[length] = make_pattern(
                    batch.pattern, length, rng=rng.fork(f"seq-{i}"), **overrides
                )
            mask[s:e, s:e] = tiles[length]
        else:
            mask[s:e, s:e] = make_pattern(
                batch.pattern, length, rng=rng.fork(f"seq-{i}"), **overrides
            )
    return mask


def packed_varlen_problem(
    batch: VarLenBatch,
    rng: RngStream | None = None,
    with_tensors: bool = False,
    **overrides,
) -> AttentionProblem:
    """One packed attention problem over the block-diagonal mask."""
    rng = rng or RngStream().fork("varlen")
    mask = packed_varlen_mask(batch, rng=rng, **overrides)
    prob = AttentionProblem(
        batch=1,
        heads=batch.heads,
        seq_len=batch.total_tokens,
        head_size=batch.head_size,
        mask=mask,
        pattern="varlen-packed",
    )
    if with_tensors:
        data = rng.fork("qkv")
        prob.q = (data.standard_normal(prob.qkv_shape) * 0.5).astype(np.float16)
        prob.k = (data.standard_normal(prob.kv_shape) * 0.5).astype(np.float16)
        prob.v = (data.standard_normal(prob.kv_shape) * 0.5).astype(np.float16)
    return prob


def padded_problem(
    batch: VarLenBatch, rng: RngStream | None = None, **overrides
) -> AttentionProblem:
    """The pad-to-max baseline: every sequence computed at ``max_len``.

    The shared mask is the pattern at ``max_len``; padding tokens do real
    work — exactly the waste padding-free execution removes.
    """
    rng = rng or RngStream().fork("varlen-padded")
    mask = make_pattern(
        batch.pattern, batch.max_len, rng=rng.fork("pad"), **overrides
    )
    return AttentionProblem(
        batch=len(batch.lengths),
        heads=batch.heads,
        seq_len=batch.max_len,
        head_size=batch.head_size,
        mask=mask,
        pattern=batch.pattern,
    )


def padding_waste(batch: VarLenBatch) -> float:
    """Fraction of padded tokens that are padding.

    >>> padding_waste(VarLenBatch((64, 128), 1, 8))
    0.25
    """
    padded = len(batch.lengths) * batch.max_len
    return 1.0 - batch.total_tokens / padded


def split_packed_output(
    batch: VarLenBatch, packed_out: np.ndarray
) -> list[np.ndarray]:
    """Slice a packed kernel output back into per-sequence tensors.

    ``packed_out`` is ``(1, heads, total_tokens, head_size)``; returns a
    list of ``(heads, length_i, head_size)`` arrays.
    """
    if packed_out.shape[2] != batch.total_tokens:
        raise ConfigError(
            f"packed output has {packed_out.shape[2]} tokens, batch has "
            f"{batch.total_tokens}"
        )
    offsets = batch.cu_seqlens
    return [
        packed_out[0, :, int(offsets[i]) : int(offsets[i + 1]), :]
        for i in range(len(batch.lengths))
    ]
