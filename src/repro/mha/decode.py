"""KV-cache autoregressive decoding (extension beyond the paper's eval).

The paper benchmarks full forward passes; generative inference instead
issues one-query-row attention against a growing key/value cache.  This
module models that regime on the same substrate:

* each step is a *rectangular* :class:`~repro.mha.problem.AttentionProblem`
  with ``seq_len = 1`` and ``kv_seq_len = t``,
* the step mask is the ``t``-th row of the (causal ∧ pattern) mask, so a
  sliding-window pattern bounds per-step work by the window size — decode
  cost becomes O(window) instead of O(t),
* STOF's row-wise kernel is the natural decode kernel (a single query row
  is precisely its specialty); baselines run their usual strategies on
  the same rectangular problems.

:func:`simulate_decode` prices a whole generation loop and reports
simulated tokens/second; ``benchmarks/bench_decode.py`` turns this into a
GPT-decode study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.rng import RngStream
from repro.gpu.specs import GPUSpec
from repro.masks.patterns import causal_mask, make_pattern
from repro.mha.baselines import FlashAttention2Attention, NaiveAttention
from repro.mha.kernel import AttentionKernel
from repro.mha.problem import AttentionProblem
from repro.mha.rowwise import RowWiseKernel


@dataclass
class DecodeReport:
    """Outcome of one simulated generation loop."""

    method: str
    pattern: str
    batch: int
    heads: int
    head_size: int
    prompt_len: int
    generated: int
    total_s: float
    step_times_s: list[float] = field(repr=False, default_factory=list)

    @property
    def tokens_per_s(self) -> float:
        return self.generated * self.batch / self.total_s if self.total_s else 0.0

    @property
    def mean_step_s(self) -> float:
        return self.total_s / max(1, len(self.step_times_s))


#: Decode strategies: name -> kernel factory.
DECODE_METHODS = {
    "stof": RowWiseKernel,
    "pytorch-native": NaiveAttention,
    "flashattention2": FlashAttention2Attention,
}


def decode_step_problem(
    full_mask: np.ndarray,
    t: int,
    batch: int,
    heads: int,
    head_size: int,
    pattern: str = "custom",
) -> AttentionProblem:
    """The rectangular problem of generating token ``t`` (0-indexed row).

    ``full_mask`` is the (max_len, max_len) causal ∧ pattern matrix; the
    step attends the first ``t+1`` cached positions through row ``t``.
    """
    if not (0 <= t < full_mask.shape[0]):
        raise ConfigError(f"step {t} outside mask of {full_mask.shape[0]} rows")
    row = np.asarray(full_mask[t : t + 1, : t + 1], dtype=bool)
    return AttentionProblem(
        batch=batch,
        heads=heads,
        seq_len=1,
        head_size=head_size,
        mask=row,
        pattern=pattern,
        kv_seq_len=t + 1,
    )


def simulate_decode(
    pattern: str,
    spec: GPUSpec,
    method: str = "stof",
    batch: int = 1,
    heads: int = 12,
    head_size: int = 64,
    prompt_len: int = 128,
    generate: int = 128,
    rng: RngStream | None = None,
    dispatch_s: float = 1e-6,
    **pattern_overrides,
) -> DecodeReport:
    """Price a full generation loop under one attention strategy.

    The pattern mask is built once at ``prompt_len + generate`` and each
    step slices its row — exactly how a static sparse pattern is deployed
    for generation.
    """
    if method not in DECODE_METHODS:
        raise ConfigError(
            f"unknown decode method {method!r}; known: {sorted(DECODE_METHODS)}"
        )
    rng = rng or RngStream()
    max_len = prompt_len + generate
    full_mask = make_pattern(
        pattern, max_len, rng=rng.fork(f"decode-{pattern}"), **pattern_overrides
    ) & causal_mask(max_len)

    kernel: AttentionKernel = DECODE_METHODS[method]()
    from repro.gpu.cost import estimate_kernel_time

    step_times: list[float] = []
    for t in range(prompt_len, max_len):
        problem = decode_step_problem(
            full_mask, t, batch, heads, head_size, pattern
        )
        step = sum(
            estimate_kernel_time(spec, cost, config).total
            + dispatch_s * cost.launches
            for cost, config in kernel.plan(problem, spec)
        )
        step_times.append(step)

    return DecodeReport(
        method=method,
        pattern=pattern,
        batch=batch,
        heads=heads,
        head_size=head_size,
        prompt_len=prompt_len,
        generated=generate,
        total_s=sum(step_times),
        step_times_s=step_times,
    )


def verify_decode_step(
    pattern: str,
    t: int,
    max_len: int,
    rng: RngStream | None = None,
    batch: int = 1,
    heads: int = 2,
    head_size: int = 16,
) -> bool:
    """Functional check: a decode step equals row ``t`` of the full pass.

    Runs the row-wise kernel on the rectangular step problem and compares
    against the corresponding output row of a full square attention over
    the same tensors.
    """
    from repro.core.fp16 import fp16_allclose
    from repro.mha.reference import reference_attention

    rng = rng or RngStream()
    full_mask = make_pattern(pattern, max_len, rng=rng.fork("vm")) & causal_mask(max_len)
    data = rng.fork("vd")
    q_full = (data.standard_normal((batch, heads, max_len, head_size)) * 0.5).astype(
        np.float16
    )
    k_full = (data.standard_normal((batch, heads, max_len, head_size)) * 0.5).astype(
        np.float16
    )
    v_full = (data.standard_normal((batch, heads, max_len, head_size)) * 0.5).astype(
        np.float16
    )

    problem = decode_step_problem(full_mask, t, batch, heads, head_size, pattern)
    problem.q = q_full[:, :, t : t + 1, :]
    problem.k = k_full[:, :, : t + 1, :]
    problem.v = v_full[:, :, : t + 1, :]
    step_out = RowWiseKernel().run(problem)

    full_out = reference_attention(q_full, k_full, v_full, full_mask)
    return fp16_allclose(step_out[:, :, 0, :], full_out[:, :, t, :])
