"""The row-wise sparse attention kernel (paper §4.2).

"The row-wise kernel slices Q into rows to achieve high locality … applies
shuffle within a warp and eliminates the synchronization among warps,
improving performance at small input sizes."

Strategy: one warp per query row.  The mask is stored element-level CSR
(``row_ptr`` / ``col_idx``); the warp gathers only the attended K columns,
reduces the softmax statistics with register shuffles (no SMEM, no
``__syncthreads``), and accumulates the weighted V sum in registers.  The
dot products run on CUDA cores (a single row cannot feed a wmma tile), which
is exactly why this kernel loses at scale and wins at tiny inputs: zero
barrier cost and a grid of ``batch*heads*seq_len`` rows that fills the GPU
even at batch 1.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES, to_fp16
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.masks.stats import contiguous_row_fraction as _contiguous_row_fraction
from repro.mha.kernel import GATHER_CHUNK_ELEMS, AttentionKernel, Launch
from repro.mha.problem import AttentionProblem
from repro.obs.metrics import current_metrics

#: Extra SIMT work per attended element: score scale, exp, shuffle
#: reductions for max/sum, and the final rescale.
SIMT_FLOPS_PER_ELEM = 10.0

#: Gathered (non-coalesced) loads achieve a fraction of streaming bandwidth.
#: Rows whose attended columns form one contiguous run (bands, causal) load
#: K/V as coalesced streams — "the concentration of mask elements brings
#: excellent data locality" — while scattered rows pay the gather tax.
GATHER_EFFICIENCY_SCATTERED = 0.5
GATHER_EFFICIENCY_CONTIGUOUS = 1.0

#: Vectorized-backend row grouping: consecutive non-empty rows are processed
#: ``ROW_GROUP`` at a time; a group takes the no-gather contiguous-slice path
#: when its attended columns span at most ``DENSE_RANGE_FACTOR`` times the
#: longest row's nnz (or the head size, for tiny rows) — the host-side mirror
#: of the kernel's coalesced-vs-scattered load split above.  The factor is
#: large because a dense-range column costs a few streamed-BLAS/exp
#: nanoseconds while a gathered lane costs two ``head_size``-vector fancy
#: gathers (~an order of magnitude more) — measured crossover is near 16.
ROW_GROUP = 64
DENSE_RANGE_FACTOR = 16


def plan_rowwise_launches(
    spec: GPUSpec,
    *,
    num_warps: int,
    n_bh: int,
    seq_len: int,
    kv_seq_len: int,
    head_size: int,
    nnz: int,
    contiguous_fraction: float,
    kernel_name: str = "stof-rowwise",
) -> list[Launch]:
    """Price the row-wise kernel from aggregate mask statistics alone.

    The kernel's cost depends on the mask only through ``nnz`` and the
    contiguous-row fraction, so callers that already know those (the
    serving engine composes them per packed decode row from cached
    per-request statistics) can plan without materializing the mask.
    ``RowWiseKernel.plan`` derives the statistics and delegates here; the
    arithmetic below is the single source of truth for both paths.
    """
    rows_total = n_bh * seq_len
    base_grid = max(1, math.ceil(rows_total / num_warps))
    d = head_size

    # Flash-decoding-style KV split: when there are too few query rows
    # to fill the device (the KV-cache decode regime), each row's
    # attended set is chunked across additional blocks, with a small
    # second kernel merging the partial softmax states.  Exact math
    # (online-softmax merge), so run() is unchanged.
    avg_nnz = nnz / max(1, seq_len)
    split = 1
    if base_grid < spec.sm_count and avg_nnz > 64:
        want = math.ceil(2 * spec.sm_count / base_grid)
        split = max(1, min(want, math.ceil(avg_nnz / 64)))
    grid = base_grid * split

    q_bytes = n_bh * seq_len * d * FP16_BYTES
    out_bytes = q_bytes
    # Gathered K and V loads: one (head_size)-vector per attended element.
    kv_gather = n_bh * nnz * d * FP16_BYTES * 2.0
    kv_resident = 2.0 * (n_bh * kv_seq_len * d * FP16_BYTES)
    kv_first = min(kv_gather, kv_resident)
    kv_reread = kv_gather - kv_first
    # Gather inefficiency: charge the tax as extra DRAM volume, weighted
    # by how contiguous the per-row column sets are.
    efficiency = (
        contiguous_fraction * GATHER_EFFICIENCY_CONTIGUOUS
        + (1.0 - contiguous_fraction) * GATHER_EFFICIENCY_SCATTERED
    )
    gather_tax = kv_first * (1.0 / efficiency - 1.0)
    meta_bytes = (seq_len + 1) * 8 + nnz * 4   # int64 row_ptr + int32 col_idx
    if kv_resident <= spec.l2_bytes:
        dram_read = q_bytes + kv_first + gather_tax + meta_bytes
        l2_read = kv_reread
    else:
        dram_read = q_bytes + (kv_gather + gather_tax) + meta_bytes
        l2_read = 0.0

    flops = n_bh * nnz * (4.0 * d + SIMT_FLOPS_PER_ELEM)
    launches = 1
    if split > 1:
        # Partial (m, l, acc) states spill to global and a reduce kernel
        # folds them: one FP32 (d + 2)-vector per (row, chunk).
        partial_bytes = rows_total * split * (d + 2) * 4.0
        dram_read += partial_bytes
        out_bytes += partial_bytes
        flops += rows_total * split * (3.0 * d + 8.0)  # merge math
        launches = 2

    cost = KernelCost(
        name=kernel_name,
        bytes_dram_read=dram_read,
        bytes_dram_written=out_bytes,
        bytes_l2_read=l2_read,
        bytes_smem=0.0,            # registers + shuffle only
        bank_conflict_factor=1.0,
        flops_tensor=0.0,          # a single row cannot feed wmma tiles
        flops_simt=flops,          # QK dot + PV acc + softmax (+ merge)
        sync_rounds=0.0,           # no inter-warp synchronization
        launches=launches,
    )
    config = LaunchConfig(
        grid_blocks=grid,
        warps_per_block=num_warps,
        smem_per_block=0,
        pipelined=True,
    )
    return [(cost, config)]


class RowWiseKernel(AttentionKernel):
    """STOF's warp-per-row kernel for small, concentrated masks."""

    name = "stof-rowwise"

    def param_space(self) -> dict[str, tuple]:
        return {"num_warps": (4, 1, 2, 8)}

    def default_params(self, problem: AttentionProblem, spec: GPUSpec) -> dict[str, Any]:
        return {"num_warps": 4}

    # ------------------------------------------------------------------ plan

    def plan(
        self,
        problem: AttentionProblem,
        spec: GPUSpec,
        params: dict[str, Any] | None = None,
    ) -> list[Launch]:
        p = params or self.default_params(problem, spec)
        return plan_rowwise_launches(
            spec,
            num_warps=p["num_warps"],
            n_bh=problem.n_bh,
            seq_len=problem.seq_len,
            kv_seq_len=problem.kv_seq_len,
            head_size=problem.head_size,
            nnz=problem.nnz,
            contiguous_fraction=problem.contiguous_row_fraction(),
            kernel_name=self.name,
        )

    # ------------------------------------------------------------------- run

    def run(
        self, problem: AttentionProblem, params: dict[str, Any] | None = None
    ) -> np.ndarray:
        if problem.q is None:
            raise ConfigError("problem has no tensors; build with with_tensors=True")
        row_ptr, col_idx = problem.csr()
        q, k, v = problem.staged_f32()

        if self.exec_backend == "loop":
            out = self._run_loop(row_ptr, col_idx, q, k, v)
        elif self.exec_backend == "codegen":
            from repro.codegen.backend import run_rowwise

            out = run_rowwise(problem, row_ptr, col_idx, q, k, v)
        else:
            out = self._run_vectorized(row_ptr, col_idx, problem.mask, q, k, v)
        return to_fp16(out.reshape(problem.qkv_shape))

    def _run_loop(self, row_ptr, col_idx, q, k, v) -> np.ndarray:
        """Oracle backend: one Python iteration per query row."""
        n_bh, seq, d = q.shape
        out = np.zeros((n_bh, seq, d), dtype=np.float32)
        for i in range(seq):
            s0, s1 = int(row_ptr[i]), int(row_ptr[i + 1])
            if s1 == s0:
                continue  # fully masked row -> zeros
            cols = col_idx[s0:s1]
            kg = k[:, cols, :]                       # (n_bh, nnz_i, d) gather
            vg = v[:, cols, :]
            scores = np.einsum("bd,bnd->bn", q[:, i, :], kg)
            smax = scores.max(axis=-1, keepdims=True)
            ex = np.exp(scores - smax)
            denom = ex.sum(axis=-1, keepdims=True)
            probs = ex / denom
            out[:, i, :] = np.einsum("bn,bnd->bd", probs, vg)
        return out

    def _run_vectorized(self, row_ptr, col_idx, mask, q, k, v) -> np.ndarray:
        """Row-group backend: contiguous K/V slices where the mask is local,
        padded gather buckets where it is scattered.

        Consecutive non-empty rows are grouped; a group whose attended
        columns all land in a narrow range (bands, causal, decode — the
        row-wise kernel's own "excellent data locality" regime) slices K/V
        as contiguous views and runs one dense masked softmax-matmul over
        the range — no gathers at all.  Scattered groups (random, dilated)
        fall back to row-length bucketing: rows grouped by nnz into
        power-of-two capacity buckets, attended columns gathered into one
        padded ``(n_rows, capacity)`` tile (padding lanes repeat the row's
        last valid column, then get masked to ``-inf``), one batched
        softmax-matmul per bucket.  Either way, zero per-row Python
        iterations and the same math as the loop oracle; results agree to
        FP16 rounding (summation order differs by padding/masked lanes only).
        """
        n_bh, seq, d = q.shape
        out = np.zeros((n_bh, seq, d), dtype=np.float32)
        lengths = np.diff(row_ptr)
        nonempty = np.flatnonzero(lengths)
        if nonempty.size == 0:
            return out                               # fully masked -> zeros
        lens = lengths[nonempty].astype(np.int64)
        starts = row_ptr[nonempty].astype(np.int64)
        first = col_idx[starts].astype(np.int64)
        last = col_idx[starts + lens - 1].astype(np.int64) + 1

        m = current_metrics()
        scattered: list[np.ndarray] = []
        for a in range(0, len(nonempty), ROW_GROUP):
            b = min(a + ROW_GROUP, len(nonempty))
            lo, hi = int(first[a:b].min()), int(last[a:b].max())
            longest = int(lens[a:b].max())
            if hi - lo > DENSE_RANGE_FACTOR * max(longest, d):
                scattered.append(np.arange(a, b))
                if m.enabled:
                    m.counter("mha.path", kernel=self.name, path="gather").inc()
                continue
            if m.enabled:
                m.counter("mha.path", kernel=self.name, path="dense_range").inc()
            rows_g = nonempty[a:b]
            bias = np.where(
                mask[rows_g, lo:hi], np.float32(0.0), np.float32(-np.inf)
            )
            ks = k[:, lo:hi]                         # views, no copies
            vs = v[:, lo:hi]
            g_chunk = max(1, int(GATHER_CHUNK_ELEMS // max(1, len(rows_g) * (hi - lo))))
            if m.enabled:
                m.counter("mha.chunks", kernel=self.name, path="dense_range").inc(
                    -(-n_bh // g_chunk)
                )
            for g0 in range(0, n_bh, g_chunk):
                gs = slice(g0, g0 + g_chunk)
                s = q[gs][:, rows_g] @ ks[gs].swapaxes(-1, -2)
                s += bias                            # (g, rows, hi-lo)
                smax = s.max(axis=-1, keepdims=True)
                np.subtract(s, smax, out=s)
                np.exp(s, out=s)                     # masked -> exp(-inf)=0
                l = s.sum(axis=-1, keepdims=True)    # > 0: rows are non-empty
                o = s @ vs[gs]
                np.divide(o, l, out=o)
                out[gs, rows_g] = o

        for sel in scattered:
            self._gather_buckets(
                row_ptr, col_idx, nonempty[sel], lens[sel], q, k, v, out
            )
        return out

    def _gather_buckets(self, row_ptr, col_idx, rows, lens, q, k, v, out) -> None:
        """Padded-gather fallback for scattered rows (writes into ``out``)."""
        n_bh, _, d = q.shape
        m = current_metrics()
        caps = np.int64(1) << np.ceil(np.log2(lens)).astype(np.int64)
        for cap in np.unique(caps):
            in_bucket = caps == cap
            rows_b = rows[in_bucket]
            lens_b = lens[in_bucket]
            lanes = np.arange(cap)
            pos = row_ptr[rows_b].astype(np.int64)[:, None] + np.minimum(
                lanes[None, :], lens_b[:, None] - 1
            )
            idx = col_idx[pos]                       # (n_rows_b, cap) padded
            pad = lanes[None, :] >= lens_b[:, None]

            row_chunk = max(1, int(GATHER_CHUNK_ELEMS // max(1, n_bh * cap * d)))
            if m.enabled:
                # K + V gathers materialize fp32 (head_size)-vectors per
                # padded lane; count what this bucket actually moves.
                m.counter(
                    "mha.gather_bytes", kernel=self.name, cap=int(cap)
                ).inc(2.0 * n_bh * len(rows_b) * int(cap) * d * 4.0)
                m.counter("mha.bucket_rows", kernel=self.name, cap=int(cap)).inc(
                    len(rows_b)
                )
                m.counter("mha.chunks", kernel=self.name, path="gather").inc(
                    -(-len(rows_b) // row_chunk)
                )
            for r0 in range(0, len(rows_b), row_chunk):
                rs = slice(r0, r0 + row_chunk)
                rows_c = rows_b[rs]
                kg = k[:, idx[rs]]                   # (n_bh, rows, cap, d)
                vg = v[:, idx[rs]]
                scores = (q[:, rows_c, None, :] @ kg.swapaxes(-1, -2))[:, :, 0, :]
                scores[:, pad[rs]] = -np.inf
                smax = scores.max(axis=-1, keepdims=True)
                ex = np.exp(scores - smax)           # pad lanes -> exp(-inf)=0
                probs = ex / ex.sum(axis=-1, keepdims=True)
                out[:, rows_c] = (probs[:, :, None, :] @ vg)[:, :, 0, :]
