"""The block-wise sparse attention kernel (paper §4.2, Figs. 6-7).

One fused kernel computes masked attention over the BSR mask view:

* Q is cut into ``(BLOCK_M, head_size)`` sub-blocks; each gets one thread
  block (``grid = batch * heads * n_block_rows``).
* For every block row, only the *valid* K^T/V sub-blocks listed in
  ``load_row_ptr / load_col_idx`` are loaded and computed; empty blocks are
  skipped entirely — no traffic, no FLOPs.
* FULL blocks run dense; PART blocks additionally load their (deduplicated)
  element mask and apply it before the online-softmax update.
* K^T and V alternate in one SMEM buffer, tiles are padded to kill bank
  conflicts, score/context products run on tensor cores (wmma), and V loads
  are pipelined against compute with async copy.

``run`` computes real values via the same block traversal (online softmax in
FP32); ``plan`` produces the launch the simulated device prices.  Both share
one counter builder so functional and analytical modes always agree.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES, to_fp16
from repro.gpu.bank import bank_conflict_factor
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.masks.bsr import BlockKind, BlockSparseMask
from repro.mha.kernel import GATHER_CHUNK_ELEMS, AttentionKernel, Launch
from repro.mha.problem import AttentionProblem
from repro.obs.metrics import current_metrics

#: SMEM padding in FP16 elements (the paper's Eq. 2 uses 16).
DEFAULT_PADDING = 16

#: Per-block softmax/rescale SIMT work per score element (scale, running
#: max/sum updates, exp, rescale of the accumulator).
SIMT_FLOPS_PER_SCORE = 12.0


def required_smem_elems(
    block_m: int, block_n: int, head_size: int, padding: int = DEFAULT_PADDING
) -> int:
    """Paper Eq. 2's ``req_SMEM`` (in FP16 elements).

    ``(2*BLOCK_M + BLOCK_N) * (w + padding)`` covers the Q tile, the output
    staging tile, and the shared K^T/V tile (K and V alternate in one
    buffer); ``BLOCK_M * (BLOCK_N + padding)`` is the score tile.
    """
    w = head_size
    return (2 * block_m + block_n) * (w + padding) + block_m * (block_n + padding)


class BlockWiseKernel(AttentionKernel):
    """STOF's general block-wise kernel."""

    name = "stof-blockwise"

    def param_space(self) -> dict[str, tuple]:
        return {
            "block_m": (64, 16, 32, 128),
            "block_n": (64, 16, 32, 128),
            "num_warps": (4, 1, 2, 8),
            "padding": (DEFAULT_PADDING, 0),
        }

    def default_params(self, problem: AttentionProblem, spec: GPUSpec) -> dict[str, Any]:
        return {
            "block_m": min(64, _pow2_block(problem.seq_len)),
            "block_n": min(64, _pow2_block(problem.seq_len)),
            "num_warps": 4,
            "padding": DEFAULT_PADDING,
        }

    # ------------------------------------------------------------------ plan

    def plan(
        self,
        problem: AttentionProblem,
        spec: GPUSpec,
        params: dict[str, Any] | None = None,
    ) -> list[Launch]:
        p = params or self.default_params(problem, spec)
        _validate_blocks(p["block_m"], p["block_n"])
        bsr = problem.bsr(p["block_m"], p["block_n"])
        cost = self._counters(problem, bsr, spec, p)
        smem_bytes = required_smem_elems(
            p["block_m"], p["block_n"], problem.head_size, p["padding"]
        ) * FP16_BYTES
        config = LaunchConfig(
            grid_blocks=problem.n_bh * bsr.n_block_rows,
            warps_per_block=p["num_warps"],
            smem_per_block=smem_bytes,
            pipelined=True,
        )
        return [(cost, config)]

    def _counters(
        self,
        problem: AttentionProblem,
        bsr: BlockSparseMask,
        spec: GPUSpec,
        p: dict[str, Any],
    ) -> KernelCost:
        bm, bn = p["block_m"], p["block_n"]
        d = problem.head_size
        n_bh = problem.n_bh
        n_valid = bsr.n_valid
        n_part = bsr.n_part
        n_rows = bsr.n_block_rows

        q_bytes = problem.qkv_bytes
        out_bytes = problem.qkv_bytes
        kv_block_bytes = bn * d * FP16_BYTES
        # Every valid block visit loads one K^T tile and one V tile.
        kv_load_total = n_bh * n_valid * kv_block_bytes * 2.0
        kv_resident = 2.0 * problem.kv_bytes  # all of K and V
        kv_first = min(kv_load_total, kv_resident)
        kv_reread = kv_load_total - kv_first
        if kv_resident <= spec.l2_bytes:
            l2_read = kv_reread
            dram_read = q_bytes + kv_first
        else:
            l2_read = 0.0
            dram_read = q_bytes + kv_load_total

        # PART-block element masks (1 byte/element on device, deduplicated
        # stack is L2-resident after first touch) + index metadata.
        meta_first = bsr.metadata_bytes()
        mask_visits = n_bh * n_part * bm * bn * 1.0
        dram_read += meta_first
        l2_read += max(0.0, mask_visits - meta_first)

        scores_staged = n_bh * n_valid * bm * bn * FP16_BYTES
        smem_traffic = 2.0 * (kv_load_total + q_bytes + scores_staged)

        conflict = bank_conflict_factor(d + p["padding"])

        avg_valid_per_row = n_valid / max(1, n_rows)
        return KernelCost(
            name=self.name,
            bytes_dram_read=dram_read,
            bytes_dram_written=out_bytes,
            bytes_l2_read=l2_read,
            bytes_smem=smem_traffic,
            bank_conflict_factor=float(conflict),
            flops_tensor=n_bh * n_valid * 4.0 * bm * bn * d,  # QK^T + PV
            flops_simt=n_bh * n_valid * SIMT_FLOPS_PER_SCORE * bm * bn,
            sync_rounds=avg_valid_per_row,
            launches=1,
        )

    # ------------------------------------------------------------------- run

    def run(
        self, problem: AttentionProblem, params: dict[str, Any] | None = None
    ) -> np.ndarray:
        if problem.q is None:
            raise ConfigError("problem has no tensors; build with with_tensors=True")
        p = params or self.default_params(problem, _DEFAULT_SPEC)
        bm, bn = p["block_m"], p["block_n"]
        _validate_blocks(bm, bn)
        bsr = problem.bsr(bm, bn)

        q, k, v = problem.staged_f32()

        if self.exec_backend == "loop":
            out = self._run_loop(bsr, q, k, v)
        elif self.exec_backend == "codegen":
            from repro.codegen.backend import run_blockwise

            out = run_blockwise(problem, bsr, q, k, v)
        else:
            out = self._run_vectorized(bsr, q, k, v)
        return to_fp16(out.reshape(problem.qkv_shape))

    def _run_loop(self, bsr: BlockSparseMask, q, k, v) -> np.ndarray:
        """Oracle backend: nested Python loop over block rows and blocks."""
        n_bh, seq, d = q.shape
        kv = k.shape[1]
        bm, bn = bsr.block_m, bsr.block_n
        out = np.zeros((n_bh, seq, d), dtype=np.float32)

        for bi in range(bsr.n_block_rows):
            r0, r1 = bi * bm, min((bi + 1) * bm, seq)
            rows = r1 - r0
            qi = q[:, r0:r1]                                  # (n_bh, rows, d)
            m_run = np.full((n_bh, rows), -np.inf, dtype=np.float32)
            l_run = np.zeros((n_bh, rows), dtype=np.float32)
            acc = np.zeros((n_bh, rows, d), dtype=np.float32)

            for col, kind, midx in bsr.blocks_in_row(bi):
                c0, c1 = col * bn, min((col + 1) * bn, kv)
                cols = c1 - c0
                s = qi @ k[:, c0:c1].transpose(0, 2, 1)       # (n_bh, rows, cols)
                if kind == BlockKind.PART:
                    blk = bsr.part_mask[midx][:rows, :cols]
                    s = np.where(blk, s, -np.inf)

                blk_max = s.max(axis=-1)
                m_new = np.maximum(m_run, blk_max)
                # alpha rescales the running accumulator; rows still at -inf
                # have nothing accumulated, so alpha can safely be zero.
                finite_new = np.isfinite(m_new)
                alpha = np.where(
                    np.isfinite(m_run) & finite_new,
                    np.exp(np.minimum(m_run - np.where(finite_new, m_new, 0.0), 0.0)),
                    0.0,
                )
                pexp = np.where(
                    np.isfinite(s) & finite_new[..., None],
                    np.exp(s - np.where(finite_new, m_new, 0.0)[..., None]),
                    0.0,
                )
                l_run = l_run * alpha + pexp.sum(axis=-1)
                acc = acc * alpha[..., None] + pexp @ v[:, c0:c1]
                m_run = m_new

            denom = l_run[..., None]
            out[:, r0:r1] = np.divide(
                acc, denom, out=np.zeros_like(acc), where=denom > 0
            )

        return out

    def _run_vectorized(self, bsr: BlockSparseMask, q, k, v) -> np.ndarray:
        """Flat-COO backend: concatenated-block matmuls, zero per-block loops.

        Q/K/V are staged as padded tile arrays once; then, per
        ``bsr.concat_groups()`` bucket, every member block row's valid K/V
        tiles are gathered (contiguous tile memcpys, not element gathers)
        and concatenated along the key axis, so scores are one batched
        ``(bm, cap*bn)`` matmul, masking is one additive-bias add, and the
        loop oracle's running-max rescale disappears entirely — each block
        row's segment *is* the last axis, so the segmented softmax is a
        plain (exact, two-pass) last-axis softmax.  Same math; outputs agree
        with the loop to FP16 rounding (summation order differs).  The
        batch*heads axis is chunked so peak staging memory stays bounded.
        """
        n_bh, seq, d = q.shape
        bm, bn = bsr.block_m, bsr.block_n
        nbr, nbc = bsr.n_block_rows, bsr.n_block_cols
        if bsr.n_valid == 0:
            return np.zeros((n_bh, seq, d), dtype=np.float32)

        qb = _tiles(q, nbr, bm)                      # views when lengths divide
        kb = _tiles(k, nbc, bn)
        vb = _tiles(v, nbc, bn)
        out = np.zeros((n_bh, nbr * bm, d), dtype=np.float32)
        outb = out.reshape(n_bh, nbr, bm, d)
        m = current_metrics()

        for rows_g, idx, slab in bsr.concat_groups():
            n_g, cap = idx.shape
            cols = bsr.load_col_idx[idx].astype(np.int64)
            # Banded fast path: when the group's concatenated tile columns
            # advance uniformly row to row (bands do), K/V need no gather at
            # all — a strided view hands BLAS the same contiguous slices the
            # loop oracle reads.
            kg_all = _banded_view(kb, cols)
            vg_all = _banded_view(vb, cols) if kg_all is not None else None
            row_slice = (
                slice(int(rows_g[0]), int(rows_g[-1]) + 1)
                if int(rows_g[-1]) - int(rows_g[0]) + 1 == n_g
                else rows_g
            )
            g_chunk = max(1, int(GATHER_CHUNK_ELEMS // max(1, n_g * bm * cap * bn)))
            if m.enabled:
                path = "banded" if kg_all is not None else "gather"
                m.counter("mha.path", kernel=self.name, path=path).inc()
                m.counter("mha.chunks", kernel=self.name, path=path).inc(
                    -(-n_bh // g_chunk)
                )
                if kg_all is None:
                    # K + V tile gathers materialize fp32 copies per group.
                    m.counter(
                        "mha.gather_bytes", kernel=self.name, cap=int(cap)
                    ).inc(2.0 * n_bh * n_g * cap * bn * d * 4.0)
            for g0 in range(0, n_bh, g_chunk):
                gs = slice(g0, min(g0 + g_chunk, n_bh))
                g = gs.stop - gs.start
                qg = qb[gs, row_slice]               # (g, n_g, bm, d)
                if kg_all is not None:
                    kg, vg = kg_all[gs], vg_all[gs]
                else:
                    kg = kb[gs][:, cols].reshape(g, n_g, cap * bn, d)
                    vg = vb[gs][:, cols].reshape(g, n_g, cap * bn, d)
                s = qg @ kg.swapaxes(-1, -2)         # (g, n_g, bm, cap*bn)
                if slab is not None:
                    s += slab
                m_ref = s.max(axis=-1, keepdims=True)
                if slab is not None:
                    # Fully-masked rows (all -inf) must exp to zero, not NaN.
                    m_ref = np.where(np.isfinite(m_ref), m_ref, np.float32(0.0))
                np.subtract(s, m_ref, out=s)
                np.exp(s, out=s)
                l = s.sum(axis=-1, keepdims=True)
                if isinstance(row_slice, slice):
                    o = outb[gs, row_slice]          # write through the view
                    np.matmul(s, vg, out=o)
                    np.divide(o, l, out=o, where=l > 0.0)  # l == 0 stays zero
                else:
                    o = s @ vg
                    np.divide(o, l, out=o, where=l > 0.0)
                    outb[gs, row_slice] = o

        return out[:, :seq]


def _tiles(x: np.ndarray, n_tiles: int, b: int) -> np.ndarray:
    """Stage ``(n_bh, len, d)`` as ``(n_bh, n_tiles, b, d)`` tile view.

    A zero-copy reshape when ``len`` divides evenly; ragged tails are padded
    with zeros (one copy, only for seq lengths that are not block multiples).
    """
    n_bh, length, d = x.shape
    if length != n_tiles * b:
        padded = np.zeros((n_bh, n_tiles * b, d), dtype=x.dtype)
        padded[:, :length] = x
        x = padded
    return x.reshape(n_bh, n_tiles, b, d)


def _banded_view(tb: np.ndarray, cols: np.ndarray) -> np.ndarray | None:
    """Zero-copy ``(n_bh, n_g, cap*b, d)`` concatenated-tile view, if legal.

    Legal when every row's tile columns are consecutive and the first column
    advances by one uniform non-negative step per row — the banded case.
    Each ``(cap*b, d)`` slice of the result is then a plain contiguous slice
    of ``tb``, so downstream matmuls hit BLAS with no copy and no gather.
    """
    n_g, cap = cols.shape
    if cap > 1 and not (np.diff(cols, axis=1) == 1).all():
        return None
    step = 0
    if n_g > 1:
        steps = np.diff(cols[:, 0])
        if not (steps == steps[0]).all() or steps[0] < 0:
            return None
        step = int(steps[0])
    n_bh, n_tiles, b, d = tb.shape
    flat = tb.reshape(n_bh, n_tiles * b, d)
    s0, s1, s2 = flat.strides
    return np.lib.stride_tricks.as_strided(
        flat[:, int(cols[0, 0]) * b :],
        shape=(n_bh, n_g, cap * b, d),
        strides=(s0, step * b * s1, s1, s2),
        writeable=False,
    )


def _validate_blocks(block_m: int, block_n: int) -> None:
    """Eq. 2's constraint: multiples of 16 and powers of two."""
    for name, b in (("block_m", block_m), ("block_n", block_n)):
        if b < 16 or b % 16 != 0 or (b & (b - 1)) != 0:
            raise ConfigError(
                f"{name} must be a power-of-two multiple of 16, got {b}"
            )


def _pow2_block(seq_len: int) -> int:
    """Largest power-of-two block (>=16) not exceeding the sequence length."""
    b = 16
    while b * 2 <= seq_len and b * 2 <= 128:
        b *= 2
    return b


from repro.gpu.specs import A100 as _DEFAULT_SPEC  # noqa: E402
