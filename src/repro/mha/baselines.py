"""Baseline attention strategies (paper §5.1.2).

Each class reproduces the *strategy* of one comparison method — what it
fuses, which masks it understands, what it materializes — priced on the
same simulated device as STOF's kernels (strategy-vs-strategy on identical
hardware, like the paper's same-GPU comparisons).

* :class:`NaiveAttention` — PyTorch Native: five detached kernels with a
  materialized score matrix and additive-mask fallback.
* :class:`FlashAttention2Attention` — one fused dense kernel; skips blocks
  only for the masks it natively understands (causal, sliding window);
  everything else computes densely with an in-kernel additive mask.
* :class:`FlexAttention` — block-mask skipping at a fixed coarse 128x128
  granularity with ``score_mod``-style element masking for partial blocks;
  fixed (untunable) launch parameters and a generic (non-hand-tuned) SMEM
  layout.
* :class:`FlashMaskAttention` — column-range representation: supports masks
  whose columns have at most two attended runs; rejects discrete-column
  masks (dilated, Bigbird) exactly as the paper describes.
* :class:`ByteTransformerAttention` — hand-written fused kernel holding
  score rows on-chip; unsupported beyond sequence length 1,024.
* :class:`MCFuserAttention` — loop-scheduled fused GEMM chain: dense, no
  bank-conflict handling, spills the score matrix at long sequence lengths
  and needs a large tuning workspace (the source of its OOMs).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.gpu.bank import bank_conflict_factor
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.masks.bsr import BlockKind
from repro.mha.blockwise import required_smem_elems
from repro.mha.kernel import AttentionKernel, Launch
from repro.mha.problem import AttentionProblem
from repro.mha.reference import reference_attention, solve_reference
from repro.ops.elementwise import MaskAdd, Scale
from repro.ops.gemm import BatchedGemm
from repro.ops.normalization import Softmax

#: Sequence length ceiling of ByteTransformer's hand-written kernels.
BYTETRANSFORMER_MAX_SEQ = 1024

#: MCFuser's resident tuning workspace, as a multiple of the dense score
#: matrix (double-buffered candidate outputs plus layout-transposed operand
#: copies) — the source of its OOMs at large input scales.
MCFUSER_WORKSPACE_MULTIPLIER = 12.0


def _run_reference(problem: AttentionProblem) -> np.ndarray:
    if problem.q is None:
        raise ConfigError("problem has no tensors; build with with_tensors=True")
    return solve_reference(problem)


class NaiveAttention(AttentionKernel):
    """PyTorch Native: detached BatchedGemm / Scale / MaskAdd / Softmax /
    BatchedGemm kernels with the score matrix written to global memory
    between every step."""

    name = "pytorch-native"

    def plan(self, problem, spec, params=None) -> list[Launch]:
        b, h, s, d = problem.qkv_shape
        kv = problem.kv_seq_len
        q_shape = (b * h, s, d)
        kt_shape = (b * h, d, kv)
        s_shape = (b * h, s, kv)
        bgemm = BatchedGemm("qk^T")
        launches = [
            bgemm.cost([q_shape, kt_shape], spec, bgemm.default_params([q_shape, kt_shape], spec))
        ]
        scale = Scale(problem.scale)
        launches.append(scale.cost([s_shape], spec, scale.default_params([s_shape], spec)))
        mask = MaskAdd()
        m_shape = (s, kv)
        launches.append(
            mask.cost([s_shape, m_shape], spec, mask.default_params([s_shape, m_shape], spec))
        )
        soft = Softmax()
        launches.append(soft.cost([s_shape], spec, soft.default_params([s_shape], spec)))
        pv = BatchedGemm("pv")
        v_shape = (b * h, kv, d)
        launches.append(
            pv.cost([s_shape, v_shape], spec, pv.default_params([s_shape, v_shape], spec))
        )
        return launches

    def run(self, problem, params=None) -> np.ndarray:
        if problem.q is None:
            raise ConfigError("problem has no tensors; build with with_tensors=True")
        b, h, s, d = problem.qkv_shape
        kv = problem.kv_seq_len
        q = problem.q.reshape(b * h, s, d)
        k = problem.k.reshape(b * h, kv, d)
        v = problem.v.reshape(b * h, kv, d)
        scores = BatchedGemm().compute(q, np.swapaxes(k, -1, -2))
        scores = Scale(problem.scale).compute(scores)
        scores = MaskAdd().compute(scores, problem.mask)
        probs = Softmax().compute(scores)
        out = BatchedGemm().compute(probs, v)
        return out.reshape(problem.qkv_shape)

    def workspace_bytes(self, problem: AttentionProblem) -> int:
        """The materialized score + probability matrices."""
        return 2 * problem.scores_bytes


class _FusedDenseBase(AttentionKernel):
    """Shared cost scaffolding for fused attention baselines.

    Subclasses choose the block geometry, which blocks are visited, whether
    element masks are loaded, the SMEM conflict factor, and per-score SIMT
    overhead.
    """

    block_m: int = 128
    block_n: int = 64
    num_warps: int = 4
    padding: int = 8
    simt_per_score: float = 12.0
    pipelined: bool = True

    def _visited_blocks(self, problem: AttentionProblem) -> tuple[int, int]:
        """(visited blocks, blocks needing an element-mask load)."""
        bsr = problem.bsr(self._bm(problem), self._bn(problem))
        return bsr.n_total, bsr.n_total  # dense visit, dense mask load

    def _bm(self, problem):
        return min(self.block_m, max(16, problem.seq_len))

    def _bn(self, problem):
        return min(self.block_n, max(16, problem.kv_seq_len))

    def _extra_dram(self, problem: AttentionProblem) -> float:
        return 0.0

    def plan(self, problem, spec, params=None) -> list[Launch]:
        self.check_supported(problem)
        bm, bn = self._bm(problem), self._bn(problem)
        bsr = problem.bsr(bm, bn)
        n_bh = problem.n_bh
        d = problem.head_size
        visited, masked = self._visited_blocks(problem)

        q_bytes = problem.qkv_bytes
        kv_block_bytes = bn * d * FP16_BYTES
        kv_load_total = n_bh * visited * kv_block_bytes * 2.0
        kv_resident = 2.0 * problem.kv_bytes
        kv_first = min(kv_load_total, kv_resident)
        kv_reread = kv_load_total - kv_first
        if kv_resident <= spec.l2_bytes:
            dram_read = q_bytes + kv_first
            l2_read = kv_reread
        else:
            dram_read = q_bytes + kv_load_total
            l2_read = 0.0

        mask_bytes_first = problem.seq_len * problem.kv_seq_len * 1.0
        mask_visits = n_bh * masked * bm * bn * 1.0
        if masked > 0:
            dram_read += min(mask_visits, mask_bytes_first)
            l2_read += max(0.0, mask_visits - mask_bytes_first)

        dram_read += self._extra_dram(problem)

        scores_staged = n_bh * visited * bm * bn * FP16_BYTES
        smem_traffic = 2.0 * (kv_load_total + q_bytes + scores_staged)
        conflict = bank_conflict_factor(d + self.padding)

        smem_bytes = required_smem_elems(bm, bn, d, self.padding) * FP16_BYTES
        cost = KernelCost(
            name=self.name,
            bytes_dram_read=dram_read,
            bytes_dram_written=problem.qkv_bytes + self._extra_writes(problem),
            bytes_l2_read=l2_read,
            bytes_smem=smem_traffic,
            bank_conflict_factor=float(conflict),
            flops_tensor=n_bh * visited * 4.0 * bm * bn * d,
            flops_simt=n_bh * visited * self.simt_per_score * bm * bn,
            sync_rounds=visited / max(1, bsr.n_block_rows),
            launches=1,
        )
        config = LaunchConfig(
            grid_blocks=n_bh * bsr.n_block_rows,
            warps_per_block=self.num_warps,
            smem_per_block=smem_bytes,
            pipelined=self.pipelined,
        )
        return [(cost, config)]

    def _extra_writes(self, problem: AttentionProblem) -> float:
        return 0.0

    def run(self, problem, params=None) -> np.ndarray:
        self.check_supported(problem)
        return _run_reference(problem)


class FlashAttention2Attention(_FusedDenseBase):
    """FlashAttention2: fused and IO-aware, but mask-oblivious beyond its
    native causal / sliding-window fast paths.

    For the native patterns it skips fully-masked blocks *and* needs no
    element-mask loads (the pattern is positional).  Any other mask runs
    dense with an additive mask streamed in.
    """

    name = "flashattention2"
    block_m = 128
    block_n = 64
    num_warps = 4
    padding = 16   # hand-tuned swizzle: conflict-free
    simt_per_score = 12.0

    NATIVE_PATTERNS = ("causal", "sliding_window")

    def _visited_blocks(self, problem):
        bsr = problem.bsr(self._bm(problem), self._bn(problem))
        if problem.pattern in self.NATIVE_PATTERNS:
            return bsr.n_valid, 0   # positional mask: no mask bytes at all
        return bsr.n_total, bsr.n_total


class FlexAttention(_FusedDenseBase):
    """FlexAttention: arbitrary masks via a coarse block mask + score_mod.

    Skips empty blocks — but only at its fixed 128x128 block-mask
    granularity, so sparse-but-fine structure (dilated diagonals, thin
    bands) is mostly invisible to it.  ``score_mod`` is a generic callback:
    partial blocks pay element-mask loads plus extra per-score work, and
    the Triton template's generic layout is not bank-conflict-free.
    """

    name = "flexattention"
    block_m = 128
    block_n = 128
    num_warps = 4
    padding = 0
    simt_per_score = 16.0   # score_mod callback overhead

    def _visited_blocks(self, problem):
        bsr = problem.bsr(self._bm(problem), self._bn(problem))
        return bsr.n_valid, bsr.n_part

    def plan(self, problem, spec, params=None):
        launches = super().plan(problem, spec, params)
        # Generic layout: moderate (not worst-case) bank conflicts.
        cost, config = launches[0]
        cost.bank_conflict_factor = min(4.0, cost.bank_conflict_factor)
        return [(cost, config)]


class FlashMaskAttention(_FusedDenseBase):
    """FlashMask: column-wise range representation.

    Each column stores the bounds of at most two skipped regions, so masks
    whose columns have more than two attended runs are unrepresentable —
    the paper's motivating limitation (§3.1).
    """

    name = "flashmask"
    block_m = 128
    block_n = 128
    num_warps = 4
    padding = 16
    simt_per_score = 12.0

    MAX_COLUMN_RUNS = 2

    def supports(self, problem):
        from repro.masks.ranges import ColumnRangeMask

        ok, reason = ColumnRangeMask.supports(problem.mask)
        if not ok:
            return (
                False,
                f"column-wise ranges cannot represent this mask: {reason} "
                f"(pattern {problem.pattern!r})",
            )
        return True, ""

    def _visited_blocks(self, problem):
        bsr = problem.bsr(self._bm(problem), self._bn(problem))
        return bsr.n_valid, 0   # ranges are positional: no mask bytes


class ByteTransformerAttention(_FusedDenseBase):
    """ByteTransformer: hand-written fused kernels, short sequences only.

    Holds score rows in SMEM/registers (grouped GEMM for the longer end of
    its range): dense compute, additive mask, but no score-matrix spill.
    The SMEM footprint grows with sequence length, collapsing occupancy
    as it approaches its 1,024 ceiling.
    """

    name = "bytetransformer"
    block_m = 64
    block_n = 64
    num_warps = 8
    padding = 16
    simt_per_score = 10.0   # heavily hand-optimized epilogues

    def supports(self, problem):
        if problem.seq_len > BYTETRANSFORMER_MAX_SEQ:
            return (
                False,
                f"hand-written kernels support seq_len <= {BYTETRANSFORMER_MAX_SEQ}, "
                f"got {problem.seq_len}",
            )
        return True, ""

    def plan(self, problem, spec, params=None):
        launches = super().plan(problem, spec, params)
        cost, config = launches[0]
        # Score rows for the whole sequence are resident per block.
        row_scores = self.block_m * problem.seq_len * FP16_BYTES
        config = LaunchConfig(
            grid_blocks=config.grid_blocks,
            warps_per_block=config.warps_per_block,
            smem_per_block=min(
                spec.smem_carveout_per_sm,
                config.smem_per_block + row_scores,
            ),
            pipelined=config.pipelined,
        )
        return [(cost, config)]


class MCFuserAttention(_FusedDenseBase):
    """MCFuser: loop-scheduled fusion of the attention GEMM chain.

    Dense (no sparse-mask support: additive fallback), no bank-conflict
    handling ("does not consider hardware details"), and for long sequences
    the intermediate tile no longer fits on-chip, spilling the score matrix
    through global memory.  Its auto-tuner additionally keeps a large
    workspace resident — the OOMs in Figs. 10-12.
    """

    name = "mcfuser"
    block_m = 64
    block_n = 64
    num_warps = 4
    padding = 0     # unpadded: real bank conflicts
    simt_per_score = 12.0
    pipelined = False  # loop-structured schedule, no async-copy overlap

    SPILL_SEQ = 512

    def _extra_dram(self, problem):
        if problem.seq_len > self.SPILL_SEQ:
            return 2.0 * problem.scores_bytes  # write + re-read of spilled S
        return 0.0

    def _extra_writes(self, problem):
        if problem.seq_len > self.SPILL_SEQ:
            return float(problem.scores_bytes)
        return 0.0

    def workspace_bytes(self, problem: AttentionProblem) -> float:
        """Resident tuning workspace (checked against device memory)."""
        return MCFUSER_WORKSPACE_MULTIPLIER * problem.scores_bytes

