"""Whole-model graph construction.

:func:`build_model` assembles a complete backbone graph for any
:class:`~repro.models.config.ModelConfig` at a given (batch, seq_len):
embeddings (token + learned position + LayerNorm), the encoder/decoder
stacks, and the mask inputs the attention layers consume.  The result is a
:class:`ModelInstance` bundling the graph with the metadata engines need
(mask-input names, attention geometry, functional input generation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.rng import RngStream
from repro.graph.ir import Graph
from repro.graph.trace import GraphBuilder, Symbol
from repro.models.config import ModelConfig
from repro.models.layers import decoder_layer, encoder_layer, layer_norm
from repro.ops import Add, Embedding, Reshape


@dataclass
class ModelInstance:
    """A built model graph plus everything needed to run or plan it."""

    config: ModelConfig
    batch: int
    seq_len: int
    graph: Graph
    ids_inputs: list[str]                 # integer token-id inputs
    mask_inputs: dict[str, tuple[int, int]]  # name -> (rows, cols)

    def make_inputs(
        self,
        masks: dict[str, np.ndarray],
        rng: RngStream | None = None,
    ) -> dict[str, np.ndarray]:
        """Runtime inputs: random token ids + the provided mask arrays."""
        rng = rng or RngStream().fork("model-inputs")
        inputs: dict[str, np.ndarray] = {}
        for name in self.ids_inputs:
            inputs[name] = rng.fork(name).integers(
                0, self.config.vocab, size=(self.batch, self.seq_len)
            ).astype(np.int32)
        for name, shape in self.mask_inputs.items():
            if name not in masks:
                raise ConfigError(f"missing mask input {name!r}")
            m = np.asarray(masks[name], dtype=bool)
            if m.shape != shape:
                raise ConfigError(
                    f"mask {name!r} has shape {m.shape}, expected {shape}"
                )
            inputs[name] = m
        return inputs

    @property
    def tokens(self) -> int:
        return self.batch * self.seq_len


def _embedding_stack(
    gb: GraphBuilder,
    cfg: ModelConfig,
    batch: int,
    seq_len: int,
    prefix: str,
) -> Symbol:
    """Token embedding + learned positional add + LayerNorm."""
    ids = gb.input(f"{prefix}.ids", (batch, seq_len))
    table = gb.param(f"{prefix}.tok_emb", (cfg.vocab, cfg.hidden))
    x = gb.call(Embedding(name=f"{prefix}.embed"), ids, table, name=f"{prefix}.embed")
    x = gb.call(
        Reshape((batch * seq_len, cfg.hidden), name=f"{prefix}.flatten"),
        x,
        name=f"{prefix}.flatten",
    )
    pos = gb.param(f"{prefix}.pos_emb", (batch * seq_len, cfg.hidden))
    x = gb.call(Add(name=f"{prefix}.pos_add"), x, pos, name=f"{prefix}.pos_add")
    return layer_norm(gb, x, cfg.hidden, f"{prefix}.emb", cfg.norm)


def build_model(
    cfg: ModelConfig,
    batch: int,
    seq_len: int,
    seed: int = 0,
    heads: int | None = None,
    ffn_dim: int | None = None,
) -> ModelInstance:
    """Build the complete backbone graph.

    ``heads``/``ffn_dim`` override the config's values for tensor-parallel
    per-rank shards (Megatron column/row splits); embeddings, norms and
    residuals stay replicated at the full hidden width.

    Mask inputs created (all boolean, attended = True):

    * encoder-only: ``mask`` (S, S)
    * decoder-only: ``mask`` (S, S) — the harness supplies causal ∧ pattern
    * encoder-decoder: ``enc_mask``, ``dec_mask`` (self), and ``cross_mask``

    >>> inst = build_model(ModelConfig("tiny", 1, 0, 64, 2, 128, vocab=97),
    ...                    batch=2, seq_len=8)
    >>> sorted(inst.mask_inputs)
    ['mask']
    """
    if batch < 1 or seq_len < 1:
        raise ConfigError(f"batch/seq_len must be >= 1, got ({batch}, {seq_len})")
    gb = GraphBuilder(f"{cfg.name}-b{batch}-s{seq_len}", seed=seed)
    ids_inputs: list[str] = []
    mask_inputs: dict[str, tuple[int, int]] = {}

    if cfg.is_encoder_decoder:
        enc_mask = gb.input("enc_mask", (seq_len, seq_len))
        dec_mask = gb.input("dec_mask", (seq_len, seq_len))
        cross_mask = gb.input("cross_mask", (seq_len, seq_len))
        mask_inputs = {
            "enc_mask": (seq_len, seq_len),
            "dec_mask": (seq_len, seq_len),
            "cross_mask": (seq_len, seq_len),
        }

        enc = _embedding_stack(gb, cfg, batch, seq_len, "enc")
        ids_inputs.append("enc.ids")
        for l in range(cfg.encoder_layers):
            enc = encoder_layer(
                gb, cfg, enc, enc_mask, batch, seq_len, f"enc.l{l}",
                heads=heads, ffn_dim=ffn_dim,
            )

        dec = _embedding_stack(gb, cfg, batch, seq_len, "dec")
        ids_inputs.append("dec.ids")
        for l in range(cfg.decoder_layers):
            dec = decoder_layer(
                gb, cfg, dec, dec_mask, batch, seq_len, f"dec.l{l}",
                enc_out=enc, cross_mask=cross_mask, enc_seq_len=seq_len,
                heads=heads, ffn_dim=ffn_dim,
            )
        gb.output(dec)
    else:
        mask = gb.input("mask", (seq_len, seq_len))
        mask_inputs = {"mask": (seq_len, seq_len)}
        x = _embedding_stack(gb, cfg, batch, seq_len, "emb")
        ids_inputs.append("emb.ids")
        if cfg.is_decoder_only:
            for l in range(cfg.decoder_layers):
                x = decoder_layer(
                    gb, cfg, x, mask, batch, seq_len, f"l{l}",
                    heads=heads, ffn_dim=ffn_dim,
                )
        else:
            for l in range(cfg.encoder_layers):
                x = encoder_layer(
                    gb, cfg, x, mask, batch, seq_len, f"l{l}",
                    heads=heads, ffn_dim=ffn_dim,
                )
        gb.output(x)

    graph = gb.finish()
    return ModelInstance(
        config=cfg,
        batch=batch,
        seq_len=seq_len,
        graph=graph,
        ids_inputs=ids_inputs,
        mask_inputs=mask_inputs,
    )
