"""Reusable Transformer block builders.

Every block emits *native* operators (the coarse-grained graph a framework
would trace), including the spelled-out MHA pattern, so the engines'
capture/fusion machinery has real work to do.
"""

from __future__ import annotations

from repro.graph.trace import GraphBuilder, Symbol
from repro.models.config import ModelConfig
from repro.ops import (
    Add,
    BatchedGemm,
    BiasAdd,
    Gelu,
    Gemm,
    LayerNorm,
    MaskAdd,
    MergeHeads,
    Relu,
    RMSNorm,
    Scale,
    Softmax,
    SplitHeads,
    TransposeLast2,
)


def projection(
    gb: GraphBuilder,
    x: Symbol,
    in_dim: int,
    out_dim: int,
    prefix: str,
) -> Symbol:
    """Linear projection: GEMM + bias."""
    w = gb.param(f"{prefix}.w", (in_dim, out_dim))
    b = gb.param(f"{prefix}.b", (out_dim,))
    h = gb.call(Gemm(f"{prefix}.gemm"), x, w, name=f"{prefix}.gemm")
    return gb.call(BiasAdd(f"{prefix}.bias"), h, b, name=f"{prefix}.bias")


def layer_norm(
    gb: GraphBuilder, x: Symbol, dim: int, prefix: str, kind: str = "layernorm"
) -> Symbol:
    """Normalization block; ``kind`` selects LayerNorm or T5-style RMSNorm."""
    g = gb.param(f"{prefix}.gamma", (dim,), scale=0.02)
    if kind == "rms":
        return gb.call(RMSNorm(name=f"{prefix}.ln"), x, g, name=f"{prefix}.ln")
    b = gb.param(f"{prefix}.beta", (dim,))
    return gb.call(LayerNorm(name=f"{prefix}.ln"), x, g, b, name=f"{prefix}.ln")


def attention_block(
    gb: GraphBuilder,
    cfg: ModelConfig,
    x: Symbol,
    mask: Symbol,
    batch: int,
    seq_len: int,
    prefix: str,
    kv_source: Symbol | None = None,
    kv_seq_len: int | None = None,
    heads: int | None = None,
) -> Symbol:
    """Full MHA block: projections, attention core, output proj, Add+LN.

    ``kv_source`` switches to cross-attention (K/V from the encoder);
    the attention core itself is the native five-op pattern.  ``heads``
    overrides ``cfg.heads`` for tensor-parallel per-rank builds: the Q/K/V
    projections become column-parallel (hidden -> heads*head_size) and the
    output projection row-parallel (heads*head_size -> hidden), exactly the
    Megatron-LM split — the all-reduce after the row-parallel GEMM is
    priced by the parallel layer, not emitted as a graph op.
    """
    h = heads if heads is not None else cfg.heads
    d = cfg.head_size
    qkv_dim = h * d
    kv = kv_source if kv_source is not None else x
    kv_seq = kv_seq_len if kv_seq_len is not None else seq_len

    q = projection(gb, x, cfg.hidden, qkv_dim, f"{prefix}.q")
    k = projection(gb, kv, cfg.hidden, qkv_dim, f"{prefix}.k")
    v = projection(gb, kv, cfg.hidden, qkv_dim, f"{prefix}.v")

    qh = gb.call(SplitHeads(batch, seq_len, h, name=f"{prefix}.q.split"), q,
                 name=f"{prefix}.q.split")
    kh = gb.call(SplitHeads(batch, kv_seq, h, name=f"{prefix}.k.split"), k,
                 name=f"{prefix}.k.split")
    vh = gb.call(SplitHeads(batch, kv_seq, h, name=f"{prefix}.v.split"), v,
                 name=f"{prefix}.v.split")
    kt = gb.call(TransposeLast2(name=f"{prefix}.k.T"), kh, name=f"{prefix}.k.T")

    s = gb.call(BatchedGemm(f"{prefix}.qk"), qh, kt, name=f"{prefix}.qk")
    s = gb.call(Scale(1.0 / d**0.5, name=f"{prefix}.scale"), s,
                name=f"{prefix}.scale")
    s = gb.call(MaskAdd(name=f"{prefix}.mask"), s, mask, name=f"{prefix}.mask")
    p = gb.call(Softmax(name=f"{prefix}.softmax"), s, name=f"{prefix}.softmax")
    o = gb.call(BatchedGemm(f"{prefix}.pv"), p, vh, name=f"{prefix}.pv")

    o = gb.call(MergeHeads(batch, seq_len, h, name=f"{prefix}.merge"), o,
                name=f"{prefix}.merge")
    o = projection(gb, o, qkv_dim, cfg.hidden, f"{prefix}.out")
    o = gb.call(Add(name=f"{prefix}.residual"), o, x, name=f"{prefix}.residual")
    return layer_norm(gb, o, cfg.hidden, f"{prefix}.post", cfg.norm)


def ffn_block(
    gb: GraphBuilder,
    cfg: ModelConfig,
    x: Symbol,
    prefix: str,
    ffn_dim: int | None = None,
) -> Symbol:
    """Feed-forward block: GEMM+bias+activation, GEMM+bias, Add+LN.

    ``ffn_dim`` overrides ``cfg.ffn_dim`` for tensor-parallel per-rank
    builds (column-parallel fc1, row-parallel fc2).
    """
    inner = ffn_dim if ffn_dim is not None else cfg.ffn_dim
    act_cls = Gelu if cfg.activation == "gelu" else Relu
    h = projection(gb, x, cfg.hidden, inner, f"{prefix}.fc1")
    h = gb.call(act_cls(name=f"{prefix}.act"), h, name=f"{prefix}.act")
    h = projection(gb, h, inner, cfg.hidden, f"{prefix}.fc2")
    h = gb.call(Add(name=f"{prefix}.residual"), h, x, name=f"{prefix}.residual")
    return layer_norm(gb, h, cfg.hidden, f"{prefix}.post", cfg.norm)


def encoder_layer(
    gb: GraphBuilder,
    cfg: ModelConfig,
    x: Symbol,
    mask: Symbol,
    batch: int,
    seq_len: int,
    prefix: str,
    heads: int | None = None,
    ffn_dim: int | None = None,
) -> Symbol:
    x = attention_block(
        gb, cfg, x, mask, batch, seq_len, f"{prefix}.attn", heads=heads
    )
    return ffn_block(gb, cfg, x, f"{prefix}.ffn", ffn_dim=ffn_dim)


def decoder_layer(
    gb: GraphBuilder,
    cfg: ModelConfig,
    x: Symbol,
    self_mask: Symbol,
    batch: int,
    seq_len: int,
    prefix: str,
    enc_out: Symbol | None = None,
    cross_mask: Symbol | None = None,
    enc_seq_len: int | None = None,
    heads: int | None = None,
    ffn_dim: int | None = None,
) -> Symbol:
    x = attention_block(
        gb, cfg, x, self_mask, batch, seq_len, f"{prefix}.self", heads=heads
    )
    if enc_out is not None:
        assert cross_mask is not None
        x = attention_block(
            gb, cfg, x, cross_mask, batch, seq_len, f"{prefix}.cross",
            kv_source=enc_out, kv_seq_len=enc_seq_len, heads=heads,
        )
    return ffn_block(gb, cfg, x, f"{prefix}.ffn", ffn_dim=ffn_dim)
