"""Transformer model zoo (paper §5.1.2).

Graph builders for the five evaluation workloads — BERT-Small/Base/Large
(encoder-only), GPT (decoder-only), and T5 (encoder-decoder) — expressed as
native-operator graphs the engines transform: MHA sub-graphs are spelled
out as BatchedGemm/Scale/MaskAdd/Softmax/BatchedGemm so the capture +
rewrite machinery operates exactly as in Fig. 8.
"""

from repro.models.config import (
    ModelConfig,
    BERT_SMALL,
    BERT_BASE,
    BERT_LARGE,
    GPT,
    T5,
    MODEL_ZOO,
    get_model_config,
)
from repro.models.build import build_model, ModelInstance

__all__ = [
    "ModelConfig",
    "BERT_SMALL",
    "BERT_BASE",
    "BERT_LARGE",
    "GPT",
    "T5",
    "MODEL_ZOO",
    "get_model_config",
    "build_model",
    "ModelInstance",
]
