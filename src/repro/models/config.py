"""Model hyper-parameter configurations (the paper's standard models).

All models use 64-dim heads, matching the paper's BERT-Base MHA setting
(12 heads x 64).  Vocabulary projection (the LM head) is excluded from the
end-to-end graphs, as is common when benchmarking Transformer *backbones*;
embeddings and all encoder/decoder blocks are included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of one Transformer backbone."""

    name: str
    encoder_layers: int
    decoder_layers: int
    hidden: int
    heads: int
    ffn_dim: int
    vocab: int = 30522
    activation: str = "gelu"      # "gelu" (BERT/GPT) or "relu" (T5)
    norm: str = "layernorm"       # "layernorm" or "rms" (T5-style)

    def __post_init__(self) -> None:
        if self.hidden % self.heads != 0:
            raise ConfigError(
                f"{self.name}: hidden {self.hidden} not divisible by heads {self.heads}"
            )
        if self.encoder_layers < 0 or self.decoder_layers < 0:
            raise ConfigError(f"{self.name}: negative layer counts")
        if self.encoder_layers == 0 and self.decoder_layers == 0:
            raise ConfigError(f"{self.name}: model needs at least one layer")

    @property
    def head_size(self) -> int:
        return self.hidden // self.heads

    @property
    def is_decoder_only(self) -> bool:
        return self.encoder_layers == 0

    @property
    def is_encoder_decoder(self) -> bool:
        return self.encoder_layers > 0 and self.decoder_layers > 0

    @property
    def total_layers(self) -> int:
        return self.encoder_layers + self.decoder_layers


BERT_SMALL = ModelConfig("bert-small", 4, 0, 512, 8, 2048)
BERT_BASE = ModelConfig("bert-base", 12, 0, 768, 12, 3072)
BERT_LARGE = ModelConfig("bert-large", 24, 0, 1024, 16, 4096)
GPT = ModelConfig("gpt", 0, 12, 768, 12, 3072, vocab=50257)
T5 = ModelConfig("t5", 12, 12, 768, 12, 3072, vocab=32128, activation="relu")

MODEL_ZOO: dict[str, ModelConfig] = {
    c.name: c for c in (BERT_SMALL, BERT_BASE, BERT_LARGE, GPT, T5)
}


def get_model_config(name: str) -> ModelConfig:
    """Look up a model configuration by name.

    >>> get_model_config("bert-base").heads
    12
    """
    key = name.strip().lower()
    if key not in MODEL_ZOO:
        raise ConfigError(f"unknown model {name!r}; known: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[key]
