"""Fusion-expansion rules: expand, seize, compete (paper §4.4).

A fusion scheme is a tuple of segment lengths over the operator sequence.
The three rule kinds generate boundary moves:

* **expand** — merge two adjacent segments into one, "without disrupting
  the structure of other segments".
* **seize** — a segment containing at least one CI operator preempts one
  operator from an adjacent segment consisting of only MI operators (the
  boundary shifts by one).
* **compete** — when two segments could take the same individual operator,
  the segment with exactly one CI operator is extended first; implemented
  as the move-ordering policy of :func:`legal_moves`.

All moves respect the paper's constraint of at most two CI operators per
segment.  Template feasibility (can the merged run actually compile?) is
checked later by the converter — a move that produces an untemplatable
segment is discarded by the search engine, mirroring a failed compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import TuningError
from repro.ops.base import OpCategory

#: The paper's hard limit on CI operators per fused segment.
MAX_CI_PER_SEGMENT = 2

Scheme = tuple[int, ...]


@dataclass(frozen=True)
class FusionMove:
    """One boundary move on a scheme.

    ``kind`` is ``"expand"`` or ``"seize"``; ``segment`` indexes the segment
    being grown; ``direction`` is ``+1`` (grow rightward) or ``-1``.
    """

    kind: str
    segment: int
    direction: int

    def describe(self) -> str:
        arrow = "->" if self.direction > 0 else "<-"
        return f"{self.kind}(S{self.segment} {arrow})"


def _segment_bounds(scheme: Scheme) -> list[tuple[int, int]]:
    """[start, end) op indices of each segment."""
    bounds = []
    pos = 0
    for l in scheme:
        bounds.append((pos, pos + l))
        pos += l
    return bounds


def _ci_count(categories: Sequence[OpCategory], start: int, end: int) -> int:
    return sum(1 for c in categories[start:end] if c is OpCategory.CI)


def count_ci(scheme: Scheme, categories: Sequence[OpCategory]) -> list[int]:
    """CI-operator count per segment."""
    if sum(scheme) != len(categories):
        raise TuningError(
            f"scheme {scheme} does not cover {len(categories)} operators"
        )
    return [_ci_count(categories, s, e) for s, e in _segment_bounds(scheme)]


def apply_move(scheme: Scheme, move: FusionMove) -> Scheme:
    """Produce the new scheme after a move (pure function)."""
    n = len(scheme)
    i = move.segment
    if not (0 <= i < n):
        raise TuningError(f"move {move} references segment {i} of {n}")
    lengths = list(scheme)
    if move.kind == "expand":
        j = i + move.direction
        if not (0 <= j < n):
            raise TuningError(f"expand {move} crosses scheme bounds")
        a, b = sorted((i, j))
        lengths[a] = lengths[a] + lengths[b]
        del lengths[b]
        return tuple(lengths)
    if move.kind == "seize":
        j = i + move.direction
        if not (0 <= j < n):
            raise TuningError(f"seize {move} crosses scheme bounds")
        if lengths[j] <= 1:
            raise TuningError(
                f"seize {move} would empty segment {j}; use expand instead"
            )
        lengths[i] += 1
        lengths[j] -= 1
        return tuple(lengths)
    raise TuningError(f"unknown move kind {move.kind!r}")


def legal_moves(
    scheme: Scheme, categories: Sequence[OpCategory]
) -> list[FusionMove]:
    """All moves respecting the CI limit, compete-ordered.

    Compete rule: moves growing a segment with exactly one CI operator sort
    first, then zero-CI growers, then two-CI (which can only absorb MI).
    """
    cis = count_ci(scheme, categories)
    bounds = _segment_bounds(scheme)
    n = len(scheme)
    moves: list[FusionMove] = []

    for i in range(n):
        for direction in (+1, -1):
            j = i + direction
            if not (0 <= j < n):
                continue
            # expand: merge i with neighbour j.
            if cis[i] + cis[j] <= MAX_CI_PER_SEGMENT:
                # Deduplicate: represent each merge once, as the left segment
                # growing right.
                if direction == +1:
                    moves.append(FusionMove("expand", i, +1))
            # seize: i must hold a CI op, j must be MI-only and keep >= 1 op.
            if cis[i] >= 1 and cis[j] == 0 and scheme[j] > 1:
                # The op actually taken sits at j's boundary adjacent to i;
                # it is MI by cis[j] == 0, so the CI limit holds.
                moves.append(FusionMove("seize", i, direction))

    def compete_priority(move: FusionMove) -> tuple[int, int, int]:
        ci = cis[move.segment]
        # exactly-one-CI segments extend first (paper's compete rule),
        # then MI-only, then two-CI segments.
        rank = {1: 0, 0: 1, 2: 2}.get(ci, 3)
        return (rank, move.segment, move.direction)

    moves.sort(key=compete_priority)
    return moves
