"""Segments: contiguous runs of the downstream operator sequence.

The search engine reasons over a *linear* operator sequence (the paper's
``#1..#N`` numbering); a fusion scheme is a partition of that sequence into
segments.  :class:`SegmentSpec` resolves one segment's dataflow against the
full graph: which inputs come from the previous op in the chain, which are
external (weights, residual sources), and which interior outputs escape the
segment and must still be written to memory ("aux writes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.errors import GraphError
from repro.graph.ir import Graph, Node, NodeKind
from repro.ops.base import Operator, OpCategory, Shape


@dataclass
class SegmentSpec:
    """One fusable run of operators with resolved dataflow.

    ``sources[i][k]`` describes input ``k`` of op ``i``: ``("prev", -1)``
    means the previous op's output, ``("ext", j)`` means external value
    ``j`` (in ``ext_shapes`` / ``ext_names`` order).
    """

    node_names: list[str]
    ops: list[Operator]
    in_shapes: list[list[Shape]]
    out_shapes: list[Shape]
    sources: list[list[tuple[str, int]]]
    ext_shapes: list[Shape]
    ext_names: list[str]
    aux_write_indices: list[int]    # ops (by index, excluding last) that escape

    # ------------------------------------------------------------ properties

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    @property
    def n_ci(self) -> int:
        return sum(1 for op in self.ops if op.category is OpCategory.CI)

    @property
    def out_shape(self) -> Shape:
        return self.out_shapes[-1]

    @property
    def names(self) -> str:
        return "+".join(op.name for op in self.ops)

    def external_bytes(self) -> int:
        """Total bytes of external inputs (FP16, bool masks as 1 B)."""
        from repro.core.fp16 import FP16_BYTES
        from repro.ops.base import numel

        return sum(numel(s) * FP16_BYTES for s in self.ext_shapes)

    # ---------------------------------------------------------- construction

    @classmethod
    def from_graph(cls, graph: Graph, node_names: Sequence[str]) -> "SegmentSpec":
        """Resolve a run of op-node names into a segment.

        Requires each op after the first to consume its predecessor (the
        chain property of a vertical fusion segment).
        """
        if not node_names:
            raise GraphError("empty segment")
        nodes = [graph.node(n) for n in node_names]
        for n in nodes:
            if n.kind is not NodeKind.OP or n.op is None:
                raise GraphError(f"segment node {n.name!r} is not a plain op")

        region = set(node_names)
        ops: list[Operator] = []
        in_shapes: list[list[Shape]] = []
        out_shapes: list[Shape] = []
        sources: list[list[tuple[str, int]]] = []
        ext_shapes: list[Shape] = []
        ext_names: list[str] = []
        ext_index: dict[str, int] = {}

        for i, node in enumerate(nodes):
            ops.append(node.op)
            out_shapes.append(tuple(node.shape))
            shapes_i: list[Shape] = []
            src_i: list[tuple[str, int]] = []
            prev_name = nodes[i - 1].name if i > 0 else None
            prev_used = False
            for dep in node.inputs:
                dep_node = graph.node(dep)
                shapes_i.append(tuple(dep_node.shape))
                if dep == prev_name and not prev_used:
                    src_i.append(("prev", -1))
                    prev_used = True
                else:
                    if dep in region:
                        raise GraphError(
                            f"segment {list(node_names)} is not a simple chain: "
                            f"{node.name!r} reads non-adjacent member {dep!r}"
                        )
                    if dep not in ext_index:
                        ext_index[dep] = len(ext_shapes)
                        ext_shapes.append(tuple(dep_node.shape))
                        ext_names.append(dep)
                    src_i.append(("ext", ext_index[dep]))
            if i > 0 and not prev_used:
                raise GraphError(
                    f"segment chain broken: {node.name!r} does not consume "
                    f"{prev_name!r}"
                )
            in_shapes.append(shapes_i)
            sources.append(src_i)

        counts = graph.consumer_counts()
        aux: list[int] = []
        for i, node in enumerate(nodes[:-1]):
            external = [
                c for c in graph.consumers(node.name) if c.name not in region
            ]
            if external or node.name in graph.outputs:
                aux.append(i)

        return cls(
            node_names=list(node_names),
            ops=ops,
            in_shapes=in_shapes,
            out_shapes=out_shapes,
            sources=sources,
            ext_shapes=ext_shapes,
            ext_names=ext_names,
            aux_write_indices=aux,
        )

    # ------------------------------------------------------------- execution

    def compute(self, ext_values: Sequence[np.ndarray]) -> np.ndarray:
        """Functionally evaluate the segment given its external inputs.

        Identical numerics to running the ops detached — fusion never
        changes results, only data movement.
        """
        if len(ext_values) != len(self.ext_shapes):
            raise GraphError(
                f"segment expects {len(self.ext_shapes)} external values, "
                f"got {len(ext_values)}"
            )
        prev: np.ndarray | None = None
        for i, op in enumerate(self.ops):
            args = []
            for kind, j in self.sources[i]:
                if kind == "prev":
                    assert prev is not None
                    args.append(prev)
                else:
                    args.append(np.asarray(ext_values[j]))
            prev = op.compute(*args)
        assert prev is not None
        return prev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentSpec([{self.names}], ci={self.n_ci}, aux={self.aux_write_indices})"


def segment_sequence(
    graph: Graph, op_names: Sequence[str], lengths: Sequence[int]
) -> list[SegmentSpec]:
    """Split an operator sequence into segments by run lengths.

    ``lengths`` must sum to ``len(op_names)``.
    """
    if sum(lengths) != len(op_names):
        raise GraphError(
            f"segment lengths {list(lengths)} do not cover {len(op_names)} ops"
        )
    if any(l < 1 for l in lengths):
        raise GraphError(f"segment lengths must be positive, got {list(lengths)}")
    out: list[SegmentSpec] = []
    pos = 0
    for l in lengths:
        out.append(SegmentSpec.from_graph(graph, op_names[pos : pos + l]))
        pos += l
    return out
