"""Compilation templates (paper §4.3).

Each template is the cost/launch model of one fused-kernel *shape*, the
Triton-template substitution of DESIGN.md §1.  A template binds to a
:class:`~repro.fusion.segment.SegmentSpec` and exposes:

* ``plan(spec, params)`` — the single fused launch (counters + config),
* ``detached_plan(spec)`` — the launches of the same ops run separately
  (what the tuner compares against, and what Fig. 3 plots),
* ``compute(ext_values)`` — functional evaluation (identical numerics to
  detached execution),
* ``param_space()`` — the exposed kernel parameters.

Template shapes:

=====================  ==========================  =========================
Template               Matches                     Key resource effect
=====================  ==========================  =========================
ElementwiseChain       MI only, no reduction       one stream, traffic of
                                                   ends only
ReductionChain         MI only, >=1 reduction      row kernel w/ fused
                                                   pro/epilogue (Bias+LN)
GemmEpilogue           1 CI + elementwise MI       GEMM with epilogue ops in
                                                   registers (GEMM+Bias+GELU)
GemmReduce             1 CI + reduction after it   full output row resident
                                                   per block -> SMEM grows
                                                   with hidden dim (GEMM+LN)
GemmChain              2 CI (+ elementwise MI)     intermediate row resident;
                                                   2nd weight re-read per
                                                   block (GEMM+GEMM)
=====================  ==========================  =========================

The last two templates' SMEM/L2 pressure is what makes fused-vs-detached
flip with the hidden dimension and input scale (the paper's Fig. 3).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError, GraphError
from repro.core.fp16 import FP16_BYTES
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.fusion.segment import SegmentSpec
from repro.ops.base import Operator, OpCategory, Shape, numel
from repro.ops.gemm import BLOCK_K, BatchedGemm, Gemm
from repro.ops.normalization import LayerNorm, RMSNorm, Softmax

#: FP32 accumulator bytes per element for row-resident output tiles.
FP32_BYTES = 4

#: N-chunk staged per pipeline step in row-resident templates.
CHUNK_N = 64

#: SMEM padding (FP16 elements) used by all templates.
PAD = 16


def _is_reduction(op: Operator) -> bool:
    return isinstance(op, (LayerNorm, RMSNorm, Softmax))


def _is_ci(op: Operator) -> bool:
    return op.category is OpCategory.CI


def _gemm_dims(segment: SegmentSpec, idx: int) -> tuple[int, int, int, int]:
    """(batch, M, N, K) of the CI op at segment position ``idx``."""
    in_shapes = segment.in_shapes[idx]
    x_shape, w_shape = in_shapes[0], in_shapes[1]
    if len(x_shape) == 2:
        b, m, k = 1, x_shape[0], x_shape[1]
    else:
        b = 1
        for d in x_shape[:-2]:
            b *= d
        m, k = x_shape[-2], x_shape[-1]
    n = w_shape[-1]
    return b, m, n, k


def _reread(volume_bytes: float, times: float, spec: GPUSpec) -> tuple[float, float]:
    """(dram, l2) split of an operand read ``times`` times."""
    if times <= 1.0:
        return volume_bytes * times, 0.0
    extra = volume_bytes * (times - 1.0)
    if volume_bytes <= spec.l2_bytes:
        return volume_bytes, extra
    return volume_bytes * times, 0.0


class CompilationTemplate(ABC):
    """One fused-kernel shape bound to a segment."""

    name = "template"

    def __init__(self, segment: SegmentSpec):
        ok, reason = type(self).matches(segment)
        if not ok:
            raise GraphError(
                f"{type(self).__name__} cannot bind segment [{segment.names}]: {reason}"
            )
        self.segment = segment

    # ------------------------------------------------------------- interface

    @staticmethod
    @abstractmethod
    def matches(segment: SegmentSpec) -> tuple[bool, str]:
        """Whether this template shape fits the segment."""

    @abstractmethod
    def plan(self, spec: GPUSpec, params: dict[str, Any]) -> list[tuple[KernelCost, LaunchConfig]]:
        """The fused launch(es)."""

    @abstractmethod
    def param_space(self) -> dict[str, tuple]:
        """Exposed kernel parameters and candidate values."""

    def default_params(self, spec: GPUSpec) -> dict[str, Any]:
        return {k: v[0] for k, v in self.param_space().items()}

    def compute(self, ext_values: Sequence[np.ndarray]) -> np.ndarray:
        """Functional evaluation (fusion never changes numerics)."""
        return self.segment.compute(ext_values)

    def estimate_time(self, spec: GPUSpec, params: dict[str, Any] | None = None) -> float:
        from repro.gpu.cost import estimate_kernel_time

        params = params or self.default_params(spec)
        return sum(
            estimate_kernel_time(spec, c, cfg).total for c, cfg in self.plan(spec, params)
        )

    # ------------------------------------------------------ detached baseline

    def detached_plan(
        self, spec: GPUSpec, per_op_params: list[dict[str, Any]] | None = None
    ) -> list[tuple[KernelCost, LaunchConfig]]:
        """The same ops as separate kernels (each intermediate in DRAM)."""
        launches = []
        for i, op in enumerate(self.segment.ops):
            p = (
                per_op_params[i]
                if per_op_params is not None
                else op.default_params(self.segment.in_shapes[i], spec)
            )
            launches.append(op.cost(self.segment.in_shapes[i], spec, p))
        return launches

    def detached_time(
        self, spec: GPUSpec, per_op_params: list[dict[str, Any]] | None = None
    ) -> float:
        from repro.gpu.cost import estimate_kernel_time

        return sum(
            estimate_kernel_time(spec, c, cfg).total
            for c, cfg in self.detached_plan(spec, per_op_params)
        )

    # ------------------------------------------------------------- internals

    def _mi_flops(self, spec: GPUSpec) -> float:
        """Total SIMT FLOPs of the segment's MI ops (from their own costs)."""
        total = 0.0
        for i, op in enumerate(self.segment.ops):
            if _is_ci(op):
                continue
            cost, _ = op.cost(
                self.segment.in_shapes[i], spec, op.default_params(self.segment.in_shapes[i], spec)
            )
            total += cost.flops_simt
        return total

    def _ext_read_bytes(self) -> float:
        """All external inputs read once (activations, weights, residuals)."""
        total = 0.0
        for shape in self.segment.ext_shapes:
            total += numel(shape) * FP16_BYTES
        return total

    def _aux_write_bytes(self) -> float:
        return sum(
            numel(self.segment.out_shapes[i]) * FP16_BYTES
            for i in self.segment.aux_write_indices
        )

    def _final_write_bytes(self) -> float:
        return numel(self.segment.out_shape) * FP16_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}([{self.segment.names}])"


# ---------------------------------------------------------------------------
# MI-only templates
# ---------------------------------------------------------------------------


class ElementwiseChainTemplate(CompilationTemplate):
    """Streaming fusion of element-wise MI ops (what torch.inductor does)."""

    name = "ew-chain"

    @staticmethod
    def matches(segment: SegmentSpec) -> tuple[bool, str]:
        if segment.n_ci > 0:
            return False, "contains a CI op"
        if any(_is_reduction(op) for op in segment.ops):
            return False, "contains a reduction"
        return True, ""

    def param_space(self) -> dict[str, tuple]:
        return {"num_warps": (4, 1, 2, 8)}

    def plan(self, spec, params):
        n = numel(self.segment.out_shape)
        warps = params["num_warps"]
        grid = max(1, math.ceil(n / (warps * spec.warp_size * 8)))
        cost = KernelCost(
            name=f"fused[{self.segment.names}]",
            bytes_dram_read=self._ext_read_bytes(),
            bytes_dram_written=self._final_write_bytes() + self._aux_write_bytes(),
            flops_simt=self._mi_flops(spec),
        )
        return [(cost, LaunchConfig(grid_blocks=grid, warps_per_block=warps))]


class ReductionChainTemplate(CompilationTemplate):
    """MI chain containing LayerNorm/Softmax: fused row kernel (Bias+LN)."""

    name = "reduce-chain"

    @staticmethod
    def matches(segment: SegmentSpec) -> tuple[bool, str]:
        if segment.n_ci > 0:
            return False, "contains a CI op"
        if not any(_is_reduction(op) for op in segment.ops):
            return False, "no reduction op"
        return True, ""

    def param_space(self) -> dict[str, tuple]:
        return {"rows_per_block": (4, 1, 2, 8, 16), "num_warps": (4, 1, 2, 8)}

    def plan(self, spec, params):
        out = self.segment.out_shape
        row_len = out[-1]
        n_rows = numel(out) // row_len
        rows_per_block = params["rows_per_block"]
        warps = params["num_warps"]
        grid = max(1, math.ceil(n_rows / rows_per_block))
        smem = rows_per_block * row_len * FP16_BYTES
        n = numel(out)
        cost = KernelCost(
            name=f"fused[{self.segment.names}]",
            bytes_dram_read=self._ext_read_bytes(),
            bytes_dram_written=self._final_write_bytes() + self._aux_write_bytes(),
            bytes_smem=2.0 * n * FP16_BYTES,
            flops_simt=self._mi_flops(spec),
            sync_rounds=2.0 * math.ceil(math.log2(max(2, warps))),
        )
        config = LaunchConfig(
            grid_blocks=grid,
            warps_per_block=warps,
            smem_per_block=smem,
            pipelined=False,
        )
        return [(cost, config)]


# ---------------------------------------------------------------------------
# Single-CI templates
# ---------------------------------------------------------------------------


class _SingleGemmBase(CompilationTemplate):
    """Shared dataflow for the one-CI templates."""

    def _ci_index(self) -> int:
        return next(i for i, op in enumerate(self.segment.ops) if _is_ci(op))


class GemmEpilogueTemplate(_SingleGemmBase):
    """GEMM with element-wise prologue/epilogue fused into registers.

    GEMM+Bias, GEMM+Bias+GELU, GEMM+Bias+Add — the bread-and-butter CI+MI
    fusion.  The GEMM's tiling is unchanged; the MI ops cost only their
    FLOPs and any extra operand reads, because the data is already in
    registers when they run.
    """

    name = "gemm-epilogue"

    @staticmethod
    def matches(segment: SegmentSpec) -> tuple[bool, str]:
        if segment.n_ci != 1:
            return False, f"needs exactly 1 CI op, has {segment.n_ci}"
        if any(_is_reduction(op) for op in segment.ops):
            return False, "contains a reduction (use GemmReduceTemplate)"
        return True, ""

    def param_space(self) -> dict[str, tuple]:
        return {
            "block_m": (64, 16, 32, 128),
            "block_n": (64, 16, 32, 128),
            "num_warps": (4, 1, 2, 8),
            "num_stages": (2, 1, 3, 4),
        }

    def plan(self, spec, params):
        ci = self._ci_index()
        b, m, n, k = _gemm_dims(self.segment, ci)
        bm, bn = params["block_m"], params["block_n"]
        tiles_m = math.ceil(m / bm)
        tiles_n = math.ceil(n / bn)
        grid = b * tiles_m * tiles_n

        x_bytes = b * m * k * FP16_BYTES
        # Second operand may be a shared 2-D weight or a batched 3-D tensor.
        w_shape = self.segment.in_shapes[ci][1]
        w_bytes = numel(w_shape) * FP16_BYTES
        x_dram, x_l2 = _reread(x_bytes, tiles_n, spec)
        w_times = tiles_m * (b if len(w_shape) == 2 else 1)
        w_dram, w_l2 = _reread(w_bytes, float(w_times), spec)
        dram_read = x_dram + w_dram + self._epilogue_ext_bytes(ci)
        l2_read = x_l2 + w_l2

        smem = params["num_stages"] * (bm + bn) * BLOCK_K * FP16_BYTES
        cost = KernelCost(
            name=f"fused[{self.segment.names}]",
            bytes_dram_read=dram_read,
            bytes_dram_written=self._final_write_bytes() + self._aux_write_bytes(),
            bytes_l2_read=l2_read,
            bytes_smem=2.0 * (x_bytes * tiles_n + w_bytes * tiles_m * b),
            flops_tensor=2.0 * b * m * n * k,
            flops_simt=self._mi_flops(spec),
            sync_rounds=math.ceil(k / BLOCK_K) / max(1, params["num_stages"]),
        )
        config = LaunchConfig(
            grid_blocks=grid,
            warps_per_block=params["num_warps"],
            smem_per_block=smem,
            pipelined=params["num_stages"] >= 2,
        )
        return [(cost, config)]

    def _epilogue_ext_bytes(self, ci: int) -> float:
        """External reads of the MI ops (bias vectors, residual tensors)."""
        total = 0.0
        counted: set[int] = set()
        # The GEMM's own two inputs are counted in the tiled model above.
        for kind, j in self.segment.sources[ci]:
            if kind == "ext":
                counted.add(j)
        for j, shape in enumerate(self.segment.ext_shapes):
            if j not in counted:
                total += numel(shape) * FP16_BYTES
        return total


class GemmReduceTemplate(_SingleGemmBase):
    """GEMM whose output flows into a row reduction (GEMM+LayerNorm).

    The reduction needs the whole output row: the block holds a
    ``BLOCK_M x N`` FP32 accumulator on-chip, so SMEM grows *linearly with
    the hidden dimension* — the mechanism behind Fig. 3's flip from 12-26x
    speedup at hidden 512 to slowdowns at hidden 1024.
    """

    name = "gemm-reduce"

    @staticmethod
    def matches(segment: SegmentSpec) -> tuple[bool, str]:
        if segment.n_ci != 1:
            return False, f"needs exactly 1 CI op, has {segment.n_ci}"
        if not any(_is_reduction(op) for op in segment.ops):
            return False, "no reduction op"
        ci = next(i for i, op in enumerate(segment.ops) if _is_ci(op))
        for i, op in enumerate(segment.ops):
            if _is_reduction(op) and i < ci:
                return False, "reduction before the GEMM cannot fuse"
        return True, ""

    def param_space(self) -> dict[str, tuple]:
        return {
            "block_m": (16, 32, 64),
            "num_warps": (4, 1, 2, 8),
            "num_stages": (2, 1, 3),
        }

    def plan(self, spec, params):
        ci = self._ci_index()
        b, m, n, k = _gemm_dims(self.segment, ci)
        bm = params["block_m"]
        grid = b * math.ceil(m / bm)

        x_bytes = b * m * k * FP16_BYTES
        w_bytes = k * n * FP16_BYTES
        # Every block reads the whole weight once.
        w_dram, w_l2 = _reread(w_bytes, float(grid), spec)
        dram_read = x_bytes + w_dram + self._other_ext_bytes(ci)
        l2_read = w_l2

        # Full output row resident per block (chunk accumulation happens in
        # registers; the completed row is staged in FP16 for the reduction
        # pass) + staged chunk buffers.
        smem = (
            bm * (n + PAD) * FP16_BYTES
            + params["num_stages"] * (bm + CHUNK_N) * BLOCK_K * FP16_BYTES
        )
        cost = KernelCost(
            name=f"fused[{self.segment.names}]",
            bytes_dram_read=dram_read,
            bytes_dram_written=self._final_write_bytes() + self._aux_write_bytes(),
            bytes_l2_read=l2_read,
            bytes_smem=2.0 * (x_bytes + w_bytes * grid)
            + 2.0 * b * m * n * FP32_BYTES,
            flops_tensor=2.0 * b * m * n * k,
            flops_simt=self._mi_flops(spec),
            sync_rounds=math.ceil(k / BLOCK_K) * math.ceil(n / CHUNK_N)
            / max(1, params["num_stages"]),
        )
        config = LaunchConfig(
            grid_blocks=grid,
            warps_per_block=params["num_warps"],
            smem_per_block=smem,
            pipelined=params["num_stages"] >= 2,
        )
        return [(cost, config)]

    def _other_ext_bytes(self, ci: int) -> float:
        total = 0.0
        counted: set[int] = set()
        for kind, j in self.segment.sources[ci]:
            if kind == "ext":
                counted.add(j)
        for j, shape in enumerate(self.segment.ext_shapes):
            if j not in counted:
                total += numel(shape) * FP16_BYTES
        return total


# ---------------------------------------------------------------------------
# Two-CI template
# ---------------------------------------------------------------------------


class GemmChainTemplate(CompilationTemplate):
    """Two chained GEMMs fused, intermediate row resident on-chip.

    Matches GEMM+GEMM with optional element-wise MI ops between/after (e.g.
    the feed-forward GEMM+GELU+GEMM when the scale is small enough).  Each
    block computes ``BLOCK_M`` full rows end-to-end: the intermediate
    ``BLOCK_M x N1`` tile never touches DRAM, but *both* weights are read
    once per block — the re-read pressure that makes CI+CI fusion profitable
    only at small input scales (paper §2.3.1, Fig. 3).
    """

    name = "gemm-chain"

    @staticmethod
    def matches(segment: SegmentSpec) -> tuple[bool, str]:
        if segment.n_ci != 2:
            return False, f"needs exactly 2 CI ops, has {segment.n_ci}"
        if any(_is_reduction(op) for op in segment.ops):
            return False, "reductions cannot fuse into a GEMM chain"
        return True, ""

    def param_space(self) -> dict[str, tuple]:
        return {
            "block_m": (16, 32, 64),
            "block_n2": (64, 128, 256),   # second-GEMM N tile (recompute trade)
            "num_warps": (4, 1, 2, 8),
            "num_stages": (2, 1, 3),
        }

    def plan(self, spec, params):
        ci_idx = [i for i, op in enumerate(self.segment.ops) if _is_ci(op)]
        b1, m, n1, k1 = _gemm_dims(self.segment, ci_idx[0])
        b2, m2, n2, k2 = _gemm_dims(self.segment, ci_idx[1])
        bm = params["block_m"]
        bn2 = min(params["block_n2"], n2)
        tiles_m = math.ceil(m / bm)
        tiles_n2 = math.ceil(n2 / bn2)
        grid = b1 * tiles_m * tiles_n2

        # Each (m, n2) block recomputes its BLOCK_M x N1 intermediate rows
        # (the classic fused-GEMM-chain recompute-vs-reread trade): the first
        # GEMM's FLOPs multiply by the n2 tiling, the first weight is read by
        # every block, and the second weight slice once per m-tile.
        recompute = float(tiles_n2)
        x_bytes = b1 * m * k1 * FP16_BYTES
        w1_bytes = k1 * n1 * FP16_BYTES
        w2_bytes = k2 * n2 * FP16_BYTES
        x_dram, x_l2 = _reread(x_bytes, recompute, spec)
        w1_dram, w1_l2 = _reread(w1_bytes, float(grid), spec)
        w2_dram, w2_l2 = _reread(w2_bytes, float(b1 * tiles_m), spec)
        dram_read = x_dram + w1_dram + w2_dram + self._mi_ext_bytes(ci_idx)
        l2_read = x_l2 + w1_l2 + w2_l2

        smem = (
            bm * (n1 + PAD) * FP16_BYTES
            + params["num_stages"] * (bm + CHUNK_N) * BLOCK_K * FP16_BYTES
        )
        flops1 = 2.0 * b1 * m * n1 * k1 * recompute
        flops2 = 2.0 * b2 * m2 * n2 * k2
        cost = KernelCost(
            name=f"fused[{self.segment.names}]",
            bytes_dram_read=dram_read,
            bytes_dram_written=self._final_write_bytes() + self._aux_write_bytes(),
            bytes_l2_read=l2_read,
            bytes_smem=2.0
            * (x_bytes * recompute + w1_bytes * grid + w2_bytes * b1 * tiles_m)
            + 2.0 * b1 * m * n1 * FP16_BYTES * recompute,
            flops_tensor=flops1 + flops2,
            flops_simt=self._mi_flops(spec) * recompute,
            sync_rounds=(math.ceil(k1 / BLOCK_K) + math.ceil(k2 / BLOCK_K))
            * math.ceil(n1 / CHUNK_N)
            / max(1, params["num_stages"]),
        )
        config = LaunchConfig(
            grid_blocks=grid,
            warps_per_block=params["num_warps"],
            smem_per_block=smem,
            pipelined=params["num_stages"] >= 2,
        )
        return [(cost, config)]

    def _mi_ext_bytes(self, ci_idx: list[int]) -> float:
        total = 0.0
        counted: set[int] = set()
        for i in ci_idx:
            for kind, j in self.segment.sources[i]:
                if kind == "ext":
                    counted.add(j)
        for j, shape in enumerate(self.segment.ext_shapes):
            if j not in counted:
                total += numel(shape) * FP16_BYTES
        return total


#: Registry in match-priority order.
TEMPLATE_CLASSES: tuple[type[CompilationTemplate], ...] = (
    ElementwiseChainTemplate,
    ReductionChainTemplate,
    GemmEpilogueTemplate,
    GemmReduceTemplate,
    GemmChainTemplate,
)


def match_template(segment: SegmentSpec) -> CompilationTemplate:
    """Bind the segment to the first matching template.

    Raises :class:`~repro.core.errors.GraphError` when no template shape
    fits (e.g. three CI ops, or a reduction feeding a GEMM) — the search
    engine treats such schemes as infeasible and never selects them.
    """
    reasons = []
    for cls in TEMPLATE_CLASSES:
        ok, reason = cls.matches(segment)
        if ok:
            return cls(segment)
        reasons.append(f"{cls.__name__}: {reason}")
    raise GraphError(
        f"no compilation template fits segment [{segment.names}]; "
        + "; ".join(reasons)
    )
