"""Binary hash encoding of fusion schemes (paper §4.3).

"Inspired by the high-low voltage levels of digital circuits": a fusion
scheme over an ``N``-operator sequence is an array of ``N`` bits in which
every operator of one segment carries the same value and adjacent segments
carry *different* values — so boundaries are exactly the positions where
the bit flips.  The numbers are unrelated to operator characteristics; they
exist to make boundary moves and cache keys cheap.

A scheme is canonically represented here as a tuple of segment lengths
(e.g. ``(5, 3, 3, 2)`` for the paper's running example ``[#2-#6][#7-#9]
[#10-#12][#13,#14]``).  ``encode_scheme`` produces the bit array (starting
at 1, as in Fig. 8); ``decode_scheme`` inverts it; ``scheme_to_hex`` packs
the bits for compact cache keys on deep networks.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError


def _validate_lengths(lengths: tuple[int, ...]) -> None:
    if not lengths:
        raise ConfigError("a fusion scheme needs at least one segment")
    if any(int(l) < 1 for l in lengths):
        raise ConfigError(f"segment lengths must be >= 1, got {lengths}")


def encode_scheme(lengths: tuple[int, ...] | list[int]) -> np.ndarray:
    """Segment lengths -> alternating binary array.

    >>> encode_scheme((3, 2, 1)).tolist()
    [1, 1, 1, 0, 0, 1]
    """
    lengths = tuple(int(l) for l in lengths)
    _validate_lengths(lengths)
    bits: list[int] = []
    value = 1
    for l in lengths:
        bits.extend([value] * l)
        value ^= 1
    return np.asarray(bits, dtype=np.uint8)


def decode_scheme(bits: np.ndarray | list[int]) -> tuple[int, ...]:
    """Binary array -> segment lengths (boundary at every bit flip).

    >>> decode_scheme([1, 1, 1, 0, 0, 1])
    (3, 2, 1)
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError(f"encoding must be a non-empty 1-D bit array, got {arr.shape}")
    if not np.isin(arr, (0, 1)).all():
        raise ConfigError("encoding must contain only 0/1 values")
    flips = np.flatnonzero(np.diff(arr.astype(np.int8)) != 0)
    boundaries = np.concatenate([[-1], flips, [arr.size - 1]])
    return tuple(int(b - a) for a, b in zip(boundaries[:-1], boundaries[1:]))


def scheme_to_hex(lengths: tuple[int, ...] | list[int]) -> str:
    """Hex compression of the binary encoding (4 bits per digit, MSB-first).

    The operator count is prefixed so padding bits are unambiguous:

    >>> scheme_to_hex((3, 2, 1))
    '6:e4'
    """
    bits = encode_scheme(lengths)
    n = bits.size
    padded = np.zeros(((n + 3) // 4) * 4, dtype=np.uint8)
    padded[:n] = bits
    digits = []
    for i in range(0, padded.size, 4):
        nib = (padded[i] << 3) | (padded[i + 1] << 2) | (padded[i + 2] << 1) | padded[i + 3]
        digits.append(format(int(nib), "x"))
    return f"{n}:{''.join(digits)}"


def hex_to_scheme(text: str) -> tuple[int, ...]:
    """Invert :func:`scheme_to_hex`.

    >>> hex_to_scheme('6:e4')
    (3, 2, 1)
    """
    try:
        n_str, hex_part = text.split(":", 1)
        n = int(n_str)
    except ValueError as exc:
        raise ConfigError(f"malformed hex scheme {text!r}") from exc
    if n < 1 or len(hex_part) != (n + 3) // 4:
        raise ConfigError(f"hex scheme {text!r} has inconsistent length")
    bits: list[int] = []
    for ch in hex_part:
        nib = int(ch, 16)
        bits.extend([(nib >> 3) & 1, (nib >> 2) & 1, (nib >> 1) & 1, nib & 1])
    bits = bits[:n]
    if bits and bits[0] != 1:
        raise ConfigError(f"hex scheme {text!r} does not start with 1")
    return decode_scheme(bits)


def scheme_key(lengths: tuple[int, ...] | list[int]) -> str:
    """Canonical cache key for a scheme (the hex form)."""
    return scheme_to_hex(tuple(lengths))
