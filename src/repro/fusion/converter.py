"""The fusion scheme converter (paper Fig. 8).

Sits between the search engine and the graph/templates:

* **upwards** — expresses a scheme as its binary hash code / hex key,
* **downwards** — decodes a scheme into :class:`SegmentSpec` s and binds
  each to a compilation template,
* extracts the *linear chains* of the downstream operator sequence that
  schemes partition (branch points — e.g. a LayerNorm feeding Q/K/V
  projections — are natural fusion barriers).

Segment and template bindings are cached by ``(start, length)`` within a
chain, so the search engine's incremental boundary moves only re-resolve
the segments they touch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import GraphError
from repro.fusion.encoding import decode_scheme, encode_scheme, scheme_key
from repro.fusion.segment import SegmentSpec
from repro.fusion.templates import CompilationTemplate, match_template
from repro.graph.ir import Graph, Node, NodeKind
from repro.ops.base import OpCategory


@dataclass
class OperatorChain:
    """One maximal linear chain of plain-op nodes in the graph."""

    node_names: list[str]
    categories: list[OpCategory]

    @property
    def n_ops(self) -> int:
        return len(self.node_names)


def extract_chains(graph: Graph) -> list[OperatorChain]:
    """Partition the graph's plain-op nodes into maximal linear chains.

    A chain continues from op ``a`` to op ``b`` when ``b`` consumes ``a``
    and ``a`` has exactly one consumer.  FUSED nodes (captured MHA) and
    branch points terminate chains.
    """
    counts = graph.consumer_counts()
    op_names = [n.name for n in graph.op_nodes() if n.kind is NodeKind.OP]
    op_set = set(op_names)

    # Each op can be the chain-continuation of at most ONE producer: when a
    # node like Add(h, residual) has several single-consumer producers, the
    # first qualifying input wins and the others end their chains there.
    next_of: dict[str, str] = {}
    prev_of: dict[str, str] = {}
    for name in op_names:
        node = graph.nodes[name]
        for dep in node.inputs:
            if (
                dep in op_set
                and counts[dep] == 1
                and dep not in next_of
                and name not in prev_of
            ):
                next_of[dep] = name
                prev_of[name] = dep
                break

    chains: list[OperatorChain] = []
    for name in op_names:
        if name in prev_of:
            continue  # interior of some chain
        chain = [name]
        cur = name
        while cur in next_of:
            cur = next_of[cur]
            chain.append(cur)
        cats = [graph.node(n).op.category for n in chain]
        chains.append(OperatorChain(chain, cats))
    return chains


@dataclass
class ConversionStats:
    """Host-side overhead accounting (feeds the Fig. 14 breakdown)."""

    encode_s: float = 0.0
    decode_s: float = 0.0
    template_match_s: float = 0.0


class FusionSchemeConverter:
    """Scheme <-> encoding <-> template bindings for one operator chain."""

    def __init__(self, graph: Graph, chain: OperatorChain):
        self.graph = graph
        self.chain = chain
        self.stats = ConversionStats()
        self._segment_cache: dict[tuple[int, int], SegmentSpec] = {}
        self._template_cache: dict[tuple[int, int], CompilationTemplate | None] = {}

    # ------------------------------------------------------------- encoding

    def encode(self, scheme: tuple[int, ...]) -> np.ndarray:
        t0 = time.perf_counter()
        try:
            return encode_scheme(scheme)
        finally:
            self.stats.encode_s += time.perf_counter() - t0

    def key(self, scheme: tuple[int, ...]) -> str:
        t0 = time.perf_counter()
        try:
            return scheme_key(scheme)
        finally:
            self.stats.encode_s += time.perf_counter() - t0

    def decode(self, bits: np.ndarray) -> tuple[int, ...]:
        t0 = time.perf_counter()
        try:
            return decode_scheme(bits)
        finally:
            self.stats.decode_s += time.perf_counter() - t0

    # ------------------------------------------------------------- segments

    def segment(self, start: int, length: int) -> SegmentSpec:
        key = (start, length)
        if key not in self._segment_cache:
            names = self.chain.node_names[start : start + length]
            self._segment_cache[key] = SegmentSpec.from_graph(self.graph, names)
        return self._segment_cache[key]

    def template(self, start: int, length: int) -> CompilationTemplate | None:
        """Bind (start, length) to a template; None when untemplatable."""
        key = (start, length)
        if key not in self._template_cache:
            t0 = time.perf_counter()
            try:
                self._template_cache[key] = match_template(self.segment(start, length))
            except GraphError:
                self._template_cache[key] = None
            finally:
                self.stats.template_match_s += time.perf_counter() - t0
        return self._template_cache[key]

    def scheme_templates(
        self, scheme: tuple[int, ...]
    ) -> list[CompilationTemplate] | None:
        """Templates for every segment of a scheme, or None if any fails."""
        if sum(scheme) != self.chain.n_ops:
            raise GraphError(
                f"scheme {scheme} does not cover chain of {self.chain.n_ops} ops"
            )
        out: list[CompilationTemplate] = []
        pos = 0
        for l in scheme:
            t = self.template(pos, l)
            if t is None:
                return None
            out.append(t)
            pos += l
        return out

    def feasible(self, scheme: tuple[int, ...]) -> bool:
        return self.scheme_templates(scheme) is not None

    # --------------------------------------------------------- initial scheme

    def initial_scheme(
        self,
        tokens: int,
        ci_chain_token_limit: int = 512,
        spec=None,
    ) -> tuple[int, ...]:
        """Rule-based initialization (paper §4.4).

        Greedy pass over the chain: every CI op absorbs the element-wise MI
        ops that follow it (classic epilogue fusion); runs of MI ops fuse
        together; and — per the §3 conclusion — when the token count
        (batch x seq_len) is at most ``ci_chain_token_limit``, adjacent CI
        segments are merged into CI+CI chains.  When a device ``spec`` is
        given, the CI+CI merge is additionally gated on the analytical
        model predicting a gain (expansion can grow but never split a
        segment, so the init must not bake in a losing merge).
        """
        from repro.fusion.templates import _is_reduction
        from repro.ops.base import Operator

        cats = self.chain.categories
        ops: list[Operator] = [self.graph.node(n).op for n in self.chain.node_names]
        n = len(cats)
        lengths: list[int] = []
        i = 0
        while i < n:
            if cats[i] is OpCategory.CI:
                # Epilogue fusion: absorb following element-wise MI ops, but
                # stop at reductions — GEMM+LayerNorm is aggressive and left
                # to stage-1 expansion (accepted only on measured gain).
                j = i + 1
                while (
                    j < n
                    and cats[j] is not OpCategory.CI
                    and not _is_reduction(ops[j])
                ):
                    if self.template(i, j - i + 1) is None:
                        break
                    j += 1
                lengths.append(j - i)
                i = j
            else:
                # Fuse the MI run (torch.inductor-style), reductions included.
                j = i + 1
                while j < n and cats[j] is not OpCategory.CI:
                    if self.template(i, j - i + 1) is None:
                        break
                    j += 1
                lengths.append(j - i)
                i = j

        if tokens <= ci_chain_token_limit:
            merged: list[int] = []
            pos = 0
            k = 0
            while k < len(lengths):
                if k + 1 < len(lengths):
                    combined = lengths[k] + lengths[k + 1]
                    seg_cis = sum(
                        1
                        for c in cats[pos : pos + combined]
                        if c is OpCategory.CI
                    )
                    tmpl = (
                        self.template(pos, combined) if seg_cis == 2 else None
                    )
                    gain_ok = tmpl is not None
                    if gain_ok and spec is not None:
                        left = self.template(pos, lengths[k])
                        right = self.template(pos + lengths[k], lengths[k + 1])
                        if left is None or right is None:
                            gain_ok = False
                        else:
                            try:
                                fused_t = tmpl.estimate_time(spec)
                                split_t = left.estimate_time(spec) + right.estimate_time(spec)
                                gain_ok = fused_t < split_t
                            except Exception:
                                gain_ok = False
                    if gain_ok:
                        merged.append(combined)
                        pos += combined
                        k += 2
                        continue
                merged.append(lengths[k])
                pos += lengths[k]
                k += 1
            lengths = merged

        scheme = tuple(lengths)
        if not self.feasible(scheme):  # pragma: no cover - greedy guards above
            scheme = tuple(1 for _ in range(n))
        return scheme
