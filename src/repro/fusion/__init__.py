"""Operator-fusion module (paper §4.3): scheme conversion and templates.

* :mod:`repro.fusion.segment` — :class:`SegmentSpec`, one contiguous run of
  the downstream operator sequence with its dataflow resolved.
* :mod:`repro.fusion.encoding` — the binary hash encoding of fusion schemes
  (and hex compression) plus numerical decoding back to segments.
* :mod:`repro.fusion.templates` — compilation templates: MI chains, GEMM +
  epilogue, GEMM + row reduction, and the two-GEMM chain; each exposes the
  kernel parameters the search engine tunes.
* :mod:`repro.fusion.rules` — the expand / seize / compete boundary moves.
* :mod:`repro.fusion.converter` — :class:`FusionSchemeConverter`, mapping
  schemes <-> encodings <-> template bindings (Fig. 8).
"""

from repro.fusion.segment import SegmentSpec, segment_sequence
from repro.fusion.encoding import (
    encode_scheme,
    decode_scheme,
    scheme_to_hex,
    hex_to_scheme,
    scheme_key,
)
from repro.fusion.templates import (
    CompilationTemplate,
    ElementwiseChainTemplate,
    ReductionChainTemplate,
    GemmEpilogueTemplate,
    GemmReduceTemplate,
    GemmChainTemplate,
    match_template,
)
from repro.fusion.rules import FusionMove, legal_moves, apply_move, count_ci
from repro.fusion.converter import FusionSchemeConverter, OperatorChain, extract_chains

__all__ = [
    "SegmentSpec",
    "segment_sequence",
    "encode_scheme",
    "decode_scheme",
    "scheme_to_hex",
    "hex_to_scheme",
    "scheme_key",
    "CompilationTemplate",
    "ElementwiseChainTemplate",
    "ReductionChainTemplate",
    "GemmEpilogueTemplate",
    "GemmReduceTemplate",
    "GemmChainTemplate",
    "match_template",
    "FusionMove",
    "legal_moves",
    "apply_move",
    "count_ci",
    "FusionSchemeConverter",
    "OperatorChain",
    "extract_chains",
]
