"""Collective-communication cost model (NCCL-style ring algorithms).

A :class:`LinkSpec` is the α–β model of one inter-GPU link: ``latency_s``
is the per-hop launch/propagation cost (α) and ``bandwidth`` the sustained
per-direction byte rate (β).  :class:`Interconnect` prices the three
collectives tensor parallelism needs on a ring of ``world_size`` devices,
using the standard ring-algorithm step counts (NCCL's default for the
payload sizes inference produces):

* **all-reduce** — ``2 (n-1)`` hops, each moving ``bytes / n``
  (reduce-scatter followed by all-gather).
* **all-gather** / **reduce-scatter** — ``(n-1)`` hops of ``bytes / n``.

With ``n = 1`` every collective is free: there is nobody to talk to.
The constants are datasheet numbers, not measurements — like the
roofline's peak rates, they make the *shapes* of scaling curves right
(near-linear TP speedup while compute dominates, flattening once the
α term does), which is what the reproduction studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class LinkSpec:
    """α–β description of one GPU-to-GPU link."""

    name: str
    latency_s: float      # α: per-hop fixed cost (seconds)
    bandwidth: float      # β: per-direction sustained rate (bytes / s)

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.bandwidth <= 0:
            raise ConfigError(f"bandwidth must be > 0, got {self.bandwidth}")


#: NVLink 3 (A100 generation): 300 GB/s per direction, sub-µs hop cost
#: plus the collective's kernel launch.
NVLINK = LinkSpec(name="nvlink", latency_s=2.0e-6, bandwidth=300e9)

#: PCIe 4.0 x16 host-routed peer-to-peer: ~25 GB/s effective, higher
#: per-hop latency (the path crosses the root complex).
PCIE = LinkSpec(name="pcie", latency_s=5.0e-6, bandwidth=25e9)

#: Registry keyed by the CLI/benchmark link names.
KNOWN_LINKS: dict[str, LinkSpec] = {
    NVLINK.name: NVLINK,
    PCIE.name: PCIE,
}


def get_link(name: str) -> LinkSpec:
    """Look up a link spec by name (case-insensitive).

    >>> get_link("nvlink").bandwidth
    300000000000.0
    """
    key = name.strip().lower()
    if key not in KNOWN_LINKS:
        raise ConfigError(f"unknown link {name!r}; known: {sorted(KNOWN_LINKS)}")
    return KNOWN_LINKS[key]


@dataclass(frozen=True)
class Interconnect:
    """Ring-collective estimator over ``world_size`` devices on one link.

    >>> ic = Interconnect(NVLINK, 4)
    >>> ic.all_reduce_time(0.0) > 0          # α term survives empty payloads
    True
    >>> Interconnect(NVLINK, 1).all_reduce_time(1e9)
    0.0
    """

    link: LinkSpec
    world_size: int

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ConfigError(
                f"world_size must be >= 1, got {self.world_size}"
            )

    def _hops(self, hops: int, payload_bytes: float) -> float:
        if payload_bytes < 0:
            raise ConfigError(f"bytes must be >= 0, got {payload_bytes}")
        if self.world_size == 1:
            return 0.0
        chunk = payload_bytes / self.world_size
        return hops * (self.link.latency_s + chunk / self.link.bandwidth)

    def all_reduce_time(self, payload_bytes: float) -> float:
        """Ring all-reduce: reduce-scatter + all-gather, 2(n-1) hops."""
        return self._hops(2 * (self.world_size - 1), payload_bytes)

    def all_gather_time(self, payload_bytes: float) -> float:
        """Ring all-gather: (n-1) hops of bytes/n."""
        return self._hops(self.world_size - 1, payload_bytes)

    def reduce_scatter_time(self, payload_bytes: float) -> float:
        """Ring reduce-scatter: (n-1) hops of bytes/n."""
        return self._hops(self.world_size - 1, payload_bytes)
