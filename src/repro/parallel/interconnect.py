"""Collective-communication cost model (NCCL-style ring algorithms).

A :class:`LinkSpec` is the α–β model of one inter-GPU link: ``latency_s``
is the per-hop launch/propagation cost (α) and ``bandwidth`` the sustained
per-direction byte rate (β).  :class:`Interconnect` prices the three
collectives tensor parallelism needs on a ring of ``world_size`` devices,
using the standard ring-algorithm step counts (NCCL's default for the
payload sizes inference produces):

* **all-reduce** — ``2 (n-1)`` hops, each moving ``bytes / n``
  (reduce-scatter followed by all-gather).
* **all-gather** / **reduce-scatter** — ``(n-1)`` hops of ``bytes / n``.

With ``n = 1`` every collective is free: there is nobody to talk to.

When the group spans more than one NVLink island (``inter_link`` set and
``world_size > node_size``), collectives go **hierarchical**, the way
NCCL's two-level algorithms do: a ring *inside* each node on the fast
link, a tree *between* node leaders on the slow link, composed as
reduce-scatter → inter-node all-reduce → all-gather.  The inter-node leg
moves only ``bytes / node_size`` — the slow link carries one node's
already-reduced shard, which is why hierarchy beats ringing everyone on
the slow link for large payloads.

Collective prices are memoized process-wide: a serving simulation re-asks
for the same ``(op, bytes, link)`` for every layer of every step, so the
lookup table turns the hot loop's pricing into a dict probe.

The constants are datasheet numbers, not measurements — like the
roofline's peak rates, they make the *shapes* of scaling curves right
(near-linear TP speedup while compute dominates, flattening once the
α term does), which is what the reproduction studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class LinkSpec:
    """α–β description of one GPU-to-GPU link."""

    name: str
    latency_s: float      # α: per-hop fixed cost (seconds)
    bandwidth: float      # β: per-direction sustained rate (bytes / s)

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.bandwidth <= 0:
            raise ConfigError(f"bandwidth must be > 0, got {self.bandwidth}")


#: NVLink 3 (A100 generation): 300 GB/s per direction, sub-µs hop cost
#: plus the collective's kernel launch.
NVLINK = LinkSpec(name="nvlink", latency_s=2.0e-6, bandwidth=300e9)

#: PCIe 4.0 x16 host-routed peer-to-peer: ~25 GB/s effective, higher
#: per-hop latency (the path crosses the root complex).
PCIE = LinkSpec(name="pcie", latency_s=5.0e-6, bandwidth=25e9)

#: HDR InfiniBand (200 Gb/s NIC per node): the usual inter-node fabric.
#: Per-hop latency includes the NIC traversal; bandwidth is what one
#: node's NIC sustains, which is what the inter-node tree legs move over.
IB = LinkSpec(name="ib", latency_s=4.0e-6, bandwidth=23e9)

#: Registry keyed by the CLI/benchmark link names.
KNOWN_LINKS: dict[str, LinkSpec] = {
    NVLINK.name: NVLINK,
    PCIE.name: PCIE,
    IB.name: IB,
}

#: GPUs per NVLink island: hierarchical collectives split the group into
#: nodes of this many ranks (a DGX-style 4-GPU fully-connected clique).
DEFAULT_NODE_SIZE = 4


def get_link(name: str) -> LinkSpec:
    """Look up a link spec by name (case-insensitive).

    >>> get_link("nvlink").bandwidth
    300000000000.0
    """
    key = name.strip().lower()
    if key not in KNOWN_LINKS:
        raise ConfigError(f"unknown link {name!r}; known: {sorted(KNOWN_LINKS)}")
    return KNOWN_LINKS[key]


@lru_cache(maxsize=65536)
def _priced(ic: "Interconnect", op: str, payload_bytes: float) -> float:
    """Memoized collective price: (interconnect, op, bytes) -> seconds.

    Pure function of frozen value types, so one process-wide table is
    safe; shard-sim hot loops re-price the identical tuple per layer per
    step and hit here.
    """
    return ic._compute(op, payload_bytes)


def collective_cache_info():
    """Hit/miss statistics of the memoized collective-price table."""
    return _priced.cache_info()


def clear_collective_cache() -> None:
    """Drop every memoized collective price (tests and benchmarks)."""
    _priced.cache_clear()


@dataclass(frozen=True)
class Interconnect:
    """Collective estimator over ``world_size`` devices.

    Flat mode (the default): one ring over ``link``.  Hierarchical mode
    (``inter_link`` set and ``world_size > node_size``): intra-node rings
    over ``link`` plus an inter-node tree over ``inter_link`` between the
    ``world_size / node_size`` node leaders.

    >>> ic = Interconnect(NVLINK, 4)
    >>> ic.all_reduce_time(0.0) > 0          # α term survives empty payloads
    True
    >>> Interconnect(NVLINK, 1).all_reduce_time(1e9)
    0.0
    """

    link: LinkSpec
    world_size: int
    inter_link: LinkSpec | None = None
    node_size: int = DEFAULT_NODE_SIZE

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ConfigError(
                f"world_size must be >= 1, got {self.world_size}"
            )
        if self.node_size < 1:
            raise ConfigError(f"node_size must be >= 1, got {self.node_size}")
        if self.hierarchical and self.world_size % self.node_size != 0:
            raise ConfigError(
                f"hierarchical group needs world_size divisible by "
                f"node_size, got {self.world_size} % {self.node_size} != 0"
            )

    @property
    def hierarchical(self) -> bool:
        """True when collectives split into intra-node + inter-node legs."""
        return self.inter_link is not None and self.world_size > self.node_size

    @property
    def n_nodes(self) -> int:
        return (
            self.world_size // self.node_size if self.hierarchical else 1
        )

    # -------------------------------------------------------------- internals

    def _ring(
        self, link: LinkSpec, ranks: int, hops: int, payload_bytes: float
    ) -> float:
        """``hops`` ring steps of ``bytes / ranks`` each over ``link``."""
        if ranks == 1:
            return 0.0
        chunk = payload_bytes / ranks
        return hops * (link.latency_s + chunk / link.bandwidth)

    def _tree(self, direction_hops: int, payload_bytes: float) -> float:
        """Inter-node tree legs: ``direction_hops`` tree traversals (1 for
        a reduce or a broadcast, 2 for a full all-reduce), each moving the
        whole per-leader payload down ``log2(nodes)`` levels."""
        assert self.inter_link is not None
        depth = max(1, math.ceil(math.log2(self.n_nodes)))
        return direction_hops * depth * (
            self.inter_link.latency_s + payload_bytes / self.inter_link.bandwidth
        )

    def _compute(self, op: str, payload_bytes: float) -> float:
        """Uncached price of one collective (see the memoized front door)."""
        n = self.world_size
        if not self.hierarchical:
            hops = {
                "all_reduce": 2 * (n - 1),
                "all_gather": n - 1,
                "reduce_scatter": n - 1,
            }[op]
            return self._ring(self.link, n, hops, payload_bytes)
        # Hierarchical: every rank reduce-scatters inside its node over the
        # fast link, node leaders run the collective's inter-node leg over
        # the slow link on the node's 1/node_size shard, and the result is
        # all-gathered back inside each node.
        local = self.node_size
        intra_rs = self._ring(self.link, local, local - 1, payload_bytes)
        intra_ag = self._ring(self.link, local, local - 1, payload_bytes)
        leader_bytes = payload_bytes / local
        if op == "all_reduce":
            return intra_rs + self._tree(2, leader_bytes) + intra_ag
        if op == "reduce_scatter":
            return intra_rs + self._tree(1, leader_bytes)
        return self._tree(1, leader_bytes) + intra_ag       # all_gather

    def _price(self, op: str, payload_bytes: float) -> float:
        if payload_bytes < 0:
            raise ConfigError(f"bytes must be >= 0, got {payload_bytes}")
        if self.world_size == 1:
            return 0.0
        return _priced(self, op, float(payload_bytes))

    # ------------------------------------------------------------ collectives

    def all_reduce_time(self, payload_bytes: float) -> float:
        """Ring all-reduce: reduce-scatter + all-gather, 2(n-1) hops."""
        return self._price("all_reduce", payload_bytes)

    def all_gather_time(self, payload_bytes: float) -> float:
        """Ring all-gather: (n-1) hops of bytes/n."""
        return self._price("all_gather", payload_bytes)

    def reduce_scatter_time(self, payload_bytes: float) -> float:
        """Ring reduce-scatter: (n-1) hops of bytes/n."""
        return self._price("reduce_scatter", payload_bytes)

    def point_to_point_time(self, payload_bytes: float) -> float:
        """One direct send (pipeline activation handoff): α + bytes/β over
        the inter-node link when the group spans nodes, else the intra
        link."""
        if payload_bytes < 0:
            raise ConfigError(f"bytes must be >= 0, got {payload_bytes}")
        link = self.inter_link if self.inter_link is not None else self.link
        return link.latency_s + payload_bytes / link.bandwidth
