"""Tensor/pipeline-parallel model compilation.

:func:`compile_sharded` is the ``parallel=`` path of
:func:`repro.api.compile_model`: it builds ONE representative rank's
shard of the model — Megatron-LM's layout, with column-parallel Q/K/V and
fc1 projections (``heads/tp`` heads, ``ffn_dim/tp`` inner width) and
row-parallel output/fc2 projections back to the full hidden width — plans
it through the existing engine/roofline substrate, and adds the
collective time the layout requires: one ring all-reduce of the full
``batch * seq * hidden`` activation after every row-parallel projection
(one per attention block, one per FFN).

TP ranks are symmetric by construction (heads and FFN columns divide
evenly, or compilation refuses), so one rank's plan *is* every rank's
plan.  Two pricing modes share that plan:

* **serialized** (``overlap=False``) — the original sync-point model:
  every all-reduce stalls the ranks, ``latency = rank_time + comm_time``.
* **overlapped** (the default) — each layer's two all-reduces are
  bucketed into one collective and overlapped with the next layer's
  compute under a link/SM contention factor
  (:mod:`repro.parallel.overlap`); only the first layer's compute and
  the last layer's bucket stay exposed.

Pipeline parallelism (``pp > 1``) splits the layer stack into ``pp``
uniform stages (divisibility enforced up front), sends the boundary
activation point-to-point between stages, and runs ``micro_batches``
micro-batches through a Megatron-style 1F1B schedule with an explicit
``(pp - 1)``-window bubble term.  Data-parallel replicas do not change
single-pass latency — they multiply throughput — so ``dp`` only scales
the reported replica count here; the serving layer
(:mod:`repro.parallel.serving`) is where DP earns its keep.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

import numpy as np

# repro.api never imports repro.parallel at module scope (only lazily
# inside compile_model), so this dependency direction is cycle-free.
from repro.api import ENGINES, CompiledModel, _resolve_masks
from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.core.units import format_time
from repro.gpu.specs import GPUSpec, get_spec
from repro.models.build import build_model
from repro.models.config import ModelConfig, get_model_config
from repro.obs.tracer import Tracer, use_tracer
from repro.parallel.overlap import (
    DEFAULT_CONTENTION,
    bubble_fraction,
    overlapped_layer_time,
    pipeline_bubble_time,
    pipeline_time,
)
from repro.parallel.shard import ShardConfig
from repro.plan import PlanCache


def validate_divisibility(cfg: ModelConfig, tp: int, pp: int = 1) -> None:
    """Refuse layouts whose ranks or stages would be asymmetric."""
    if cfg.heads % tp != 0:
        raise ConfigError(
            f"{cfg.name}: {cfg.heads} heads not divisible by tp={tp}"
        )
    if cfg.ffn_dim % tp != 0:
        raise ConfigError(
            f"{cfg.name}: ffn_dim {cfg.ffn_dim} not divisible by tp={tp}"
        )
    if cfg.total_layers % pp != 0:
        raise ConfigError(
            f"{cfg.name}: {cfg.total_layers} layers not divisible by "
            f"pp={pp}; pipeline stages must be uniform"
        )


def compile_sharded(
    model: "str | ModelConfig",
    batch: int,
    seq_len: int,
    parallel: "str | ShardConfig",
    device: "str | GPUSpec | None" = None,
    mask: "str | np.ndarray | None" = None,
    engine: Any = "stof",
    seed: int = 0,
    check_memory: bool = True,
    plan_cache: PlanCache | None = None,
    trace: Tracer | None = None,
    overlap: bool = True,
    micro_batches: int | None = None,
    contention: float = DEFAULT_CONTENTION,
    **engine_kwargs: Any,
) -> "ShardedCompiledModel":
    """Compile one workload under a tensor/pipeline/data-parallel layout.

    ``overlap`` selects the pricing mode (see the module docstring);
    ``overlap=False`` reproduces the serialized sync-point model bit for
    bit.  ``micro_batches`` (default: 8 when ``pp > 1``, else 1) sets the
    1F1B schedule's micro-batch count; ``contention`` the link/SM
    contention factor of each overlap window.
    """
    shard = ShardConfig.parse(parallel)
    cfg = get_model_config(model) if isinstance(model, str) else model
    validate_divisibility(cfg, shard.tp, shard.pp)
    if micro_batches is None:
        micro_batches = 8 if shard.pp > 1 else 1
    if micro_batches < 1:
        raise ConfigError(f"micro_batches must be >= 1, got {micro_batches}")
    device = "a100" if device is None else device
    mask = "bigbird" if mask is None else mask
    spec = get_spec(device) if isinstance(device, str) else device

    with use_tracer(trace) if trace is not None else nullcontext():
        inst = build_model(
            cfg, batch, seq_len, seed=seed,
            heads=cfg.heads // shard.tp,
            ffn_dim=cfg.ffn_dim // shard.tp,
        )
        masks, patterns = _resolve_masks(mask, inst, seed)

        if isinstance(engine, str):
            key = engine.strip().lower()
            if key not in ENGINES:
                raise ConfigError(
                    f"unknown engine {engine!r}; known: {sorted(ENGINES)}"
                )
            engine = ENGINES[key](**engine_kwargs)
        prepared = engine.prepare(inst, spec, masks, patterns)
        # The layout fingerprint rides in every PlanKey this rank emits —
        # and, because symbolic family bases preserve the shard field
        # (repro.plan.symbolic.family_base zeroes only the free dims),
        # guarded plan families are per-layout too: a tp4 rank can never
        # satisfy a tp2 probe's guards out of a shared cache.
        prepared.shard = shard.fingerprint
        if plan_cache is not None:
            prepared.plan_cache = plan_cache
        report = prepared.plan(check_memory=check_memory)

        # Megatron sync points: one all-reduce of the full (tokens, hidden)
        # activation after each row-parallel projection — the attention
        # output projection (every attention site, so decoder cross-
        # attention counts) and the FFN's fc2 (every layer).
        ic = shard.interconnect()
        ar_bytes = batch * seq_len * cfg.hidden * FP16_BYTES
        ar_count = len(prepared.attention) + cfg.total_layers
        serial_comm = ar_count * ic.all_reduce_time(ar_bytes)

        timing = _price_timeline(
            shard, ic, report.time_s, cfg.total_layers, ar_bytes, ar_count,
            overlap, micro_batches, contention,
        )

        if trace is not None and trace.enabled:
            _record_spans(trace, shard, report.time_s, timing, ar_count,
                          ar_bytes, micro_batches, contention)

    return ShardedCompiledModel(
        instance=inst,
        prepared=prepared,
        report=report,
        masks=masks,
        seed=seed,
        shard=shard,
        overlap=overlap,
        micro_batches=micro_batches,
        contention=contention,
        comm_time_s=timing["comm_s"],
        serial_comm_time_s=serial_comm,
        serial_latency_s=report.time_s + serial_comm,
        total_latency_s=timing["latency_s"],
        p2p_time_s=timing["p2p_s"],
        bubble_time_s=timing["bubble_s"],
        ar_count=ar_count,
        ar_bytes=ar_bytes,
    )


def _price_timeline(
    shard: ShardConfig,
    ic,
    rank_time_s: float,
    n_layers: int,
    ar_bytes: int,
    ar_count: int,
    overlap: bool,
    micro_batches: int,
    contention: float,
) -> dict:
    """Price the layout's execution timeline in the requested mode.

    Returns ``latency_s`` (end-to-end), ``comm_s`` (collective seconds
    the representative rank pays), ``p2p_s`` (its pipeline sends) and
    ``bubble_s`` (the 1F1B fill/drain term).
    """
    pp, m = shard.pp, micro_batches
    if pp == 1 and not overlap:
        # The original serialized sync-point model, bit for bit.
        comm = ar_count * ic.all_reduce_time(ar_bytes)
        return {
            "latency_s": rank_time_s + comm,
            "comm_s": comm,
            "p2p_s": 0.0,
            "bubble_s": 0.0,
        }

    stage_layers = n_layers // pp
    stage_compute = rank_time_s / pp
    micro_compute = stage_compute / m
    # Bucketing: each layer's sync points (ar_count / n_layers of them,
    # 2 for encoders, 3 for decoder layers with cross-attention) fuse
    # into ONE collective — same bytes, one set of α hops.
    bucket_bytes = ar_bytes * ar_count / n_layers
    micro_layer_comm = ic.all_reduce_time(bucket_bytes / m)
    p2p_micro = (
        ic.point_to_point_time(ar_bytes / m) if pp > 1 else 0.0
    )
    if overlap:
        window = overlapped_layer_time(
            micro_compute, micro_layer_comm, stage_layers, contention
        )
    else:
        window = micro_compute + stage_layers * micro_layer_comm
    window += p2p_micro
    return {
        "latency_s": pipeline_time(window, m, pp),
        "comm_s": m * stage_layers * micro_layer_comm,
        "p2p_s": m * p2p_micro,
        "bubble_s": pipeline_bubble_time(window, m, pp),
    }


def _record_spans(
    trace: Tracer,
    shard: ShardConfig,
    rank_time_s: float,
    timing: dict,
    ar_count: int,
    ar_bytes: int,
    micro_batches: int,
    contention: float,
) -> None:
    """Lay the layout's comm on the compile trace's collectives lane."""
    if timing["comm_s"] <= 0 and timing["p2p_s"] <= 0:
        return
    trace.lane_names.setdefault(3, "collectives")
    if timing["comm_s"] > 0:
        trace.add_span(
            "tp.all_reduce",
            cat="comm",
            t0=rank_time_s,
            dur=timing["comm_s"],
            tid=3,
            link=shard.link.name,
            count=ar_count,
            payload_bytes=ar_bytes,
            overlapped=timing["latency_s"] < rank_time_s + timing["comm_s"],
            contention=contention,
        ).add_model_time(timing["comm_s"])
    if timing["p2p_s"] > 0:
        trace.add_span(
            "pp.send",
            cat="comm",
            t0=rank_time_s + timing["comm_s"],
            dur=timing["p2p_s"],
            tid=3,
            link=shard.p2p_link.name,
            stages=shard.pp,
            micro_batches=micro_batches,
        ).add_model_time(timing["p2p_s"])


@dataclass
class ShardedCompiledModel(CompiledModel):
    """One rank's compiled shard plus the layout's timeline costs."""

    shard: ShardConfig = ShardConfig()
    overlap: bool = True
    micro_batches: int = 1
    contention: float = DEFAULT_CONTENTION
    comm_time_s: float = 0.0
    serial_comm_time_s: float = 0.0
    serial_latency_s: float = 0.0
    total_latency_s: float = 0.0
    p2p_time_s: float = 0.0
    bubble_time_s: float = 0.0
    ar_count: int = 0
    ar_bytes: int = 0

    @property
    def rank_time_s(self) -> float:
        """Per-rank compute time (every TP rank runs the same plan)."""
        return self.report.time_s

    @property
    def latency_s(self) -> float:
        """Simulated forward-pass latency under the layout's pricing mode."""
        return self.total_latency_s

    @property
    def bubble_fraction(self) -> float:
        """Share of the pipeline makespan spent in the 1F1B bubble."""
        return bubble_fraction(self.micro_batches, self.shard.pp)

    @property
    def stage_memory_bytes(self) -> float:
        """Per-rank memory of one pipeline stage (uniform-stage split of
        the weights/activations the full-rank plan accounted)."""
        return self.report.memory_bytes / self.shard.pp

    def run(self, inputs=None) -> np.ndarray:
        raise ConfigError(
            "sharded plans are cost models, not functional executors; "
            "run the unsharded model (parallel=None) for outputs"
        )

    def summary(self) -> str:
        r = self.report
        mode = (
            f"overlapped (contention {self.contention:g})"
            if self.overlap else "serialized"
        )
        lines = [
            f"{self.instance.config.name} @ batch {self.instance.batch}, "
            f"seq {self.instance.seq_len} on {self.shard.world_size}x "
            f"{self.prepared.spec.name} ({self.shard.fingerprint})",
            f"engine: {self.engine_name}",
            f"latency: {format_time(self.latency_s)} {mode} "
            f"(per-rank compute {format_time(self.rank_time_s)}, "
            f"comm {format_time(self.comm_time_s)} over "
            f"{self.ar_count} all-reduces; "
            f"serialized {format_time(self.serial_latency_s)})",
        ]
        if self.shard.pp > 1:
            lines.append(
                f"pipeline: {self.shard.pp} stages x "
                f"{self.micro_batches} micro-batches, bubble "
                f"{format_time(self.bubble_time_s)} "
                f"({self.bubble_fraction:.1%} of makespan), "
                f"p2p {format_time(self.p2p_time_s)}"
            )
        lines += [
            f"kernel launches per rank: {r.kernel_launches}",
            f"memory per rank: {r.memory_bytes / 2**30:.2f} GiB"
            + (
                f" ({self.stage_memory_bytes / 2**30:.2f} GiB per stage)"
                if self.shard.pp > 1 else ""
            ),
        ]
        return "\n".join(lines)
