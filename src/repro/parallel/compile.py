"""Tensor-parallel model compilation.

:func:`compile_sharded` is the ``parallel=`` path of
:func:`repro.api.compile_model`: it builds ONE representative rank's
shard of the model — Megatron-LM's layout, with column-parallel Q/K/V and
fc1 projections (``heads/tp`` heads, ``ffn_dim/tp`` inner width) and
row-parallel output/fc2 projections back to the full hidden width — plans
it through the existing engine/roofline substrate, and adds the
collective time the layout requires: one ring all-reduce of the full
``batch * seq * hidden`` activation after every row-parallel projection
(one per attention block, one per FFN).

TP ranks are symmetric by construction (heads and FFN columns divide
evenly, or compilation refuses), so one rank's plan *is* every rank's
plan and the sharded latency is ``rank_time + comm_time``.  Data-parallel
replicas do not change single-pass latency — they multiply throughput —
so ``dp`` only scales the reported replica count here; the serving layer
(:mod:`repro.parallel.serving`) is where DP earns its keep.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

import numpy as np

# repro.api never imports repro.parallel at module scope (only lazily
# inside compile_model), so this dependency direction is cycle-free.
from repro.api import ENGINES, CompiledModel, _resolve_masks
from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.core.units import format_time
from repro.gpu.specs import GPUSpec, get_spec
from repro.models.build import build_model
from repro.models.config import ModelConfig, get_model_config
from repro.obs.tracer import Tracer, use_tracer
from repro.parallel.shard import ShardConfig
from repro.plan import PlanCache


def validate_divisibility(cfg: ModelConfig, tp: int) -> None:
    """Refuse layouts whose ranks would be asymmetric."""
    if cfg.heads % tp != 0:
        raise ConfigError(
            f"{cfg.name}: {cfg.heads} heads not divisible by tp={tp}"
        )
    if cfg.ffn_dim % tp != 0:
        raise ConfigError(
            f"{cfg.name}: ffn_dim {cfg.ffn_dim} not divisible by tp={tp}"
        )


def compile_sharded(
    model: "str | ModelConfig",
    batch: int,
    seq_len: int,
    parallel: "str | ShardConfig",
    device: "str | GPUSpec | None" = None,
    mask: "str | np.ndarray | None" = None,
    engine: Any = "stof",
    seed: int = 0,
    check_memory: bool = True,
    plan_cache: PlanCache | None = None,
    trace: Tracer | None = None,
    **engine_kwargs: Any,
) -> "ShardedCompiledModel":
    """Compile one workload under a tensor/data-parallel layout."""
    shard = ShardConfig.parse(parallel)
    cfg = get_model_config(model) if isinstance(model, str) else model
    validate_divisibility(cfg, shard.tp)
    device = "a100" if device is None else device
    mask = "bigbird" if mask is None else mask
    spec = get_spec(device) if isinstance(device, str) else device

    with use_tracer(trace) if trace is not None else nullcontext():
        inst = build_model(
            cfg, batch, seq_len, seed=seed,
            heads=cfg.heads // shard.tp,
            ffn_dim=cfg.ffn_dim // shard.tp,
        )
        masks, patterns = _resolve_masks(mask, inst, seed)

        if isinstance(engine, str):
            key = engine.strip().lower()
            if key not in ENGINES:
                raise ConfigError(
                    f"unknown engine {engine!r}; known: {sorted(ENGINES)}"
                )
            engine = ENGINES[key](**engine_kwargs)
        prepared = engine.prepare(inst, spec, masks, patterns)
        # The layout fingerprint rides in every PlanKey this rank emits —
        # and, because symbolic family bases preserve the shard field
        # (repro.plan.symbolic.family_base zeroes only the free dims),
        # guarded plan families are per-layout too: a tp4 rank can never
        # satisfy a tp2 probe's guards out of a shared cache.
        prepared.shard = shard.fingerprint
        if plan_cache is not None:
            prepared.plan_cache = plan_cache
        report = prepared.plan(check_memory=check_memory)

        # Megatron sync points: one all-reduce of the full (tokens, hidden)
        # activation after each row-parallel projection — the attention
        # output projection (every attention site, so decoder cross-
        # attention counts) and the FFN's fc2 (every layer).
        ar_bytes = batch * seq_len * cfg.hidden * FP16_BYTES
        ar_count = len(prepared.attention) + cfg.total_layers
        comm = ar_count * shard.interconnect().all_reduce_time(ar_bytes)

        if trace is not None and trace.enabled and comm > 0:
            trace.lane_names.setdefault(3, "collectives")
            trace.add_span(
                "tp.all_reduce",
                cat="comm",
                t0=report.time_s,
                dur=comm,
                tid=3,
                link=shard.link.name,
                count=ar_count,
                payload_bytes=ar_bytes,
            ).add_model_time(comm)

    return ShardedCompiledModel(
        instance=inst,
        prepared=prepared,
        report=report,
        masks=masks,
        seed=seed,
        shard=shard,
        comm_time_s=comm,
        ar_count=ar_count,
        ar_bytes=ar_bytes,
    )


@dataclass
class ShardedCompiledModel(CompiledModel):
    """One rank's compiled shard plus the layout's collective costs."""

    shard: ShardConfig = ShardConfig()
    comm_time_s: float = 0.0
    ar_count: int = 0
    ar_bytes: int = 0

    @property
    def rank_time_s(self) -> float:
        """Per-rank compute time (every TP rank runs the same plan)."""
        return self.report.time_s

    @property
    def latency_s(self) -> float:
        """Simulated forward-pass latency: per-rank compute + collectives."""
        return self.report.time_s + self.comm_time_s

    def run(self, inputs=None) -> np.ndarray:
        raise ConfigError(
            "sharded plans are cost models, not functional executors; "
            "run the unsharded model (parallel=None) for outputs"
        )

    def summary(self) -> str:
        r = self.report
        lines = [
            f"{self.instance.config.name} @ batch {self.instance.batch}, "
            f"seq {self.instance.seq_len} on {self.shard.world_size}x "
            f"{self.prepared.spec.name} ({self.shard.fingerprint})",
            f"engine: {self.engine_name}",
            f"latency: {format_time(self.latency_s)} "
            f"(per-rank compute {format_time(self.rank_time_s)}, "
            f"comm {format_time(self.comm_time_s)} over "
            f"{self.ar_count} all-reduces)",
            f"kernel launches per rank: {r.kernel_launches}",
            f"memory per rank: {r.memory_bytes / 2**30:.2f} GiB",
        ]
        return "\n".join(lines)
