"""Multi-GPU sharded execution on the simulated substrate.

Three layers, mirroring how real serving stacks shard:

* :mod:`repro.parallel.interconnect` — the collective-communication cost
  model: α–β links (NVLink, PCIe) and NCCL-style ring estimators.
* :mod:`repro.parallel.compile` — Megatron-style tensor-parallel model
  compilation: per-rank shards priced by the existing roofline, plus the
  layout's all-reduces.
* :mod:`repro.parallel.serving` — TP serving replicas under data-parallel
  routing, merged into one fleet report.

Entry points: ``compile_model(..., parallel="tp4")`` from
:mod:`repro.api`, the ``repro shard-sim`` CLI subcommand, and the classes
re-exported here.
"""

from repro.parallel.compile import (
    ShardedCompiledModel,
    compile_sharded,
    validate_divisibility,
)
from repro.parallel.interconnect import (
    KNOWN_LINKS,
    NVLINK,
    PCIE,
    Interconnect,
    LinkSpec,
    get_link,
)
from repro.parallel.serving import (
    ROUTES,
    ShardedServingEngine,
    ShardedServingReport,
    TPServingEngine,
)
from repro.parallel.shard import ShardConfig

__all__ = [
    "Interconnect",
    "LinkSpec",
    "KNOWN_LINKS",
    "NVLINK",
    "PCIE",
    "get_link",
    "ShardConfig",
    "ShardedCompiledModel",
    "compile_sharded",
    "validate_divisibility",
    "ROUTES",
    "ShardedServingEngine",
    "ShardedServingReport",
    "TPServingEngine",
]
