"""Multi-GPU sharded execution on the simulated substrate.

Four layers, mirroring how real serving stacks shard:

* :mod:`repro.parallel.interconnect` — the collective-communication cost
  model: α–β links (NVLink, PCIe, IB) with NCCL-style ring estimators,
  hierarchical two-level collectives across nodes, and a memoized
  pricing cache.
* :mod:`repro.parallel.overlap` — the timeline algebra: comm–compute
  overlap windows under a contention factor, and 1F1B pipeline
  makespans with explicit bubble terms.
* :mod:`repro.parallel.compile` — Megatron-style tensor/pipeline-parallel
  model compilation: per-rank shards priced by the existing roofline,
  plus the layout's (bucketed, overlapped) collectives and micro-batch
  pipeline schedule.
* :mod:`repro.parallel.serving` — TP/PP serving replicas under
  data-parallel routing, merged into one fleet report.

Entry points: ``compile_model(..., parallel="tp2pp2")`` from
:mod:`repro.api`, the ``repro shard-sim`` CLI subcommand, and the classes
re-exported here.
"""

from repro.parallel.compile import (
    ShardedCompiledModel,
    compile_sharded,
    validate_divisibility,
)
from repro.parallel.interconnect import (
    IB,
    KNOWN_LINKS,
    NVLINK,
    PCIE,
    Interconnect,
    LinkSpec,
    clear_collective_cache,
    collective_cache_info,
    get_link,
)
from repro.parallel.overlap import (
    DEFAULT_CONTENTION,
    bubble_fraction,
    overlap_window,
    overlapped_layer_time,
    pipeline_bubble_time,
    pipeline_time,
)
from repro.parallel.serving import (
    ROUTES,
    AutoscalingServingEngine,
    FleetConfig,
    FleetReport,
    FrontierPoint,
    ShardedServingEngine,
    ShardedServingReport,
    TPServingEngine,
    cost_throughput_frontier,
)
from repro.parallel.shard import GRAMMAR, ShardConfig

__all__ = [
    "Interconnect",
    "LinkSpec",
    "KNOWN_LINKS",
    "NVLINK",
    "PCIE",
    "IB",
    "get_link",
    "collective_cache_info",
    "clear_collective_cache",
    "DEFAULT_CONTENTION",
    "overlap_window",
    "overlapped_layer_time",
    "pipeline_time",
    "pipeline_bubble_time",
    "bubble_fraction",
    "GRAMMAR",
    "ShardConfig",
    "ShardedCompiledModel",
    "compile_sharded",
    "validate_divisibility",
    "ROUTES",
    "AutoscalingServingEngine",
    "FleetConfig",
    "FleetReport",
    "FrontierPoint",
    "ShardedServingEngine",
    "ShardedServingReport",
    "TPServingEngine",
    "cost_throughput_frontier",
]
