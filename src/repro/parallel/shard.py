"""Shard layouts: tensor ranks, pipeline stages, data replicas, links.

A :class:`ShardConfig` is a pure value — it carries no model state — and
its :attr:`fingerprint` (``"tp4dp2:nvlink"``, ``"tp2pp2dp1:nvlink,ib"``)
is the string every sharded :class:`~repro.plan.key.PlanKey` embeds, so
per-rank plans are content-addressed separately from unsharded plans of
the same geometry.  Layouts with ``pp == 1`` and a single link keep the
exact fingerprint spelling of the pre-pipeline grammar, so their cached
plans survive unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.parallel.interconnect import (
    KNOWN_LINKS,
    NVLINK,
    Interconnect,
    LinkSpec,
    get_link,
)

#: The accepted shard-spec grammar (quoted by every parse error).
GRAMMAR = "tp{n}[pp{k}][dp{m}][:link[,link]]"

_TOKEN_RE = re.compile(r"(tp|pp|dp)(\d+)")
_AXES = ("tp", "pp", "dp")


@dataclass(frozen=True)
class ShardConfig:
    """One parallel layout: ``tp`` ranks per stage, ``pp`` pipeline
    stages per replica, ``dp`` replicas — over an intra-node link and an
    optional inter-node link (hierarchical collectives + pipeline sends).

    >>> ShardConfig(tp=4, dp=2).fingerprint
    'tp4dp2:nvlink'
    >>> ShardConfig.parse("tp2:pcie").link.name
    'pcie'
    >>> ShardConfig.parse("tp2pp2:nvlink,ib").fingerprint
    'tp2pp2dp1:nvlink,ib'
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    link: LinkSpec = NVLINK
    inter_link: LinkSpec | None = None

    def __post_init__(self) -> None:
        if self.tp < 1 or self.pp < 1 or self.dp < 1:
            raise ConfigError(
                f"tp, pp and dp must be >= 1, got tp={self.tp} "
                f"pp={self.pp} dp={self.dp}"
            )

    @property
    def world_size(self) -> int:
        return self.tp * self.pp * self.dp

    @property
    def fingerprint(self) -> str:
        """The shard discriminator embedded in every sharded PlanKey.

        ``pp1`` layouts on one link spell exactly as before the pipeline
        grammar existed (``tp4dp2:nvlink``), keeping their plan keys
        stable across versions.
        """
        pp = f"pp{self.pp}" if self.pp > 1 else ""
        links = self.link.name
        if self.inter_link is not None:
            links += f",{self.inter_link.name}"
        return f"tp{self.tp}{pp}dp{self.dp}:{links}"

    def interconnect(self) -> Interconnect:
        """The TP group's collective estimator: a ring of ``tp`` ranks,
        hierarchical across nodes when an inter-node link is given."""
        return Interconnect(self.link, self.tp, inter_link=self.inter_link)

    @property
    def p2p_link(self) -> LinkSpec:
        """The link pipeline activation sends travel over: adjacent stages
        sit on different nodes when an inter-node link exists."""
        return self.inter_link if self.inter_link is not None else self.link

    def validate_pipeline(self, n_layers: int, what: str = "model") -> None:
        """Refuse layouts whose pipeline stages would be ragged.

        Called at compile/engine-construction time — a bad ``pp`` must
        fail before any simulation step runs.
        """
        if n_layers % self.pp != 0:
            raise ConfigError(
                f"{what}: {n_layers} layers not divisible by pp={self.pp}; "
                f"pipeline stages must be uniform"
            )

    @classmethod
    def parse(cls, spec: "str | ShardConfig") -> "ShardConfig":
        """Parse ``"tp2"``, ``"tp2dp2"``, ``"tp2pp2dp2:nvlink,ib"`` ...

        A :class:`ShardConfig` passes through unchanged.  Errors name the
        offending token and quote the accepted grammar.

        >>> ShardConfig.parse("tp2dp2").fingerprint
        'tp2dp2:nvlink'
        >>> ShardConfig.parse("tp2pp4").pp
        4
        """
        if isinstance(spec, ShardConfig):
            return spec

        def bad(why: str) -> ConfigError:
            return ConfigError(
                f"cannot parse shard spec {spec!r}: {why}; accepted "
                f"grammar is {GRAMMAR!r} with links from "
                f"{sorted(KNOWN_LINKS)}"
            )

        body, _, link_part = spec.strip().lower().partition(":")
        axes: dict[str, int] = {}
        pos = 0
        while pos < len(body):
            m = _TOKEN_RE.match(body, pos)
            if not m:
                raise bad(
                    f"unexpected token {body[pos:]!r} at position {pos}"
                )
            axis, count = m.group(1), int(m.group(2))
            if axis in axes:
                raise bad(f"duplicate {axis!r} token")
            if axes and _AXES.index(axis) < max(
                _AXES.index(a) for a in axes
            ):
                raise bad(
                    f"token {m.group(0)!r} out of order "
                    f"(axes go {', '.join(_AXES)})"
                )
            axes[axis] = count
            pos = m.end()
        if not axes:
            raise bad("no tp/pp/dp token found")

        links = [s.strip() for s in link_part.split(",")] if link_part else []
        if len(links) > 2:
            raise bad(
                f"at most two links (intra,inter), got {len(links)}"
            )
        if link_part and any(not s for s in links):
            raise bad(f"empty link name in {link_part!r}")
        return cls(
            tp=axes.get("tp", 1),
            pp=axes.get("pp", 1),
            dp=axes.get("dp", 1),
            link=get_link(links[0]) if links else NVLINK,
            inter_link=get_link(links[1]) if len(links) == 2 else None,
        )
