"""Shard layouts: how many tensor-parallel ranks, how many data-parallel
replicas, over which link.

A :class:`ShardConfig` is a pure value — it carries no model state — and
its :attr:`fingerprint` (``"tp4dp2:nvlink"``) is the string every sharded
:class:`~repro.plan.key.PlanKey` embeds, so per-rank plans are
content-addressed separately from unsharded plans of the same geometry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.parallel.interconnect import NVLINK, Interconnect, LinkSpec, get_link

_SPEC_RE = re.compile(
    r"^(?:tp(?P<tp>\d+))?(?:dp(?P<dp>\d+))?(?::(?P<link>[\w-]+))?$"
)


@dataclass(frozen=True)
class ShardConfig:
    """One parallel layout: ``tp`` ranks per replica, ``dp`` replicas.

    >>> ShardConfig(tp=4, dp=2).fingerprint
    'tp4dp2:nvlink'
    >>> ShardConfig.parse("tp2:pcie").link.name
    'pcie'
    """

    tp: int = 1
    dp: int = 1
    link: LinkSpec = NVLINK

    def __post_init__(self) -> None:
        if self.tp < 1 or self.dp < 1:
            raise ConfigError(
                f"tp and dp must be >= 1, got tp={self.tp} dp={self.dp}"
            )

    @property
    def world_size(self) -> int:
        return self.tp * self.dp

    @property
    def fingerprint(self) -> str:
        """The shard discriminator embedded in every sharded PlanKey."""
        return f"tp{self.tp}dp{self.dp}:{self.link.name}"

    def interconnect(self) -> Interconnect:
        """The TP group's collective estimator (ring of ``tp`` ranks)."""
        return Interconnect(self.link, self.tp)

    @classmethod
    def parse(cls, spec: "str | ShardConfig") -> "ShardConfig":
        """Parse ``"tp2"``, ``"dp4"``, ``"tp2dp2"``, ``"tp4:pcie"`` ...

        A :class:`ShardConfig` passes through unchanged.

        >>> ShardConfig.parse("tp2dp2").fingerprint
        'tp2dp2:nvlink'
        """
        if isinstance(spec, ShardConfig):
            return spec
        m = _SPEC_RE.match(spec.strip().lower())
        if not m or (m.group("tp") is None and m.group("dp") is None):
            raise ConfigError(
                f"cannot parse shard spec {spec!r}; expected e.g. 'tp2', "
                "'dp4', 'tp2dp2', or 'tp4:pcie'"
            )
        return cls(
            tp=int(m.group("tp") or 1),
            dp=int(m.group("dp") or 1),
            link=get_link(m.group("link")) if m.group("link") else NVLINK,
        )
