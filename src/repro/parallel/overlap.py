"""Comm–compute overlap and pipeline-schedule cost math.

Pure functions shared by the tensor-parallel compiler and the sharded
serving engines — the timeline algebra of hiding collectives behind
compute:

* :func:`overlap_window` — one overlap window, the model's atom: a
  collective in flight while the next layer computes.  The window costs
  ``max(compute, comm) + contention * min(compute, comm)`` — never less
  than either leg (you cannot finish before the longer one, and the
  shorter one is never free because the collective's copy engines and SMs
  contend with compute for link and memory bandwidth).  ``contention = 0``
  is perfect overlap, ``contention = 1`` degenerates to fully serial.

* :func:`overlapped_layer_time` — a stack of ``n_layers`` identical
  layers with the per-layer collectives *bucketed* (each layer's sync
  points fused into one all-reduce) and overlapped one layer ahead:
  layer ``i``'s bucket flies while layer ``i+1`` computes.  The first
  layer's compute and the last layer's bucket have nothing to hide under,
  so they stay exposed:
  ``compute/L + (L-1) * window(compute/L, comm) + comm``.

* :func:`pipeline_time` / :func:`bubble_fraction` — Megatron-style 1F1B
  micro-batch schedule over ``pp`` stages: with ``m`` micro-batches of
  per-stage window ``w`` the makespan is ``(m + pp - 1) * w`` — ``m``
  windows of steady-state work plus the ``pp - 1`` fill/drain windows
  that no schedule can remove.  The bubble fraction
  ``(pp - 1) / (m + pp - 1)`` → 0 as ``m`` → ∞, which is why pipeline
  parallelism wants many micro-batches.
"""

from __future__ import annotations

from repro.core.errors import ConfigError

#: Default link/SM contention: an in-flight collective steals about a
#: quarter of the overlapped compute's throughput (NCCL kernels occupy
#: SMs and memory bandwidth; see SSFusion-style overlap measurements).
DEFAULT_CONTENTION = 0.25


def _validate_contention(contention: float) -> None:
    if not 0.0 <= contention <= 1.0:
        raise ConfigError(
            f"contention must be in [0, 1], got {contention}"
        )


def overlap_window(
    compute_s: float, comm_s: float, contention: float = DEFAULT_CONTENTION
) -> float:
    """Time for one compute leg overlapped with one collective leg.

    >>> overlap_window(1.0, 0.5, contention=0.0)    # perfect overlap
    1.0
    >>> overlap_window(1.0, 0.5, contention=1.0)    # fully serial
    1.5
    """
    _validate_contention(contention)
    if compute_s < 0 or comm_s < 0:
        raise ConfigError(
            f"legs must be >= 0, got compute={compute_s} comm={comm_s}"
        )
    return max(compute_s, comm_s) + contention * min(compute_s, comm_s)


def overlapped_layer_time(
    compute_s: float,
    per_layer_comm_s: float,
    n_layers: int,
    contention: float = DEFAULT_CONTENTION,
) -> float:
    """Total time of ``n_layers`` layers whose bucketed collectives are
    overlapped one layer ahead.

    ``compute_s`` is the *total* compute of the stack (so a comm-free
    stack returns it exactly, bit for bit), ``per_layer_comm_s`` the
    bucketed collective of one layer.
    """
    _validate_contention(contention)
    if n_layers < 1:
        raise ConfigError(f"n_layers must be >= 1, got {n_layers}")
    if per_layer_comm_s <= 0.0:
        return compute_s                   # nothing to hide: pure compute
    per_layer = compute_s / n_layers
    return (
        per_layer
        + (n_layers - 1)
        * overlap_window(per_layer, per_layer_comm_s, contention)
        + per_layer_comm_s
    )


def pipeline_time(stage_window_s: float, n_micro: int, pp: int) -> float:
    """1F1B makespan: ``m`` steady windows plus ``pp - 1`` bubble windows.

    >>> pipeline_time(1.0, 8, 2)
    9.0
    """
    _validate_pipeline(n_micro, pp)
    return (n_micro + pp - 1) * stage_window_s


def pipeline_bubble_time(stage_window_s: float, n_micro: int, pp: int) -> float:
    """The makespan's explicit bubble term: ``(pp - 1)`` idle windows."""
    _validate_pipeline(n_micro, pp)
    return (pp - 1) * stage_window_s


def bubble_fraction(n_micro: int, pp: int) -> float:
    """Share of the 1F1B makespan spent in the fill/drain bubble.

    >>> bubble_fraction(8, 2)
    0.1111111111111111
    >>> bubble_fraction(4, 1)
    0.0
    """
    _validate_pipeline(n_micro, pp)
    return (pp - 1) / (n_micro + pp - 1)


def _validate_pipeline(n_micro: int, pp: int) -> None:
    if pp < 1:
        raise ConfigError(f"pp must be >= 1, got {pp}")
    if n_micro < 1:
        raise ConfigError(f"micro-batch count must be >= 1, got {n_micro}")
