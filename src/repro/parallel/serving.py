"""Multi-GPU serving: tensor/pipeline-parallel replicas under data-parallel
routing.

A :class:`TPServingEngine` simulates one replica of ``tp * pp``
lock-stepped ranks.  TP ranks run the identical schedule on ``heads / tp``
heads each, and pipeline stages hold ``n_layers / pp`` layers each — so
ONE representative stage-rank is simulated (per-rank KV cache sized from
the per-rank head count and per-stage layer count, per-rank kernel costs
from the unchanged roofline) and each step pays the layout's
communication, in one of two pricing modes:

* **serialized** (``overlap=False``, ``pp == 1``) — the original model:
  two ring all-reduces of the full ``tokens * hidden`` activation per
  layer stall the ranks at Megatron's row-parallel sync points.  With
  ``tp = 1`` the engine reproduces
  :class:`~repro.serving.engine.ServingEngine` bit-identically.
* **overlapped** (the default) — each layer's two all-reduces are
  bucketed into one collective and overlapped with the next layer's
  compute under a link/SM contention factor
  (:mod:`repro.parallel.overlap`); with ``pp > 1`` the step's work is
  split into ``micro_batches`` micro-batches and run through a 1F1B
  schedule whose ``(pp - 1)``-window bubble is charged explicitly, plus
  a point-to-point activation send per micro-batch per stage boundary.

A :class:`ShardedServingEngine` runs ``dp`` such replicas over one
request trace: a router assigns each arrival to a replica (round-robin,
or least-loaded by outstanding worst-case tokens), every replica shares
one :class:`~repro.plan.PlanCache`, and the merged
:class:`ShardedServingReport` aggregates throughput over the global
makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.core.rng import RngStream
from repro.core.units import format_time
from repro.gpu.specs import GPUSpec
from repro.obs.tracer import Tracer, current_tracer
from repro.parallel.overlap import DEFAULT_CONTENTION, overlapped_layer_time
from repro.parallel.shard import ShardConfig
from repro.plan import PlanCache
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.metrics import ServingReport
from repro.serving.request import Request
from repro.serving.scheduler import Scheduler, make_scheduler

#: Request-routing policies of the data-parallel front door.
ROUTES = ("round-robin", "least-loaded")


class TPServingEngine(ServingEngine):
    """One tensor/pipeline-parallel replica (``tp * pp`` ranks in
    lockstep)."""

    def __init__(
        self,
        spec: GPUSpec,
        scheduler: Scheduler,
        shard: "str | ShardConfig",
        config: ServingConfig | None = None,
        tracer: Tracer | None = None,
        plan_cache: PlanCache | None = None,
        lane_base: int = 0,
        label: str = "",
        overlap: bool = True,
        micro_batches: int | None = None,
        contention: float = DEFAULT_CONTENTION,
    ):
        shard = ShardConfig.parse(shard)
        full = config or ServingConfig()
        if full.heads % shard.tp != 0:
            raise ConfigError(
                f"{full.heads} heads not divisible by tp={shard.tp}"
            )
        # Ragged pipelines fail here, at construction — never mid-sim.
        shard.validate_pipeline(full.n_layers, what="serving config")
        if micro_batches is None:
            micro_batches = 8 if shard.pp > 1 else 1
        if micro_batches < 1:
            raise ConfigError(
                f"micro_batches must be >= 1, got {micro_batches}"
            )
        # The representative stage-rank serves heads/tp heads of
        # n_layers/pp layers; its KV cache shrinks with both (same
        # capacity fraction, fewer bytes per token), which is exactly the
        # per-rank memory win of TP x PP.
        super().__init__(
            spec,
            scheduler,
            replace(
                full,
                heads=full.heads // shard.tp,
                n_layers=full.n_layers // shard.pp,
            ),
            tracer,
            plan_cache,
        )
        self.shard = shard
        self.shard_fingerprint = shard.fingerprint
        self.overlap = overlap
        self.micro_batches = micro_batches
        self.contention = contention
        self._ic = shard.interconnect()
        self._hidden = full.heads * full.head_size   # full model width
        self._label = label
        self._lane_base = lane_base
        self.LANE_STEPS = lane_base
        self.LANE_REQUESTS = lane_base + 1
        #: Serialized pp1 keeps the original pricing path, bit for bit.
        self._legacy_pricing = not overlap and shard.pp == 1
        #: Totals over the last/current run (simulated seconds).
        self.comm_total_s = 0.0
        self.p2p_total_s = 0.0
        self.bubble_total_s = 0.0
        self.core_total_s = 0.0
        self._step_tokens = 0
        self._last_parts: dict | None = None

    # ----------------------------------------------------------- collectives

    def _collective_s(self, tokens: int) -> float:
        """Serialized all-reduce seconds for one forward over ``tokens``
        rows: two row-parallel sync points per (per-stage) layer,
        full-hidden payloads.  Overlapped modes re-price the step's
        communication from the accumulated token count in
        :meth:`_step_time`; this still returns the serialized estimate so
        prefill/decode compute legs can be recovered exactly."""
        if tokens <= 0:
            return 0.0
        self._step_tokens += tokens
        if self.shard.tp == 1:
            return 0.0
        t = 2 * self.config.n_layers * self._ic.all_reduce_time(
            tokens * self._hidden * FP16_BYTES
        )
        self._step_comm_s += t
        if self._legacy_pricing:
            self.comm_total_s += t
        return t

    def _prefill_time(self, tr, rng):
        t, n = super()._prefill_time(tr, rng)
        return t + self._collective_s(tr.context_len), n

    def _decode_time(self, members, rng):
        t, n = super()._decode_time(members, rng)
        return t + self._collective_s(len(members)), n

    def _decode_time_cached(self, members, rng):
        t, n = super()._decode_time_cached(members, rng)
        return t + self._collective_s(len(members)), n

    # -------------------------------------------------------- step composition

    def _begin_step(self):
        super()._begin_step()
        self._step_tokens = 0
        self._last_parts = None

    def _step_time(
        self, prefill_s, prefill_comm_s, decode_s, decode_comm_s, launches
    ):
        if self._legacy_pricing:
            return super()._step_time(
                prefill_s, prefill_comm_s, decode_s, decode_comm_s, launches
            )
        cfg = self.config
        pp, m = self.shard.pp, self.micro_batches
        compute = max(prefill_s - prefill_comm_s, decode_s - decode_comm_s)
        stage_layers = cfg.n_layers            # config already holds L/pp
        tokens = self._step_tokens
        micro_bytes = tokens * self._hidden * FP16_BYTES / m
        if self.shard.tp == 1 or tokens == 0:
            bucket_comm = serial_comm = 0.0
        elif self.overlap:
            # Bucketed: the layer's two sync points fuse into ONE
            # all-reduce — same bytes, half the α hops.
            bucket_comm = self._ic.all_reduce_time(2 * micro_bytes)
            serial_comm = 0.0
        else:
            bucket_comm = 0.0
            serial_comm = 2 * self._ic.all_reduce_time(micro_bytes)
        if self.overlap:
            window = overlapped_layer_time(
                compute / m, bucket_comm, stage_layers, self.contention
            )
            comm_step = m * stage_layers * bucket_comm
        else:
            window = compute / m + stage_layers * serial_comm
            comm_step = m * stage_layers * serial_comm
        p2p_micro = 0.0
        if pp > 1 and tokens > 0:
            p2p_micro = self._ic.point_to_point_time(micro_bytes)
            window += p2p_micro
        core = (m + pp - 1) * window
        bubble = (pp - 1) * window
        self.comm_total_s += comm_step
        self.p2p_total_s += m * p2p_micro
        self.bubble_total_s += bubble
        self.core_total_s += core
        self._last_parts = {
            "compute": compute,
            "comm": comm_step,
            "p2p": m * p2p_micro,
            "core": core,
        }
        return cfg.step_overhead_s + core + cfg.dispatch_s * launches

    # ----------------------------------------------------------------- spans

    def _record_step(
        self, tracer, clock, step_s, step, admitted, members, launches
    ):
        super()._record_step(
            tracer, clock, step_s, step, admitted, members, launches
        )
        if not tracer.enabled:
            return
        # Per-rank lanes: ranks run in lockstep, so each shows the same
        # compute/comm picture — serialized as compute-then-all-reduce,
        # overlapped as one contention-priced window, pipelined with the
        # boundary sends — which is what the scaling study reads off the
        # trace.
        if self._legacy_pricing:
            comm = self._step_comm_s
            compute = max(
                step_s - self.config.step_overhead_s - comm, 0.0
            )
            for r in range(self.shard.tp):
                lane = self._rank_lane(tracer, r)
                tracer.add_span(
                    "rank.compute", cat="serving.compute",
                    t0=clock, dur=compute, tid=lane, step=step, rank=r,
                )
                if comm > 0:
                    tracer.add_span(
                        "rank.all_reduce", cat="serving.comm",
                        t0=clock + compute, dur=comm, tid=lane,
                        step=step, rank=r, link=self.shard.link.name,
                    )
            return
        parts = self._last_parts or {}
        compute = parts.get("compute", 0.0)
        comm = parts.get("comm", 0.0)
        p2p = parts.get("p2p", 0.0)
        core = parts.get("core", compute)
        for r in range(self.shard.tp):
            lane = self._rank_lane(tracer, r)
            tracer.add_span(
                "rank.compute", cat="serving.compute",
                t0=clock, dur=compute, tid=lane, step=step, rank=r,
            )
            if comm > 0 and self.overlap:
                tracer.add_span(
                    "rank.overlap", cat="serving.comm",
                    t0=clock, dur=core, tid=lane, step=step, rank=r,
                    compute_s=compute, comm_s=comm,
                    contention=self.contention,
                    link=self.shard.link.name,
                )
            elif comm > 0:
                tracer.add_span(
                    "rank.all_reduce", cat="serving.comm",
                    t0=clock + compute, dur=comm, tid=lane,
                    step=step, rank=r, link=self.shard.link.name,
                )
            if p2p > 0:
                tracer.add_span(
                    "rank.send", cat="serving.comm",
                    t0=clock + max(core - p2p, 0.0), dur=p2p, tid=lane,
                    step=step, rank=r, link=self.shard.p2p_link.name,
                    stages=self.shard.pp,
                    micro_batches=self.micro_batches,
                )

    def _rank_lane(self, tracer, r: int) -> int:
        lane = self._lane_base + 2 + r
        tracer.lane_names.setdefault(lane, f"{self._label}tp rank {r}")
        return lane

    # ------------------------------------------------------------- simulation

    def run(self, trace, rng=None):
        self.comm_total_s = 0.0
        self.p2p_total_s = 0.0
        self.bubble_total_s = 0.0
        self.core_total_s = 0.0
        tracer = self.tracer if self.tracer is not None else current_tracer()
        if tracer.enabled and self._label:
            tracer.lane_names.setdefault(
                self.LANE_STEPS, f"{self._label}engine steps"
            )
            tracer.lane_names.setdefault(
                self.LANE_REQUESTS, f"{self._label}requests"
            )
        return super().run(trace, rng=rng)


@dataclass
class ShardedServingReport:
    """Merged outcome of one trace served by ``dp`` TP/PP replicas."""

    shard: str                  # layout fingerprint, e.g. "tp2dp2:nvlink"
    route: str
    policy: str
    device: str
    n_requests: int
    makespan_s: float           # global: first arrival to last finish
    comm_s: float               # summed simulated all-reduce seconds
    overlap: bool = True        # pricing mode of the fleet's collectives
    micro_batches: int = 1
    p2p_s: float = 0.0          # summed pipeline activation sends
    bubble_s: float = 0.0       # summed 1F1B fill/drain windows
    bubble_fraction: float = 0.0    # bubble share of pipelined step time
    replicas: list[ServingReport] = field(repr=False, default_factory=list)
    #: Request ids handed to each replica (index = replica rank).
    assignments: tuple[tuple[int, ...], ...] = ()
    plan_cache: dict | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ aggregates

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.replicas)

    @property
    def rejected(self) -> int:
        return sum(r.rejected for r in self.replicas)

    @property
    def total_tokens(self) -> int:
        return sum(r.total_tokens for r in self.replicas)

    @property
    def total_steps(self) -> int:
        return sum(r.total_steps for r in self.replicas)

    @property
    def preemptions(self) -> int:
        return sum(r.preemptions for r in self.replicas)

    @property
    def tokens_per_s(self) -> float:
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s else 0.0

    # -------------------------------------------------------------- rendering

    def summary(self) -> str:
        mode = "overlapped" if self.overlap else "serialized"
        lines = [
            f"{self.shard} · {self.policy} batching · {self.route} routing "
            f"· {self.device} · {mode} collectives",
            f"  requests     : {self.completed}/{self.n_requests} completed"
            + (f" ({self.rejected} rejected)" if self.rejected else "")
            + f", {self.total_tokens} tokens in {self.total_steps} steps",
            f"  throughput   : {self.tokens_per_s:,.0f} tok/s aggregate, "
            f"goodput {self.goodput_rps:,.1f} req/s",
            f"  comm         : {format_time(self.comm_s)} in all-reduces",
        ]
        if self.p2p_s > 0 or self.bubble_s > 0:
            lines.append(
                f"  pipeline     : {self.micro_batches} micro-batches, "
                f"{format_time(self.p2p_s)} in sends, bubble "
                f"{format_time(self.bubble_s)} "
                f"({self.bubble_fraction:.1%} of step time)"
            )
        for i, (rep, ids) in enumerate(zip(self.replicas, self.assignments)):
            lines.append(
                f"  replica {i}    : {len(ids)} requests, "
                f"{rep.tokens_per_s:,.0f} tok/s, "
                f"KV peak {rep.kv_peak_occupancy:.1%}"
            )
        return "\n".join(lines)


class ShardedServingEngine:
    """``dp`` TP/PP replicas behind one request router."""

    def __init__(
        self,
        spec: GPUSpec,
        policy: str = "continuous",
        config: ServingConfig | None = None,
        shard: "str | ShardConfig" = ShardConfig(),
        route: str = "least-loaded",
        max_batch_size: int = 16,
        max_batch_tokens: int = 65536,
        tracer: Tracer | None = None,
        plan_cache: PlanCache | None = None,
        overlap: bool = True,
        micro_batches: int | None = None,
        contention: float = DEFAULT_CONTENTION,
    ):
        if route not in ROUTES:
            raise ConfigError(f"unknown route {route!r}; known: {ROUTES}")
        self.spec = spec
        self.policy = policy
        self.config = config or ServingConfig()
        self.shard = ShardConfig.parse(shard)
        self.route = route
        self.overlap = overlap
        self.tracer = tracer
        #: One cache for the whole fleet: TP ranks are lock-stepped and DP
        #: replicas see statistically identical work, so plans compiled by
        #: one replica replay on every other.
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(max_entries=self.config.plan_cache_entries)
        )
        lanes_per_replica = 2 + self.shard.tp
        self.replicas = [
            TPServingEngine(
                spec,
                make_scheduler(policy, max_batch_size, max_batch_tokens),
                self.shard,
                self.config,
                tracer=tracer,
                plan_cache=self.plan_cache,
                lane_base=r * lanes_per_replica,
                label=f"replica{r}." if self.shard.dp > 1 else "",
                overlap=overlap,
                micro_batches=micro_batches,
                contention=contention,
            )
            for r in range(self.shard.dp)
        ]
        self.micro_batches = self.replicas[0].micro_batches

    # --------------------------------------------------------------- routing

    def _assign(self, trace: list[Request]) -> list[list[Request]]:
        """Partition arrivals across replicas per the routing policy."""
        order = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
        buckets: list[list[Request]] = [[] for _ in range(self.shard.dp)]
        if self.route == "round-robin":
            for i, req in enumerate(order):
                buckets[i % self.shard.dp].append(req)
        else:
            # Least-loaded: the replica with the smallest outstanding
            # worst-case token load wins (ties to the lowest rank).
            load = [0] * self.shard.dp
            for req in order:
                r = min(range(self.shard.dp), key=lambda i: (load[i], i))
                buckets[r].append(req)
                load[r] += req.max_context
        return buckets

    # ------------------------------------------------------------- simulation

    def run(
        self, trace: list[Request], rng: RngStream | None = None
    ) -> ShardedServingReport:
        """Route the trace, simulate every replica, merge the reports."""
        if not trace:
            raise ConfigError("empty request trace")
        # One rng for every replica is safe: RngStream forks are stateless
        # path derivations and per-request masks are seeded by request id.
        rng = rng or RngStream()
        buckets = self._assign(trace)
        first_arrival = min(r.arrival_s for r in trace)
        last_finish = first_arrival
        reports: list[ServingReport] = []
        comm = p2p = bubble = core = 0.0
        for engine, bucket in zip(self.replicas, buckets):
            if not bucket:    # fewer requests than replicas
                continue
            rep = engine.run(bucket, rng=rng)
            reports.append(rep)
            sub_first = min(r.arrival_s for r in bucket)
            last_finish = max(last_finish, sub_first + rep.makespan_s)
            comm += engine.comm_total_s
            p2p += engine.p2p_total_s
            bubble += engine.bubble_total_s
            core += engine.core_total_s
        return ShardedServingReport(
            shard=self.shard.fingerprint,
            route=self.route,
            policy=self.policy,
            device=self.spec.name,
            n_requests=len(trace),
            makespan_s=last_finish - first_arrival,
            comm_s=comm,
            overlap=self.overlap,
            micro_batches=self.micro_batches,
            p2p_s=p2p,
            bubble_s=bubble,
            bubble_fraction=bubble / core if core else 0.0,
            replicas=reports,
            assignments=tuple(
                tuple(r.req_id for r in b) for b in buckets if b
            ),
            plan_cache=(
                self.plan_cache.stats() if self.config.use_plan_cache else None
            ),
        )
