"""Multi-GPU serving: tensor/pipeline-parallel replicas under data-parallel
routing.

A :class:`TPServingEngine` simulates one replica of ``tp * pp``
lock-stepped ranks.  TP ranks run the identical schedule on ``heads / tp``
heads each, and pipeline stages hold ``n_layers / pp`` layers each — so
ONE representative stage-rank is simulated (per-rank KV cache sized from
the per-rank head count and per-stage layer count, per-rank kernel costs
from the unchanged roofline) and each step pays the layout's
communication, in one of two pricing modes:

* **serialized** (``overlap=False``, ``pp == 1``) — the original model:
  two ring all-reduces of the full ``tokens * hidden`` activation per
  layer stall the ranks at Megatron's row-parallel sync points.  With
  ``tp = 1`` the engine reproduces
  :class:`~repro.serving.engine.ServingEngine` bit-identically.
* **overlapped** (the default) — each layer's two all-reduces are
  bucketed into one collective and overlapped with the next layer's
  compute under a link/SM contention factor
  (:mod:`repro.parallel.overlap`); with ``pp > 1`` the step's work is
  split into ``micro_batches`` micro-batches and run through a 1F1B
  schedule whose ``(pp - 1)``-window bubble is charged explicitly, plus
  a point-to-point activation send per micro-batch per stage boundary.

A :class:`ShardedServingEngine` runs ``dp`` such replicas over one
request trace: a router assigns each arrival to a replica (round-robin,
or least-loaded by outstanding worst-case tokens), every replica shares
one :class:`~repro.plan.PlanCache`, and the merged
:class:`ShardedServingReport` aggregates throughput over the global
makespan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.deprecation import warn_deprecated_kw
from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.core.rng import RngStream
from repro.core.units import format_time
from repro.gpu.specs import GPUSpec
from repro.obs.tracer import NULL_TRACER, Tracer, current_tracer
from repro.parallel.overlap import DEFAULT_CONTENTION, overlapped_layer_time
from repro.parallel.shard import ShardConfig
from repro.plan import PlanCache
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.metrics import (
    RequestMetrics,
    ServingReport,
    TenantReport,
    percentile,
    tenant_reports,
)
from repro.serving.request import Request
from repro.serving.scheduler import Scheduler, make_scheduler
from repro.serving.slo import SLOPolicy, SLOScheduler

#: Request-routing policies of the data-parallel front door.
ROUTES = ("round-robin", "least-loaded")

_UNSET = object()


@dataclass(frozen=True)
class FleetConfig:
    """Everything fleet-shaped about a serving deployment, in one object.

    Replaces the loose ``shard=``/``route=``/``overlap=``/
    ``micro_batches=``/``contention=`` keywords that used to ride on each
    engine constructor (the old spellings still work through deprecation
    shims).  The autoscaling fields only matter with ``autoscale=True``:
    the data-parallel width then floats between ``min_replicas`` and
    ``max_replicas``, re-evaluated every ``scale_window_s`` of simulated
    time against the measured per-replica capacity, with scale-ups
    landing ``scale_up_latency_s`` after the decision (scale-downs are
    immediate) — see :class:`AutoscalingServingEngine`.
    """

    shard: "str | ShardConfig" = ShardConfig()
    route: str = "least-loaded"
    overlap: bool = True
    micro_batches: int | None = None
    contention: float = DEFAULT_CONTENTION
    autoscale: bool = False
    min_replicas: int = 1
    max_replicas: int = 8
    #: Autoscaler decision period; ``None`` derives it from the trace
    #: span (an eighth, so every run sees several decisions).
    scale_window_s: float | None = None
    #: Simulated delay between a scale-up decision and the new replica
    #: accepting traffic (model load + KV-cache warm-up).
    scale_up_latency_s: float = 2e-3
    #: Fraction of probed capacity the autoscaler plans to; the headroom
    #: above it absorbs in-window burstiness.
    target_utilization: float = 0.7
    #: Cost of one GPU-second, in arbitrary currency units (the frontier
    #: report multiplies by ``world_size`` GPU-seconds per replica).
    gpu_cost_per_s: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "shard", ShardConfig.parse(self.shard))
        if self.route not in ROUTES:
            raise ConfigError(f"unknown route {self.route!r}; known: {ROUTES}")
        if self.micro_batches is not None and self.micro_batches < 1:
            raise ConfigError(
                f"micro_batches must be >= 1, got {self.micro_batches}"
            )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ConfigError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}"
            )
        if self.scale_window_s is not None and self.scale_window_s <= 0:
            raise ConfigError(
                f"scale_window_s must be > 0, got {self.scale_window_s}"
            )
        if self.scale_up_latency_s < 0:
            raise ConfigError(
                f"scale_up_latency_s must be >= 0, got {self.scale_up_latency_s}"
            )
        if not 0.0 < self.target_utilization <= 1.0:
            raise ConfigError(
                f"target_utilization must be in (0, 1], got "
                f"{self.target_utilization}"
            )
        if self.gpu_cost_per_s <= 0:
            raise ConfigError(
                f"gpu_cost_per_s must be > 0, got {self.gpu_cost_per_s}"
            )


def _resolve_fleet(fleet, plain: dict, deprecated: dict, stacklevel: int = 3):
    """Fold an engine's legacy keywords into one :class:`FleetConfig`.

    ``plain`` holds still-supported short forms (``shard=``/``route=``),
    ``deprecated`` the keywords the API redesign retires; either kind
    conflicts with an explicit ``fleet=``.  Deprecated spellings warn
    (once per process) at the caller's line.
    """
    plain_given = {k: v for k, v in plain.items() if v is not _UNSET}
    dep_given = {k: v for k, v in deprecated.items() if v is not _UNSET}
    if fleet is not None:
        for name in (*plain_given, *dep_given):
            hint = " (deprecated)" if name in dep_given else ""
            raise ConfigError(
                f"got both fleet= and the {name!r} keyword{hint}; "
                f"set {name} on the FleetConfig"
            )
        return fleet
    for name in sorted(dep_given):
        warn_deprecated_kw(
            name, f"fleet=FleetConfig({name}=...)", stacklevel=stacklevel
        )
    return FleetConfig(**plain_given, **dep_given)


class TPServingEngine(ServingEngine):
    """One tensor/pipeline-parallel replica (``tp * pp`` ranks in
    lockstep)."""

    def __init__(
        self,
        spec: GPUSpec,
        scheduler: Scheduler,
        shard: "str | ShardConfig",
        config: ServingConfig | None = None,
        tracer: Tracer | None = None,
        plan_cache: PlanCache | None = None,
        lane_base: int = 0,
        label: str = "",
        overlap: "bool | object" = _UNSET,
        micro_batches: "int | None | object" = _UNSET,
        contention: "float | object" = _UNSET,
        fleet: FleetConfig | None = None,
    ):
        # A replica's layout is the positional ``shard``; the fleet config
        # supplies the overlap/pipeline pricing knobs.  The loose
        # ``overlap``/``micro_batches``/``contention`` keywords are
        # deprecated shims for ``fleet=``.
        fleet = _resolve_fleet(
            fleet,
            plain={},
            deprecated={
                "overlap": overlap,
                "micro_batches": micro_batches,
                "contention": contention,
            },
        )
        shard = ShardConfig.parse(shard)
        full = config or ServingConfig()
        if full.heads % shard.tp != 0:
            raise ConfigError(
                f"{full.heads} heads not divisible by tp={shard.tp}"
            )
        # Ragged pipelines fail here, at construction — never mid-sim.
        shard.validate_pipeline(full.n_layers, what="serving config")
        overlap = fleet.overlap
        contention = fleet.contention
        micro_batches = fleet.micro_batches
        if micro_batches is None:
            micro_batches = 8 if shard.pp > 1 else 1
        # The representative stage-rank serves heads/tp heads of
        # n_layers/pp layers; its KV cache shrinks with both (same
        # capacity fraction, fewer bytes per token), which is exactly the
        # per-rank memory win of TP x PP.
        super().__init__(
            spec,
            scheduler,
            replace(
                full,
                heads=full.heads // shard.tp,
                n_layers=full.n_layers // shard.pp,
            ),
            tracer,
            plan_cache,
        )
        self.fleet = fleet
        self.shard = shard
        self.shard_fingerprint = shard.fingerprint
        self.overlap = overlap
        self.micro_batches = micro_batches
        self.contention = contention
        self._ic = shard.interconnect()
        self._hidden = full.heads * full.head_size   # full model width
        self._label = label
        self._lane_base = lane_base
        self.LANE_STEPS = lane_base
        self.LANE_REQUESTS = lane_base + 1
        #: Serialized pp1 keeps the original pricing path, bit for bit.
        self._legacy_pricing = not overlap and shard.pp == 1
        #: Totals over the last/current run (simulated seconds).
        self.comm_total_s = 0.0
        self.p2p_total_s = 0.0
        self.bubble_total_s = 0.0
        self.core_total_s = 0.0
        self._step_tokens = 0
        self._last_parts: dict | None = None

    # ----------------------------------------------------------- collectives

    def _collective_s(self, tokens: int) -> float:
        """Serialized all-reduce seconds for one forward over ``tokens``
        rows: two row-parallel sync points per (per-stage) layer,
        full-hidden payloads.  Overlapped modes re-price the step's
        communication from the accumulated token count in
        :meth:`_step_time`; this still returns the serialized estimate so
        prefill/decode compute legs can be recovered exactly."""
        if tokens <= 0:
            return 0.0
        self._step_tokens += tokens
        if self.shard.tp == 1:
            return 0.0
        t = 2 * self.config.n_layers * self._ic.all_reduce_time(
            tokens * self._hidden * FP16_BYTES
        )
        self._step_comm_s += t
        if self._legacy_pricing:
            self.comm_total_s += t
        return t

    def _prefill_time(self, tr, rng):
        t, n = super()._prefill_time(tr, rng)
        # Collectives move the rows actually computed: a prefix-cached
        # prefill (shared system prompt already resident) only all-reduces
        # its suffix activations.  With nothing cached this is the full
        # context, exactly as before.
        return t + self._collective_s(self._last_prefill_rows), n

    def _decode_time(self, members, rng):
        t, n = super()._decode_time(members, rng)
        return t + self._collective_s(len(members)), n

    def _decode_time_cached(self, members, rng):
        # Speculative verify forwards flow through here too, so their
        # k+1-rows-per-member collectives are charged on the expanded row
        # count — while the draft model (priced via the *base* class in
        # ``_draft_forward_time``) stays rank-local and pays none.
        t, n = super()._decode_time_cached(members, rng)
        return t + self._collective_s(len(members)), n

    def _prefill_collective_s(self, rows):
        # Chunked prefill all-reduces exactly the chunk's activations,
        # mirroring the whole-prefill override above.
        return self._collective_s(rows)

    # -------------------------------------------------------- step composition

    def _begin_step(self):
        super()._begin_step()
        self._step_tokens = 0
        self._last_parts = None

    def _step_time(
        self, prefill_s, prefill_comm_s, decode_s, decode_comm_s, launches
    ):
        if self._legacy_pricing:
            return super()._step_time(
                prefill_s, prefill_comm_s, decode_s, decode_comm_s, launches
            )
        cfg = self.config
        pp, m = self.shard.pp, self.micro_batches
        compute = max(prefill_s - prefill_comm_s, decode_s - decode_comm_s)
        stage_layers = cfg.n_layers            # config already holds L/pp
        tokens = self._step_tokens
        micro_bytes = tokens * self._hidden * FP16_BYTES / m
        if self.shard.tp == 1 or tokens == 0:
            bucket_comm = serial_comm = 0.0
        elif self.overlap:
            # Bucketed: the layer's two sync points fuse into ONE
            # all-reduce — same bytes, half the α hops.
            bucket_comm = self._ic.all_reduce_time(2 * micro_bytes)
            serial_comm = 0.0
        else:
            bucket_comm = 0.0
            serial_comm = 2 * self._ic.all_reduce_time(micro_bytes)
        if self.overlap:
            window = overlapped_layer_time(
                compute / m, bucket_comm, stage_layers, self.contention
            )
            comm_step = m * stage_layers * bucket_comm
        else:
            window = compute / m + stage_layers * serial_comm
            comm_step = m * stage_layers * serial_comm
        p2p_micro = 0.0
        if pp > 1 and tokens > 0:
            p2p_micro = self._ic.point_to_point_time(micro_bytes)
            window += p2p_micro
        core = (m + pp - 1) * window
        bubble = (pp - 1) * window
        self.comm_total_s += comm_step
        self.p2p_total_s += m * p2p_micro
        self.bubble_total_s += bubble
        self.core_total_s += core
        self._last_parts = {
            "compute": compute,
            "comm": comm_step,
            "p2p": m * p2p_micro,
            "core": core,
        }
        return cfg.step_overhead_s + core + cfg.dispatch_s * launches

    # ----------------------------------------------------------------- spans

    def _record_step(
        self, tracer, clock, step_s, step, admitted, members, launches
    ):
        super()._record_step(
            tracer, clock, step_s, step, admitted, members, launches
        )
        if not tracer.enabled:
            return
        # Per-rank lanes: ranks run in lockstep, so each shows the same
        # compute/comm picture — serialized as compute-then-all-reduce,
        # overlapped as one contention-priced window, pipelined with the
        # boundary sends — which is what the scaling study reads off the
        # trace.
        if self._legacy_pricing:
            comm = self._step_comm_s
            compute = max(
                step_s - self.config.step_overhead_s - comm, 0.0
            )
            for r in range(self.shard.tp):
                lane = self._rank_lane(tracer, r)
                tracer.add_span(
                    "rank.compute", cat="serving.compute",
                    t0=clock, dur=compute, tid=lane, step=step, rank=r,
                )
                if comm > 0:
                    tracer.add_span(
                        "rank.all_reduce", cat="serving.comm",
                        t0=clock + compute, dur=comm, tid=lane,
                        step=step, rank=r, link=self.shard.link.name,
                    )
            return
        parts = self._last_parts or {}
        compute = parts.get("compute", 0.0)
        comm = parts.get("comm", 0.0)
        p2p = parts.get("p2p", 0.0)
        core = parts.get("core", compute)
        for r in range(self.shard.tp):
            lane = self._rank_lane(tracer, r)
            tracer.add_span(
                "rank.compute", cat="serving.compute",
                t0=clock, dur=compute, tid=lane, step=step, rank=r,
            )
            if comm > 0 and self.overlap:
                tracer.add_span(
                    "rank.overlap", cat="serving.comm",
                    t0=clock, dur=core, tid=lane, step=step, rank=r,
                    compute_s=compute, comm_s=comm,
                    contention=self.contention,
                    link=self.shard.link.name,
                )
            elif comm > 0:
                tracer.add_span(
                    "rank.all_reduce", cat="serving.comm",
                    t0=clock + compute, dur=comm, tid=lane,
                    step=step, rank=r, link=self.shard.link.name,
                )
            if p2p > 0:
                tracer.add_span(
                    "rank.send", cat="serving.comm",
                    t0=clock + max(core - p2p, 0.0), dur=p2p, tid=lane,
                    step=step, rank=r, link=self.shard.p2p_link.name,
                    stages=self.shard.pp,
                    micro_batches=self.micro_batches,
                )

    def _rank_lane(self, tracer, r: int) -> int:
        lane = self._lane_base + 2 + r
        tracer.lane_names.setdefault(lane, f"{self._label}tp rank {r}")
        return lane

    # ------------------------------------------------------------- simulation

    def run(self, trace, rng=None):
        self.comm_total_s = 0.0
        self.p2p_total_s = 0.0
        self.bubble_total_s = 0.0
        self.core_total_s = 0.0
        tracer = self.tracer if self.tracer is not None else current_tracer()
        if tracer.enabled and self._label:
            tracer.lane_names.setdefault(
                self.LANE_STEPS, f"{self._label}engine steps"
            )
            tracer.lane_names.setdefault(
                self.LANE_REQUESTS, f"{self._label}requests"
            )
        return super().run(trace, rng=rng)


@dataclass
class ShardedServingReport:
    """Merged outcome of one trace served by ``dp`` TP/PP replicas."""

    shard: str                  # layout fingerprint, e.g. "tp2dp2:nvlink"
    route: str
    policy: str
    device: str
    n_requests: int
    makespan_s: float           # global: first arrival to last finish
    comm_s: float               # summed simulated all-reduce seconds
    overlap: bool = True        # pricing mode of the fleet's collectives
    micro_batches: int = 1
    p2p_s: float = 0.0          # summed pipeline activation sends
    bubble_s: float = 0.0       # summed 1F1B fill/drain windows
    bubble_fraction: float = 0.0    # bubble share of pipelined step time
    replicas: list[ServingReport] = field(repr=False, default_factory=list)
    #: Request ids handed to each replica (index = replica rank).
    assignments: tuple[tuple[int, ...], ...] = ()
    #: Fleet-wide per-tenant aggregates; empty for single-tenant traces.
    tenants: tuple[TenantReport, ...] = ()
    plan_cache: dict | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ aggregates

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.replicas)

    @property
    def requests(self) -> list[RequestMetrics]:
        """Completed-request metrics merged across replicas."""
        return sorted(
            (m for r in self.replicas for m in r.requests),
            key=lambda m: m.req_id,
        )

    def ttft_p(self, q: float) -> float:
        """Fleet-wide TTFT percentile over every completed request."""
        return percentile([m.ttft_s for m in self.requests], q)

    def itl_p(self, q: float) -> float:
        return percentile(
            [m.itl_mean_s for m in self.requests if m.tokens > 1], q
        )

    @property
    def kv_peak_used_pages(self) -> int:
        return sum(r.kv_peak_used_pages for r in self.replicas)

    @property
    def kv_peak_logical_pages(self) -> int:
        return sum(r.kv_peak_logical_pages for r in self.replicas)

    @property
    def cow_forks(self) -> int:
        return sum(r.cow_forks for r in self.replicas)

    @property
    def rejected(self) -> int:
        return sum(r.rejected for r in self.replicas)

    @property
    def total_tokens(self) -> int:
        return sum(r.total_tokens for r in self.replicas)

    @property
    def total_steps(self) -> int:
        return sum(r.total_steps for r in self.replicas)

    @property
    def preemptions(self) -> int:
        return sum(r.preemptions for r in self.replicas)

    @property
    def spec_proposed(self) -> int:
        return sum(r.spec_proposed for r in self.replicas)

    @property
    def spec_accepted(self) -> int:
        return sum(r.spec_accepted for r in self.replicas)

    @property
    def prefill_chunks(self) -> int:
        return sum(r.prefill_chunks for r in self.replicas)

    @property
    def lora_swaps(self) -> int:
        return sum(r.lora_swaps for r in self.replicas)

    @property
    def lora_peak_resident(self) -> int:
        """Peak resident adapters of the busiest replica (residency is a
        per-device budget, so replica peaks do not add)."""
        return max((r.lora_peak_resident for r in self.replicas), default=0)

    @property
    def tokens_per_s(self) -> float:
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s else 0.0

    # -------------------------------------------------------------- rendering

    def summary(self) -> str:
        mode = "overlapped" if self.overlap else "serialized"
        lines = [
            f"{self.shard} · {self.policy} batching · {self.route} routing "
            f"· {self.device} · {mode} collectives",
            f"  requests     : {self.completed}/{self.n_requests} completed"
            + (f" ({self.rejected} rejected)" if self.rejected else "")
            + f", {self.total_tokens} tokens in {self.total_steps} steps",
            f"  throughput   : {self.tokens_per_s:,.0f} tok/s aggregate, "
            f"goodput {self.goodput_rps:,.1f} req/s",
            f"  comm         : {format_time(self.comm_s)} in all-reduces",
        ]
        if self.p2p_s > 0 or self.bubble_s > 0:
            lines.append(
                f"  pipeline     : {self.micro_batches} micro-batches, "
                f"{format_time(self.p2p_s)} in sends, bubble "
                f"{format_time(self.bubble_s)} "
                f"({self.bubble_fraction:.1%} of step time)"
            )
        for i, (rep, ids) in enumerate(zip(self.replicas, self.assignments)):
            lines.append(
                f"  replica {i}    : {len(ids)} requests, "
                f"{rep.tokens_per_s:,.0f} tok/s, "
                f"KV peak {rep.kv_peak_occupancy:.1%}"
            )
        # Fleet-era lines are conditional: single-tenant, unshared runs
        # keep the historical (golden-tested) rendering byte for byte.
        if self.spec_proposed:
            acc = self.spec_accepted / self.spec_proposed
            lines.append(
                f"  speculative  : {self.spec_accepted}/{self.spec_proposed} "
                f"drafts accepted ({acc:.0%} measured)"
            )
        if self.prefill_chunks:
            lines.append(
                f"  chunked fill : {self.prefill_chunks} prefill chunks"
            )
        if self.lora_peak_resident:
            lines.append(
                f"  lora         : peak {self.lora_peak_resident} resident "
                f"adapters, {self.lora_swaps} swaps"
            )
        if self.kv_peak_logical_pages > self.kv_peak_used_pages or self.cow_forks:
            saved = 1.0 - self.kv_peak_used_pages / max(
                1, self.kv_peak_logical_pages
            )
            lines.append(
                f"  prefix share : peak {self.kv_peak_used_pages} pages vs "
                f"{self.kv_peak_logical_pages} unshared ({saved:.1%} saved), "
                f"{self.cow_forks} COW forks"
            )
        for t in self.tenants:
            line = (
                f"  tenant {t.tenant or '-':<7}: prio {t.priority}, "
                f"{t.completed} req, {t.tokens} tok, "
                f"TTFT p99 {format_time(t.ttft_p99_s)}"
            )
            if t.ttft_target_s > 0:
                line += (
                    f" (target {format_time(t.ttft_target_s)}, "
                    f"{t.ttft_attainment:.0%} met)"
                )
            lines.append(line)
        return "\n".join(lines)


def _make_policy_scheduler(
    policy: str,
    max_batch_size: int,
    max_batch_tokens: int,
    slo: SLOPolicy | None,
) -> Scheduler:
    """A replica's scheduler: an explicit SLO policy wins over the name."""
    if slo is not None:
        return SLOScheduler(max_batch_size, max_batch_tokens, policy=slo)
    return make_scheduler(policy, max_batch_size, max_batch_tokens)


class ShardedServingEngine:
    """``dp`` TP/PP replicas behind one request router."""

    def __init__(
        self,
        spec: GPUSpec,
        policy: str = "continuous",
        config: ServingConfig | None = None,
        shard: "str | ShardConfig | object" = _UNSET,
        route: "str | object" = _UNSET,
        max_batch_size: int = 16,
        max_batch_tokens: int = 65536,
        tracer: Tracer | None = None,
        plan_cache: PlanCache | None = None,
        overlap: "bool | object" = _UNSET,
        micro_batches: "int | None | object" = _UNSET,
        contention: "float | object" = _UNSET,
        fleet: FleetConfig | None = None,
        slo: SLOPolicy | None = None,
    ):
        fleet = _resolve_fleet(
            fleet,
            plain={"shard": shard, "route": route},
            deprecated={
                "overlap": overlap,
                "micro_batches": micro_batches,
                "contention": contention,
            },
        )
        self.spec = spec
        self.policy = "slo" if slo is not None else policy
        self.config = config or ServingConfig()
        self.fleet = fleet
        self.shard = fleet.shard
        self.route = fleet.route
        self.overlap = fleet.overlap
        self.slo = slo
        self.tracer = tracer
        #: One cache for the whole fleet: TP ranks are lock-stepped and DP
        #: replicas see statistically identical work, so plans compiled by
        #: one replica replay on every other.
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(max_entries=self.config.plan_cache_entries)
        )
        lanes_per_replica = 2 + self.shard.tp
        self.replicas = [
            TPServingEngine(
                spec,
                _make_policy_scheduler(
                    self.policy, max_batch_size, max_batch_tokens, slo
                ),
                self.shard,
                self.config,
                tracer=tracer,
                plan_cache=self.plan_cache,
                lane_base=r * lanes_per_replica,
                label=f"replica{r}." if self.shard.dp > 1 else "",
                fleet=fleet,
            )
            for r in range(self.shard.dp)
        ]
        self.micro_batches = self.replicas[0].micro_batches

    # --------------------------------------------------------------- routing

    def _assign(self, trace: list[Request]) -> list[list[Request]]:
        """Partition arrivals across replicas per the routing policy."""
        order = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
        buckets: list[list[Request]] = [[] for _ in range(self.shard.dp)]
        if self.route == "round-robin":
            for i, req in enumerate(order):
                buckets[i % self.shard.dp].append(req)
        else:
            # Least-loaded: the replica with the smallest outstanding
            # worst-case token load wins (ties to the lowest rank).
            load = [0] * self.shard.dp
            for req in order:
                r = min(range(self.shard.dp), key=lambda i: (load[i], i))
                buckets[r].append(req)
                load[r] += req.max_context
        return buckets

    # ------------------------------------------------------------- simulation

    def run(
        self, trace: list[Request], rng: RngStream | None = None
    ) -> ShardedServingReport:
        """Route the trace, simulate every replica, merge the reports."""
        if not trace:
            raise ConfigError("empty request trace")
        # One rng for every replica is safe: RngStream forks are stateless
        # path derivations and per-request masks are seeded by request id.
        rng = rng or RngStream()
        buckets = self._assign(trace)
        first_arrival = min(r.arrival_s for r in trace)
        last_finish = first_arrival
        reports: list[ServingReport] = []
        comm = p2p = bubble = core = 0.0
        for engine, bucket in zip(self.replicas, buckets):
            if not bucket:    # fewer requests than replicas
                continue
            rep = engine.run(bucket, rng=rng)
            reports.append(rep)
            sub_first = min(r.arrival_s for r in bucket)
            last_finish = max(last_finish, sub_first + rep.makespan_s)
            comm += engine.comm_total_s
            p2p += engine.p2p_total_s
            bubble += engine.bubble_total_s
            core += engine.core_total_s
        tenants: tuple[TenantReport, ...] = ()
        if any(r.tenant for r in trace):
            tenants = tenant_reports(
                sorted(
                    (m for r in reports for m in r.requests),
                    key=lambda m: m.req_id,
                ),
                slo_policy=getattr(
                    self.replicas[0].scheduler, "slo_policy", None
                ),
            )
        return ShardedServingReport(
            shard=self.shard.fingerprint,
            route=self.route,
            policy=self.policy,
            device=self.spec.name,
            n_requests=len(trace),
            makespan_s=last_finish - first_arrival,
            comm_s=comm,
            overlap=self.overlap,
            micro_batches=self.micro_batches,
            p2p_s=p2p,
            bubble_s=bubble,
            bubble_fraction=bubble / core if core else 0.0,
            replicas=reports,
            assignments=tuple(
                tuple(r.req_id for r in b) for b in buckets if b
            ),
            tenants=tenants,
            plan_cache=(
                self.plan_cache.stats() if self.config.use_plan_cache else None
            ),
        )


# --------------------------------------------------------------- autoscaling


@dataclass
class FleetReport:
    """Outcome of an autoscaled fleet run: serving merge + scaling economics."""

    sharded: ShardedServingReport
    #: Probed steady-state decode capacity of ONE replica (tokens/s).
    capacity_tokens_per_s: float
    target_utilization: float
    #: Step function of active replicas over simulated time.
    timeline: tuple[tuple[float, int], ...]
    gpu_s: float                   # integral of active GPUs over the run
    gpu_cost: float                # gpu_s * FleetConfig.gpu_cost_per_s
    min_replicas: int
    max_replicas: int
    scale_up_latency_s: float
    #: Ranks per replica (``tp * pp``); converts GPU·s back to replica·s.
    world_per_replica: int = 1

    # ------------------------------------------------------------ aggregates

    @property
    def tokens_per_s(self) -> float:
        return self.sharded.tokens_per_s

    @property
    def makespan_s(self) -> float:
        return self.sharded.makespan_s

    @property
    def completed(self) -> int:
        return self.sharded.completed

    @property
    def total_tokens(self) -> int:
        return self.sharded.total_tokens

    def ttft_p(self, q: float) -> float:
        return self.sharded.ttft_p(q)

    @property
    def peak_replicas(self) -> int:
        return max(n for _, n in self.timeline)

    @property
    def mean_replicas(self) -> float:
        """Time-weighted average replica count over the run."""
        if not self.makespan_s:
            return 0.0
        return self.gpu_s / self.world_per_replica / self.makespan_s

    @property
    def scale_events(self) -> int:
        return max(0, len(self.timeline) - 1)

    @property
    def cost_per_1k_tokens(self) -> float:
        tokens = self.sharded.total_tokens
        return self.gpu_cost / (tokens / 1000.0) if tokens else 0.0

    # -------------------------------------------------------------- rendering

    def summary(self) -> str:
        lines = [self.sharded.summary()]
        lines.append(
            f"  capacity     : {self.capacity_tokens_per_s:,.0f} tok/s per "
            f"replica (probe), target util {self.target_utilization:.0%}"
        )
        lines.append(
            f"  autoscale    : {self.min_replicas}..{self.max_replicas} "
            f"replicas, peak {self.peak_replicas}, mean "
            f"{self.mean_replicas:.2f}, {self.scale_events} scale events, "
            f"up-latency {format_time(self.scale_up_latency_s)}"
        )
        lines.append(
            f"  cost         : {self.gpu_s:.4f} GPU·s "
            f"({self.gpu_cost:.4f} units), "
            f"{self.cost_per_1k_tokens:.4f} units/1k tok, "
            f"TTFT p99 {format_time(self.ttft_p(99))}"
        )
        return "\n".join(lines)


class AutoscalingServingEngine:
    """A DP fleet whose width floats with offered load.

    The replica count is *reactive*: a capacity probe (the trace's first
    requests replayed back-to-back on one idle replica) measures
    steady-state tokens/s per replica, then each ``scale_window_s`` of
    simulated time the offered token load of the window just finished is
    compared against ``capacity * target_utilization * replicas`` and the
    fleet is resized — scale-ups land ``scale_up_latency_s`` later
    (model load + cache warm-up), scale-downs are immediate.  Arrivals
    route least-loaded over the replicas active at their arrival time.
    The report prices the fleet in GPU-seconds (every rank of every
    active replica), the basis of the cost/throughput frontier.
    """

    def __init__(
        self,
        spec: GPUSpec,
        policy: str = "continuous",
        config: ServingConfig | None = None,
        fleet: FleetConfig | None = None,
        max_batch_size: int = 16,
        max_batch_tokens: int = 65536,
        tracer: Tracer | None = None,
        plan_cache: PlanCache | None = None,
        slo: SLOPolicy | None = None,
    ):
        self.fleet = fleet if fleet is not None else FleetConfig(autoscale=True)
        self.spec = spec
        self.policy = "slo" if slo is not None else policy
        self.config = config or ServingConfig()
        self.slo = slo
        self.tracer = tracer
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(max_entries=self.config.plan_cache_entries)
        )
        self._max_batch_size = max_batch_size
        self._max_batch_tokens = max_batch_tokens
        #: One replica's layout: the fleet shard with the DP axis removed
        #: (the autoscaler owns that axis).
        self._replica_shard = replace(self.fleet.shard, dp=1)
        lanes_per_replica = 2 + self._replica_shard.tp
        self.replicas = [
            TPServingEngine(
                spec,
                _make_policy_scheduler(
                    self.policy, max_batch_size, max_batch_tokens, slo
                ),
                self._replica_shard,
                self.config,
                tracer=tracer,
                plan_cache=self.plan_cache,
                lane_base=r * lanes_per_replica,
                label=f"replica{r}.",
                fleet=self.fleet,
            )
            for r in range(self.fleet.max_replicas)
        ]

    # ----------------------------------------------------------------- probe

    def _probe_capacity(self, trace: list[Request], rng: RngStream) -> float:
        """Tokens/s one replica sustains on this workload's request mix.

        The first requests of the trace are replayed with their arrivals
        compressed to zero on a probe replica (no tracer lanes), sharing
        the fleet plan cache — so the probe doubles as a warm start.
        """
        probe = [replace(r, arrival_s=0.0) for r in trace[:12]]
        engine = TPServingEngine(
            self.spec,
            _make_policy_scheduler(
                self.policy, self._max_batch_size, self._max_batch_tokens,
                self.slo,
            ),
            self._replica_shard,
            self.config,
            tracer=NULL_TRACER,
            plan_cache=self.plan_cache,
            fleet=self.fleet,
        )
        rep = engine.run(probe, rng=rng)
        if rep.makespan_s <= 0:    # pragma: no cover - degenerate probe
            raise ConfigError("capacity probe produced a zero makespan")
        return rep.total_tokens / rep.makespan_s

    # ------------------------------------------------------------- simulation

    def run(
        self, trace: list[Request], rng: RngStream | None = None
    ) -> FleetReport:
        """Probe, scale, route, simulate, and price the fleet."""
        if not trace:
            raise ConfigError("empty request trace")
        rng = rng or RngStream()
        fleet = self.fleet
        order = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
        first = order[0].arrival_s
        last = order[-1].arrival_s
        capacity = self._probe_capacity(order, rng.fork("fleet-probe"))

        window = fleet.scale_window_s
        if window is None:
            window = max((last - first) / 8.0, 1e-9)

        # Reactive scaling: at each window boundary, resize against the
        # window just observed.  A scale-up lands after the latency; a
        # decision inside a pending scale-up simply supersedes it (the
        # timeline is re-sorted by effective time).
        current = fleet.min_replicas
        timeline: list[tuple[float, int]] = [(first, current)]
        supply = capacity * fleet.target_utilization
        k = 0
        while first + k * window <= last:
            w0 = first + k * window
            w1 = w0 + window
            load = sum(
                r.max_context for r in order if w0 <= r.arrival_s < w1
            )
            desired = math.ceil(load / window / supply) if supply > 0 else 1
            desired = min(max(desired, fleet.min_replicas), fleet.max_replicas)
            if desired != current:
                lag = fleet.scale_up_latency_s if desired > current else 0.0
                timeline.append((w1 + lag, desired))
                current = desired
            k += 1
        timeline.sort(key=lambda e: e[0])

        def active_at(t: float) -> int:
            n = timeline[0][1]
            for when, count in timeline:
                if when <= t:
                    n = count
                else:
                    break
            return n

        # Availability-aware least-loaded routing: only replicas already
        # active when a request arrives may take it.
        load = [0] * fleet.max_replicas
        buckets: list[list[Request]] = [[] for _ in range(fleet.max_replicas)]
        for req in order:
            n = max(1, active_at(req.arrival_s))
            r = min(range(n), key=lambda i: (load[i], i))
            buckets[r].append(req)
            load[r] += req.max_context

        last_finish = first
        reports: list[ServingReport] = []
        comm = p2p = bubble = core = 0.0
        for engine, bucket in zip(self.replicas, buckets):
            if not bucket:
                continue
            rep = engine.run(bucket, rng=rng)
            reports.append(rep)
            sub_first = min(r.arrival_s for r in bucket)
            last_finish = max(last_finish, sub_first + rep.makespan_s)
            comm += engine.comm_total_s
            p2p += engine.p2p_total_s
            bubble += engine.bubble_total_s
            core += engine.core_total_s

        # GPU-seconds: every rank of every *active* replica, from first
        # arrival to last finish (replicas draining past a scale-down are
        # not billed extra — the decision model is arrival-driven).
        world = self._replica_shard.tp * self._replica_shard.pp
        gpu_s = 0.0
        marks = [t for t, _ in timeline if t < last_finish] + [last_finish]
        for t0, t1 in zip(marks, marks[1:]):
            gpu_s += active_at(t0) * world * (t1 - t0)

        tenants: tuple[TenantReport, ...] = ()
        if any(r.tenant for r in trace):
            tenants = tenant_reports(
                sorted(
                    (m for r in reports for m in r.requests),
                    key=lambda m: m.req_id,
                ),
                slo_policy=getattr(
                    self.replicas[0].scheduler, "slo_policy", None
                ),
            )
        sharded = ShardedServingReport(
            shard=(
                f"{self._replica_shard.fingerprint} x auto"
                f"[{fleet.min_replicas}..{fleet.max_replicas}]"
            ),
            route="least-loaded",
            policy=self.policy,
            device=self.spec.name,
            n_requests=len(trace),
            makespan_s=last_finish - first,
            comm_s=comm,
            overlap=fleet.overlap,
            micro_batches=self.replicas[0].micro_batches,
            p2p_s=p2p,
            bubble_s=bubble,
            bubble_fraction=bubble / core if core else 0.0,
            replicas=reports,
            assignments=tuple(
                tuple(r.req_id for r in b) for b in buckets if b
            ),
            tenants=tenants,
            plan_cache=(
                self.plan_cache.stats() if self.config.use_plan_cache else None
            ),
        )
        return FleetReport(
            sharded=sharded,
            capacity_tokens_per_s=capacity,
            target_utilization=fleet.target_utilization,
            timeline=tuple(timeline),
            gpu_s=gpu_s,
            gpu_cost=gpu_s * fleet.gpu_cost_per_s,
            min_replicas=fleet.min_replicas,
            max_replicas=fleet.max_replicas,
            scale_up_latency_s=fleet.scale_up_latency_s,
            world_per_replica=world,
        )


# ----------------------------------------------------------------- frontier


@dataclass(frozen=True)
class FrontierPoint:
    """One deployment on the cost/throughput frontier."""

    label: str                 # "dp2", "auto", ...
    mean_replicas: float
    gpu_s: float
    gpu_cost: float
    total_tokens: int
    tokens_per_s: float
    ttft_p99_s: float

    @property
    def tokens_per_gpu_s(self) -> float:
        """Cost-efficiency: aggregate tokens per GPU-second spent."""
        return self.total_tokens / self.gpu_s if self.gpu_s > 0 else 0.0


def cost_throughput_frontier(
    spec: GPUSpec,
    trace: list[Request],
    policy: str = "continuous",
    config: ServingConfig | None = None,
    fleet: FleetConfig | None = None,
    dp_values: tuple[int, ...] = (1, 2, 4),
    include_auto: bool = True,
    max_batch_size: int = 16,
    max_batch_tokens: int = 65536,
    slo: SLOPolicy | None = None,
    rng: RngStream | None = None,
) -> tuple[FrontierPoint, ...]:
    """Sweep fixed DP widths (plus the autoscaler) over one trace.

    Each point reports the deployment's GPU-second bill, aggregate
    tokens/s, and p99 TTFT — the three axes of the provisioning
    trade-off.  Fixed points bill ``world_size`` GPUs for the whole
    makespan; the ``auto`` point bills only replicas while active.
    """
    fleet = fleet if fleet is not None else FleetConfig()
    rng = rng or RngStream()
    points: list[FrontierPoint] = []
    for dp in dp_values:
        f = replace(fleet, shard=replace(fleet.shard, dp=dp), autoscale=False)
        engine = ShardedServingEngine(
            spec, policy, config, fleet=f,
            max_batch_size=max_batch_size,
            max_batch_tokens=max_batch_tokens,
            slo=slo,
        )
        rep = engine.run(trace, rng=rng)
        gpu_s = f.shard.world_size * rep.makespan_s
        points.append(
            FrontierPoint(
                label=f"dp{dp}",
                mean_replicas=float(dp),
                gpu_s=gpu_s,
                gpu_cost=gpu_s * fleet.gpu_cost_per_s,
                total_tokens=rep.total_tokens,
                tokens_per_s=rep.tokens_per_s,
                ttft_p99_s=rep.ttft_p(99),
            )
        )
    if include_auto:
        auto = AutoscalingServingEngine(
            spec, policy, config,
            fleet=replace(fleet, autoscale=True),
            max_batch_size=max_batch_size,
            max_batch_tokens=max_batch_tokens,
            slo=slo,
        )
        rep = auto.run(trace, rng=rng)
        points.append(
            FrontierPoint(
                label="auto",
                mean_replicas=rep.mean_replicas,
                gpu_s=rep.gpu_s,
                gpu_cost=rep.gpu_cost,
                total_tokens=rep.total_tokens,
                tokens_per_s=rep.tokens_per_s,
                ttft_p99_s=rep.ttft_p(99),
            )
        )
    return tuple(points)
