"""Compound sparse attention patterns (paper Fig. 1 e-f).

Compound patterns are unions of atomic patterns:

* **Longformer** = sliding window ∪ global — local context plus a few
  task-specific global tokens.
* **Bigbird** = sliding window ∪ global ∪ random blocks — the random
  component introduces unstructured sparsity, which is the hard case for
  mask representations (Table 2 marks it "Unstructured").
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import RngStream
from repro.masks.patterns import (
    PATTERN_REGISTRY,
    MaskPattern,
    _sqrt_width,
    global_mask,
    random_block_mask,
    sliding_window_mask,
)


def longformer_mask(seq_len: int, band_width: int, global_width: int) -> np.ndarray:
    """Longformer: sliding window plus global tokens.

    >>> m = longformer_mask(64, 4, 2)
    >>> bool(m[:2].all()) and bool(m[:, :2].all())
    True
    """
    return sliding_window_mask(seq_len, band_width) | global_mask(seq_len, global_width)


def bigbird_mask(
    seq_len: int,
    band_width: int,
    global_width: int,
    filling_rate: float = 0.1,
    block_size: int = 64,
    rng: RngStream | None = None,
) -> np.ndarray:
    """Bigbird: window + global + random blocks (unstructured sparsity)."""
    rng = rng or RngStream().fork("mask-bigbird")
    return (
        sliding_window_mask(seq_len, band_width)
        | global_mask(seq_len, global_width)
        | random_block_mask(seq_len, filling_rate, block_size=block_size, rng=rng)
    )


PATTERN_REGISTRY["longformer"] = MaskPattern(
    name="longformer",
    generator=longformer_mask,
    uses_randomness=False,
    default_params={"band_width": _sqrt_width, "global_width": _sqrt_width},
)

PATTERN_REGISTRY["bigbird"] = MaskPattern(
    name="bigbird",
    generator=bigbird_mask,
    uses_randomness=True,
    default_params={
        "band_width": _sqrt_width,
        "global_width": _sqrt_width,
        "filling_rate": 0.1,
    },
)

#: The four patterns the paper's evaluation sweeps (Figs. 10-11).
EVALUATION_PATTERNS = ("sliding_window", "dilated", "longformer", "bigbird")
