"""Sparse attention mask patterns and storage formats.

Implements §2.1.2 (atomic and compound patterns), Table 2 (mask feature
statistics), and §4.2 / Fig. 6 (the BSR-style block-sparse storage format
with ``full`` / ``part`` / ``load`` arrays and deduplicated partial-block
masks).

Conventions
-----------
A mask is a boolean ``(seq_len, seq_len)`` array; ``mask[i, j] == True``
means query ``i`` attends to key ``j``.  *Sparsity* is the fraction of
``False`` entries.  A fully masked row produces an all-zero attention output
(every kernel in :mod:`repro.mha` follows the same convention).
"""

from repro.masks.patterns import (
    MaskPattern,
    sliding_window_mask,
    dilated_mask,
    global_mask,
    random_block_mask,
    causal_mask,
    make_pattern,
    PATTERN_REGISTRY,
)
from repro.masks.compound import longformer_mask, bigbird_mask
from repro.masks.stats import (
    MaskStats,
    sparsity_ratio,
    classify_distribution,
    classify_structure,
    analyze_mask,
    default_width,
)
from repro.masks.bsr import BlockSparseMask, BlockKind
from repro.masks.ranges import ColumnRangeMask, column_run_counts

__all__ = [
    "MaskPattern",
    "sliding_window_mask",
    "dilated_mask",
    "global_mask",
    "random_block_mask",
    "causal_mask",
    "make_pattern",
    "PATTERN_REGISTRY",
    "longformer_mask",
    "bigbird_mask",
    "MaskStats",
    "sparsity_ratio",
    "classify_distribution",
    "classify_structure",
    "analyze_mask",
    "default_width",
    "BlockSparseMask",
    "BlockKind",
    "ColumnRangeMask",
    "column_run_counts",
]
