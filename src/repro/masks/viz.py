"""Terminal visualization of masks and their BSR block structure.

``render_mask`` draws the boolean matrix as character art (downsampled to a
target width); ``render_bsr`` draws the block classification the block-wise
kernel actually executes: full / part / skipped.  Used by the CLI's
``masks --show`` and handy in notebooks and bug reports.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError
from repro.masks.bsr import BlockKind, BlockSparseMask

#: Density ramp for downsampled cells ('.' = empty .. '#' = full).
RAMP = ".:-+*#"

#: Block classification glyphs.
GLYPH_FULL = "#"
GLYPH_PART = "+"
GLYPH_EMPTY = "."


def render_mask(mask: np.ndarray, width: int = 64) -> str:
    """ASCII-art a boolean mask, downsampled to at most ``width`` columns.

    Each output cell shows the local attended density on the :data:`RAMP`.

    >>> import numpy as np
    >>> print(render_mask(np.eye(4, dtype=bool), width=4))
    #...
    .#..
    ..#.
    ...#
    """
    m = np.asarray(mask)
    if m.ndim != 2:
        raise ConfigError(f"mask must be 2-D, got {m.shape}")
    m = m.astype(np.float32)
    rows, cols = m.shape
    step_r = max(1, -(-rows // width))
    step_c = max(1, -(-cols // width))
    out_lines = []
    for r0 in range(0, rows, step_r):
        cells = []
        for c0 in range(0, cols, step_c):
            block = m[r0 : r0 + step_r, c0 : c0 + step_c]
            density = float(block.mean())
            idx = min(len(RAMP) - 1, int(round(density * (len(RAMP) - 1))))
            cells.append(RAMP[idx])
        out_lines.append("".join(cells))
    return "\n".join(out_lines)


def render_bsr(bsr: BlockSparseMask, max_width: int = 96) -> str:
    """Draw the block grid: ``#`` full, ``+`` part, ``.`` skipped.

    This is exactly the work map of the block-wise kernel: every ``.`` is
    a block whose K/V tiles are never loaded.

    >>> import numpy as np
    >>> from repro.masks.bsr import BlockSparseMask
    >>> bsr = BlockSparseMask.from_dense(np.eye(4, dtype=bool), 2, 2)
    >>> print(render_bsr(bsr))
    +.
    .+
    """
    grid = np.full((bsr.n_block_rows, bsr.n_block_cols), GLYPH_EMPTY, dtype="<U1")
    for bi in range(bsr.n_block_rows):
        for col, kind, _ in bsr.blocks_in_row(bi):
            grid[bi, col] = GLYPH_FULL if kind is BlockKind.FULL else GLYPH_PART
    lines = ["".join(row) for row in grid]
    if bsr.n_block_cols > max_width:
        lines = [line[:max_width] + "…" for line in lines]
    return "\n".join(lines)


def block_summary(bsr: BlockSparseMask) -> str:
    """One-line block census for captions.

    >>> import numpy as np
    >>> from repro.masks.bsr import BlockSparseMask
    >>> block_summary(BlockSparseMask.from_dense(np.eye(4, dtype=bool), 2, 2))
    '0 full + 2 part of 4 blocks (50.0% skipped), 1 unique part masks'
    """
    skipped = bsr.n_total - bsr.n_valid
    return (
        f"{bsr.n_full} full + {bsr.n_part} part of {bsr.n_total} blocks "
        f"({skipped / bsr.n_total:.1%} skipped), "
        f"{bsr.n_unique_part_masks} unique part masks"
    )
