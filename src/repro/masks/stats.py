"""Mask feature analysis (paper Table 2).

Computes, for an arbitrary boolean mask matrix:

* the sparsity ratio (fraction of masked-out entries),
* the element *distribution* along rows and columns — ``continuous`` when
  every row's (column's) attended set forms one contiguous run, else
  ``discrete`` — which determines whether range-based formats like
  FlashMask's column spans can represent the mask,
* a structured/unstructured heuristic based on how repetitive the set of
  distinct row patterns is (random placement yields mostly unique rows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError


def default_width(seq_len: int) -> int:
    """The paper's default band/global width, ``sqrt(seq_len)`` (§3.1)."""
    return max(1, int(round(seq_len ** 0.5)))


def _validate_mask(mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise ConfigError(f"mask must be 2-D, got shape {mask.shape}")
    if mask.dtype != bool:
        mask = mask.astype(bool)
    return mask


def sparsity_ratio(mask: np.ndarray) -> float:
    """Fraction of masked-out (False) entries.

    >>> import numpy as np
    >>> sparsity_ratio(np.eye(4, dtype=bool))
    0.75
    """
    mask = _validate_mask(mask)
    return float(1.0 - mask.mean())


def contiguous_row_fraction(mask: np.ndarray) -> float:
    """Fraction of non-empty rows whose attended set is one contiguous run.

    The row-wise kernel's gather-efficiency model weighs coalesced (banded,
    causal) against scattered (dilated, random) rows by this statistic.
    Masks with no attended element at all count as fully contiguous.

    >>> import numpy as np
    >>> contiguous_row_fraction(np.tril(np.ones((4, 4), dtype=bool)))
    1.0
    """
    m = _validate_mask(mask)
    padded = np.concatenate([np.zeros((m.shape[0], 1), dtype=bool), m], axis=1)
    rises = ((~padded[:, :-1]) & padded[:, 1:]).sum(axis=1)
    nonempty = rises > 0
    if not nonempty.any():
        return 1.0
    return float((rises[nonempty] == 1).mean())


def _runs_are_contiguous(mat: np.ndarray) -> bool:
    """True when every row's True entries form at most one contiguous run."""
    # A row has one run iff the number of 0->1 transitions (including a
    # leading one) is <= 1.
    padded = np.concatenate(
        [np.zeros((mat.shape[0], 1), dtype=bool), mat], axis=1
    )
    rises = (~padded[:, :-1]) & padded[:, 1:]
    return bool((rises.sum(axis=1) <= 1).all())


def classify_distribution(mask: np.ndarray) -> tuple[str, str]:
    """Classify row and column element distribution.

    Returns ``(row, column)``, each ``"continuous"`` or ``"discrete"``.
    Empty rows/columns count as continuous (zero runs).

    >>> from repro.masks.patterns import sliding_window_mask, dilated_mask
    >>> classify_distribution(sliding_window_mask(64, 4))
    ('continuous', 'continuous')
    >>> classify_distribution(dilated_mask(64, 4, 1))
    ('discrete', 'discrete')
    """
    mask = _validate_mask(mask)
    row = "continuous" if _runs_are_contiguous(mask) else "discrete"
    col = "continuous" if _runs_are_contiguous(mask.T) else "discrete"
    return row, col


def classify_structure(mask: np.ndarray, uniqueness_threshold: float = 0.5) -> str:
    """Heuristic structured/unstructured classification.

    Structured patterns (bands, global stripes, dilation) repeat a small
    family of row shapes *relative to their alignment*: shifting each row so
    its first attended element sits at column zero collapses banded patterns
    onto few distinct shapes.  Random placement stays near-unique under the
    same normalization.  The mask is "unstructured" when the number of
    distinct normalized non-empty rows exceeds ``uniqueness_threshold`` of
    the non-empty row count.
    """
    mask = _validate_mask(mask)
    nonempty = mask[mask.any(axis=1)]
    if nonempty.shape[0] == 0:
        return "structured"
    first = nonempty.argmax(axis=1)
    aligned = np.zeros_like(nonempty)
    for i, (row, shift) in enumerate(zip(nonempty, first)):
        aligned[i, : nonempty.shape[1] - shift] = row[shift:]
    distinct = np.unique(aligned, axis=0).shape[0]
    ratio = distinct / nonempty.shape[0]
    return "unstructured" if ratio > uniqueness_threshold else "structured"


@dataclass(frozen=True)
class MaskStats:
    """One row of the paper's Table 2."""

    pattern: str
    seq_len: int
    parameters: dict
    row_distribution: str
    col_distribution: str
    sparsity_type: str
    sparsity_ratio: float

    def as_table_row(self) -> dict:
        """Flatten for tabular printing in the benchmark harness."""
        return {
            "pattern": self.pattern,
            "parameters": ", ".join(f"{k}={v}" for k, v in self.parameters.items()),
            "row": self.row_distribution,
            "column": self.col_distribution,
            "type": self.sparsity_type,
            "sparsity_%": round(self.sparsity_ratio * 100.0, 1),
        }


def analyze_mask(
    mask: np.ndarray,
    pattern: str = "custom",
    parameters: dict | None = None,
    known_random: bool | None = None,
) -> MaskStats:
    """Compute all Table 2 features of a mask.

    ``known_random`` overrides the structure heuristic when the caller knows
    whether the generator used randomness (the registry does).
    """
    mask = _validate_mask(mask)
    row, col = classify_distribution(mask)
    if known_random is None:
        structure = classify_structure(mask)
    else:
        structure = "unstructured" if known_random else "structured"
    return MaskStats(
        pattern=pattern,
        seq_len=mask.shape[0],
        parameters=dict(parameters or {}),
        row_distribution=row,
        col_distribution=col,
        sparsity_type=structure,
        sparsity_ratio=sparsity_ratio(mask),
    )
