"""Column-wise range mask representation (FlashMask's format, §3.1).

FlashMask extends FlashAttention with a *column-wise* sparse
representation: for every key column the mask stores the bounds of (at
most) two skipped row-regions, i.e. four arrays — here named after their
roles:

* ``lower_start`` / ``lower_end`` — the skipped region below the attended
  band: rows in ``[lower_start[j], lower_end[j])`` of column ``j`` are
  masked out,
* ``upper_start`` / ``upper_end`` — the skipped region above it.

Equivalently, each column attends at most **two contiguous row runs**.
This covers causal, sliding-window, global+band (Longformer-like), and
document-mask patterns — but *not* discrete distributions: a dilated
column has many runs, and Bigbird's random blocks add arbitrary extra
runs.  That representational ceiling is precisely the motivation the
paper gives for STOF's block-wise format, and
:meth:`ColumnRangeMask.from_dense` raises
:class:`~repro.core.errors.UnsupportedInputError` in exactly those cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError, UnsupportedInputError


def column_run_counts(mask: np.ndarray) -> np.ndarray:
    """Number of attended (True) runs per column.

    >>> import numpy as np
    >>> column_run_counts(np.eye(3, dtype=bool)).tolist()
    [1, 1, 1]
    """
    m = np.asarray(mask, dtype=bool)
    if m.ndim != 2:
        raise ConfigError(f"mask must be 2-D, got shape {m.shape}")
    padded = np.concatenate([np.zeros((1, m.shape[1]), dtype=bool), m], axis=0)
    rises = (~padded[:-1]) & padded[1:]
    return rises.sum(axis=0)


@dataclass
class ColumnRangeMask:
    """FlashMask-style four-array column-range representation.

    Arrays have one entry per key column.  Column ``j`` attends rows
    ``[a0[j], a1[j]) ∪ [b0[j], b1[j])`` with ``a1 <= b0``; an unused second
    run has ``b0 == b1``.  An entirely masked column has both runs empty.
    """

    seq_len: int
    run0_start: np.ndarray
    run0_end: np.ndarray
    run1_start: np.ndarray
    run1_end: np.ndarray

    MAX_RUNS = 2

    @classmethod
    def from_dense(cls, mask: np.ndarray) -> "ColumnRangeMask":
        """Convert a dense mask; raises if any column needs > 2 runs.

        >>> import numpy as np
        >>> crm = ColumnRangeMask.from_dense(np.tril(np.ones((4, 4), bool)))
        >>> crm.run0_start.tolist()
        [0, 1, 2, 3]
        """
        m = np.asarray(mask, dtype=bool)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ConfigError(f"mask must be square 2-D, got {m.shape}")
        runs = column_run_counts(m)
        bad = np.flatnonzero(runs > cls.MAX_RUNS)
        if len(bad):
            raise UnsupportedInputError(
                f"column-range representation supports at most {cls.MAX_RUNS} "
                f"attended runs per column; column {int(bad[0])} has "
                f"{int(runs[bad[0]])} (first of {len(bad)} such columns)"
            )

        n = m.shape[0]
        a0 = np.zeros(n, dtype=np.int32)
        a1 = np.zeros(n, dtype=np.int32)
        b0 = np.zeros(n, dtype=np.int32)
        b1 = np.zeros(n, dtype=np.int32)
        padded = np.concatenate([np.zeros((1, n), bool), m, np.zeros((1, n), bool)])
        for j in range(n):
            col = padded[:, j]
            starts = np.flatnonzero(~col[:-1] & col[1:])
            ends = np.flatnonzero(col[:-1] & ~col[1:])
            if len(starts) >= 1:
                a0[j], a1[j] = starts[0], ends[0]
            if len(starts) == 2:
                b0[j], b1[j] = starts[1], ends[1]
            else:
                b0[j] = b1[j] = a1[j]
        return cls(n, a0, a1, b0, b1)

    def to_dense(self) -> np.ndarray:
        """Exact inverse of :meth:`from_dense`."""
        n = self.seq_len
        rows = np.arange(n)[:, None]
        in0 = (rows >= self.run0_start[None, :]) & (rows < self.run0_end[None, :])
        in1 = (rows >= self.run1_start[None, :]) & (rows < self.run1_end[None, :])
        return in0 | in1

    @classmethod
    def supports(cls, mask: np.ndarray) -> tuple[bool, str]:
        """Cheap representability check without building the arrays."""
        runs = column_run_counts(mask)
        over = int(runs.max(initial=0))
        if over > cls.MAX_RUNS:
            return False, f"a column has {over} attended runs (max {cls.MAX_RUNS})"
        return True, ""

    @property
    def nbytes(self) -> int:
        """Device footprint of the four index arrays."""
        return int(
            self.run0_start.nbytes
            + self.run0_end.nbytes
            + self.run1_start.nbytes
            + self.run1_end.nbytes
        )

    def attended_counts(self) -> np.ndarray:
        """Attended rows per column (for load-balance analysis)."""
        return (self.run0_end - self.run0_start) + (self.run1_end - self.run1_start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        two = int((self.run1_end > self.run1_start).sum())
        return (
            f"ColumnRangeMask(seq={self.seq_len}, two-run columns={two}, "
            f"{self.nbytes} B)"
        )
