"""Block-compressed sparse row (BSR) mask storage (paper §4.2, Fig. 6).

The mask matrix is tiled into ``(BLOCK_M, BLOCK_N)`` blocks.  Each block is
classified as:

* ``FULL``  — every element attended: the kernel does a dense tile with no
  mask load at all,
* ``PART``  — mixed: the kernel loads the block's element mask and applies
  it after the score GEMM,
* empty     — no element attended: the block (and the matching K/V tiles)
  is *skipped entirely*.

Storage follows the paper exactly:

* ``full_row_ptr`` / ``full_col_idx`` — CSR over FULL blocks.
* ``part_row_ptr`` / ``part_col_idx`` — CSR over PART blocks; each PART
  block also carries an index into ``part_mask``, a stack of *deduplicated*
  dense block masks ("we store the identical block masks only once and then
  broadcast them to the indices").
* ``load_row_ptr`` / ``load_col_idx`` — the merged CSR over all valid
  (FULL ∪ PART) blocks, column-sorted per row; this is what the block-wise
  kernel iterates.  ``load_kind``/``load_mask_idx`` run parallel to
  ``load_col_idx`` so one pass yields everything the kernel needs.

On top of the CSR view, ``from_dense`` eagerly builds a *flat COO* view for
the vectorized execution backend: ``load_block_row`` records each valid
block's block-row (so one gather fetches every Q/K/V tile at once), and the
``seg_*`` arrays describe the non-empty block-row segments of the flat block
axis (``seg_starts`` feeds ``np.{maximum,add}.reduceat`` for the segmented
online softmax, ``seg_id`` broadcasts per-segment statistics back to blocks,
``seg_block_rows`` scatters segment results into output rows).
``part_bias`` is the deduplicated PART-mask stack as an additive FP32 bias
(``0`` attended / ``-inf`` masked), ready to add onto score tiles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.errors import ConfigError


class BlockKind(enum.IntEnum):
    """Kind tag stored per valid block in the merged load arrays."""

    FULL = 0
    PART = 1


@dataclass
class BlockSparseMask:
    """BSR representation of an attention mask.

    Build with :meth:`from_dense`; reconstruct with :meth:`to_dense` (an
    exact round trip — property-tested).  All index arrays are ``int32``
    (matching what a GPU kernel would consume); block masks are stored as a
    single boolean stack ``part_mask`` of shape ``(n_unique, BLOCK_M,
    BLOCK_N)``.
    """

    seq_len: int
    kv_len: int
    block_m: int
    block_n: int

    full_row_ptr: np.ndarray
    full_col_idx: np.ndarray
    part_row_ptr: np.ndarray
    part_col_idx: np.ndarray
    part_mask_idx: np.ndarray   # parallel to part_col_idx -> row of part_mask
    part_mask: np.ndarray       # (n_unique, block_m, block_n) bool

    load_row_ptr: np.ndarray
    load_col_idx: np.ndarray
    load_kind: np.ndarray       # parallel to load_col_idx, BlockKind values
    load_mask_idx: np.ndarray   # parallel; -1 for FULL blocks

    # Flat COO view (vectorized execution backend; built by from_dense).
    load_block_row: np.ndarray  # parallel to load_col_idx: block-row index
    seg_starts: np.ndarray      # flat offsets of each non-empty block row
    seg_block_rows: np.ndarray  # block-row index of each segment
    seg_id: np.ndarray          # parallel to load_col_idx: segment index
    part_bias: np.ndarray       # (n_unique, block_m, block_n) fp32 0/-inf

    _load_bias_cache: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    _concat_groups_cache: list | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------ construction

    @classmethod
    def from_dense(
        cls, mask: np.ndarray, block_m: int, block_n: int
    ) -> "BlockSparseMask":
        """Tile a dense boolean mask into BSR form.

        The sequence length need not divide the block size: edge blocks are
        padded with ``False`` (padding never counts toward "full").

        >>> import numpy as np
        >>> m = np.eye(4, dtype=bool)
        >>> bsr = BlockSparseMask.from_dense(m, 2, 2)
        >>> bsr.n_full, bsr.n_part
        (0, 2)
        >>> bool((bsr.to_dense() == m).all())
        True
        """
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise ConfigError(f"mask must be 2-D, got shape {mask.shape}")
        if mask.dtype != bool:
            mask = mask.astype(bool)
        if block_m < 1 or block_n < 1:
            raise ConfigError(f"block sizes must be >= 1, got ({block_m}, {block_n})")

        # Rectangular masks (query length != key length, e.g. KV-cache
        # decode steps) are supported; ``seq_len``/``kv_len`` track the two
        # extents separately.
        seq_len, kv_len = mask.shape
        n_rows = -(-seq_len // block_m)
        n_cols = -(-kv_len // block_n)

        padded = np.zeros((n_rows * block_m, n_cols * block_n), dtype=bool)
        padded[:seq_len, :kv_len] = mask
        blocks = padded.reshape(n_rows, block_m, n_cols, block_n).transpose(0, 2, 1, 3)
        counts = blocks.sum(axis=(2, 3))

        # "full" means every *in-bounds* element is attended; edge blocks are
        # full when their un-padded region is saturated.
        in_bounds = np.zeros_like(padded)
        in_bounds[:seq_len, :kv_len] = True
        bounds_blocks = in_bounds.reshape(
            n_rows, block_m, n_cols, block_n
        ).transpose(0, 2, 1, 3)
        capacity = bounds_blocks.sum(axis=(2, 3))

        is_valid = counts > 0
        is_full = is_valid & (counts == capacity)
        is_part = is_valid & ~is_full

        full_row_ptr, full_col_idx = _csr_from_grid(is_full)
        part_row_ptr, part_col_idx = _csr_from_grid(is_part)

        # Deduplicate part-block masks by content (vectorized: unique over
        # the flattened block rows, row-major order matches the CSR order).
        p_rows, p_cols = np.nonzero(is_part)
        if len(p_rows):
            part_blocks = blocks[p_rows, p_cols].reshape(len(p_rows), -1)
            # Bit-pack each block and compare as opaque fixed-size records:
            # memcmp-based unique is far faster than axis=0 unique on bools.
            packed = np.packbits(part_blocks, axis=1)
            packed = np.ascontiguousarray(packed)
            keys = packed.view(f"V{packed.shape[1]}").ravel()
            _, first_idx, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            # Re-number unique blocks by first appearance so ordering is
            # deterministic and independent of np.unique's sort.
            order = np.argsort(first_idx, kind="stable")
            renumber = np.empty_like(order)
            renumber[order] = np.arange(len(order))
            part_mask_idx = renumber[inverse].astype(np.int32)
            part_mask = part_blocks[np.sort(first_idx)].reshape(
                -1, block_m, block_n
            )
        else:
            part_mask_idx = np.zeros(0, dtype=np.int32)
            part_mask = np.zeros((0, block_m, block_n), dtype=bool)

        # Merged load arrays: FULL and PART interleaved in column order
        # (vectorized lexsort over (row, col)).
        f_rows, f_cols = np.nonzero(is_full)
        all_rows = np.concatenate([f_rows, p_rows]).astype(np.int64)
        all_cols = np.concatenate([f_cols, p_cols]).astype(np.int32)
        all_kinds = np.concatenate(
            [
                np.full(len(f_rows), int(BlockKind.FULL), dtype=np.int8),
                np.full(len(p_rows), int(BlockKind.PART), dtype=np.int8),
            ]
        )
        all_midx = np.concatenate(
            [np.full(len(f_rows), -1, dtype=np.int32), part_mask_idx]
        )
        order = np.lexsort((all_cols, all_rows))
        load_cols = all_cols[order]
        load_kinds = all_kinds[order]
        load_midx = all_midx[order]
        row_counts = np.bincount(all_rows, minlength=n_rows)
        load_row_ptr = np.zeros(n_rows + 1, dtype=np.int32)
        np.cumsum(row_counts, out=load_row_ptr[1:])

        # Flat COO view: per-block block-row indices plus the non-empty
        # row segments of the flat block axis (blocks are (row, col)-sorted,
        # so each block row occupies one contiguous flat segment).
        load_rows = all_rows[order].astype(np.int32)
        seg_block_rows = np.flatnonzero(row_counts > 0).astype(np.int32)
        seg_starts = load_row_ptr[seg_block_rows]
        seg_id = np.repeat(
            np.arange(len(seg_block_rows), dtype=np.int32),
            row_counts[seg_block_rows],
        )
        part_bias = np.where(
            part_mask, np.float32(0.0), np.float32(-np.inf)
        ).astype(np.float32)

        return cls(
            seq_len=seq_len,
            kv_len=kv_len,
            block_m=block_m,
            block_n=block_n,
            full_row_ptr=full_row_ptr,
            full_col_idx=full_col_idx,
            part_row_ptr=part_row_ptr,
            part_col_idx=part_col_idx,
            part_mask_idx=part_mask_idx,
            part_mask=part_mask,
            load_row_ptr=load_row_ptr,
            load_col_idx=np.asarray(load_cols, dtype=np.int32),
            load_kind=np.asarray(load_kinds, dtype=np.int8),
            load_mask_idx=np.asarray(load_midx, dtype=np.int32),
            load_block_row=load_rows,
            seg_starts=seg_starts,
            seg_block_rows=seg_block_rows,
            seg_id=seg_id,
            part_bias=part_bias,
        )

    # ------------------------------------------------------------- round trip

    def to_dense(self) -> np.ndarray:
        """Reconstruct the exact dense boolean mask (vectorized scatter)."""
        blocks = np.zeros(
            (self.n_block_rows, self.n_block_cols, self.block_m, self.block_n),
            dtype=bool,
        )
        full = self.load_kind == int(BlockKind.FULL)
        blocks[self.load_block_row[full], self.load_col_idx[full]] = True
        part = ~full
        blocks[self.load_block_row[part], self.load_col_idx[part]] = (
            self.part_mask[self.load_mask_idx[part]]
        )
        out = blocks.transpose(0, 2, 1, 3).reshape(
            self.n_block_rows * self.block_m, self.n_block_cols * self.block_n
        )
        # FULL edge blocks legitimately cover padded region; clip handled by
        # slicing.  Padding inside part blocks was stored as False.
        return out[: self.seq_len, : self.kv_len]

    # --------------------------------------------------------------- queries

    @property
    def n_block_rows(self) -> int:
        return -(-self.seq_len // self.block_m)

    @property
    def n_block_cols(self) -> int:
        return -(-self.kv_len // self.block_n)

    @property
    def n_full(self) -> int:
        return int(len(self.full_col_idx))

    @property
    def n_part(self) -> int:
        return int(len(self.part_col_idx))

    @property
    def n_valid(self) -> int:
        return int(len(self.load_col_idx))

    @property
    def n_total(self) -> int:
        return self.n_block_rows * self.n_block_cols

    @property
    def valid_ratio(self) -> float:
        """Fraction of blocks that must be computed (Eq. 1's first term)."""
        return self.n_valid / self.n_total if self.n_total else 0.0

    @property
    def n_unique_part_masks(self) -> int:
        return int(self.part_mask.shape[0])

    def row_valid_counts(self) -> np.ndarray:
        """Number of valid blocks per block row (kernel work distribution)."""
        return np.diff(self.load_row_ptr)

    def blocks_in_row(self, block_row: int) -> list[tuple[int, BlockKind, int]]:
        """Iterate the valid blocks of one block row as (col, kind, mask_idx)."""
        if not (0 <= block_row < self.n_block_rows):
            raise ConfigError(
                f"block_row {block_row} out of range [0, {self.n_block_rows})"
            )
        s, e = self.load_row_ptr[block_row], self.load_row_ptr[block_row + 1]
        return [
            (
                int(self.load_col_idx[k]),
                BlockKind(int(self.load_kind[k])),
                int(self.load_mask_idx[k]),
            )
            for k in range(s, e)
        ]

    def load_bias(self) -> np.ndarray:
        """Per-valid-block additive score bias, ``(n_valid, block_m, block_n)``.

        ``0`` where attended, ``-inf`` where masked: PART blocks expand their
        deduplicated ``part_bias`` row, FULL blocks are all-zero except for
        the out-of-bounds key columns of a ragged edge block (PART padding is
        already ``False`` in the stored masks).  Cached after first build —
        it is a pure function of the mask.
        """
        if self._load_bias_cache is None:
            bias = np.zeros(
                (self.n_valid, self.block_m, self.block_n), dtype=np.float32
            )
            part = self.load_kind == int(BlockKind.PART)
            if part.any():
                bias[part] = self.part_bias[self.load_mask_idx[part]]
            pad_cols = self.n_block_cols * self.block_n - self.kv_len
            if pad_cols > 0:
                edge = (self.load_col_idx == self.n_block_cols - 1) & ~part
                bias[edge, :, self.block_n - pad_cols :] = -np.inf
            self._load_bias_cache = bias
        return self._load_bias_cache

    def concat_groups(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
        """Length-bucketed concatenated views of the flat block axis (cached).

        Non-empty block rows are grouped by their valid-block count; within a
        group, every row's blocks concatenate along the key axis, so each
        group's score tile is one ``(block_m, cap*block_n)`` slab and the
        segmented softmax over ``seg_starts`` becomes a plain last-axis
        softmax (the segment is the axis).  Counts are exact when the mask
        has few distinct per-row block counts (banded masks — zero padded
        compute); masks with many distinct counts (causal) round up to
        power-of-two buckets, where padded slots repeat the row's last block
        under an all ``-inf`` bias and contribute ``exp(-inf) = 0``.

        Returns ``(block_rows, block_idx, bias)`` per bucket: ``block_rows``
        ``(n_g,)`` block-row of each member, ``block_idx`` ``(n_g, cap)``
        flat indices into the valid-block axis, and ``bias``
        ``(n_g, block_m, cap*block_n)`` additive FP32 score bias — ``None``
        when the whole slab is zero (all-FULL rows, no padding).
        """
        if self._concat_groups_cache is None:
            groups: list[tuple[np.ndarray, np.ndarray, np.ndarray | None]] = []
            lens = np.diff(self.load_row_ptr)[self.seg_block_rows].astype(np.int64)
            if lens.size:
                if len(np.unique(lens)) <= 16:
                    caps = lens                      # exact: no padded slots
                else:
                    caps = np.int64(1) << np.ceil(np.log2(lens)).astype(np.int64)
                bias_all = self.load_bias()
                for cap in np.unique(caps):
                    sel = caps == cap
                    rows_g = self.seg_block_rows[sel]
                    lens_g = lens[sel]
                    lanes = np.arange(cap)
                    idx = self.seg_starts[sel].astype(np.int64)[:, None] + np.minimum(
                        lanes[None, :], lens_g[:, None] - 1
                    )
                    slab = bias_all[idx]        # (n_g, cap, bm, bn) tile gather
                    slab[lanes[None, :] >= lens_g[:, None]] = -np.inf
                    slab = slab.transpose(0, 2, 1, 3).reshape(
                        len(rows_g), self.block_m, int(cap) * self.block_n
                    )
                    groups.append(
                        (rows_g, idx.astype(np.int32), slab if slab.any() else None)
                    )
            self._concat_groups_cache = groups
        return self._concat_groups_cache

    def metadata_bytes(self) -> int:
        """Device bytes occupied by the index arrays and mask stack.

        The flat-COO / segment arrays are host-side execution machinery for
        the vectorized functional backend and deliberately not counted: a
        real device kernel consumes only the CSR views priced here.
        """
        return int(
            self.full_row_ptr.nbytes
            + self.full_col_idx.nbytes
            + self.part_row_ptr.nbytes
            + self.part_col_idx.nbytes
            + self.part_mask_idx.nbytes
            + self.part_mask.size  # stored as 1 byte/element on device
            + self.load_row_ptr.nbytes
            + self.load_col_idx.nbytes
            + self.load_kind.nbytes
            + self.load_mask_idx.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockSparseMask(seq={self.seq_len}, block=({self.block_m},"
            f"{self.block_n}), full={self.n_full}, part={self.n_part}, "
            f"valid={self.n_valid}/{self.n_total})"
        )


def _csr_from_grid(grid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR (row_ptr, col_idx) over the True cells of a 2-D boolean grid."""
    n_rows = grid.shape[0]
    rows, cols = np.nonzero(grid)  # row-major order: already row-sorted
    row_ptr = np.zeros(n_rows + 1, dtype=np.int32)
    np.cumsum(np.bincount(rows, minlength=n_rows), out=row_ptr[1:])
    return row_ptr, cols.astype(np.int32)
