"""Block-compressed sparse row (BSR) mask storage (paper §4.2, Fig. 6).

The mask matrix is tiled into ``(BLOCK_M, BLOCK_N)`` blocks.  Each block is
classified as:

* ``FULL``  — every element attended: the kernel does a dense tile with no
  mask load at all,
* ``PART``  — mixed: the kernel loads the block's element mask and applies
  it after the score GEMM,
* empty     — no element attended: the block (and the matching K/V tiles)
  is *skipped entirely*.

Storage follows the paper exactly:

* ``full_row_ptr`` / ``full_col_idx`` — CSR over FULL blocks.
* ``part_row_ptr`` / ``part_col_idx`` — CSR over PART blocks; each PART
  block also carries an index into ``part_mask``, a stack of *deduplicated*
  dense block masks ("we store the identical block masks only once and then
  broadcast them to the indices").
* ``load_row_ptr`` / ``load_col_idx`` — the merged CSR over all valid
  (FULL ∪ PART) blocks, column-sorted per row; this is what the block-wise
  kernel iterates.  ``load_kind``/``load_mask_idx`` run parallel to
  ``load_col_idx`` so one pass yields everything the kernel needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.errors import ConfigError


class BlockKind(enum.IntEnum):
    """Kind tag stored per valid block in the merged load arrays."""

    FULL = 0
    PART = 1


@dataclass
class BlockSparseMask:
    """BSR representation of an attention mask.

    Build with :meth:`from_dense`; reconstruct with :meth:`to_dense` (an
    exact round trip — property-tested).  All index arrays are ``int32``
    (matching what a GPU kernel would consume); block masks are stored as a
    single boolean stack ``part_mask`` of shape ``(n_unique, BLOCK_M,
    BLOCK_N)``.
    """

    seq_len: int
    kv_len: int
    block_m: int
    block_n: int

    full_row_ptr: np.ndarray
    full_col_idx: np.ndarray
    part_row_ptr: np.ndarray
    part_col_idx: np.ndarray
    part_mask_idx: np.ndarray   # parallel to part_col_idx -> row of part_mask
    part_mask: np.ndarray       # (n_unique, block_m, block_n) bool

    load_row_ptr: np.ndarray
    load_col_idx: np.ndarray
    load_kind: np.ndarray       # parallel to load_col_idx, BlockKind values
    load_mask_idx: np.ndarray   # parallel; -1 for FULL blocks

    # ------------------------------------------------------------ construction

    @classmethod
    def from_dense(
        cls, mask: np.ndarray, block_m: int, block_n: int
    ) -> "BlockSparseMask":
        """Tile a dense boolean mask into BSR form.

        The sequence length need not divide the block size: edge blocks are
        padded with ``False`` (padding never counts toward "full").

        >>> import numpy as np
        >>> m = np.eye(4, dtype=bool)
        >>> bsr = BlockSparseMask.from_dense(m, 2, 2)
        >>> bsr.n_full, bsr.n_part
        (0, 2)
        >>> bool((bsr.to_dense() == m).all())
        True
        """
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise ConfigError(f"mask must be 2-D, got shape {mask.shape}")
        if mask.dtype != bool:
            mask = mask.astype(bool)
        if block_m < 1 or block_n < 1:
            raise ConfigError(f"block sizes must be >= 1, got ({block_m}, {block_n})")

        # Rectangular masks (query length != key length, e.g. KV-cache
        # decode steps) are supported; ``seq_len``/``kv_len`` track the two
        # extents separately.
        seq_len, kv_len = mask.shape
        n_rows = -(-seq_len // block_m)
        n_cols = -(-kv_len // block_n)

        padded = np.zeros((n_rows * block_m, n_cols * block_n), dtype=bool)
        padded[:seq_len, :kv_len] = mask
        blocks = padded.reshape(n_rows, block_m, n_cols, block_n).transpose(0, 2, 1, 3)
        counts = blocks.sum(axis=(2, 3))

        # "full" means every *in-bounds* element is attended; edge blocks are
        # full when their un-padded region is saturated.
        in_bounds = np.zeros_like(padded)
        in_bounds[:seq_len, :kv_len] = True
        bounds_blocks = in_bounds.reshape(
            n_rows, block_m, n_cols, block_n
        ).transpose(0, 2, 1, 3)
        capacity = bounds_blocks.sum(axis=(2, 3))

        is_valid = counts > 0
        is_full = is_valid & (counts == capacity)
        is_part = is_valid & ~is_full

        full_row_ptr, full_col_idx = _csr_from_grid(is_full)
        part_row_ptr, part_col_idx = _csr_from_grid(is_part)

        # Deduplicate part-block masks by content (vectorized: unique over
        # the flattened block rows, row-major order matches the CSR order).
        p_rows, p_cols = np.nonzero(is_part)
        if len(p_rows):
            part_blocks = blocks[p_rows, p_cols].reshape(len(p_rows), -1)
            # Bit-pack each block and compare as opaque fixed-size records:
            # memcmp-based unique is far faster than axis=0 unique on bools.
            packed = np.packbits(part_blocks, axis=1)
            packed = np.ascontiguousarray(packed)
            keys = packed.view(f"V{packed.shape[1]}").ravel()
            _, first_idx, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            # Re-number unique blocks by first appearance so ordering is
            # deterministic and independent of np.unique's sort.
            order = np.argsort(first_idx, kind="stable")
            renumber = np.empty_like(order)
            renumber[order] = np.arange(len(order))
            part_mask_idx = renumber[inverse].astype(np.int32)
            part_mask = part_blocks[np.sort(first_idx)].reshape(
                -1, block_m, block_n
            )
        else:
            part_mask_idx = np.zeros(0, dtype=np.int32)
            part_mask = np.zeros((0, block_m, block_n), dtype=bool)

        # Merged load arrays: FULL and PART interleaved in column order
        # (vectorized lexsort over (row, col)).
        f_rows, f_cols = np.nonzero(is_full)
        all_rows = np.concatenate([f_rows, p_rows]).astype(np.int64)
        all_cols = np.concatenate([f_cols, p_cols]).astype(np.int32)
        all_kinds = np.concatenate(
            [
                np.full(len(f_rows), int(BlockKind.FULL), dtype=np.int8),
                np.full(len(p_rows), int(BlockKind.PART), dtype=np.int8),
            ]
        )
        all_midx = np.concatenate(
            [np.full(len(f_rows), -1, dtype=np.int32), part_mask_idx]
        )
        order = np.lexsort((all_cols, all_rows))
        load_cols = all_cols[order]
        load_kinds = all_kinds[order]
        load_midx = all_midx[order]
        load_row_ptr = np.zeros(n_rows + 1, dtype=np.int32)
        np.cumsum(
            np.bincount(all_rows, minlength=n_rows), out=load_row_ptr[1:]
        )

        return cls(
            seq_len=seq_len,
            kv_len=kv_len,
            block_m=block_m,
            block_n=block_n,
            full_row_ptr=full_row_ptr,
            full_col_idx=full_col_idx,
            part_row_ptr=part_row_ptr,
            part_col_idx=part_col_idx,
            part_mask_idx=part_mask_idx,
            part_mask=part_mask,
            load_row_ptr=load_row_ptr,
            load_col_idx=np.asarray(load_cols, dtype=np.int32),
            load_kind=np.asarray(load_kinds, dtype=np.int8),
            load_mask_idx=np.asarray(load_midx, dtype=np.int32),
        )

    # ------------------------------------------------------------- round trip

    def to_dense(self) -> np.ndarray:
        """Reconstruct the exact dense boolean mask."""
        n_rows = self.n_block_rows
        out = np.zeros(
            (n_rows * self.block_m, self.n_block_cols * self.block_n), dtype=bool
        )
        for bi in range(n_rows):
            s, e = self.load_row_ptr[bi], self.load_row_ptr[bi + 1]
            for k in range(s, e):
                bj = int(self.load_col_idx[k])
                r0, c0 = bi * self.block_m, bj * self.block_n
                if self.load_kind[k] == BlockKind.FULL:
                    out[r0 : r0 + self.block_m, c0 : c0 + self.block_n] = True
                else:
                    out[r0 : r0 + self.block_m, c0 : c0 + self.block_n] = (
                        self.part_mask[self.load_mask_idx[k]]
                    )
        dense = out[: self.seq_len, : self.kv_len]
        # FULL edge blocks legitimately cover padded region; clip handled by
        # slicing above.  Padding inside part blocks was stored as False.
        return dense

    # --------------------------------------------------------------- queries

    @property
    def n_block_rows(self) -> int:
        return -(-self.seq_len // self.block_m)

    @property
    def n_block_cols(self) -> int:
        return -(-self.kv_len // self.block_n)

    @property
    def n_full(self) -> int:
        return int(len(self.full_col_idx))

    @property
    def n_part(self) -> int:
        return int(len(self.part_col_idx))

    @property
    def n_valid(self) -> int:
        return int(len(self.load_col_idx))

    @property
    def n_total(self) -> int:
        return self.n_block_rows * self.n_block_cols

    @property
    def valid_ratio(self) -> float:
        """Fraction of blocks that must be computed (Eq. 1's first term)."""
        return self.n_valid / self.n_total if self.n_total else 0.0

    @property
    def n_unique_part_masks(self) -> int:
        return int(self.part_mask.shape[0])

    def row_valid_counts(self) -> np.ndarray:
        """Number of valid blocks per block row (kernel work distribution)."""
        return np.diff(self.load_row_ptr)

    def blocks_in_row(self, block_row: int) -> list[tuple[int, BlockKind, int]]:
        """Iterate the valid blocks of one block row as (col, kind, mask_idx)."""
        if not (0 <= block_row < self.n_block_rows):
            raise ConfigError(
                f"block_row {block_row} out of range [0, {self.n_block_rows})"
            )
        s, e = self.load_row_ptr[block_row], self.load_row_ptr[block_row + 1]
        return [
            (
                int(self.load_col_idx[k]),
                BlockKind(int(self.load_kind[k])),
                int(self.load_mask_idx[k]),
            )
            for k in range(s, e)
        ]

    def metadata_bytes(self) -> int:
        """Device bytes occupied by the index arrays and mask stack."""
        return int(
            self.full_row_ptr.nbytes
            + self.full_col_idx.nbytes
            + self.part_row_ptr.nbytes
            + self.part_col_idx.nbytes
            + self.part_mask_idx.nbytes
            + self.part_mask.size  # stored as 1 byte/element on device
            + self.load_row_ptr.nbytes
            + self.load_col_idx.nbytes
            + self.load_kind.nbytes
            + self.load_mask_idx.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockSparseMask(seq={self.seq_len}, block=({self.block_m},"
            f"{self.block_n}), full={self.n_full}, part={self.n_part}, "
            f"valid={self.n_valid}/{self.n_total})"
        )


def _csr_from_grid(grid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR (row_ptr, col_idx) over the True cells of a 2-D boolean grid."""
    n_rows = grid.shape[0]
    rows, cols = np.nonzero(grid)  # row-major order: already row-sorted
    row_ptr = np.zeros(n_rows + 1, dtype=np.int32)
    np.cumsum(np.bincount(rows, minlength=n_rows), out=row_ptr[1:])
    return row_ptr, cols.astype(np.int32)
