"""Atomic sparse attention patterns (paper Fig. 1 a-d).

Each generator returns a boolean ``(seq_len, seq_len)`` matrix where ``True``
marks an attended position.  Parameter conventions follow the paper's
Table 2: at ``seq_len = 1024`` with ``band_width = 32`` the sliding-window
and dilated patterns are 93.8% sparse.

* sliding window: attend iff ``|i - j| <= band_width``.
* dilated: the band is stretched by ``dilation_rate + 1`` and only every
  ``(dilation_rate + 1)``-th diagonal is kept, so the number of attended
  elements per row matches the un-dilated band ("hole-punched band").
* global: the first ``global_width`` rows and columns are fully attended.
* random: square blocks are switched on at random until the requested
  filling rate is reached (Bigbird-style block-random attention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.errors import ConfigError
from repro.core.rng import RngStream


def _check_seq_len(seq_len: int) -> None:
    if seq_len < 1:
        raise ConfigError(f"seq_len must be >= 1, got {seq_len}")


def sliding_window_mask(seq_len: int, band_width: int) -> np.ndarray:
    """Banded local-attention mask: attend iff ``|i - j| <= band_width``.

    >>> sliding_window_mask(4, 1).astype(int)
    array([[1, 1, 0, 0],
           [1, 1, 1, 0],
           [0, 1, 1, 1],
           [0, 0, 1, 1]])
    """
    _check_seq_len(seq_len)
    if band_width < 0:
        raise ConfigError(f"band_width must be >= 0, got {band_width}")
    idx = np.arange(seq_len)
    return np.abs(idx[:, None] - idx[None, :]) <= band_width


def dilated_mask(seq_len: int, band_width: int, dilation_rate: int = 1) -> np.ndarray:
    """Dilated band: stretched window, keeping every ``d+1``-th diagonal.

    With ``dilation_rate = 0`` this degenerates to the sliding window.  The
    per-row population matches :func:`sliding_window_mask` with the same
    ``band_width`` (interior rows), so Table 2 reports equal sparsity for
    both patterns.
    """
    _check_seq_len(seq_len)
    if band_width < 0:
        raise ConfigError(f"band_width must be >= 0, got {band_width}")
    if dilation_rate < 0:
        raise ConfigError(f"dilation_rate must be >= 0, got {dilation_rate}")
    stride = dilation_rate + 1
    idx = np.arange(seq_len)
    delta = idx[:, None] - idx[None, :]
    within = np.abs(delta) <= band_width * stride
    on_diag = (delta % stride) == 0
    return within & on_diag


def global_mask(seq_len: int, global_width: int) -> np.ndarray:
    """Global-token mask: first ``global_width`` rows and columns attended."""
    _check_seq_len(seq_len)
    if global_width < 0:
        raise ConfigError(f"global_width must be >= 0, got {global_width}")
    g = min(global_width, seq_len)
    mask = np.zeros((seq_len, seq_len), dtype=bool)
    mask[:g, :] = True
    mask[:, :g] = True
    return mask


def random_block_mask(
    seq_len: int,
    filling_rate: float,
    block_size: int = 64,
    rng: RngStream | None = None,
) -> np.ndarray:
    """Random block attention: switch on random blocks until the target fill.

    ``filling_rate`` is the fraction of the full matrix to cover.  Blocks are
    chosen without replacement on a ``block_size``-aligned grid; edge blocks
    may be smaller.  Deterministic given the same :class:`RngStream`.
    """
    _check_seq_len(seq_len)
    if not (0.0 <= filling_rate <= 1.0):
        raise ConfigError(f"filling_rate must be in [0, 1], got {filling_rate}")
    if block_size < 1:
        raise ConfigError(f"block_size must be >= 1, got {block_size}")
    rng = rng or RngStream().fork("random-mask")

    mask = np.zeros((seq_len, seq_len), dtype=bool)
    if filling_rate == 0.0:
        return mask
    n_blocks_side = -(-seq_len // block_size)  # ceil division
    total_cells = n_blocks_side * n_blocks_side
    order = rng.permutation(total_cells)
    target = filling_rate * seq_len * seq_len
    covered = 0
    for cell in order:
        if covered >= target:
            break
        bi, bj = divmod(int(cell), n_blocks_side)
        r0, r1 = bi * block_size, min((bi + 1) * block_size, seq_len)
        c0, c1 = bj * block_size, min((bj + 1) * block_size, seq_len)
        covered += (r1 - r0) * (c1 - c0)
        mask[r0:r1, c0:c1] = True
    return mask


def causal_mask(seq_len: int) -> np.ndarray:
    """Lower-triangular decoder mask: attend iff ``j <= i``."""
    _check_seq_len(seq_len)
    idx = np.arange(seq_len)
    return idx[None, :] <= idx[:, None]


@dataclass(frozen=True)
class MaskPattern:
    """A named mask generator plus the metadata Table 2 reports.

    ``uses_randomness`` distinguishes structured patterns (deterministic
    position rules) from unstructured ones (random placement) — the
    "Sparsity Type" column of Table 2.
    """

    name: str
    generator: Callable[..., np.ndarray]
    uses_randomness: bool
    default_params: dict = field(default_factory=dict)

    def build(self, seq_len: int, rng: RngStream | None = None, **overrides) -> np.ndarray:
        """Instantiate the pattern at a sequence length.

        Width-like defaults that are callables are resolved with ``seq_len``
        (the paper sets band/global width to ``sqrt(seq_len)``).
        """
        params = {}
        for key, value in self.default_params.items():
            params[key] = value(seq_len) if callable(value) else value
        params.update(overrides)
        if self.uses_randomness:
            params.setdefault("rng", rng or RngStream().fork(f"mask-{self.name}"))
        return self.generator(seq_len, **params)

    def pinned_params(self, overrides: dict | None = None) -> dict | None:
        """Fully-resolved size-independent parameters, or ``None``.

        ``None`` means the pattern's mask *content* depends on the build
        size or on randomness — a callable default (e.g. the paper's
        ``sqrt(seq_len)`` band width) left unoverridden, or a random
        placement — so masks of different sizes cannot share one plan
        family.  A non-``None`` result pins every parameter to a
        concrete value: any two builds agree on every ``(i, j)`` entry
        they both contain, which is what symbolic serving keys
        (:mod:`repro.plan.symbolic`) need to share row statistics across
        requests of different lengths.
        """
        if self.uses_randomness:
            return None
        params = dict(self.default_params)
        params.update(overrides or {})
        if any(callable(v) for v in params.values()):
            return None
        return params


def _sqrt_width(seq_len: int) -> int:
    """The paper's default band/global width: sqrt(seq_len), rounded."""
    return max(1, int(round(seq_len ** 0.5)))


#: Registry of the patterns the evaluation sweeps over.  Compound patterns
#: are appended by :mod:`repro.masks.compound` at import time.
PATTERN_REGISTRY: dict[str, MaskPattern] = {
    "sliding_window": MaskPattern(
        name="sliding_window",
        generator=sliding_window_mask,
        uses_randomness=False,
        default_params={"band_width": _sqrt_width},
    ),
    "dilated": MaskPattern(
        name="dilated",
        generator=dilated_mask,
        uses_randomness=False,
        default_params={"band_width": _sqrt_width, "dilation_rate": 1},
    ),
    "global": MaskPattern(
        name="global",
        generator=global_mask,
        uses_randomness=False,
        default_params={"global_width": _sqrt_width},
    ),
    "random": MaskPattern(
        name="random",
        generator=random_block_mask,
        uses_randomness=True,
        default_params={"filling_rate": 0.1},
    ),
    "causal": MaskPattern(
        name="causal",
        generator=causal_mask,
        uses_randomness=False,
        default_params={},
    ),
}


def make_pattern(
    name: str, seq_len: int, rng: RngStream | None = None, **overrides
) -> np.ndarray:
    """Build a registered pattern by name.

    >>> make_pattern("causal", 3).astype(int)
    array([[1, 0, 0],
           [1, 1, 0],
           [1, 1, 1]])
    """
    if name not in PATTERN_REGISTRY:
        raise ConfigError(
            f"unknown mask pattern {name!r}; known: {sorted(PATTERN_REGISTRY)}"
        )
    return PATTERN_REGISTRY[name].build(seq_len, rng=rng, **overrides)
