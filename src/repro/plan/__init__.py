"""The unified compiled-plan layer (shared by selector, executors, tuner,
and serving).

The paper's architecture is "decide once, execute many": the §4.2
analytical selector, the §4.4 two-stage tuner with its performance cache,
and the runtime all derive a kernel decision from the same
(problem, device, params) inputs.  This package gives that decision a
first-class, *content-addressed* artifact:

* :class:`PlanKey` — a canonical, hashable signature of problem shape +
  mask identity + device spec + parameters.  Two keys are equal iff
  re-deriving the plan would produce the same result, and the
  :attr:`PlanKey.digest` is stable across processes (no
  ``id()``/``repr`` leakage, no ``PYTHONHASHSEED`` dependence).
* :mod:`repro.plan.symbolic` — guarded shape families
  (TorchDynamo-style): :class:`SymbolicPlanKey` leaves named dims free
  under a :class:`GuardSet` of primitive predicates, so one cached plan
  covers every shape its guards admit; a concrete key is the degenerate
  family with no free dims.  Guard failures recompile and *split* the
  family — see ``docs/symbolic_shapes.md``.
* :class:`CompiledPlan` — the reusable decision: kernel choice,
  parameters, priced launches, estimated time, workspace/SMEM footprint.
* :class:`PlanCache` — a bounded LRU mapping keys to plans (or any other
  derived planning artifact: tuner measurements, serving row statistics)
  with per-kind hit/miss/eviction statistics and JSON persistence for
  warm starts.
* :class:`Planner` — a facade tying a device spec + selector settings +
  cache together for callers that want one object to plan through.

Downstream consumers: :mod:`repro.mha.selector` (compiles attention
plans), :mod:`repro.runtime.executor` (composes per-site plans for a
whole model), :mod:`repro.tuner.cache` (layers the performance cache on
:class:`PlanCache` keys), and :mod:`repro.serving.engine` (memoizes
prefill and decode planning across engine steps).
"""

from repro.plan.cache import PlanCache
from repro.plan.compiled import CompiledPlan
from repro.plan.key import (
    PlanKey,
    adapter_fingerprint,
    mask_fingerprint,
    params_key,
    spec_fingerprint,
)
from repro.plan.planner import Planner, compile_kernel_plan, compile_launches
from repro.plan.symbolic import (
    BoundGuard,
    BucketGuard,
    DivisibleGuard,
    EqGuard,
    GuardRecorder,
    GuardSet,
    SymbolicPlanKey,
    family_base,
    guard_from_dict,
    guard_to_dict,
    trivially_guarded,
)

__all__ = [
    "BoundGuard",
    "BucketGuard",
    "CompiledPlan",
    "DivisibleGuard",
    "EqGuard",
    "GuardRecorder",
    "GuardSet",
    "PlanCache",
    "PlanKey",
    "Planner",
    "SymbolicPlanKey",
    "compile_kernel_plan",
    "compile_launches",
    "family_base",
    "guard_from_dict",
    "guard_to_dict",
    "adapter_fingerprint",
    "mask_fingerprint",
    "params_key",
    "spec_fingerprint",
    "trivially_guarded",
]
