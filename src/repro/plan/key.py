"""Canonical plan signatures (the guard set of a compiled plan).

A :class:`PlanKey` captures everything a planning decision depends on —
problem geometry, mask *content*, device spec, parameters, and a
free-form ``salt`` for site-specific discriminators (selector mode,
context bucket, segment signature).  Keys are plain frozen dataclasses of
primitives, so they hash and compare by value, and :attr:`PlanKey.digest`
is a SHA-256 over a canonical JSON encoding — identical across processes
regardless of ``PYTHONHASHSEED``, interning, or object identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any

import numpy as np


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to hashable, JSON-stable primitives."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _canonical(v)) for k, v in value.items()))
    return value


def params_key(params: dict[str, Any] | None) -> tuple:
    """Canonical hashable form of a parameter dict (``None`` -> ``()``).

    Order-insensitive: ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}`` map
    to the same tuple.  This is the tuner's historical ``params_key``,
    promoted into the plan layer so parameter identity is part of every
    :class:`PlanKey`.
    """
    if not params:
        return ()
    return tuple(sorted((k, _canonical(v)) for k, v in params.items()))


def mask_fingerprint(mask: np.ndarray) -> str:
    """Content hash of a boolean mask (shape + bits).

    Two masks fingerprint equally iff they are element-wise identical, so
    a fingerprint-keyed plan is exact — not a heuristic bucket.
    """
    m = np.ascontiguousarray(np.asarray(mask, dtype=bool))
    h = hashlib.sha256()
    h.update(repr(m.shape).encode())
    h.update(np.packbits(m, axis=None).tobytes())
    return h.hexdigest()[:20]


def adapter_fingerprint(adapter: str, rank: int = 0) -> str:
    """Plan-key salt fragment naming a LoRA adapter ("" when none).

    Serving mixes this into its decode family salts so a plan specialized
    for one adapter's gathered GEMM never collides with another adapter's
    — or with the adapter-free plan, whose salt stays byte-identical to
    the pre-LoRA era.

    >>> adapter_fingerprint("")
    ''
    >>> adapter_fingerprint("tenant-a0", rank=16)
    ':lora=tenant-a0:r16'
    """
    if not adapter:
        return ""
    return f":lora={adapter}:r{rank}"


def spec_fingerprint(spec: Any) -> str:
    """Content hash of a GPU spec (every dataclass field participates).

    ``with_overrides`` copies therefore fingerprint differently from their
    base spec whenever any constant changed.
    """
    payload = {f.name: getattr(spec, f.name) for f in fields(spec)}
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()[:12]
    return f"{payload.get('name', 'device')}#{digest}"


@dataclass(frozen=True, eq=False)
class PlanKey:
    """Signature of one planning decision.

    ``kind`` namespaces the cache ("mha", "runtime-mha", "runtime-chain",
    "tuner-measure", "serving-prefill", "serving-decode", ...); ``salt``
    carries any extra guard the site needs (selector mode, bucket index,
    segment signature).  All fields are primitives or tuples of
    primitives: equality is value equality.

    Equality and hashing are hand-rolled (``eq=False``) so the hash can be
    memoized on the frozen instance — keys sit on the serving engine's
    per-step hot path, where a recomputed 11-field dataclass hash is
    measurable.
    """

    kind: str
    device: str = ""
    batch: int = 0
    heads: int = 0
    seq_len: int = 0
    kv_seq_len: int = 0
    head_size: int = 0
    pattern: str = ""
    mask: str = ""
    params: tuple = ()
    salt: str = ""
    #: Shard-config fingerprint ("" for unsharded plans).  Tensor/
    #: pipeline/data parallel plans (repro.parallel) carry e.g.
    #: ``"tp4dp2:nvlink"`` or ``"tp2pp2dp1:nvlink,ib"`` so a per-rank
    #: plan never collides with the unsharded plan of the same per-rank
    #: geometry under a different parallel layout (``pp`` is omitted
    #: when 1, keeping pre-pipeline fingerprints stable).
    shard: str = ""

    def _tuple(self) -> tuple:
        return (
            self.kind,
            self.device,
            self.batch,
            self.heads,
            self.seq_len,
            self.kv_seq_len,
            self.head_size,
            self.pattern,
            self.mask,
            self.params,
            self.salt,
            self.shard,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlanKey):
            return NotImplemented
        return self._tuple() == other._tuple()

    def __hash__(self) -> int:
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(self._tuple())
            object.__setattr__(self, "_hash", h)
        return h

    @classmethod
    def for_problem(
        cls,
        kind: str,
        problem: Any,
        spec: Any,
        params: dict[str, Any] | None = None,
        salt: str = "",
        shard: str = "",
    ) -> "PlanKey":
        """Key an attention problem: geometry + mask content + device."""
        return cls(
            kind=kind,
            device=spec_fingerprint(spec),
            batch=problem.batch,
            heads=problem.heads,
            seq_len=problem.seq_len,
            kv_seq_len=problem.kv_seq_len,
            head_size=problem.head_size,
            pattern=problem.pattern,
            mask=problem.mask_fingerprint(),
            params=params_key(params),
            salt=salt,
            shard=shard,
        )

    @property
    def digest(self) -> str:
        """Stable cross-process content hash of the whole key.

        Memoized on the frozen instance (the ``__hash__`` idiom): digests
        key the generated-code cache on the per-call execution path, where
        a recomputed canonical-JSON SHA-256 is measurable.
        """
        d = self.__dict__.get("_digest")
        if d is None:
            # Flat field walk, not dataclasses.asdict: every field is a
            # primitive or tuple-of-primitives, so the JSON is identical
            # and the recursive deepcopy asdict performs is pure overhead
            # on the per-call codegen dispatch path.
            payload = json.dumps(
                {f.name: getattr(self, f.name) for f in fields(self)},
                sort_keys=True,
                default=str,
            )
            d = hashlib.sha256(payload.encode()).hexdigest()
            object.__setattr__(self, "_digest", d)
        return d

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PlanKey":
        data = dict(payload)
        data["params"] = _tuplify(data.get("params", ()))
        return cls(**data)


def _tuplify(value: Any) -> Any:
    """Recursively convert lists (JSON round-trip artifacts) to tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value
