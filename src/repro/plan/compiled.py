"""The compiled-plan artifact: one kernel decision, priced and reusable.

A :class:`CompiledPlan` is what every planning site produces and every
executor consumes: the chosen kernel (by name, plus a live object when
available), its parameters, the priced launch list, the estimated device
time, and the resource footprint.  Plans serialize to JSON (minus the
live kernel object, which is re-bound by name on first use after a
warm-start load) so a :class:`~repro.plan.cache.PlanCache` can persist
them across sessions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.gpu.cost import KernelCost, LaunchConfig
from repro.plan.key import PlanKey

#: A priced launch: (resource counters, launch-time shape).
Launch = tuple[KernelCost, LaunchConfig]


@dataclass
class CompiledPlan:
    """The resolved execution plan for one problem on one device.

    ``choice`` is site-defined (the MHA sites store
    :class:`repro.mha.selector.KernelChoice`); after a JSON round trip it
    is the enum's string value until the owning site rehydrates it.
    ``kernel`` is a live kernel object when the plan was compiled in this
    process, ``None`` after a load (re-bound lazily by ``kernel_name``).
    """

    kernel_name: str
    choice: Any = None
    params: dict[str, Any] | None = None
    launches: list[Launch] = field(default_factory=list)
    estimated_s: float = 0.0
    analysis_overhead_s: float = 0.0   # host-side time spent deciding
    workspace_bytes: float = 0.0
    key: PlanKey | None = field(default=None, repr=False)
    kernel: Any = field(default=None, repr=False, compare=False)
    extras: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- footprint

    @property
    def launch_count(self) -> int:
        """Total kernel launches this plan issues."""
        return sum(cost.launches for cost, _ in self.launches)

    @property
    def smem_per_block(self) -> int:
        """Peak static+dynamic SMEM any launch of the plan requests."""
        return max((cfg.smem_per_block for _, cfg in self.launches), default=0)

    @property
    def choice_name(self) -> str:
        return getattr(self.choice, "value", self.choice) or ""

    # ----------------------------------------------------------- persistence

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form (drops the live kernel object)."""
        return {
            "kernel_name": self.kernel_name,
            "choice": getattr(self.choice, "value", self.choice),
            "params": self.params,
            "estimated_s": self.estimated_s,
            "analysis_overhead_s": self.analysis_overhead_s,
            "workspace_bytes": self.workspace_bytes,
            "launches": [
                {"cost": asdict(cost), "config": asdict(cfg)}
                for cost, cfg in self.launches
            ],
            "extras": self.extras,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CompiledPlan":
        return cls(
            kernel_name=payload["kernel_name"],
            choice=payload.get("choice"),
            params=payload.get("params"),
            launches=[
                (KernelCost(**item["cost"]), LaunchConfig(**item["config"]))
                for item in payload.get("launches", ())
            ],
            estimated_s=float(payload.get("estimated_s", 0.0)),
            analysis_overhead_s=float(payload.get("analysis_overhead_s", 0.0)),
            workspace_bytes=float(payload.get("workspace_bytes", 0.0)),
            extras=dict(payload.get("extras", {})),
        )
