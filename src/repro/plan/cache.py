"""Bounded LRU plan cache with per-kind statistics and JSON persistence.

The cache is content-addressed: entries are keyed by :class:`PlanKey`
value equality, so a hit is an *exact* replay of a prior decision, never
a heuristic match.  Values are usually :class:`CompiledPlan` objects but
any JSON-representable planning artifact is accepted (the tuner stores
measured seconds, the serving engine stores per-row mask statistics) —
``save``/``load`` tag each value with its type so a warm start restores
them faithfully.
"""

from __future__ import annotations

import json
import math
import os
from collections import OrderedDict
from typing import Any, Callable, Iterator

from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer
from repro.plan.compiled import CompiledPlan
from repro.plan.key import PlanKey, _tuplify

_FORMAT_VERSION = 1


class PlanCache:
    """LRU map from :class:`PlanKey` to a compiled planning artifact.

    ``max_entries=None`` means unbounded (the tuner's historical
    behavior); otherwise the least-recently-*used* entry is evicted when
    a ``put`` overflows the bound.  Hits, misses, and evictions are
    counted globally and per ``key.kind`` so each layer's cache behavior
    (mha / runtime / tuner / serving) is separately observable.
    """

    def __init__(self, max_entries: int | None = 1024) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.max_entries = max_entries
        self._entries: OrderedDict[PlanKey, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._kind_hits: dict[str, int] = {}
        self._kind_misses: dict[str, int] = {}

    # ----------------------------------------------------------------- core

    def get(self, key: PlanKey, default: Any = None) -> Any:
        """Look up a plan, counting the hit/miss and refreshing recency."""
        value = self._entries.get(key, _MISS)
        if value is not _MISS:
            self.hits += 1
            self._kind_hits[key.kind] = self._kind_hits.get(key.kind, 0) + 1
            self._entries.move_to_end(key)
            m = current_metrics()
            if m.enabled:
                m.counter("plan_cache.lookups", kind=key.kind, outcome="hit").inc()
            return value
        self.misses += 1
        self._kind_misses[key.kind] = self._kind_misses.get(key.kind, 0) + 1
        m = current_metrics()
        if m.enabled:
            m.counter("plan_cache.lookups", kind=key.kind, outcome="miss").inc()
        return default

    def put(self, key: PlanKey, value: Any) -> Any:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                self.evictions += 1
                m = current_metrics()
                if m.enabled:
                    m.counter("plan_cache.evictions", kind=evicted_key.kind).inc()
        return value

    def get_or_build(self, key: PlanKey, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building and storing on miss."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("plan.build", cat="plan", kind=key.kind):
                return self.put(key, build())
        return self.put(key, build())

    def peek(self, key: PlanKey, default: Any = None) -> Any:
        """Look up without touching recency or statistics."""
        return self._entries.get(key, default)

    def items(self) -> Iterator[tuple[PlanKey, Any]]:
        return iter(list(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries (statistics are kept; see ``reset_stats``)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._kind_hits.clear()
        self._kind_misses.clear()

    # ------------------------------------------------------------ statistics

    def stats(self) -> dict[str, Any]:
        """Observable cache behavior, globally and per plan kind."""
        total = self.hits + self.misses
        kinds: dict[str, dict[str, Any]] = {}
        for kind in sorted(set(self._kind_hits) | set(self._kind_misses)):
            h = self._kind_hits.get(kind, 0)
            m = self._kind_misses.get(kind, 0)
            kinds[kind] = {
                "hits": h,
                "misses": m,
                "hit_rate": h / (h + m) if h + m else 0.0,
            }
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
            "kinds": kinds,
        }

    # ----------------------------------------------------------- persistence

    def save(self, path: str | os.PathLike) -> None:
        """Persist entries to JSON for a later warm start.

        Only the entries travel — statistics describe *this* process's
        behavior and are not serialized.  Values that cannot be encoded
        (e.g. plans holding live kernel objects are fine — the object is
        dropped; truly opaque values are skipped) do not poison the file.
        """
        entries = []
        for key, value in self._entries.items():
            encoded = _encode_value(value)
            if encoded is None:
                continue
            entries.append({"key": key.to_dict(), "value": encoded})
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    def load(self, path: str | os.PathLike) -> int:
        """Warm-start from a ``save`` file; returns the entry count loaded."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported plan-cache format version: {payload.get('version')!r}"
            )
        count = 0
        for item in payload.get("entries", ()):
            key = PlanKey.from_dict(item["key"])
            self.put(key, _decode_value(item["value"]))
            count += 1
        return count


class _Miss:
    __slots__ = ()


_MISS = _Miss()


def _encode_value(value: Any) -> dict[str, Any] | None:
    """Tag a cache value for JSON so ``load`` restores the right type."""
    if isinstance(value, CompiledPlan):
        return {"t": "plan", "v": value.to_payload()}
    if isinstance(value, float) and math.isinf(value):
        return {"t": "inf", "v": "+" if value > 0 else "-"}
    if isinstance(value, (int, float)):
        return {"t": "num", "v": value}
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return None
    return {"t": "data", "v": value}


def _decode_value(encoded: dict[str, Any]) -> Any:
    tag = encoded.get("t")
    if tag == "plan":
        return CompiledPlan.from_payload(encoded["v"])
    if tag == "inf":
        return math.inf if encoded["v"] == "+" else -math.inf
    if tag == "num":
        return encoded["v"]
    return _tuplify(encoded.get("v"))
