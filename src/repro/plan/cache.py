"""Bounded LRU plan cache with per-kind statistics and JSON persistence.

The cache is content-addressed: entries are keyed by :class:`PlanKey`
value equality, so a hit is an *exact* replay of a prior decision, never
a heuristic match.  Values are usually :class:`CompiledPlan` objects but
any JSON-representable planning artifact is accepted (the tuner stores
measured seconds, the serving engine stores per-row mask statistics) —
``save``/``load`` tag each value with its type so a warm start restores
them faithfully.

Keys may also be guarded :class:`~repro.plan.symbolic.SymbolicPlanKey`
families.  They live in the same LRU map (one family = one entry), and
the cache additionally maintains a *family index* keyed on the family
signature ``(base, dims)`` so a lookup with a fresh shape can scan the
candidate families whose guards admit it (``find_family``).  A concrete
key is the degenerate family with no free dims — ``get_or_build_family``
with ``dims=()`` is byte-for-byte the old concrete path.
"""

from __future__ import annotations

import json
import math
import os
from collections import OrderedDict
from typing import Any, Callable, Iterator, Mapping

from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer
from repro.plan.compiled import CompiledPlan
from repro.plan.key import PlanKey, _tuplify
from repro.plan.symbolic import GuardSet, SymbolicPlanKey, family_base

_FORMAT_VERSION = 2
_LOADABLE_VERSIONS = (1, 2)


class PlanCache:
    """LRU map from :class:`PlanKey` to a compiled planning artifact.

    ``max_entries=None`` means unbounded (the tuner's historical
    behavior); otherwise the least-recently-*used* entry is evicted when
    a ``put`` overflows the bound.  Hits, misses, and evictions are
    counted globally and per ``key.kind`` so each layer's cache behavior
    (mha / runtime / tuner / serving) is separately observable.
    """

    def __init__(self, max_entries: int | None = 1024) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.max_entries = max_entries
        self._entries: OrderedDict[PlanKey, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._kind_hits: dict[str, int] = {}
        self._kind_misses: dict[str, int] = {}
        # Family index: (base PlanKey, dims) -> guarded siblings in
        # insertion order.  Structural (like _entries), not a statistic.
        self._families: dict[tuple, list[SymbolicPlanKey]] = {}
        self.guard_checks = 0
        self.splits = 0
        self._kind_guard_checks: dict[str, int] = {}
        self._kind_splits: dict[str, int] = {}

    # ----------------------------------------------------------------- core

    def get(self, key: PlanKey, default: Any = None) -> Any:
        """Look up a plan, counting the hit/miss and refreshing recency."""
        value = self._entries.get(key, _MISS)
        if value is not _MISS:
            self.hits += 1
            self._kind_hits[key.kind] = self._kind_hits.get(key.kind, 0) + 1
            self._entries.move_to_end(key)
            m = current_metrics()
            if m.enabled:
                m.counter("plan_cache.lookups", kind=key.kind, outcome="hit").inc()
            return value
        self.misses += 1
        self._kind_misses[key.kind] = self._kind_misses.get(key.kind, 0) + 1
        m = current_metrics()
        if m.enabled:
            m.counter("plan_cache.lookups", kind=key.kind, outcome="miss").inc()
        return default

    def put(self, key: PlanKey, value: Any) -> Any:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif isinstance(key, SymbolicPlanKey):
            self._register_family(key, count_split=True)
        self._entries[key] = value
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                if isinstance(evicted_key, SymbolicPlanKey):
                    self._deregister_family(evicted_key)
                self.evictions += 1
                m = current_metrics()
                if m.enabled:
                    m.counter("plan_cache.evictions", kind=evicted_key.kind).inc()
        return value

    def _register_family(self, key: SymbolicPlanKey, count_split: bool) -> None:
        members = self._families.setdefault(key.signature, [])
        if key in members:
            return
        if members and count_split:
            # A second guard variant joining an existing family is a
            # *split* event: the prior siblings rejected this shape, so
            # planning recompiled under narrowed guards.
            self.splits += 1
            kind = key.kind
            self._kind_splits[kind] = self._kind_splits.get(kind, 0) + 1
            m = current_metrics()
            if m.enabled:
                m.counter("plan_cache.splits", kind=kind).inc()
        members.append(key)

    def _deregister_family(self, key: SymbolicPlanKey) -> None:
        members = self._families.get(key.signature)
        if members is None:
            return
        try:
            members.remove(key)
        except ValueError:
            return
        if not members:
            del self._families[key.signature]

    def get_or_build(self, key: PlanKey, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building and storing on miss."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span("plan.build", cat="plan", kind=key.kind):
                return self.put(key, build())
        return self.put(key, build())

    # --------------------------------------------------------------- families

    def find_family(
        self,
        base: PlanKey,
        dims: tuple[str, ...],
        shape: Mapping[str, int],
    ) -> SymbolicPlanKey | None:
        """The first cached family for ``(base, dims)`` admitting ``shape``.

        Scans siblings in insertion order, counting one guard check per
        candidate examined.  ``None`` means no family admits the shape —
        the caller recompiles and the resulting ``put`` splits the family.
        """
        members = self._families.get((base, dims))
        if not members:
            return None
        kind = base.kind
        checks = 0
        hit: SymbolicPlanKey | None = None
        for fam in members:
            checks += 1
            if fam.admits(shape):
                hit = fam
                break
        self.guard_checks += checks
        self._kind_guard_checks[kind] = (
            self._kind_guard_checks.get(kind, 0) + checks
        )
        return hit

    def get_or_build_family(
        self,
        key: PlanKey,
        dims: tuple[str, ...],
        shape: Mapping[str, int],
        build: Callable[[], Any],
        guards: GuardSet | None = None,
    ) -> Any:
        """Guarded family lookup; the unified entry for all planning sites.

        ``key`` is the *concrete* probe key for this shape; ``dims`` names
        the fields left symbolic; ``shape`` binds every symbolic variable
        (key fields and derived quantities alike).  With ``dims=()`` this
        is exactly :meth:`get_or_build` — the concrete key is the special
        case of a family with nothing free.

        On a family miss the value is built and stored under a new
        sibling whose guards are ``guards`` (or exact-equality pins when
        not supplied), narrowed by the split of the most recent sibling's
        violated guards — so the new family admits this shape and never
        silently widens back over a region an existing sibling owns.
        """
        if not dims:
            return self.get_or_build(key, build)
        return self.get_or_build(self.family_key(key, dims, shape, guards), build)

    def family_key(
        self,
        key: PlanKey,
        dims: tuple[str, ...],
        shape: Mapping[str, int],
        guards: GuardSet | None = None,
    ) -> SymbolicPlanKey:
        """Resolve the family key owning ``shape`` (without a value lookup).

        Returns the first cached sibling whose guards admit the shape, or
        a *new* key guarded by ``guards`` (exact-equality pins when not
        supplied) narrowed against the most recent sibling's split — the
        key a subsequent ``put`` will register as a family split.
        """
        base = family_base(key, dims)
        fam = self.find_family(base, dims, shape)
        if fam is None:
            gs = guards if guards is not None else GuardSet.equalities(shape, dims)
            siblings = self._families.get((base, dims))
            if siblings:
                gs = siblings[-1].guards.split_for(shape).narrowed(gs)
            fam = SymbolicPlanKey(base, dims, gs)
        return fam

    def peek(self, key: PlanKey, default: Any = None) -> Any:
        """Look up without touching recency or statistics."""
        return self._entries.get(key, default)

    def items(self) -> Iterator[tuple[PlanKey, Any]]:
        return iter(list(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries (statistics are kept; see ``reset_stats``)."""
        self._entries.clear()
        self._families.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._kind_hits.clear()
        self._kind_misses.clear()
        self.guard_checks = 0
        self.splits = 0
        self._kind_guard_checks.clear()
        self._kind_splits.clear()

    # ------------------------------------------------------------ statistics

    def stats(self) -> dict[str, Any]:
        """Observable cache behavior, globally and per plan kind."""
        total = self.hits + self.misses
        kinds: dict[str, dict[str, Any]] = {}
        for kind in sorted(set(self._kind_hits) | set(self._kind_misses)):
            h = self._kind_hits.get(kind, 0)
            m = self._kind_misses.get(kind, 0)
            kinds[kind] = {
                "hits": h,
                "misses": m,
                "hit_rate": h / (h + m) if h + m else 0.0,
            }
        fam_kinds: dict[str, dict[str, int]] = {}

        def _fk(kind: str) -> dict[str, int]:
            return fam_kinds.setdefault(
                kind, {"families": 0, "guard_checks": 0, "splits": 0}
            )

        for (base, _dims), members in self._families.items():
            _fk(base.kind)["families"] += len(members)
        for kind, n in self._kind_guard_checks.items():
            _fk(kind)["guard_checks"] = n
        for kind, n in self._kind_splits.items():
            _fk(kind)["splits"] = n
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
            "kinds": kinds,
            "symbolic": {
                "families": sum(len(v) for v in self._families.values()),
                "guard_checks": self.guard_checks,
                "splits": self.splits,
                "kinds": {k: fam_kinds[k] for k in sorted(fam_kinds)},
            },
        }

    # ----------------------------------------------------------- persistence

    def save(self, path: str | os.PathLike) -> None:
        """Persist entries to JSON for a later warm start.

        Only the entries travel — statistics describe *this* process's
        behavior and are not serialized.  Values that cannot be encoded
        (e.g. plans holding live kernel objects are fine — the object is
        dropped; truly opaque values are skipped) do not poison the file.
        """
        entries = []
        families = []
        for key, value in self._entries.items():
            encoded = _encode_value(value)
            if encoded is None:
                continue
            if isinstance(key, SymbolicPlanKey):
                families.append({"key": key.to_dict(), "value": encoded})
            else:
                entries.append({"key": key.to_dict(), "value": encoded})
        payload: dict[str, Any] = {"version": _FORMAT_VERSION, "entries": entries}
        if families:
            payload["families"] = families
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    def load(self, path: str | os.PathLike) -> int:
        """Warm-start from a ``save`` file; returns the entry count loaded.

        Both schema versions load: v1 files carry concrete keys only
        (each is the trivially-guarded one-shape family, so no upgrade
        transform is needed beyond loading it); v2 adds the ``families``
        list of guarded symbolic keys.  Warm-starting restores cache
        *structure* — split counters describe this process's planning
        events and are left untouched.
        """
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("version") not in _LOADABLE_VERSIONS:
            raise ValueError(
                f"unsupported plan-cache format version: {payload.get('version')!r}"
            )
        count = 0
        for item in payload.get("entries", ()):
            key = PlanKey.from_dict(item["key"])
            self.put(key, _decode_value(item["value"]))
            count += 1
        splits, kind_splits = self.splits, dict(self._kind_splits)
        for item in payload.get("families", ()):
            fam = SymbolicPlanKey.from_dict(item["key"])
            self.put(fam, _decode_value(item["value"]))
            count += 1
        self.splits, self._kind_splits = splits, kind_splits
        return count


class _Miss:
    __slots__ = ()


_MISS = _Miss()


def _encode_value(value: Any) -> dict[str, Any] | None:
    """Tag a cache value for JSON so ``load`` restores the right type."""
    if isinstance(value, CompiledPlan):
        return {"t": "plan", "v": value.to_payload()}
    if isinstance(value, float) and math.isinf(value):
        return {"t": "inf", "v": "+" if value > 0 else "-"}
    if isinstance(value, (int, float)):
        return {"t": "num", "v": value}
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return None
    return {"t": "data", "v": value}


def _decode_value(encoded: dict[str, Any]) -> Any:
    tag = encoded.get("t")
    if tag == "plan":
        return CompiledPlan.from_payload(encoded["v"])
    if tag == "inf":
        return math.inf if encoded["v"] == "+" else -math.inf
    if tag == "num":
        return encoded["v"]
    return _tuplify(encoded.get("v"))
