"""Symbolic size variables and guarded plan families.

A concrete :class:`~repro.plan.key.PlanKey` pins every dimension to a
value, so production traffic with arbitrary request lengths compiles one
plan per shape.  This module makes the concrete key a *special case* of a
guarded symbolic key (the TorchDynamo ``sizevars`` move): a
:class:`SymbolicPlanKey` names the dimensions left free (``dims``), keeps
every other field in a concrete ``base`` key, and carries a
:class:`GuardSet` — the accumulated predicates under which the compiled
artifact is valid.  Lookup is "scan the base's families, first whose
guards admit the shape wins"; a guard failure is a *miss* that recompiles
and **splits** the family (the new sibling's guards narrow the violated
guard), never a silent reuse.

Guard grammar (``docs/symbolic_shapes.md``):

* :class:`EqGuard` — ``v == value`` (a trivially-guarded concrete dim)
* :class:`DivisibleGuard` — ``v % modulus == remainder``
* :class:`BoundGuard` — ``lo <= v <= hi`` (either side open)
* :class:`BucketGuard` — ``v // width == index`` (bucketed ranges)

Everything is a frozen value type: guard sets order canonically, hash by
value, digest stably across processes, and round-trip through JSON (the
plan-cache schema v2 and the codegen sidecars persist them).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping

from repro.core.errors import ConfigError
from repro.plan.key import PlanKey


# ------------------------------------------------------------------- guards


@dataclass(frozen=True)
class EqGuard:
    """``value == <const>`` — pins a dimension exactly."""

    var: str
    value: int

    def check(self, value: int) -> bool:
        return value == self.value

    def split(self, value: int) -> "EqGuard":
        return EqGuard(self.var, int(value))

    def canonical(self) -> tuple:
        return ("eq", self.var, self.value)

    def describe(self) -> str:
        return f"{self.var} == {self.value}"


@dataclass(frozen=True)
class DivisibleGuard:
    """``value % modulus == remainder`` (e.g. ``seq_len % block == 0``)."""

    var: str
    modulus: int
    remainder: int = 0

    def __post_init__(self) -> None:
        if self.modulus < 1:
            raise ConfigError(f"modulus must be >= 1, got {self.modulus}")
        if not (0 <= self.remainder < self.modulus):
            raise ConfigError(
                f"remainder must be in [0, {self.modulus}), got {self.remainder}"
            )

    def check(self, value: int) -> bool:
        return value % self.modulus == self.remainder

    def split(self, value: int) -> "DivisibleGuard":
        return DivisibleGuard(self.var, self.modulus, int(value) % self.modulus)

    def canonical(self) -> tuple:
        return ("div", self.var, self.modulus, self.remainder)

    def describe(self) -> str:
        return f"{self.var} % {self.modulus} == {self.remainder}"


@dataclass(frozen=True)
class BoundGuard:
    """``lo <= value <= hi`` — inclusive, either side may be open (None)."""

    var: str
    lo: int | None = None
    hi: int | None = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ConfigError(f"empty bound: lo={self.lo} > hi={self.hi}")

    def check(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def split(self, value: int) -> "BoundGuard":
        """The complement half-line admitting the violating ``value``."""
        value = int(value)
        if self.lo is not None and value < self.lo:
            return BoundGuard(self.var, lo=None, hi=self.lo - 1)
        return BoundGuard(self.var, lo=(self.hi or 0) + 1, hi=None)

    def canonical(self) -> tuple:
        return ("bound", self.var, self.lo, self.hi)

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"{lo} <= {self.var} <= {hi}"


@dataclass(frozen=True)
class BucketGuard:
    """``value // width == index`` — the bucketed-range guard."""

    var: str
    width: int
    index: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigError(f"width must be >= 1, got {self.width}")
        if self.index < 0:
            raise ConfigError(f"index must be >= 0, got {self.index}")

    def check(self, value: int) -> bool:
        return value // self.width == self.index

    def split(self, value: int) -> "BucketGuard":
        return BucketGuard(self.var, self.width, int(value) // self.width)

    def canonical(self) -> tuple:
        return ("bucket", self.var, self.width, self.index)

    def describe(self) -> str:
        return f"{self.var} // {self.width} == {self.index}"


Guard = EqGuard | DivisibleGuard | BoundGuard | BucketGuard

#: JSON tag -> guard class, for persistence round-trips.
_GUARD_TYPES: dict[str, type] = {
    "eq": EqGuard,
    "div": DivisibleGuard,
    "bound": BoundGuard,
    "bucket": BucketGuard,
}


def guard_to_dict(guard: Guard) -> dict[str, Any]:
    tag = guard.canonical()[0]
    payload = {f.name: getattr(guard, f.name) for f in fields(guard)}
    payload["t"] = tag
    return payload


def guard_from_dict(payload: Mapping[str, Any]) -> Guard:
    data = dict(payload)
    tag = data.pop("t", None)
    cls = _GUARD_TYPES.get(tag)
    if cls is None:
        raise ConfigError(f"unknown guard type {tag!r}; known: {sorted(_GUARD_TYPES)}")
    return cls(**data)


# ---------------------------------------------------------------- guard sets


class GuardSet:
    """An immutable conjunction of guards with a canonical digest.

    Construction deduplicates and orders guards canonically, so two sets
    built from the same predicates in any order are equal, hash equal, and
    digest equal.  ``check`` is the hot-path admission test: every guard
    must hold and every guarded variable must be present in the shape.
    """

    __slots__ = ("guards", "_digest", "_hash")

    def __init__(self, guards: Iterable[Guard] = ()) -> None:
        uniq = sorted(set(guards), key=lambda g: repr(g.canonical()))
        object.__setattr__(self, "guards", tuple(uniq))
        object.__setattr__(self, "_digest", None)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("GuardSet is immutable")

    # ------------------------------------------------------------- semantics

    def check(self, shape: Mapping[str, int]) -> bool:
        """Whether ``shape`` satisfies every guard (missing vars fail)."""
        for g in self.guards:
            value = shape.get(g.var)
            if value is None or not g.check(value):
                return False
        return True

    def vars(self) -> frozenset[str]:
        return frozenset(g.var for g in self.guards)

    def narrowed(self, extra: "GuardSet | Iterable[Guard]") -> "GuardSet":
        """This set conjoined with ``extra`` guards (dedup + reorder)."""
        more = extra.guards if isinstance(extra, GuardSet) else tuple(extra)
        return GuardSet(self.guards + more)

    def split_for(self, shape: Mapping[str, int]) -> "GuardSet":
        """The *split sibling* of this set for a violating ``shape``.

        Every guard that ``shape`` violates is replaced by its narrowed
        complement admitting ``shape`` (``Guard.split``); satisfied guards
        are kept verbatim; guards over variables absent from ``shape``
        are kept verbatim too (they cannot be narrowed).  The result
        admits ``shape`` and, for each violated guard, excludes the
        region the old family still owns — the family split, never a
        widening of the old guards.
        """
        out: list[Guard] = []
        for g in self.guards:
            value = shape.get(g.var)
            if value is not None and not g.check(value):
                out.append(g.split(value))
            else:
                out.append(g)
        return GuardSet(out)

    @classmethod
    def equalities(cls, shape: Mapping[str, int], dims: Iterable[str]) -> "GuardSet":
        """Trivial guards pinning every dim exactly — the concrete case."""
        return cls(EqGuard(d, int(shape[d])) for d in dims)

    # -------------------------------------------------------------- identity

    def canonical(self) -> tuple:
        return tuple(g.canonical() for g in self.guards)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GuardSet):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(self.canonical())
            object.__setattr__(self, "_hash", h)
        return h

    def __len__(self) -> int:
        return len(self.guards)

    def __iter__(self):
        return iter(self.guards)

    def __repr__(self) -> str:
        return f"GuardSet({self.describe()!r})"

    @property
    def digest(self) -> str:
        """Stable cross-process content hash of the canonical guard list."""
        d = self._digest
        if d is None:
            payload = json.dumps(self.to_payload(), sort_keys=True)
            d = hashlib.sha256(payload.encode()).hexdigest()[:20]
            object.__setattr__(self, "_digest", d)
        return d

    def describe(self) -> str:
        return " and ".join(g.describe() for g in self.guards) or "true"

    # ----------------------------------------------------------- persistence

    def to_payload(self) -> list[dict[str, Any]]:
        return [guard_to_dict(g) for g in self.guards]

    @classmethod
    def from_payload(cls, payload: Iterable[Mapping[str, Any]]) -> "GuardSet":
        return cls(guard_from_dict(p) for p in payload)


# ------------------------------------------------------------ symbolic keys


@dataclass(frozen=True, eq=False)
class SymbolicPlanKey:
    """A plan-family signature: base key + symbolic dims + guard set.

    ``base`` is a concrete :class:`PlanKey` with every symbolic field
    normalized (``family_base``); ``dims`` names the free variables —
    key fields (``seq_len``) or derived quantities (``pos``,
    ``nnz_blocks``) — and ``guards`` is the admission predicate over
    them.  ``(base, dims)`` is the family *signature* the cache scans;
    the guards distinguish siblings after splits.

    A concrete key is the degenerate case ``dims=()`` / empty guards
    (see :func:`trivially_guarded`), which the cache routes straight
    through the O(1) concrete path.
    """

    base: PlanKey
    dims: tuple[str, ...] = ()
    guards: GuardSet = GuardSet()

    @property
    def kind(self) -> str:
        return self.base.kind

    @property
    def signature(self) -> tuple:
        return (self.base, self.dims)

    def __getattr__(self, name: str):
        # Concrete PlanKey fields (salt, params, pattern, ...) read
        # through to the base, so family keys drop into code that
        # inspects keys generically.  Internal names never delegate —
        # memoized _hash/_digest live in __dict__ and must miss cleanly.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.base, name)

    def admits(self, shape: Mapping[str, int]) -> bool:
        return self.guards.check(shape)

    def _tuple(self) -> tuple:
        return (self.base._tuple(), self.dims, self.guards.canonical())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolicPlanKey):
            return NotImplemented
        return self._tuple() == other._tuple()

    def __hash__(self) -> int:
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(self._tuple())
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def digest(self) -> str:
        """Base digest with the guard digest folded in (content address)."""
        d = self.__dict__.get("_digest")
        if d is None:
            payload = json.dumps(
                {
                    "base": self.base.digest,
                    "dims": list(self.dims),
                    "guards": self.guards.to_payload(),
                },
                sort_keys=True,
            )
            d = hashlib.sha256(payload.encode()).hexdigest()
            object.__setattr__(self, "_digest", d)
        return d

    def to_dict(self) -> dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "dims": list(self.dims),
            "guards": self.guards.to_payload(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SymbolicPlanKey":
        return cls(
            base=PlanKey.from_dict(payload["base"]),
            dims=tuple(payload.get("dims", ())),
            guards=GuardSet.from_payload(payload.get("guards", ())),
        )


#: Integer PlanKey fields a symbolic dim may free up.
_SYMBOLIC_FIELDS = frozenset(
    {"batch", "heads", "seq_len", "kv_seq_len", "head_size"}
)


def family_base(key: PlanKey, dims: Iterable[str]) -> PlanKey:
    """Normalize the symbolic fields of ``key`` to build a family base.

    Dims naming integer key fields are zeroed (two probes of the same
    family reach the same base regardless of their concrete values);
    derived dims (``pos``, ``nnz_blocks``, ...) are not key fields and
    leave the base untouched — they live only in shapes and guards.
    """
    repl = {d: 0 for d in dims if d in _SYMBOLIC_FIELDS}
    return dataclasses.replace(key, **repl) if repl else key


def trivially_guarded(key: PlanKey, dims: Iterable[str] = ()) -> SymbolicPlanKey:
    """The guarded view of a concrete key — equality guards pinning every
    requested dim to the key's own value.  This is the upgrade path for
    v1 warm-start files: a concrete key *is* a family of exactly one
    shape."""
    dims = tuple(dims)
    for d in dims:
        if d not in _SYMBOLIC_FIELDS:
            raise ConfigError(
                f"cannot trivially guard {d!r}: not a PlanKey field"
            )
    shape = {d: getattr(key, d) for d in dims}
    return SymbolicPlanKey(
        base=family_base(key, dims),
        dims=dims,
        guards=GuardSet.equalities(shape, dims),
    )


# ----------------------------------------------------------- guard recording


class GuardRecorder:
    """Record the guards a specialization's decisions imply.

    Emission code asks shape questions through the recorder instead of
    comparing raw integers (``rec.le("n_bh", chunk)`` instead of
    ``n_bh <= chunk``); each answer appends the guard under which the
    answer — and therefore the emitted code — stays valid.  After
    emission, :meth:`guard_set` is the family's admission predicate: any
    shape it admits takes every branch identically and re-emits the
    byte-identical module.
    """

    def __init__(self, **shape: int) -> None:
        self.shape = {k: int(v) for k, v in shape.items()}
        self._guards: list[Guard] = []

    def value(self, var: str) -> int:
        return self.shape[var]

    def le(self, var: str, bound: int) -> bool:
        """``var <= bound``, recording the half-line that keeps it true."""
        bound = int(bound)
        if self.shape[var] <= bound:
            self._guards.append(BoundGuard(var, hi=bound))
            return True
        self._guards.append(BoundGuard(var, lo=bound + 1))
        return False

    def ge(self, var: str, bound: int) -> bool:
        """``var >= bound``, recording the half-line that keeps it true."""
        bound = int(bound)
        if self.shape[var] >= bound:
            self._guards.append(BoundGuard(var, lo=bound))
            return True
        self._guards.append(BoundGuard(var, hi=bound - 1))
        return False

    def floordiv(self, var: str, numerator: int, coeff: int, min_value: int = 1) -> int:
        """``max(min_value, numerator // (coeff * var))`` as a baked constant.

        Records the exact range of ``var`` over which the result is the
        value returned here, so a family member never sees a different
        baked chunk size than the one emitted.
        """
        numerator, coeff = int(numerator), int(coeff)
        if coeff < 1:
            raise ConfigError(f"coeff must be >= 1, got {coeff}")
        v = self.shape[var]
        q = numerator // (coeff * v)
        if q <= min_value:
            # Clamped region: every v' with numerator//(coeff*v') <= min_value.
            lo = numerator // (coeff * (min_value + 1)) + 1
            self._guards.append(BoundGuard(var, lo=lo))
            return min_value
        lo = numerator // (coeff * (q + 1)) + 1
        hi = numerator // (coeff * q)
        self._guards.append(BoundGuard(var, lo=lo, hi=hi))
        return q

    def guard_set(self) -> GuardSet:
        gs = GuardSet(self._guards)
        assert gs.check(self.shape), "recorded guards must admit the recorded shape"
        return gs
