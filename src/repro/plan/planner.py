"""Plan compilation helpers and the :class:`Planner` facade.

``compile_launches`` and ``compile_kernel_plan`` are the generic
compile-through-cache primitives every site builds on: key the decision,
replay it from the cache when the key matches, otherwise derive it once
(identically to the pre-cache code path) and store it.  :class:`Planner`
bundles a device spec, selector settings, and a shared cache for callers
that want a single object to plan through.

This module deliberately does not import :mod:`repro.mha` at import time
(the MHA selector itself imports :mod:`repro.plan`); attention-specific
compilation lives in :func:`repro.mha.selector.compile_attention_plan`
and is reached lazily.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.gpu.cost import estimate_kernel_time
from repro.plan.cache import PlanCache
from repro.plan.compiled import CompiledPlan, Launch
from repro.plan.key import PlanKey
from repro.plan.symbolic import GuardSet

#: A family request threaded through the compile helpers:
#: ``(dims, shape, guards)`` — the dims left symbolic, the concrete
#: binding of every symbolic variable, and the admission guards for the
#: compiled artifact (``None`` pins each dim exactly).  ``dims=()``
#: degenerates to the concrete path.
Family = tuple[tuple[str, ...], Mapping[str, int], "GuardSet | None"]


def _cached(
    cache: PlanCache, key: PlanKey, make: Callable[[], Any], family: Family | None
) -> Any:
    """One guarded lookup shared by every compile helper."""
    if family is None:
        return cache.get_or_build(key, make)
    dims, shape, guards = family
    return cache.get_or_build_family(key, tuple(dims), shape, make, guards=guards)


def compile_launches(
    key: PlanKey,
    build: Callable[[], list[Launch]],
    cache: PlanCache | None = None,
    kernel_name: str = "",
    spec: Any = None,
    family: Family | None = None,
) -> CompiledPlan:
    """Wrap a launch-list builder into a cached :class:`CompiledPlan`.

    ``build`` must be pure in the key: two calls under equal keys must
    produce equal launch lists (that is the content-addressing contract).
    When ``spec`` is given the plan's ``estimated_s`` is priced through
    :func:`~repro.gpu.cost.estimate_kernel_time`.  A ``family`` widens
    the contract from equal keys to guard-admitted shapes: the caller
    asserts the launch list is identical for every shape the guards
    admit, and the cache stores one entry per family.
    """

    def make() -> CompiledPlan:
        launches = build()
        est = 0.0
        if spec is not None:
            est = sum(
                estimate_kernel_time(spec, cost, cfg).total for cost, cfg in launches
            )
        return CompiledPlan(
            kernel_name=kernel_name,
            launches=launches,
            estimated_s=est,
            key=key,
        )

    if cache is None:
        return make()
    return _cached(cache, key, make, family)


def compile_kernel_plan(
    kernel: Any,
    problem: Any,
    spec: Any,
    params: dict[str, Any] | None = None,
    cache: PlanCache | None = None,
    kind: str = "kernel",
    salt: str = "",
    shard: str = "",
    family: Family | None = None,
) -> CompiledPlan:
    """Compile (or replay) one kernel's plan for one attention problem.

    The key covers problem geometry + mask content + device + params, so
    a hit is exactly the plan the kernel would re-derive.  The live
    ``kernel`` object is re-bound on hits (it never travels through the
    cache's persisted form).  ``shard`` carries the parallel-layout
    fingerprint for per-rank plans ("" when unsharded).  ``family``
    (dims, shape, guards) makes the lookup guarded: one cached plan per
    shape family instead of per concrete shape.
    """
    key = PlanKey.for_problem(
        kind, problem, spec, params=params, salt=salt or kernel.name, shard=shard
    )

    def make() -> CompiledPlan:
        launches = kernel.plan(problem, spec, params)
        est = sum(
            estimate_kernel_time(spec, cost, cfg).total for cost, cfg in launches
        )
        return CompiledPlan(
            kernel_name=kernel.name,
            params=dict(params) if params else None,
            launches=launches,
            estimated_s=est,
            key=key,
        )

    if cache is None:
        plan = make()
    else:
        plan = _cached(cache, key, make, family)
    if plan.kernel is None:
        plan.kernel = kernel
    return plan


class Planner:
    """One spec + one selector mode + one cache: plan anything through it.

    >>> from repro.gpu.specs import A100
    >>> from repro.mha.problem import AttentionProblem
    >>> planner = Planner(A100)
    >>> prob = AttentionProblem.build("sliding_window", 1, 2, 64, 32)
    >>> plan = planner.plan_attention(prob)
    >>> planner.plan_attention(prob) is plan   # replayed, not re-derived
    True
    """

    def __init__(
        self,
        spec: Any,
        mode: str = "model",
        tau: float | None = None,
        cache: PlanCache | None = None,
    ) -> None:
        self.spec = spec
        self.mode = mode
        self.tau = tau
        self.cache = cache if cache is not None else PlanCache()

    def plan_attention(
        self, problem: Any, kind: str = "mha", family: Family | None = None
    ) -> CompiledPlan:
        """Selector-driven attention plan (see §4.2), cached."""
        from repro.mha.selector import compile_attention_plan

        return compile_attention_plan(
            problem,
            self.spec,
            mode=self.mode,
            tau=self.tau,
            cache=self.cache,
            kind=kind,
            family=family,
        )

    def plan_kernel(
        self,
        kernel: Any,
        problem: Any,
        params: dict[str, Any] | None = None,
        kind: str = "kernel",
        salt: str = "",
        family: Family | None = None,
    ) -> CompiledPlan:
        """Fixed-kernel plan (no selection), cached."""
        return compile_kernel_plan(
            kernel,
            problem,
            self.spec,
            params=params,
            cache=self.cache,
            kind=kind,
            salt=salt,
            family=family,
        )

    def stats(self) -> dict[str, Any]:
        return self.cache.stats()
