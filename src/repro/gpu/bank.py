"""Shared-memory bank-conflict model.

The paper's block-wise kernel pads SMEM tiles "during the read and write of
SMEM to eliminate bank conflicts" (Fig. 7).  We model the classic mechanism:
SMEM is organized in 32 banks of 4-byte words; when the 32 lanes of a warp
access a *column* of a row-major tile of row pitch ``P`` words, lane ``i``
touches word ``i * P``, i.e. bank ``(i * P) mod 32``.  The number of distinct
banks touched is ``32 / gcd(P, 32)``, so the access serializes into
``gcd(P, 32)`` phases — the *conflict factor*.

A 64-half-wide tile (``head_size = 64`` in FP16) has pitch 32 words →
32-way conflicts; padding the pitch makes it misaligned with the bank count
and collapses the factor.
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES


def bank_conflict_factor(
    row_pitch_elems: int,
    elem_bytes: int = FP16_BYTES,
    banks: int = 32,
    bank_width_bytes: int = 4,
) -> int:
    """Serialization factor for a column access into a row-major SMEM tile.

    ``row_pitch_elems`` is the allocated row pitch *including padding*, in
    elements of ``elem_bytes`` each.  Returns an integer >= 1; 1 means
    conflict-free.

    >>> bank_conflict_factor(64)   # head_size=64 FP16, unpadded
    32
    >>> bank_conflict_factor(64 + 16)  # the paper's padding of 16 halves
    8
    >>> bank_conflict_factor(64 + 2)
    1
    """
    if row_pitch_elems < 1:
        raise ConfigError(f"row pitch must be >= 1 element, got {row_pitch_elems}")
    pitch_bytes = row_pitch_elems * elem_bytes
    if pitch_bytes % bank_width_bytes != 0:
        # Sub-word pitches cannot be modelled with the word-granular rule;
        # round up to the next word (hardware pads allocations anyway).
        pitch_words = pitch_bytes // bank_width_bytes + 1
    else:
        pitch_words = pitch_bytes // bank_width_bytes
    return math.gcd(pitch_words, banks)


def conflict_free_padding(
    width_elems: int,
    elem_bytes: int = FP16_BYTES,
    banks: int = 32,
    bank_width_bytes: int = 4,
    max_pad: int = 32,
) -> int:
    """Smallest padding (in elements) making column access conflict-free.

    >>> conflict_free_padding(64)
    1
    """
    for pad in range(max_pad + 1):
        if bank_conflict_factor(width_elems + pad, elem_bytes, banks, bank_width_bytes) == 1:
            return pad
    raise ConfigError(
        f"no conflict-free padding <= {max_pad} elements for width {width_elems}"
    )
