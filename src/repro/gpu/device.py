"""The simulated GPU device.

:class:`SimulatedGPU` binds a :class:`~repro.gpu.specs.GPUSpec` to a
timeline of kernel launches and a :class:`~repro.gpu.memory.MemoryTracker`.
Engines submit (cost, config) pairs; the device records the estimated time of
each and accumulates totals.  A ``dispatch_overhead_s`` per launch models the
host-side framework cost (eager PyTorch dispatch vs. CUDA-graph replay),
which engines configure per their strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.cost import KernelCost, LaunchConfig, TimeBreakdown, estimate_kernel_time
from repro.gpu.memory import MemoryTracker
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class KernelRecord:
    """One launched kernel on the device timeline."""

    name: str
    cost: KernelCost
    config: LaunchConfig
    breakdown: TimeBreakdown
    dispatch_s: float

    @property
    def total_s(self) -> float:
        return self.breakdown.total + self.dispatch_s


class SimulatedGPU:
    """Executes kernel launches against a device spec, keeping a timeline.

    >>> from repro.gpu.specs import A100
    >>> from repro.gpu.cost import KernelCost, LaunchConfig
    >>> dev = SimulatedGPU(A100)
    >>> rec = dev.launch(KernelCost(name="copy", bytes_dram_read=1e6,
    ...                             bytes_dram_written=1e6),
    ...                  LaunchConfig(grid_blocks=1024))
    >>> rec.breakdown.total > 0
    True
    """

    def __init__(self, spec: GPUSpec, dispatch_overhead_s: float = 0.0):
        self.spec = spec
        self.dispatch_overhead_s = float(dispatch_overhead_s)
        self.memory = MemoryTracker(spec.memory_bytes)
        self.timeline: list[KernelRecord] = []

    # ------------------------------------------------------------------ launch

    def estimate(self, cost: KernelCost, config: LaunchConfig) -> TimeBreakdown:
        """Estimate time without recording on the timeline (for tuners)."""
        return estimate_kernel_time(self.spec, cost, config)

    def launch(self, cost: KernelCost, config: LaunchConfig) -> KernelRecord:
        """Execute a kernel: estimate its time and append to the timeline."""
        breakdown = estimate_kernel_time(self.spec, cost, config)
        record = KernelRecord(
            name=cost.name,
            cost=cost,
            config=config,
            breakdown=breakdown,
            dispatch_s=self.dispatch_overhead_s * cost.launches,
        )
        self.timeline.append(record)
        return record

    # --------------------------------------------------------------- totals

    @property
    def elapsed_s(self) -> float:
        """Total simulated time of everything launched so far."""
        return sum(r.total_s for r in self.timeline)

    @property
    def kernel_count(self) -> int:
        return sum(r.cost.launches for r in self.timeline)

    def total_bytes_dram(self) -> float:
        return sum(r.cost.bytes_dram for r in self.timeline)

    def total_flops(self) -> float:
        return sum(r.cost.flops for r in self.timeline)

    def breakdown_by_kernel(self) -> dict[str, float]:
        """Aggregate total time per kernel name (for profiles and examples)."""
        agg: dict[str, float] = {}
        for r in self.timeline:
            agg[r.name] = agg.get(r.name, 0.0) + r.total_s
        return agg

    def reset(self) -> None:
        """Clear the timeline and memory tracker (new measurement run)."""
        self.timeline.clear()
        self.memory.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedGPU({self.spec.name}, kernels={len(self.timeline)}, "
            f"elapsed={self.elapsed_s:.6f}s)"
        )
