"""Device-memory footprint tracking.

Engines register the buffers they materialize (weights, activations,
workspaces).  Exceeding device capacity raises
:class:`~repro.core.errors.DeviceOutOfMemoryError` — the mechanism behind the
paper's missing MCFuser bars at large input scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError, DeviceOutOfMemoryError


@dataclass
class _Allocation:
    name: str
    nbytes: int


class MemoryTracker:
    """Tracks live and peak simulated device-memory usage.

    >>> mt = MemoryTracker(capacity_bytes=1024)
    >>> mt.allocate("a", 512)
    >>> mt.free("a")
    >>> mt.peak_bytes
    512
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._live: dict[str, _Allocation] = {}
        self._live_bytes = 0
        self._peak_bytes = 0

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._live_bytes

    def allocate(self, name: str, nbytes: int | float) -> None:
        """Reserve ``nbytes``; raises on duplicate name or OOM."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigError(f"allocation size must be >= 0, got {nbytes}")
        if name in self._live:
            raise ConfigError(f"buffer {name!r} is already allocated")
        if self._live_bytes + nbytes > self.capacity_bytes:
            raise DeviceOutOfMemoryError(
                requested_bytes=self._live_bytes + nbytes,
                capacity_bytes=self.capacity_bytes,
                what=name,
            )
        self._live[name] = _Allocation(name, nbytes)
        self._live_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._live_bytes)

    def free(self, name: str) -> None:
        """Release a previously allocated buffer."""
        alloc = self._live.pop(name, None)
        if alloc is None:
            raise ConfigError(f"buffer {name!r} is not allocated")
        self._live_bytes -= alloc.nbytes

    def check_fits(self, nbytes: int | float, what: str = "") -> None:
        """Raise OOM if a transient working set of ``nbytes`` cannot fit now."""
        if self._live_bytes + int(nbytes) > self.capacity_bytes:
            raise DeviceOutOfMemoryError(
                requested_bytes=self._live_bytes + int(nbytes),
                capacity_bytes=self.capacity_bytes,
                what=what,
            )

    def reset(self) -> None:
        """Drop all allocations and the peak watermark."""
        self._live.clear()
        self._live_bytes = 0
        self._peak_bytes = 0

    def __contains__(self, name: str) -> bool:
        return name in self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryTracker(live={self._live_bytes}, peak={self._peak_bytes}, "
            f"capacity={self.capacity_bytes})"
        )
