"""Kernel cost counters and the roofline time estimator.

Every kernel in the library — MHA kernels, operator kernels, fused
compilation templates — reports a :class:`KernelCost`: how many bytes it
moves at each level of the hierarchy, how many FLOPs it issues to tensor
cores vs. CUDA cores, and how many barriers it executes.  The estimator
converts a cost plus a :class:`LaunchConfig` into seconds on a given
:class:`~repro.gpu.specs.GPUSpec`.

The model (see DESIGN.md §1 for the rationale):

1. Occupancy and utilization.  The launch configuration determines how many
   blocks are resident per SM; the grid size determines how many SMs have
   work and how full the final wave is.  Both a low per-SM occupancy
   (too few warps to hide latency) and a small grid (idle SMs / tail waves)
   derate achieved throughput.
2. Phase times.  DRAM, L2, SMEM, tensor-core, and CUDA-core phases each take
   ``volume / (peak * derate)``.
3. Composition.  A pipelined kernel (async copy, paper Fig. 7) overlaps
   memory with compute: body time is the max of the phases.  A non-pipelined
   kernel serializes memory before compute.
4. Fixed costs.  Launch overhead per kernel launch and barrier latency per
   ``__syncthreads`` round (serialized across waves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigError
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class LaunchConfig:
    """Launch-time shape of a kernel: the grid and per-block resources."""

    grid_blocks: int
    warps_per_block: int = 4
    smem_per_block: int = 0          # bytes of static + dynamic SMEM
    regs_per_thread: int = 32        # light default; GEMM-ish kernels set more
    pipelined: bool = True           # async-copy overlap of memory & compute

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise ConfigError(f"grid_blocks must be >= 1, got {self.grid_blocks}")
        if self.warps_per_block < 1:
            raise ConfigError(
                f"warps_per_block must be >= 1, got {self.warps_per_block}"
            )


@dataclass
class KernelCost:
    """Resource counters for one kernel (or one fused kernel).

    Counters are totals across the whole grid.  ``sync_rounds`` counts
    barrier waits per block (they execute concurrently across blocks within
    a wave, so the estimator multiplies by the wave count, not the grid).
    """

    name: str = "kernel"
    bytes_dram_read: float = 0.0
    bytes_dram_written: float = 0.0
    bytes_l2_read: float = 0.0       # re-reads served by L2, not DRAM
    bytes_smem: float = 0.0          # SMEM traffic (read + write)
    bank_conflict_factor: float = 1.0
    flops_tensor: float = 0.0        # FP16 tensor-core FLOPs
    flops_simt: float = 0.0          # FP32 CUDA-core FLOPs
    sync_rounds: float = 0.0         # barriers per block
    launches: int = 1

    def __post_init__(self) -> None:
        if self.bank_conflict_factor < 1.0:
            raise ConfigError(
                f"bank_conflict_factor must be >= 1, got {self.bank_conflict_factor}"
            )
        if self.launches < 0:
            raise ConfigError(f"launches must be >= 0, got {self.launches}")

    @property
    def bytes_dram(self) -> float:
        return self.bytes_dram_read + self.bytes_dram_written

    @property
    def flops(self) -> float:
        return self.flops_tensor + self.flops_simt

    def scaled(self, factor: float) -> "KernelCost":
        """Uniformly scale all volume counters (launches excluded)."""
        return replace(
            self,
            bytes_dram_read=self.bytes_dram_read * factor,
            bytes_dram_written=self.bytes_dram_written * factor,
            bytes_l2_read=self.bytes_l2_read * factor,
            bytes_smem=self.bytes_smem * factor,
            flops_tensor=self.flops_tensor * factor,
            flops_simt=self.flops_simt * factor,
            sync_rounds=self.sync_rounds * factor,
        )

    def merged_with(self, other: "KernelCost", name: str | None = None) -> "KernelCost":
        """Combine counters of two kernels fused into one launch.

        Volumes add; the conflict factor takes a traffic-weighted mean; the
        launch count becomes 1 (that is the point of fusing).
        """
        total_smem = self.bytes_smem + other.bytes_smem
        if total_smem > 0:
            conflict = (
                self.bank_conflict_factor * self.bytes_smem
                + other.bank_conflict_factor * other.bytes_smem
            ) / total_smem
        else:
            conflict = 1.0
        return KernelCost(
            name=name or f"{self.name}+{other.name}",
            bytes_dram_read=self.bytes_dram_read + other.bytes_dram_read,
            bytes_dram_written=self.bytes_dram_written + other.bytes_dram_written,
            bytes_l2_read=self.bytes_l2_read + other.bytes_l2_read,
            bytes_smem=total_smem,
            bank_conflict_factor=conflict,
            flops_tensor=self.flops_tensor + other.flops_tensor,
            flops_simt=self.flops_simt + other.flops_simt,
            sync_rounds=self.sync_rounds + other.sync_rounds,
            launches=1,
        )


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-phase decomposition of one estimated kernel time."""

    total: float
    launch: float
    dram: float
    l2: float
    smem: float
    tensor: float
    simt: float
    sync: float
    occupancy: float
    utilization: float
    waves: int

    @property
    def body(self) -> float:
        """Time excluding fixed launch overhead."""
        return self.total - self.launch

    @property
    def bound(self) -> str:
        """Which phase dominates the kernel body ('dram'/'smem'/'compute')."""
        phases = {
            "dram": self.dram + self.l2,
            "smem": self.smem,
            "compute": self.tensor + self.simt,
        }
        return max(phases, key=phases.get)  # type: ignore[arg-type]


def _saturation(occupancy: float, knee: float) -> float:
    """Fraction of peak throughput achieved at a given warp occupancy.

    Latency hiding needs enough resident warps; below the knee, achieved
    throughput falls off linearly.  A tiny floor keeps single-warp launches
    finite rather than dividing by zero.
    """
    return max(min(1.0, occupancy / knee), 1e-3)


def estimate_kernel_time(
    spec: GPUSpec,
    cost: KernelCost,
    config: LaunchConfig,
) -> TimeBreakdown:
    """Estimate wall time of one kernel on the simulated device.

    Deterministic: a pure function of (spec, cost, config).
    """
    occ = compute_occupancy(
        spec, config.warps_per_block, config.smem_per_block, config.regs_per_thread
    )

    # --- utilization: how much of the device the grid actually covers -------
    capacity = occ.blocks_per_sm * spec.sm_count
    waves = max(1, math.ceil(config.grid_blocks / capacity))
    blocks_in_flight = config.grid_blocks / waves
    active_sms = min(spec.sm_count, blocks_in_flight)
    sm_fraction = active_sms / spec.sm_count
    # Per-SM occupancy achieved by the blocks actually resident.
    blocks_per_active_sm = blocks_in_flight / max(active_sms, 1e-9)
    local_occ = min(
        1.0,
        blocks_per_active_sm
        * config.warps_per_block
        / spec.max_warps_per_sm,
    )

    util_mem = sm_fraction * _saturation(local_occ, spec.mem_saturation_knee)
    util_comp = sm_fraction * _saturation(local_occ, spec.comp_saturation_knee)

    # --- phase times ---------------------------------------------------------
    t_dram = cost.bytes_dram / (spec.dram_bandwidth * util_mem) if cost.bytes_dram else 0.0
    t_l2 = (
        cost.bytes_l2_read / (spec.l2_bandwidth * util_mem)
        if cost.bytes_l2_read and spec.l2_bandwidth
        else 0.0
    )
    t_smem = (
        cost.bytes_smem
        * cost.bank_conflict_factor
        / (spec.smem_bandwidth * util_mem)
        if cost.bytes_smem
        else 0.0
    )
    t_tensor = (
        cost.flops_tensor / (spec.fp16_tensor_flops * util_comp)
        if cost.flops_tensor and spec.fp16_tensor_flops
        else 0.0
    )
    t_simt = (
        cost.flops_simt / (spec.fp32_simt_flops * util_comp)
        if cost.flops_simt and spec.fp32_simt_flops
        else 0.0
    )

    t_mem = t_dram + t_l2
    t_comp = t_tensor + t_simt
    if config.pipelined:
        body = max(t_mem, t_smem, t_comp)
    else:
        body = t_mem + max(t_smem, t_comp)

    t_sync = cost.sync_rounds * waves * spec.barrier_latency_s
    t_launch = cost.launches * spec.kernel_launch_overhead_s
    total = t_launch + body + t_sync

    return TimeBreakdown(
        total=total,
        launch=t_launch,
        dram=t_dram,
        l2=t_l2,
        smem=t_smem,
        tensor=t_tensor,
        simt=t_simt,
        sync=t_sync,
        occupancy=occ.occupancy,
        utilization=sm_fraction,
        waves=waves,
    )
