"""Chrome-trace export of simulated execution plans.

Serializes a planned forward pass into the Trace Event Format that
``chrome://tracing`` / Perfetto render, so the simulated timeline can be
inspected like a real profiler capture: one lane per stream (MHA kernels,
downstream kernels, host dispatch), with the per-kernel phase breakdown
attached as event arguments.

This module is a thin front-end over :mod:`repro.obs`: the plan is first
expressed as :class:`~repro.obs.tracer.Span` objects (microsecond units,
back-to-back in plan order) and then serialized by
:func:`repro.obs.export.span_events`.  The output schema is unchanged —
existing goldens load byte-for-byte identically.  For richer traces
(planner spans, serving lifecycles, metrics) use ``repro profile`` and
the :mod:`repro.obs` API directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.gpu.cost import estimate_kernel_time
from repro.obs.export import span_events
from repro.obs.tracer import Span

#: Trace lanes.
LANE_DISPATCH = 0
LANE_MHA = 1
LANE_DOWNSTREAM = 2

_LANE_NAMES = {
    LANE_DISPATCH: "host dispatch",
    LANE_MHA: "attention kernels",
    LANE_DOWNSTREAM: "downstream kernels",
}


def plan_spans(prepared) -> list[Span]:
    """The plan's simulated timeline as flat obs spans (microsecond units).

    Kernels are laid out back-to-back in plan order (the simulator prices
    totals, not true concurrency), with dispatch slices on their own lane.
    """
    spec = prepared.spec
    spans: list[Span] = []
    cursor = 0.0

    def add_launches(launches, lane: int, cat: str):
        nonlocal cursor
        for cost, config in launches:
            bd = estimate_kernel_time(spec, cost, config)
            dispatch_us = prepared.dispatch_overhead_s * cost.launches * 1e6
            if dispatch_us > 0:
                spans.append(
                    Span("dispatch", cat="host", t0=cursor, dur=dispatch_us,
                         tid=LANE_DISPATCH, args={"kernel": cost.name},
                         sim=True)
                )
                cursor += dispatch_us
            dur_us = bd.total * 1e6
            spans.append(
                Span(
                    cost.name, cat=cat, t0=cursor, dur=dur_us, tid=lane,
                    args={
                        "bound": bd.bound,
                        "grid_blocks": config.grid_blocks,
                        "warps_per_block": config.warps_per_block,
                        "occupancy": round(bd.occupancy, 3),
                        "utilization": round(bd.utilization, 3),
                        "dram_us": round(bd.dram * 1e6, 3),
                        "l2_us": round(bd.l2 * 1e6, 3),
                        "smem_us": round(bd.smem * 1e6, 3),
                        "tensor_us": round(bd.tensor * 1e6, 3),
                        "simt_us": round(bd.simt * 1e6, 3),
                        "flops": cost.flops,
                        "bytes_dram": cost.bytes_dram,
                    },
                    sim=True,
                )
            )
            cursor += dur_us

    for _, binding in prepared.attention:
        add_launches(binding.plan(spec), LANE_MHA, "mha")
    for cp in prepared.chains:
        for template, params in zip(cp.templates, cp.params):
            add_launches(template.plan(spec, params), LANE_DOWNSTREAM, "fused")
    return spans


def trace_events(prepared) -> list[dict[str, Any]]:
    """Build the event list for a :class:`~repro.runtime.executor.PreparedModel`."""
    events: list[dict[str, Any]] = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": label}}
        for tid, label in _LANE_NAMES.items()
    ]
    events += span_events(plan_spans(prepared), pid=1, scale=1.0, min_dur=0.01)
    return events


def export_chrome_trace(prepared, path: str | Path) -> Path:
    """Write the trace JSON; open it in chrome://tracing or Perfetto.

    Returns the written path.
    """
    path = Path(path)
    payload = {
        "traceEvents": trace_events(prepared),
        "displayTimeUnit": "ns",
        "otherData": {
            "engine": prepared.engine_name,
            "device": prepared.spec.name,
            "model": prepared.instance.config.name,
        },
    }
    path.write_text(json.dumps(payload))
    return path
