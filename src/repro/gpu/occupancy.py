"""CUDA occupancy calculation.

Given a launch configuration (warps per block, SMEM per block, registers per
thread), determine how many blocks fit concurrently on one SM and the
resulting warp occupancy.  This is the general calculator used by the time
model; the paper's Eq. 2 (the kernel-selector scoring formula) is implemented
separately in :mod:`repro.mha.selector` and cross-checked against this one in
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy computation for one launch configuration."""

    blocks_per_sm: int          # concurrently resident blocks on one SM
    active_warps_per_sm: int    # blocks_per_sm * warps_per_block
    occupancy: float            # active warps / max warps, in (0, 1]
    limiter: str                # which resource capped blocks_per_sm

    def __post_init__(self) -> None:
        if self.blocks_per_sm < 1:
            raise ConfigError("occupancy computed with zero resident blocks")


def compute_occupancy(
    spec: GPUSpec,
    warps_per_block: int,
    smem_per_block: int,
    regs_per_thread: int = 32,
) -> Occupancy:
    """Compute how many blocks of the given shape fit on one SM.

    Raises :class:`ConfigError` when the block cannot fit at all (too much
    SMEM, too many warps, or too many registers), mirroring a CUDA launch
    failure.

    >>> from repro.gpu.specs import A100
    >>> occ = compute_occupancy(A100, warps_per_block=4, smem_per_block=48 * 1024)
    >>> occ.blocks_per_sm
    3
    """
    if warps_per_block < 1:
        raise ConfigError(f"warps_per_block must be >= 1, got {warps_per_block}")
    if smem_per_block < 0:
        raise ConfigError(f"smem_per_block must be >= 0, got {smem_per_block}")
    if regs_per_thread < 1:
        raise ConfigError(f"regs_per_thread must be >= 1, got {regs_per_thread}")

    threads_per_block = warps_per_block * spec.warp_size
    if threads_per_block > spec.max_threads_per_block:
        raise ConfigError(
            f"{warps_per_block} warps = {threads_per_block} threads exceeds "
            f"max threads per block ({spec.max_threads_per_block})"
        )
    if smem_per_block > spec.smem_carveout_per_sm:
        raise ConfigError(
            f"block requests {smem_per_block} B SMEM, SM carveout is "
            f"{spec.smem_carveout_per_sm} B"
        )
    if warps_per_block > spec.max_warps_per_sm:
        raise ConfigError(
            f"{warps_per_block} warps per block exceeds SM warp capacity "
            f"({spec.max_warps_per_sm})"
        )

    limits: dict[str, int] = {}
    limits["warps"] = spec.max_warps_per_sm // warps_per_block
    limits["blocks"] = spec.max_blocks_per_sm
    if smem_per_block > 0:
        limits["smem"] = spec.smem_carveout_per_sm // smem_per_block
    regs_per_block = regs_per_thread * threads_per_block
    if regs_per_block > 0:
        limits["registers"] = spec.registers_per_sm // regs_per_block

    limiter, blocks_per_sm = min(limits.items(), key=lambda kv: kv[1])
    if blocks_per_sm < 1:
        raise ConfigError(
            f"launch configuration does not fit on an SM (limited by {limiter}): "
            f"warps={warps_per_block}, smem={smem_per_block}, regs={regs_per_thread}"
        )

    active_warps = blocks_per_sm * warps_per_block
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        active_warps_per_sm=active_warps,
        occupancy=active_warps / spec.max_warps_per_sm,
        limiter=limiter,
    )
