"""Simulated GPU execution model.

This package is the substrate substitution for the paper's real NVIDIA
RTX 4090 / A100 hardware (see DESIGN.md §1).  It provides:

* :mod:`repro.gpu.specs` — device specifications (Table 3 of the paper plus
  the throughput constants a roofline model needs).
* :mod:`repro.gpu.occupancy` — the CUDA occupancy calculation: how many
  thread blocks fit on an SM given SMEM / warp / register pressure.
* :mod:`repro.gpu.bank` — shared-memory bank-conflict modelling for the
  padding optimization of the paper's block-wise kernel (Fig. 7).
* :mod:`repro.gpu.cost` — :class:`KernelCost` counters and the roofline
  kernel-time estimator.
* :mod:`repro.gpu.memory` — device-memory footprint tracking and simulated
  OOM (the paper's missing MCFuser bars).
* :mod:`repro.gpu.device` — :class:`SimulatedGPU`, which executes kernel
  launches against a spec, accumulating a timeline.

The model is deliberately *first-order*: kernel time is the max (pipelined)
or sum (unpipelined) of DRAM, L2, SMEM, and compute phase times, each scaled
by achieved occupancy and SM utilization, plus launch and barrier overheads.
Every constant lives in :mod:`repro.gpu.specs`.
"""

from repro.gpu.specs import GPUSpec, RTX4090, A100, H100, get_spec, KNOWN_GPUS
from repro.gpu.occupancy import Occupancy, compute_occupancy
from repro.gpu.bank import bank_conflict_factor, conflict_free_padding
from repro.gpu.cost import KernelCost, LaunchConfig, TimeBreakdown, estimate_kernel_time
from repro.gpu.memory import MemoryTracker
from repro.gpu.device import SimulatedGPU, KernelRecord

__all__ = [
    "GPUSpec",
    "RTX4090",
    "A100",
    "H100",
    "get_spec",
    "KNOWN_GPUS",
    "Occupancy",
    "compute_occupancy",
    "bank_conflict_factor",
    "conflict_free_padding",
    "KernelCost",
    "LaunchConfig",
    "TimeBreakdown",
    "estimate_kernel_time",
    "MemoryTracker",
    "SimulatedGPU",
    "KernelRecord",
]
