"""GPU device specifications.

Reproduces Table 3 of the paper (RTX 4090 Ada, A100 PCIe Ampere) and extends
it with the throughput constants the roofline time model needs.  Peak numbers
come from the public NVIDIA datasheets; behavioural constants (launch
overhead, barrier latency, saturation knees) are calibration parameters
chosen so the shapes of the paper's experiments reproduce — see DESIGN.md §5.

All byte quantities are plain bytes; all rates are per second; all times are
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigError
from repro.core.units import GiB, KiB, MiB


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU.

    The first block of fields mirrors the paper's Table 3; the second block
    holds microarchitectural constants used by the occupancy calculator and
    the time model.
    """

    # ---- Table 3 fields -----------------------------------------------------
    name: str
    arch: str
    sm_count: int
    cuda_cores: int
    l1_smem_per_sm: int          # combined L1/SMEM capacity per SM (bytes)
    l2_bytes: int
    memory_bytes: int
    dram_bandwidth: float        # bytes / s

    # ---- Microarchitecture --------------------------------------------------
    clock_hz: float
    warp_size: int = 32
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 24
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    smem_carveout_per_sm: int = 100 * KiB   # usable SMEM (rest stays L1)

    # ---- Throughput ---------------------------------------------------------
    fp16_tensor_flops: float = 0.0   # FP16 w/ FP32 accumulate, dense
    fp32_simt_flops: float = 0.0     # classic CUDA-core FP32
    l2_bandwidth: float = 0.0        # bytes / s
    smem_bytes_per_clk_per_sm: float = 128.0

    # ---- Behavioural constants (calibration; shared by all engines) ---------
    kernel_launch_overhead_s: float = 4.0e-6
    barrier_latency_s: float = 30.0e-9
    mem_saturation_knee: float = 0.25    # occupancy needed to saturate DRAM
    comp_saturation_knee: float = 0.125  # occupancy needed to saturate FUs

    smem_banks: int = 32
    smem_bank_width_bytes: int = 4

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ConfigError(f"sm_count must be positive, got {self.sm_count}")
        if self.smem_carveout_per_sm > self.l1_smem_per_sm:
            raise ConfigError(
                f"SMEM carveout {self.smem_carveout_per_sm} exceeds combined "
                f"L1/SMEM capacity {self.l1_smem_per_sm}"
            )
        if not (0.0 < self.mem_saturation_knee <= 1.0):
            raise ConfigError("mem_saturation_knee must be in (0, 1]")
        if not (0.0 < self.comp_saturation_knee <= 1.0):
            raise ConfigError("comp_saturation_knee must be in (0, 1]")

    # ---- Derived quantities -------------------------------------------------

    @property
    def smem_bandwidth(self) -> float:
        """Aggregate shared-memory bandwidth across all SMs (bytes / s)."""
        return self.smem_bytes_per_clk_per_sm * self.clock_hz * self.sm_count

    @property
    def max_concurrent_blocks(self) -> int:
        """Upper bound of resident blocks device-wide (ignoring resources)."""
        return self.sm_count * self.max_blocks_per_sm

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: NVIDIA GeForce RTX 4090 (Ada Lovelace), paper GPU1.
RTX4090 = GPUSpec(
    name="NVIDIA RTX 4090",
    arch="Ada",
    sm_count=128,
    cuda_cores=16384,
    l1_smem_per_sm=128 * KiB,
    l2_bytes=72 * MiB,
    memory_bytes=24 * GiB,
    dram_bandwidth=1008e9,
    clock_hz=2.52e9,
    max_warps_per_sm=48,
    max_blocks_per_sm=24,
    smem_carveout_per_sm=100 * KiB,
    fp16_tensor_flops=165e12,
    fp32_simt_flops=82.6e12,
    l2_bandwidth=5.0e12,
)

#: NVIDIA A100 PCIe 40GB (Ampere), paper GPU2.
A100 = GPUSpec(
    name="NVIDIA A100 PCIe",
    arch="Ampere",
    sm_count=108,
    cuda_cores=6912,
    l1_smem_per_sm=192 * KiB,
    l2_bytes=40 * MiB,
    memory_bytes=40 * GiB,
    dram_bandwidth=1555e9,
    clock_hz=1.41e9,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    smem_carveout_per_sm=164 * KiB,
    fp16_tensor_flops=312e12,
    fp32_simt_flops=19.5e12,
    l2_bandwidth=4.7e12,
)

#: NVIDIA H100 PCIe 80GB (Hopper) — not part of the paper's evaluation
#: (FlashAttention3/Hopper is explicitly out of its scope); included to test
#: §5.3's closing claim that STOF "has the potential to be applied to
#: future GPU generations with larger memory".
H100 = GPUSpec(
    name="NVIDIA H100 PCIe",
    arch="Hopper",
    sm_count=114,
    cuda_cores=14592,
    l1_smem_per_sm=256 * KiB,
    l2_bytes=50 * MiB,
    memory_bytes=80 * GiB,
    dram_bandwidth=2000e9,
    clock_hz=1.755e9,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    smem_carveout_per_sm=228 * KiB,
    fp16_tensor_flops=756e12,
    fp32_simt_flops=51.2e12,
    l2_bandwidth=7.0e12,
)

#: Registry keyed by the short names the benchmarks use.
KNOWN_GPUS: dict[str, GPUSpec] = {
    "rtx4090": RTX4090,
    "a100": A100,
    "h100": H100,
}


def get_spec(name: str) -> GPUSpec:
    """Look up a device spec by short name (case-insensitive).

    >>> get_spec("A100").sm_count
    108
    """
    key = name.strip().lower().replace(" ", "").replace("-", "")
    if key not in KNOWN_GPUS:
        raise ConfigError(
            f"unknown GPU {name!r}; known: {sorted(KNOWN_GPUS)}"
        )
    return KNOWN_GPUS[key]
