"""STOF — Sparse Transformer acceleration via flexible masking and operator
fusion, reproduced on a simulated GPU substrate.

This package reproduces "Flexible Operator Fusion for Fast Sparse
Transformer with Diverse Masking on GPU" (PPoPP 2026) end to end: the
unified row-wise/block-wise sparse MHA kernels with BSR mask storage, the
fusion-scheme encoding and compilation templates, the two-stage search
engine, and the full baseline suite — all priced on an analytical GPU
execution model (see DESIGN.md for the substitution rationale).

Quick start::

    from repro import AttentionProblem, UnifiedMHA, get_spec

    problem = AttentionProblem.build(
        "bigbird", batch=2, heads=12, seq_len=256, head_size=64,
        with_tensors=True,
    )
    mha = UnifiedMHA(get_spec("a100"))
    plan = mha.plan(problem)         # analytical kernel selection
    output = mha.run(problem)        # functional FP16 attention

See ``examples/`` for end-to-end model inference, custom mask patterns,
and a tour of the two-stage tuner.
"""

__version__ = "1.0.0"

from repro.core.rng import RngStream
from repro.gpu import A100, RTX4090, GPUSpec, SimulatedGPU, get_spec
from repro.masks import (
    BlockSparseMask,
    analyze_mask,
    bigbird_mask,
    longformer_mask,
    make_pattern,
    sliding_window_mask,
)
from repro.mha import (
    AttentionProblem,
    BlockWiseKernel,
    RowWiseKernel,
    UnifiedMHA,
    reference_attention,
)
from repro.models import build_model, get_model_config
from repro.obs import MetricsRegistry, Span, Tracer, use_metrics, use_tracer
from repro.plan import CompiledPlan, PlanCache, PlanKey, Planner
from repro.runtime import (
    BoltEngine,
    ByteTransformerEngine,
    MCFuserEngine,
    PyTorchCompileEngine,
    PyTorchNativeEngine,
    STOFEngine,
)
from repro.tuner import TwoStageEngine
from repro.api import CompiledModel, compare_engines, compile_model, serve
from repro.parallel import (
    AutoscalingServingEngine,
    FleetConfig,
    Interconnect,
    LinkSpec,
    ShardConfig,
    ShardedServingEngine,
    compile_sharded,
)
from repro.serving import SLOPolicy, TenantSpec, WorkloadSpec, make_scenario

__all__ = [
    "__version__",
    "RngStream",
    "A100",
    "RTX4090",
    "GPUSpec",
    "SimulatedGPU",
    "get_spec",
    "BlockSparseMask",
    "analyze_mask",
    "bigbird_mask",
    "longformer_mask",
    "make_pattern",
    "sliding_window_mask",
    "AttentionProblem",
    "BlockWiseKernel",
    "RowWiseKernel",
    "UnifiedMHA",
    "reference_attention",
    "build_model",
    "get_model_config",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "use_metrics",
    "use_tracer",
    "CompiledPlan",
    "PlanCache",
    "PlanKey",
    "Planner",
    "BoltEngine",
    "ByteTransformerEngine",
    "MCFuserEngine",
    "PyTorchCompileEngine",
    "PyTorchNativeEngine",
    "STOFEngine",
    "TwoStageEngine",
    "CompiledModel",
    "compare_engines",
    "compile_model",
    "serve",
    "AutoscalingServingEngine",
    "FleetConfig",
    "Interconnect",
    "LinkSpec",
    "ShardConfig",
    "ShardedServingEngine",
    "SLOPolicy",
    "TenantSpec",
    "WorkloadSpec",
    "compile_sharded",
    "make_scenario",
]
