"""Half-precision storage helpers.

The paper's kernels run in FP16 storage with FP32 accumulation on tensor
cores.  The functional layer mirrors that contract: tensors are *stored* as
``float16`` (so memory-footprint accounting uses 2 bytes/element and rounding
behaviour matches a real FP16 pipeline) while matmuls *accumulate* in
``float32`` before rounding the result back to half.
"""

from __future__ import annotations

import numpy as np

#: Bytes per FP16 element; the unit for all global-memory traffic accounting.
FP16_BYTES = 2

#: Bytes per FP32 element, used for accumulators and norm statistics.
FP32_BYTES = 4


def to_fp16(x: np.ndarray) -> np.ndarray:
    """Round an array to FP16 storage.

    Values outside the FP16 range become ``inf`` exactly as on hardware
    (the overflow is intentional, so NumPy's cast warning is suppressed).
    """
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float16)


def from_fp16(x: np.ndarray) -> np.ndarray:
    """Promote FP16 storage to an FP32 compute view (copy)."""
    return np.asarray(x, dtype=np.float32)


def fp16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix multiply with the tensor-core numerics contract.

    Inputs are rounded to FP16, the product accumulates in FP32, and the
    result is rounded back to FP16 — matching ``wmma`` fragment semantics.
    Works on stacked (batched) matrices via NumPy broadcasting.
    """
    a16 = to_fp16(a).astype(np.float32)
    b16 = to_fp16(b).astype(np.float32)
    return to_fp16(a16 @ b16)


def fp16_allclose(a: np.ndarray, b: np.ndarray, rtol: float = 2e-2, atol: float = 2e-3) -> bool:
    """Tolerance-aware comparison for FP16 pipelines.

    FP16 has ~3 decimal digits; reductions over hundreds of terms accumulate
    rounding that scales with sequence length, so the default tolerances are
    looser than :func:`numpy.allclose` defaults.
    """
    return np.allclose(
        np.asarray(a, dtype=np.float32),
        np.asarray(b, dtype=np.float32),
        rtol=rtol,
        atol=atol,
    )
