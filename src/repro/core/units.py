"""Units and human-readable formatting for bytes, FLOPs, and time."""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix.

    >>> format_bytes(2048)
    '2.00 KiB'
    """
    n = float(n)
    for suffix, scale in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {suffix}"
    return f"{n:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit.

    >>> format_time(2.5e-6)
    '2.50 us'
    """
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.2f} s"
    if abs(s) >= MILLISECOND:
        return f"{s / MILLISECOND:.2f} ms"
    return f"{s / MICROSECOND:.2f} us"


def format_flops(n: float) -> str:
    """Render a FLOP count with a decimal suffix.

    >>> format_flops(3.2e12)
    '3.20 TFLOP'
    """
    n = float(n)
    for suffix, scale in (("TFLOP", 1e12), ("GFLOP", 1e9), ("MFLOP", 1e6), ("KFLOP", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {suffix}"
    return f"{n:.0f} FLOP"
