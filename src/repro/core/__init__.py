"""Shared primitives used across every STOF subsystem.

The :mod:`repro.core` package deliberately contains no domain logic — only
the plumbing the rest of the library leans on:

* :mod:`repro.core.errors` — the exception hierarchy.
* :mod:`repro.core.rng` — seeded random streams so every simulation,
  mask generation, and tuning run is exactly reproducible.
* :mod:`repro.core.fp16` — half-precision storage helpers mirroring the
  FP16-storage / FP32-accumulate contract of tensor-core kernels.
* :mod:`repro.core.units` — byte / FLOP / time unit helpers and formatting.
"""

from repro.core.errors import (
    ReproError,
    ConfigError,
    DeviceOutOfMemoryError,
    UnsupportedInputError,
    GraphError,
    TuningError,
)
from repro.core.rng import RngStream, derive_seed
from repro.core.fp16 import to_fp16, from_fp16, fp16_matmul, FP16_BYTES
from repro.core.units import (
    KiB,
    MiB,
    GiB,
    format_bytes,
    format_time,
    format_flops,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "DeviceOutOfMemoryError",
    "UnsupportedInputError",
    "GraphError",
    "TuningError",
    "RngStream",
    "derive_seed",
    "to_fp16",
    "from_fp16",
    "fp16_matmul",
    "FP16_BYTES",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_time",
    "format_flops",
]
