"""Seeded random streams.

All stochastic pieces of the reproduction — random-attention mask filling,
tuning-candidate sampling, reward-weighted sampling — draw from named
:class:`RngStream` objects derived from a single root seed.  Two runs with the
same root seed produce bit-identical masks, schedules, and benchmark tables.

The derivation is stable across processes and Python versions: stream names
are hashed with BLAKE2 (not Python's randomized ``hash``).
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5704F  # "STOF"


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    Stable across processes: uses BLAKE2b over the root seed and the names.

    >>> derive_seed(1, "masks") == derive_seed(1, "masks")
    True
    >>> derive_seed(1, "masks") != derive_seed(1, "tuner")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(root_seed).to_bytes(16, "little", signed=False))
    for name in names:
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little") & 0x7FFF_FFFF


class RngStream:
    """A named, forkable random stream backed by :class:`numpy.random.Generator`.

    ``fork(name)`` produces an independent child stream whose state depends
    only on the parent's seed path, never on how much of the parent stream
    has been consumed.  This keeps mask generation independent of tuning
    order, for example.
    """

    def __init__(self, seed: int = DEFAULT_SEED, path: tuple[str, ...] = ()):
        self.root_seed = int(seed)
        self.path = tuple(path)
        self._gen = np.random.default_rng(derive_seed(self.root_seed, *self.path))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator (stateful; use sparingly)."""
        return self._gen

    def fork(self, name: str) -> "RngStream":
        """Create an independent child stream identified by ``name``."""
        return RngStream(self.root_seed, self.path + (name,))

    # Convenience passthroughs -------------------------------------------------

    def integers(self, low: int, high: int | None = None, size=None) -> np.ndarray:
        return self._gen.integers(low, high, size=size)

    def random(self, size=None) -> np.ndarray:
        return self._gen.random(size)

    def standard_normal(self, size=None) -> np.ndarray:
        return self._gen.standard_normal(size)

    def choice(self, a, size=None, replace=True, p=None):
        return self._gen.choice(a, size=size, replace=replace, p=p)

    def shuffle(self, x) -> None:
        self._gen.shuffle(x)

    def permutation(self, x) -> np.ndarray:
        return self._gen.permutation(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "/".join(self.path) or "<root>"
        return f"RngStream(seed={self.root_seed:#x}, path={path})"
