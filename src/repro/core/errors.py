"""Exception hierarchy for the STOF reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied.

    Raised for out-of-range launch parameters (e.g. a ``BLOCK_M`` that is not
    a multiple of 16), malformed device specs, or inconsistent model
    hyper-parameters.
    """


class DeviceOutOfMemoryError(ReproError):
    """The simulated device cannot hold the requested working set.

    Mirrors a CUDA OOM: engines that materialize oversized intermediates
    (e.g. MCFuser's dense score workspace at large batch x sequence) raise
    this, and the benchmark harness reports a missing bar exactly as the
    paper's figures do.
    """

    def __init__(self, requested_bytes: int, capacity_bytes: int, what: str = ""):
        self.requested_bytes = int(requested_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self.what = what
        detail = f" while allocating {what}" if what else ""
        super().__init__(
            f"simulated device out of memory{detail}: "
            f"requested {requested_bytes / 2**30:.2f} GiB, "
            f"capacity {capacity_bytes / 2**30:.2f} GiB"
        )


class UnsupportedInputError(ReproError):
    """An engine was asked to run an input it does not support.

    Mirrors the paper's missing bars for ByteTransformer beyond sequence
    length 1,024 and for baselines lacking a given mask representation.
    """


class GraphError(ReproError):
    """Malformed computational graph or failed pattern match / rewrite."""


class TuningError(ReproError):
    """The search engine was driven into an invalid state.

    Examples: sampling from an empty parameter space, or expanding a fusion
    segment past the operator sequence bounds.
    """
