"""One-shot deprecation warnings with caller-pointing stack levels.

Every deprecated spelling in the library (the ``gpu=``/``pattern=``
keywords, the ``--gpu``/``--pattern`` CLI aliases) warns through this
module.  Two properties the scattered ``warnings.warn`` calls got wrong:

* **once per process** — a serving benchmark calling ``compile_model``
  in a loop used to emit the identical warning hundreds of times; here a
  module-level seen-set suppresses repeats (:func:`reset` restores them,
  for tests).
* **caller-pointing stacklevel** — the warning's reported location must
  be the *user's* call site, not a frame inside this library (or inside
  argparse).  Helpers take ``stacklevel`` with plain ``warnings.warn``
  semantics — as if the caller had called ``warnings.warn`` directly —
  and compensate for their own frames internally.
"""

from __future__ import annotations

import warnings

_seen: set[str] = set()


def reset() -> None:
    """Forget which warnings already fired (test isolation)."""
    _seen.clear()


def warn_once(message: str, stacklevel: int = 1) -> None:
    """Emit ``message`` as a DeprecationWarning, at most once per process.

    ``stacklevel`` has ``warnings.warn`` semantics relative to the
    *caller*: 1 points at the line calling ``warn_once``, 2 at its
    caller, and so on.
    """
    if message in _seen:
        return
    _seen.add(message)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def warn_deprecated_kw(old: str, new: str, stacklevel: int = 1) -> None:
    """Warn (once) that keyword ``old`` was renamed to ``new``.

    >>> import warnings
    >>> reset()
    >>> with warnings.catch_warnings(record=True) as w:
    ...     warnings.simplefilter("always")
    ...     warn_deprecated_kw("gpu", "device")
    ...     warn_deprecated_kw("gpu", "device")   # suppressed
    >>> [str(x.message) for x in w]
    ["the 'gpu' keyword is deprecated; use 'device'"]
    """
    warn_once(
        f"the {old!r} keyword is deprecated; use {new!r}",
        stacklevel=stacklevel + 1,
    )


def warn_deprecated_option(old: str, new: str) -> None:
    """Warn (once) that CLI option ``old`` was renamed to ``new``.

    The reported location is the emitting call site (argparse's internal
    frames are never a useful location for a terminal user).
    """
    warn_once(f"{old} is deprecated; use {new}", stacklevel=2)
