"""Hierarchical search engine (paper §4.4) and comparison tuners.

* :mod:`repro.tuner.cache` — the performance cache: every evaluated
  (segment, parameter-setting) pair is priced once (simulated compile +
  measurement runs) and then free, "particularly effective in saving tuning
  time at large input scales".
* :mod:`repro.tuner.sampler` — reward-based parameter sampling (stage 2).
* :mod:`repro.tuner.engine` — :class:`TwoStageEngine`: rule-based scheme
  initialization, stage-1 fusion expansion (expand/seize/compete + DFS +
  rollback), stage-2 reward sampling.
* :mod:`repro.tuner.baseline_tuners` — MCFuser-style exhaustive loop-space
  tuning and Bolt-style template enumeration for the Table 4 comparison.
"""

from repro.tuner.cache import EvalCostModel, PerformanceCache
from repro.tuner.sampler import RewardSampler
from repro.tuner.engine import TwoStageEngine, TuningResult, SegmentState, OverheadBreakdown
from repro.tuner.baseline_tuners import ExhaustiveLoopTuner, TemplateEnumerationTuner

__all__ = [
    "EvalCostModel",
    "PerformanceCache",
    "RewardSampler",
    "TwoStageEngine",
    "TuningResult",
    "SegmentState",
    "OverheadBreakdown",
    "ExhaustiveLoopTuner",
    "TemplateEnumerationTuner",
]
