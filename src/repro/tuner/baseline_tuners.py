"""Comparison auto-tuners for the Table 4 study.

Both baselines share the evaluation-cost mechanics (compile + measurement
runs per unseen configuration, cache within a run) but differ in *search
strategy*, exactly as the paper characterizes them (Table 1):

* :class:`ExhaustiveLoopTuner` (MCFuser-style) — loop-space construction
  with rule pruning only: every feasible setting of every segment is
  evaluated.  Its fusion policy is the CI-chain one (adjacent GEMMs merge
  whenever a template exists, regardless of scale).
* :class:`TemplateEnumerationTuner` (Bolt-style) — CUTLASS-like template
  enumeration: GEMM + epilogue segments with the full template parameter
  grid per segment, no fusion expansion.

Neither has STOF's two-stage budgeting or reward allocation, so their
evaluation counts — and thus tuning time — grow much faster with model and
input scale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.rng import RngStream
from repro.fusion.converter import FusionSchemeConverter, OperatorChain, extract_chains
from repro.fusion.templates import CompilationTemplate
from repro.graph.ir import Graph
from repro.gpu.specs import GPUSpec
from repro.ops.base import OpCategory
from repro.tuner.cache import EvalCostModel, PerformanceCache
from repro.tuner.engine import SegmentState, segment_signature


@dataclass
class BaselineTuningResult:
    """Per-graph outcome of a baseline tuner."""

    segments: list[SegmentState]
    estimated_time_s: float
    tuning_time_s: float
    evaluations: int


class _GridTunerBase:
    """Shared full-grid segment evaluation."""

    #: Cap on enumerated settings per segment (rule pruning).
    max_settings_per_segment: int = 48

    def __init__(
        self,
        spec: GPUSpec,
        cost_model: EvalCostModel | None = None,
        rng: RngStream | None = None,
    ):
        self.spec = spec
        self.cache = PerformanceCache(cost_model or EvalCostModel())
        self.rng = (rng or RngStream()).fork(type(self).__name__)

    def _grid(self, template: CompilationTemplate) -> list[dict[str, Any]]:
        space = template.param_space()
        keys = list(space)
        combos = [
            dict(zip(keys, vals)) for vals in itertools.product(*space.values())
        ]
        return combos[: self.max_settings_per_segment]

    def _tune_segment(self, template: CompilationTemplate) -> SegmentState | None:
        sig = segment_signature(template)
        best_t, best_p = float("inf"), None
        for params in self._grid(template):
            t = self.cache.evaluate(
                sig, params, lambda p=params: template.estimate_time(self.spec, p)
            )
            if t is not None and t < best_t:
                best_t, best_p = t, params
        if best_p is None:
            return None
        return SegmentState(
            start=-1, length=template.segment.n_ops, template=template,
            best_time_s=best_t, best_params=best_p,
        )

    def _segmentation(self, converter: FusionSchemeConverter, tokens: int) -> tuple[int, ...]:
        raise NotImplementedError

    def tune_graph(self, graph: Graph, tokens: int) -> BaselineTuningResult:
        from repro.runtime.executor import _segment_feasible

        segments: list[SegmentState] = []
        total = 0.0
        for chain in extract_chains(graph):
            converter = FusionSchemeConverter(graph, chain)
            scheme = self._segmentation(converter, tokens)
            templates = converter.scheme_templates(scheme)
            if templates is None:  # fall back to fully detached
                scheme = tuple(1 for _ in range(chain.n_ops))
                templates = converter.scheme_templates(scheme)
                assert templates is not None
            # A fused segment whose kernel cannot launch at all (failed
            # compile) falls back to detached ops — which then get the full
            # per-op enumeration, exactly like a real tuner retrying.
            repaired: list[int] = []
            for length, template in zip(scheme, templates):
                if length > 1 and not _segment_feasible(template, self.spec):
                    repaired.extend([1] * length)
                else:
                    repaired.append(length)
            if tuple(repaired) != scheme:
                scheme = tuple(repaired)
                templates = converter.scheme_templates(scheme)
                assert templates is not None
            for template in templates:
                state = self._tune_segment(template)
                if state is None:
                    continue
                segments.append(state)
                total += state.best_time_s
        return BaselineTuningResult(
            segments=segments,
            estimated_time_s=total,
            tuning_time_s=self.cache.tuning_time_s,
            evaluations=self.cache.evaluations,
        )


class ExhaustiveLoopTuner(_GridTunerBase):
    """MCFuser-style: fuse GEMM chains unconditionally, enumerate the rest.

    Loop-space scheduling exposes extra unroll variants, tripling the
    effective grid per CI segment.
    """

    unroll_variants: tuple[int, ...] = (1, 2, 4)

    def _grid(self, template: CompilationTemplate) -> list[dict[str, Any]]:
        base = super()._grid(template)
        if template.segment.n_ci == 0:
            return base
        # Loop scheduling explores unroll factors on top of tile sizes; the
        # unroll does not change our cost model's counters, but each variant
        # is a distinct candidate the tuner must compile and measure.
        out: list[dict[str, Any]] = []
        for params in base:
            for u in self.unroll_variants:
                p = dict(params)
                p["unroll"] = u
                out.append(p)
        return out[: self.max_settings_per_segment * len(self.unroll_variants)]

    def _tune_segment(self, template: CompilationTemplate) -> SegmentState | None:
        sig = segment_signature(template)
        best_t, best_p = float("inf"), None
        for params in self._grid(template):
            unrolled = dict(params)
            unrolled.pop("unroll", None)
            t = self.cache.evaluate(
                sig,
                params,
                lambda p=unrolled: template.estimate_time(self.spec, p),
            )
            if t is not None and t < best_t:
                best_t, best_p = t, unrolled
        if best_p is None:
            return None
        return SegmentState(
            start=-1, length=template.segment.n_ops, template=template,
            best_time_s=best_t, best_params=best_p,
        )

    def _segmentation(self, converter: FusionSchemeConverter, tokens: int) -> tuple[int, ...]:
        """CI-chain fusion everywhere (scale-oblivious), MI detached-ish.

        A CI op reaches forward through intervening element-wise ops to the
        next CI op; if a GEMM-chain template covers the whole span, the span
        fuses — regardless of input scale (MCFuser's known weakness).
        """
        cats = converter.chain.categories
        n = len(cats)
        lengths: list[int] = []
        i = 0
        while i < n:
            if cats[i] is OpCategory.CI:
                j = i + 1
                while j < n and cats[j] is not OpCategory.CI:
                    j += 1
                if j < n and converter.template(i, j - i + 1) is not None:
                    lengths.append(j - i + 1)
                    i = j + 1
                    continue
            lengths.append(1)
            i += 1
        return tuple(lengths)


class TemplateEnumerationTuner(_GridTunerBase):
    """Bolt-style: GEMM+epilogue templates, full grid per segment."""

    def _segmentation(self, converter: FusionSchemeConverter, tokens: int) -> tuple[int, ...]:
        """Each CI op absorbs its element-wise epilogue; MI ops detached."""
        from repro.fusion.templates import GemmEpilogueTemplate, _is_reduction

        cats = converter.chain.categories
        ops = [converter.graph.node(n).op for n in converter.chain.node_names]
        n = len(cats)
        lengths: list[int] = []
        i = 0
        while i < n:
            if cats[i] is OpCategory.CI:
                j = i + 1
                while (
                    j < n
                    and cats[j] is not OpCategory.CI
                    and not _is_reduction(ops[j])
                    and converter.template(i, j - i + 1) is not None
                ):
                    j += 1
                lengths.append(j - i)
                i = j
            else:
                lengths.append(1)
                i += 1
        return tuple(lengths)
