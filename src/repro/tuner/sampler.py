"""Reward-based parameter sampling (paper §4.4, stage 2).

Each tuning iteration distributes a fixed total number of samples across
the segments of the (now frozen) fusion scheme.  The first iteration is
uniform; afterwards "when the highest overall gain is achieved when tuning
a segment, STOF rewards the segment with an increase in the number of
sampled settings in the next iteration".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.errors import TuningError
from repro.core.rng import RngStream

#: Multiplicative weight boost for the best-improving segment per round.
REWARD_FACTOR = 1.5


@dataclass
class SamplerState:
    """Per-segment sampling bookkeeping."""

    space: dict[str, tuple]
    unexplored: list[dict[str, Any]]
    weight: float = 1.0
    best_time: float = float("inf")
    best_params: dict[str, Any] | None = None


class RewardSampler:
    """Allocates parameter samples across segments by reward weights."""

    def __init__(
        self,
        spaces: Sequence[dict[str, tuple]],
        rng: RngStream,
        max_candidates_per_segment: int = 256,
        segment_keys: Sequence[str] | None = None,
    ):
        """``segment_keys`` (optional) name each segment *by content*; two
        identical segments (e.g. the same layer repeated 24 times) then draw
        identical candidate sequences, so a shared performance cache turns
        every repeat into hits."""
        if not spaces:
            raise TuningError("reward sampler needs at least one segment")
        self.rng = rng.fork("reward-sampler")
        self.states: list[SamplerState] = []
        for i, space in enumerate(spaces):
            key = segment_keys[i] if segment_keys is not None else f"seg-{i}"
            candidates = self._enumerate(space, max_candidates_per_segment, key)
            self.states.append(SamplerState(space=space, unexplored=candidates))

    def _enumerate(
        self, space: dict[str, tuple], cap: int, key: str
    ) -> list[dict[str, Any]]:
        keys = list(space)
        combos = [dict(zip(keys, vals)) for vals in itertools.product(*space.values())]
        stream = self.rng.fork(f"seg-{key}")
        stream.shuffle(combos)
        return combos[:cap]

    # --------------------------------------------------------------- rounds

    def allocate(self, total_samples: int) -> list[int]:
        """Samples per segment this round, proportional to weights.

        Segments with nothing left to explore receive zero; their share is
        redistributed.  At least one sample goes to every segment that still
        has candidates (until the total runs out).
        """
        if total_samples < 1:
            raise TuningError(f"total_samples must be >= 1, got {total_samples}")
        active = [i for i, s in enumerate(self.states) if s.unexplored]
        alloc = [0] * len(self.states)
        if not active:
            return alloc
        weight_sum = sum(self.states[i].weight for i in active)
        remaining = total_samples
        # Guarantee coverage first.
        for i in active:
            if remaining == 0:
                break
            alloc[i] = 1
            remaining -= 1
        # Distribute the rest by weight.
        for i in active:
            share = int(remaining * self.states[i].weight / weight_sum)
            alloc[i] += share
        leftover = total_samples - sum(alloc)
        for i in sorted(active, key=lambda i: -self.states[i].weight):
            if leftover <= 0:
                break
            alloc[i] += 1
            leftover -= 1
        # Clamp to what is actually explorable.
        for i in active:
            alloc[i] = min(alloc[i], len(self.states[i].unexplored))
        return alloc

    def draw(self, segment: int, count: int) -> list[dict[str, Any]]:
        """Take up to ``count`` unexplored settings for a segment."""
        state = self.states[segment]
        batch = state.unexplored[:count]
        state.unexplored = state.unexplored[count:]
        return batch

    def record(self, segment: int, params: dict[str, Any], time_s: float) -> None:
        """Report a measured time for bookkeeping."""
        state = self.states[segment]
        if time_s < state.best_time:
            state.best_time = time_s
            state.best_params = dict(params)

    def reward(self, segment: int) -> None:
        """Boost the best-improving segment's share for the next round."""
        self.states[segment].weight *= REWARD_FACTOR

    @property
    def exhausted(self) -> bool:
        return all(not s.unexplored for s in self.states)
