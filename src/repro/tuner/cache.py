"""Performance cache and tuning-cost accounting.

Tuning cost on real hardware is compile time plus measurement runs; here
both are *simulated* deterministically: compiling an unseen (template,
params) binary charges ``compile_s``, measuring charges ``runs`` x the
device-model kernel time (capped per candidate).  The cache guarantees
"the same parameter setting in each fusion scheme will not be executed
repeatedly" (paper §4.4) — a hit charges nothing.

.. deprecated::
    :class:`PerformanceCache` is now a thin compatibility shim over the
    unified plan layer: measurements live in a
    :class:`repro.plan.PlanCache` under ``kind="tuner-measure"`` keys
    (segment identity in the salt, the historical ``params_key`` as the
    key's params field).  New code should use :mod:`repro.plan` directly;
    this module keeps the public API — ``evaluate`` / ``best_for`` /
    ``entries`` / ``save`` / ``load`` and the v1 JSON format — working for
    existing tests and benchmarks.

The cache can be persisted to JSON (:meth:`PerformanceCache.save` /
:meth:`PerformanceCache.load`) so a later session warm-starts from prior
tuning — a natural extension of the paper's caching mechanism — and can
be disabled entirely (``enabled=False``) to quantify its contribution
(see ``benchmarks/bench_ablation_cache.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Hashable

from repro.core.errors import ConfigError
from repro.obs.metrics import current_metrics
from repro.plan import PlanCache, PlanKey
from repro.plan import params_key as params_key  # noqa: F401  (re-export)

#: Plan-cache namespace for tuner measurements.
TUNER_KIND = "tuner-measure"

_MISSING = object()


@dataclass
class EvalCostModel:
    """What one tuning evaluation costs, in simulated seconds.

    Calibration targets Table 4's magnitudes: compilation dominates at
    small inputs (every candidate pays it once), measurement repetitions
    dominate at large inputs (kernel time grows with scale), which is what
    makes every tuner's cost grow with input scale.
    """

    compile_s: float = 0.15       # JIT template compilation (Triton-like)
    runs: int = 400               # warm-up + measurement iterations
    measure_budget_s: float = 8.0 # per-candidate measurement cap (slow
                                  # kernels get fewer repetitions)

    def cost_of(self, kernel_time_s: float) -> float:
        return self.compile_s + min(
            self.runs * kernel_time_s, self.measure_budget_s
        )


class PerformanceCache:
    """Measured kernel times keyed by (segment-identity, params).

    ``evaluate`` prices an entry on first sight and returns the cached time
    thereafter.  ``tuning_time_s`` accumulates the simulated cost of every
    *miss*; hits are free.  Segment identities are normalized through
    ``repr`` so they survive JSON persistence.

    Storage is a :class:`repro.plan.PlanCache` (unbounded by default); pass
    ``plans=`` to share one cache across layers and read the tuner's
    hit/miss behavior out of ``plans.stats()["kinds"]["tuner-measure"]``.
    """

    def __init__(
        self,
        cost_model: EvalCostModel | None = None,
        enabled: bool = True,
        plans: PlanCache | None = None,
    ) -> None:
        self.cost_model = cost_model or EvalCostModel()
        self.enabled = enabled
        self.plans = plans if plans is not None else PlanCache(max_entries=None)
        self.hits = 0
        self.misses = 0
        self.failures = 0
        self.tuning_time_s = 0.0

    @staticmethod
    def _norm(segment_id: Hashable) -> str:
        return segment_id if isinstance(segment_id, str) else repr(segment_id)

    @staticmethod
    def _key(norm_segment_id: str, pkey: tuple) -> PlanKey:
        return PlanKey(kind=TUNER_KIND, salt=norm_segment_id, params=pkey)

    @property
    def entries(self) -> dict[tuple[str, tuple], float]:
        """The historical ``{(segment_id, params_key): seconds}`` view."""
        return {
            (key.salt, key.params): value
            for key, value in self.plans.items()
            if key.kind == TUNER_KIND
        }

    def evaluate(
        self,
        segment_id: Hashable,
        params: dict[str, Any],
        measure: Callable[[], float],
        family: "tuple | None" = None,
    ) -> float | None:
        """Return the kernel time for (segment, params), pricing a miss.

        ``measure`` runs the device model; if it raises (infeasible launch
        configuration) the failure is cached as ``inf`` — a real tuner also
        remembers configs that failed to launch — and ``None`` is returned.

        ``family`` is an optional ``(dims, shape, guards)`` triple (see
        :data:`repro.plan.planner.Family`): a caller that knows a
        measurement transfers across a shape region — e.g. the segment's
        cost is flat while ``nnz_blocks <= K`` — shares one cached
        measurement per family, with guard failures re-measuring under a
        split instead of silently reusing a stale time.
        """
        key = self._key(self._norm(segment_id), params_key(params))
        if family is not None:
            dims, shape, guards = family
            key = self.plans.family_key(key, tuple(dims), shape, guards)
        m = current_metrics()
        if self.enabled:
            cached = self.plans.get(key, _MISSING)
            if cached is not _MISSING:
                self.hits += 1
                if m.enabled:
                    m.counter("tuner.evaluations", outcome="hit").inc()
                return None if cached == float("inf") else cached
        self.misses += 1
        try:
            t = float(measure())
        except Exception:
            self.failures += 1
            if self.enabled:
                self.plans.put(key, float("inf"))
            # A failed compile still costs compile time.
            self.tuning_time_s += self.cost_model.compile_s
            if m.enabled:
                m.counter("tuner.evaluations", outcome="failure").inc()
            return None
        if self.enabled:
            self.plans.put(key, t)
        self.tuning_time_s += self.cost_model.cost_of(t)
        if m.enabled:
            m.counter("tuner.evaluations", outcome="miss").inc()
            m.counter("tuner.simulated_cost_s").inc(self.cost_model.cost_of(t))
        return t

    def best_for(self, segment_id: Hashable) -> tuple[float, tuple] | None:
        """(best time, params key) over all cached settings of a segment."""
        norm = self._norm(segment_id)
        best: tuple[float, tuple] | None = None
        for (sid, pkey), t in self.entries.items():
            if sid != norm or t == float("inf"):
                continue
            if best is None or t < best[0]:
                best = (t, pkey)
        return best

    @property
    def evaluations(self) -> int:
        return self.hits + self.misses

    # ------------------------------------------------------------ persistence

    def save(self, path: str | Path) -> None:
        """Persist all cached measurements to JSON (warm-start later runs)."""
        payload = {
            "version": 1,
            "entries": [
                [sid, [list(kv) for kv in pkey], t if t != float("inf") else None]
                for (sid, pkey), t in self.entries.items()
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(
        cls,
        path: str | Path,
        cost_model: EvalCostModel | None = None,
        plans: PlanCache | None = None,
    ) -> "PerformanceCache":
        """Rebuild a cache from :meth:`save` output."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load performance cache from {path}: {exc}")
        if payload.get("version") != 1:
            raise ConfigError(
                f"unsupported cache version {payload.get('version')!r} in {path}"
            )
        cache = cls(cost_model=cost_model or EvalCostModel(), plans=plans)
        for sid, pkey_list, t in payload["entries"]:
            pkey = tuple(tuple(kv) for kv in pkey_list)
            cache.plans.put(
                cache._key(sid, pkey), float("inf") if t is None else float(t)
            )
        return cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PerformanceCache(entries={len(self.entries)}, hits={self.hits}, "
            f"misses={self.misses}, tuning={self.tuning_time_s:.1f}s)"
        )
