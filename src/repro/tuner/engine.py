"""The two-stage search engine (paper §4.4, Fig. 9).

Per operator chain:

1. **Initialization** — the converter's rule-based scheme (network
   hyper-parameters + operator dependencies + §3's CI+CI-at-small-scale
   heuristic).
2. **Stage 1: fusion expansion** — depth-first application of
   expand/seize/compete boundary moves; each candidate scheme is evaluated
   by sampling a fixed number of parameter settings for its changed
   segments, kept on gain and rolled back otherwise.  Schemes and settings
   already seen are served from the cache.
3. **Stage 2: reward-based parameter sampling** — a fixed per-round sample
   budget distributed across the frozen scheme's segments, re-weighted
   toward whichever segment yielded the round's best improvement.

Chains with identical operator/shape signatures share cache entries, so a
24-layer model tunes each distinct segment once — this, plus the reward
allocation, is where STOF's Table 4 advantage comes from.

Host-side bookkeeping time (hash encoding, template matching, reward
algorithm, the analytical initialization) is measured separately into
:class:`OverheadBreakdown` — the Fig. 14 data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import TuningError
from repro.core.rng import RngStream
from repro.fusion.converter import FusionSchemeConverter, OperatorChain, extract_chains
from repro.fusion.rules import apply_move, legal_moves
from repro.fusion.templates import CompilationTemplate
from repro.graph.ir import Graph
from repro.gpu.specs import GPUSpec
from repro.obs.tracer import current_tracer
from repro.plan import PlanCache
from repro.tuner.cache import EvalCostModel, PerformanceCache
from repro.tuner.sampler import RewardSampler


def segment_signature(template: CompilationTemplate) -> tuple:
    """Shape-based identity of a segment (shared across identical layers)."""
    seg = template.segment
    return tuple(
        (type(op).__name__, tuple(map(tuple, seg.in_shapes[i])))
        for i, op in enumerate(seg.ops)
    )


@dataclass
class SegmentState:
    """Best-known configuration of one segment of the final scheme."""

    start: int
    length: int
    template: CompilationTemplate
    best_time_s: float
    best_params: dict[str, Any]

    @property
    def names(self) -> str:
        return self.template.segment.names


@dataclass
class OverheadBreakdown:
    """Host-side overhead of the framework itself (Fig. 14)."""

    analytical_model_s: float = 0.0
    scheme_conversion_s: float = 0.0
    reward_algorithm_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.analytical_model_s + self.scheme_conversion_s + self.reward_algorithm_s

    def merged(self, other: "OverheadBreakdown") -> "OverheadBreakdown":
        return OverheadBreakdown(
            self.analytical_model_s + other.analytical_model_s,
            self.scheme_conversion_s + other.scheme_conversion_s,
            self.reward_algorithm_s + other.reward_algorithm_s,
        )


@dataclass
class TuningResult:
    """Outcome of tuning one chain (or, aggregated, a whole graph)."""

    scheme: tuple[int, ...]
    segments: list[SegmentState]
    estimated_time_s: float
    tuning_time_s: float
    overhead: OverheadBreakdown
    schemes_tried: int
    cache_hits: int
    cache_misses: int
    history: list[tuple[str, tuple[int, ...], float]] = field(default_factory=list)


class TwoStageEngine:
    """STOF's search engine over one graph's downstream operator chains."""

    def __init__(
        self,
        spec: GPUSpec,
        rng: RngStream | None = None,
        stage1_samples: int = 3,
        stage2_rounds: int = 4,
        stage2_total: int = 24,
        max_expansion_steps: int = 64,
        ci_chain_token_limit: int = 512,
        cost_model: EvalCostModel | None = None,
        cache: PerformanceCache | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.spec = spec
        self.rng = (rng or RngStream()).fork("two-stage-engine")
        self.stage1_samples = stage1_samples
        self.stage2_rounds = stage2_rounds
        self.stage2_total = stage2_total
        self.max_expansion_steps = max_expansion_steps
        self.ci_chain_token_limit = ci_chain_token_limit
        # Measurements live in the unified plan layer: pass ``plan_cache`` to
        # share one PlanCache across the tuner and the other planning sites.
        self.cache = cache or PerformanceCache(
            cost_model or EvalCostModel(), plans=plan_cache
        )

    # ----------------------------------------------------------- primitives

    def _measure(self, template: CompilationTemplate, params: dict[str, Any]) -> float | None:
        sig = segment_signature(template)
        return self.cache.evaluate(
            sig, params, lambda: template.estimate_time(self.spec, params)
        )

    def _eval_segment(
        self,
        template: CompilationTemplate,
        n_samples: int,
        rng: RngStream,
    ) -> tuple[float, dict[str, Any]] | None:
        """Default + ``n_samples`` random settings; best observed.

        The sample stream is keyed by the segment's *content* signature, so
        identical segments (repeated layers) draw identical candidates and
        the shared cache absorbs every repeat.
        """
        space = template.param_space()
        candidates: list[dict[str, Any]] = [template.default_params(self.spec)]
        keys = list(space)
        stream = rng.fork(f"s1-{segment_signature(template)}").generator
        for _ in range(n_samples):
            candidates.append({k: space[k][stream.integers(len(space[k]))] for k in keys})
        best: tuple[float, dict[str, Any]] | None = None
        for params in candidates:
            t = self._measure(template, params)
            if t is None:
                continue
            if best is None or t < best[0]:
                best = (t, params)
        # Fold in anything already cached for this signature (cross-layer reuse).
        cached = self.cache.best_for(segment_signature(template))
        if cached is not None and (best is None or cached[0] < best[0]):
            best = (cached[0], dict(cached[1]))
        return best

    # ----------------------------------------------------------- chain tuning

    def tune_chain(
        self, graph: Graph, chain: OperatorChain, tokens: int
    ) -> TuningResult:
        tracer = current_tracer()
        with tracer.span(
            "tune.chain", cat="tuner", ops=chain.n_ops, tokens=tokens
        ) as chain_span:
            result = self._tune_chain_inner(graph, chain, tokens, tracer)
            chain_span.add(
                scheme=list(result.scheme),
                schemes_tried=result.schemes_tried,
                cache_hits=result.cache_hits,
                cache_misses=result.cache_misses,
            ).add_model_time(result.estimated_time_s)
        return result

    def _tune_chain_inner(
        self, graph: Graph, chain: OperatorChain, tokens: int, tracer
    ) -> TuningResult:
        converter = FusionSchemeConverter(graph, chain)
        overhead = OverheadBreakdown()
        history: list[tuple[str, tuple[int, ...], float]] = []
        # Content-keyed stream: identical chains tune identically, so the
        # shared cache collapses repeated layers to free hits.
        chain_sig = str(
            [
                (type(graph.node(n).op).__name__, tuple(graph.node(n).shape))
                for n in chain.node_names
            ]
        )
        rng = self.rng.fork(f"chain-{chain_sig}")

        # ---- initialization (analytical model) ------------------------------
        t0 = time.perf_counter()
        scheme = converter.initial_scheme(
            tokens, self.ci_chain_token_limit, spec=self.spec
        )
        overhead.analytical_model_s += time.perf_counter() - t0

        seg_best: dict[tuple[int, int], tuple[float, dict[str, Any]]] = {}

        def eval_scheme(s: tuple[int, ...]) -> float | None:
            """Total best-known time of a scheme; None if infeasible."""
            templates = converter.scheme_templates(s)
            if templates is None:
                return None
            total = 0.0
            pos = 0
            for length, template in zip(s, templates):
                key = (pos, length)
                if key not in seg_best:
                    best = self._eval_segment(template, self.stage1_samples, rng)
                    if best is None:
                        return None
                    seg_best[key] = best
                total += seg_best[key][0]
                pos += length
            return total

        current = eval_scheme(scheme)
        if current is None:
            # The rule-based init produced segments with no launchable
            # setting (e.g. every candidate failed to compile): fall back to
            # fully detached execution before giving up.
            fallback = tuple(1 for _ in range(chain.n_ops))
            if fallback != scheme:
                scheme = fallback
                current = eval_scheme(scheme)
        if current is None:
            raise TuningError(
                f"no launchable configuration for chain "
                f"{chain.node_names[:3]}... even fully detached"
            )
        history.append(("init", scheme, current))

        # ---- stage 1: fusion expansion (DFS with rollback) ------------------
        tried: set[str] = {converter.key(scheme)}
        steps = 0
        improved = True
        with tracer.span("tune.stage1", cat="tuner") as s1_span:
            while improved and steps < self.max_expansion_steps:
                improved = False
                for move in legal_moves(scheme, chain.categories):
                    steps += 1
                    if steps >= self.max_expansion_steps:
                        break
                    try:
                        candidate = apply_move(scheme, move)
                    except TuningError:
                        continue
                    key = converter.key(candidate)
                    if key in tried:
                        continue
                    tried.add(key)
                    total = eval_scheme(candidate)
                    if total is None:
                        history.append((f"reject-infeasible {move.describe()}", candidate, float("inf")))
                        continue
                    if total < current:
                        scheme, current = candidate, total
                        history.append((f"accept {move.describe()}", scheme, current))
                        improved = True
                        break  # DFS: descend from the improved scheme
                    history.append((f"rollback {move.describe()}", candidate, total))
            s1_span.add(steps=steps, schemes_tried=len(tried))

        # ---- stage 2: reward-based parameter sampling -----------------------
        templates = converter.scheme_templates(scheme)
        assert templates is not None
        t0 = time.perf_counter()
        sampler = RewardSampler(
            [t.param_space() for t in templates],
            rng,
            segment_keys=[str(segment_signature(t)) for t in templates],
        )
        overhead.reward_algorithm_s += time.perf_counter() - t0

        bounds = []
        pos = 0
        for length in scheme:
            bounds.append((pos, length))
            pos += length
        best_times = [seg_best[b][0] for b in bounds]
        best_params = [dict(seg_best[b][1]) for b in bounds]

        rounds_run = 0
        with tracer.span("tune.stage2", cat="tuner") as s2_span:
            for _ in range(self.stage2_rounds):
                if sampler.exhausted:
                    break
                rounds_run += 1
                t0 = time.perf_counter()
                alloc = sampler.allocate(self.stage2_total)
                overhead.reward_algorithm_s += time.perf_counter() - t0
                improvements = [0.0] * len(templates)
                for i, (template, count) in enumerate(zip(templates, alloc)):
                    if count == 0:
                        continue
                    t0 = time.perf_counter()
                    draws = sampler.draw(i, count)
                    overhead.reward_algorithm_s += time.perf_counter() - t0
                    for params in draws:
                        t = self._measure(template, params)
                        if t is None:
                            continue
                        t0 = time.perf_counter()
                        sampler.record(i, params, t)
                        overhead.reward_algorithm_s += time.perf_counter() - t0
                        if t < best_times[i]:
                            improvements[i] = max(improvements[i], best_times[i] - t)
                            best_times[i] = t
                            best_params[i] = dict(params)
                if max(improvements, default=0.0) > 0.0:
                    t0 = time.perf_counter()
                    sampler.reward(improvements.index(max(improvements)))
                    overhead.reward_algorithm_s += time.perf_counter() - t0
            s2_span.add(rounds=rounds_run, segments=len(templates))

        overhead.scheme_conversion_s += (
            converter.stats.encode_s
            + converter.stats.decode_s
            + converter.stats.template_match_s
        )

        segments = [
            SegmentState(
                start=bounds[i][0],
                length=bounds[i][1],
                template=templates[i],
                best_time_s=best_times[i],
                best_params=best_params[i],
            )
            for i in range(len(templates))
        ]
        return TuningResult(
            scheme=scheme,
            segments=segments,
            estimated_time_s=sum(best_times),
            tuning_time_s=self.cache.tuning_time_s,
            overhead=overhead,
            schemes_tried=len(tried),
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            history=history,
        )

    # ----------------------------------------------------------- graph tuning

    def tune_graph(self, graph: Graph, tokens: int) -> dict[str, TuningResult]:
        """Tune every downstream chain; returns {first-node-name: result}.

        The shared cache makes repeated layer structures nearly free after
        the first occurrence.
        """
        results: dict[str, TuningResult] = {}
        for chain in extract_chains(graph):
            results[chain.node_names[0]] = self.tune_chain(graph, chain, tokens)
        return results

    @property
    def total_tuning_time_s(self) -> float:
        return self.cache.tuning_time_s
