"""Command-line interface.

``python -m repro <command>`` exposes the library's main workflows:

* ``masks``   — the Table-2 feature analysis for any pattern/seq-len.
* ``mha``     — compare attention methods on one masked problem.
* ``e2e``     — compare end-to-end engines on one model workload.
* ``tune``    — run the two-stage search engine and print its trace.
* ``decode``  — KV-cache generation throughput across attention methods.
* ``serve-sim`` — continuous-batching serving simulation (static vs
  continuous scheduling over a synthetic arrival trace).
* ``shard-sim`` — multi-GPU serving simulation: tensor-parallel replicas
  (ring all-reduce collectives) behind a data-parallel request router.
* ``fleet-sim`` — autoscaled multi-tenant fleet: diurnal/bursty arrivals
  over a tenant mix with shared system prompts, SLO-aware scheduling,
  and a cost/throughput frontier against fixed fleet widths.
* ``plan-cache`` — plan-cache effectiveness: the serving simulation with
  and without plan reuse, plus per-kind hit-rate statistics.
* ``trace``   — export a Chrome-trace JSON of one engine's execution plan.
* ``profile`` — run a workload under the observability layer and export
  the span tree (Chrome trace) plus metrics.
* ``report``  — collate benchmark result tables into one markdown report.
* ``devices`` — list the simulated GPU specs.

Mask selection is ``--mask`` everywhere; the historical ``--pattern``
spelling still parses but emits a :class:`DeprecationWarning`.  Likewise
``--gpu`` for ``--device``.  Configuration errors exit with status 2,
other library errors with 1 — never a traceback.

Examples::

    python -m repro masks --seq-len 1024
    python -m repro mha --mask bigbird --batch 8 --seq-len 1024
    python -m repro e2e --model bert-base --batch 8 --seq-len 512
    python -m repro tune --model bert-small --batch 1 --seq-len 128
    python -m repro profile --model bert-small --mask bigbird
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Sequence


from repro.api import ENGINES, compare_engines, compile_model
from repro.core.deprecation import warn_deprecated_option
from repro.core.errors import ConfigError, ReproError
from repro.core.rng import RngStream
from repro.core.units import format_time
from repro.gpu.specs import KNOWN_GPUS, get_spec
from repro.masks import PATTERN_REGISTRY, analyze_mask, make_pattern
from repro.mha.baselines import (
    ByteTransformerAttention,
    FlashAttention2Attention,
    FlexAttention,
    MCFuserAttention,
    NaiveAttention,
)
from repro.mha.module import UnifiedMHA
from repro.mha.problem import AttentionProblem


def _deprecated_alias(preferred: str, *aliases: str) -> type[argparse.Action]:
    """A store action that warns (once) when an old option spelling is used."""

    class _Alias(argparse.Action):
        def __call__(self, parser, namespace, values, option_string=None):
            if option_string in aliases:
                warn_deprecated_option(option_string, preferred)
            setattr(namespace, self.dest, values)

    return _Alias


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--device", "--gpu", dest="device", default="a100",
        choices=sorted(KNOWN_GPUS),
        action=_deprecated_alias("--device", "--gpu"),
        help="simulated GPU (--gpu is a deprecated alias)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_mask(
    parser: argparse.ArgumentParser,
    default: str | None,
    choices: Sequence[str] | None = None,
    help: str = "mask pattern (--pattern is a deprecated alias)",
) -> None:
    parser.add_argument(
        "--mask", "--pattern", dest="mask", default=default, choices=choices,
        action=_deprecated_alias("--mask", "--pattern"), help=help,
    )


def _add_workload_flags(parser: argparse.ArgumentParser) -> None:
    """Speculative-decoding / chunked-prefill / multi-LoRA knobs."""
    parser.add_argument("--spec-decode", type=int, default=0, metavar="K",
                        help="speculative decoding with K draft tokens "
                             "per step (0 = off)")
    parser.add_argument("--accept-rate", type=float, default=0.8,
                        help="per-token draft acceptance probability")
    parser.add_argument("--draft-cost-ratio", type=float, default=0.2,
                        help="draft-model forward cost as a fraction of "
                             "the target model's")
    parser.add_argument("--chunk-tokens", type=int, default=0,
                        help="per-step prefill token budget for chunked "
                             "prefill (0 = whole-prompt prefill)")
    parser.add_argument("--lora-adapters", type=int, default=0, metavar="N",
                        help="assign N LoRA adapters round-robin across "
                             "requests (0 = base model only)")
    parser.add_argument("--lora-rank", type=int, default=16)
    parser.add_argument("--lora-max-resident", type=int, default=8,
                        help="adapters resident in device memory before "
                             "LRU swapping")


def cmd_devices(args: argparse.Namespace) -> int:
    for key, spec in KNOWN_GPUS.items():
        print(f"{key:>10}: {spec.name} ({spec.arch}), {spec.sm_count} SMs, "
              f"{spec.memory_bytes / 2**30:.0f} GiB @ "
              f"{spec.dram_bandwidth / 1e9:.0f} GB/s")
    return 0


def cmd_masks(args: argparse.Namespace) -> int:
    from repro.masks.bsr import BlockSparseMask
    from repro.masks.viz import block_summary, render_bsr, render_mask

    rng = RngStream(args.seed)
    patterns = [args.mask] if args.mask else sorted(PATTERN_REGISTRY)
    print(f"{'pattern':>16} {'row':>11} {'column':>11} {'type':>13} {'sparsity':>9}")
    for name in patterns:
        if name not in PATTERN_REGISTRY:
            print(f"unknown pattern {name!r}", file=sys.stderr)
            return 2
        mask = make_pattern(name, args.seq_len, rng=rng.fork(name))
        stats = analyze_mask(
            mask, name, known_random=PATTERN_REGISTRY[name].uses_randomness
        )
        print(f"{name:>16} {stats.row_distribution:>11} "
              f"{stats.col_distribution:>11} {stats.sparsity_type:>13} "
              f"{stats.sparsity_ratio:>8.1%}")
        if args.show:
            print(render_mask(mask, width=args.show_width))
            bsr = BlockSparseMask.from_dense(mask, args.block, args.block)
            print(f"\nblock grid ({args.block}x{args.block}): "
                  f"{block_summary(bsr)}")
            print(render_bsr(bsr))
            print()
    return 0


def cmd_mha(args: argparse.Namespace) -> int:
    spec = get_spec(args.device)
    problem = AttentionProblem.build(
        args.mask, args.batch, args.heads, args.seq_len, args.head_size,
        rng=RngStream(args.seed),
    )
    print(f"{problem}\n")
    plan = UnifiedMHA(spec).plan(problem)
    rows = [("stof", plan.estimated_s, plan.kernel_name)]
    for kernel in (
        NaiveAttention(),
        FlashAttention2Attention(),
        FlexAttention(),
        ByteTransformerAttention(),
        MCFuserAttention(),
    ):
        ok, reason = kernel.supports(problem)
        if not ok:
            rows.append((kernel.name, None, reason))
            continue
        rows.append((kernel.name, kernel.estimate_time(problem, spec), ""))
    base = dict((n, t) for n, t, _ in rows)["pytorch-native"]
    for name, t, note in rows:
        if t is None:
            print(f"  {name:>18}: unsupported ({note})")
        else:
            print(f"  {name:>18}: {format_time(t):>10} "
                  f"({base / t:5.2f}x over native) {note}")
    return 0


def cmd_e2e(args: argparse.Namespace) -> int:
    engines = tuple(args.engines.split(",")) if args.engines else tuple(ENGINES)
    for e in engines:
        if e not in ENGINES:
            print(f"unknown engine {e!r}; known: {sorted(ENGINES)}", file=sys.stderr)
            return 2
    results = compare_engines(
        args.model, args.batch, args.seq_len,
        device=args.device, mask=args.mask, engines=engines, seed=args.seed,
    )
    base = results.get("pytorch-native")
    base_t = base.latency_s if not isinstance(base, str) and base else None
    print(f"{args.model} @ batch {args.batch}, seq {args.seq_len}, "
          f"mask {args.mask}, {get_spec(args.device).name}:\n")
    for name, c in results.items():
        if isinstance(c, str):
            print(f"  {name:>16}: {c.upper()}")
            continue
        rel = f"({base_t / c.latency_s:5.2f}x)" if base_t else ""
        tuning = f"  tuning {c.tuning_time_s:7.1f}s" if c.tuning_time_s else ""
        print(f"  {name:>16}: {format_time(c.latency_s):>10} {rel}{tuning}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    compiled = compile_model(
        args.model, args.batch, args.seq_len,
        device=args.device, mask=args.mask, engine="stof", seed=args.seed,
    )
    print(compiled.summary())
    overhead = compiled.prepared.extras["overhead"]
    print(f"\nframework overhead: {overhead.total_s * 1e3:.1f} ms "
          f"(analytical {overhead.analytical_model_s * 1e3:.1f}, "
          f"conversion {overhead.scheme_conversion_s * 1e3:.1f}, "
          f"reward {overhead.reward_algorithm_s * 1e3:.1f})")
    print("\nfused attention sites:")
    for name, binding in compiled.prepared.attention:
        print(f"  {name}: {binding.kernel.name} {binding.params or ''}")
    print("\ndownstream chains:")
    for cp in compiled.prepared.chains:
        segs = " | ".join(t.segment.names for t in cp.templates)
        print(f"  scheme {cp.scheme}: {segs}")
    return 0


def cmd_decode(args: argparse.Namespace) -> int:
    from repro.mha.decode import DECODE_METHODS, simulate_decode

    spec = get_spec(args.device)
    print(f"decode: mask {args.mask}, prompt {args.prompt}, "
          f"generate {args.generate}, batch {args.batch}, {spec.name}\n")
    for method in DECODE_METHODS:
        rep = simulate_decode(
            args.mask, spec, method,
            batch=args.batch, heads=args.heads, head_size=args.head_size,
            prompt_len=args.prompt, generate=args.generate,
            rng=RngStream(args.seed),
        )
        print(f"  {method:>16}: {rep.tokens_per_s:>12,.0f} tok/s "
              f"(mean step {format_time(rep.mean_step_s)})")
    return 0


def _workload_knobs(args: argparse.Namespace) -> tuple["Any", int, "Any"]:
    """Resolve --spec-decode/--chunk-tokens/--lora-* into config values."""
    from repro.serving import LoRAConfig, SpeculativeConfig

    spec_decode = None
    if args.spec_decode > 0:
        spec_decode = SpeculativeConfig(
            draft_tokens=args.spec_decode,
            accept_rate=args.accept_rate,
            draft_cost_ratio=args.draft_cost_ratio,
        )
    lora = None
    if args.lora_adapters > 0:
        lora = LoRAConfig(
            rank=args.lora_rank, max_resident=args.lora_max_resident
        )
    return spec_decode, args.chunk_tokens, lora


def cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.serving import (
        ServingConfig,
        assign_adapters,
        make_scheduler,
        simulate_serving,
        synthetic_trace,
    )

    spec = get_spec(args.device)
    trace = synthetic_trace(
        args.num_requests,
        args.rate,
        rng=RngStream(args.seed).fork("trace"),
        prompt_range=(args.prompt_min, args.prompt_max),
        max_new_range=(args.new_min, args.new_max),
        pattern=args.mask,
    )
    spec_decode, chunk_tokens, lora = _workload_knobs(args)
    if lora is not None:
        trace = assign_adapters(trace, args.lora_adapters)
    config = ServingConfig(
        heads=args.heads,
        head_size=args.head_size,
        n_layers=args.layers,
        kv_capacity_frac=args.kv_frac,
        kv_page_tokens=args.page_tokens,
        symbolic_plan_keys=args.symbolic_plan_keys,
        spec_decode=spec_decode,
        chunk_prefill_tokens=chunk_tokens,
        lora=lora,
    )
    policies = ("static", "continuous") if args.policy == "both" else (args.policy,)
    print(
        f"serve-sim: {args.num_requests} requests @ {args.rate:.0f} req/s, "
        f"mask {args.mask}, {spec.name}\n"
    )
    for policy in policies:
        scheduler = make_scheduler(
            policy, args.max_batch, args.max_batch_tokens
        )
        report = simulate_serving(
            trace, spec, scheduler, config, rng=RngStream(args.seed)
        )
        print(report.summary())
        print()
    return 0


def cmd_shard_sim(args: argparse.Namespace) -> int:
    from repro.parallel import (
        DEFAULT_CONTENTION,
        FleetConfig,
        ShardConfig,
        ShardedServingEngine,
        get_link,
    )
    from repro.serving import ServingConfig, synthetic_trace

    spec = get_spec(args.device)
    shard = ShardConfig(
        tp=args.tp, pp=args.pp, dp=args.dp, link=get_link(args.link),
        inter_link=get_link(args.inter_link) if args.inter_link else None,
    )
    trace = synthetic_trace(
        args.num_requests,
        args.rate,
        rng=RngStream(args.seed).fork("trace"),
        prompt_range=(args.prompt_min, args.prompt_max),
        max_new_range=(args.new_min, args.new_max),
        pattern=args.mask,
    )
    config = ServingConfig(
        heads=args.heads,
        head_size=args.head_size,
        n_layers=args.layers,
        kv_capacity_frac=args.kv_frac,
        kv_page_tokens=args.page_tokens,
        symbolic_plan_keys=args.symbolic_plan_keys,
    )
    engine = ShardedServingEngine(
        spec, args.policy, config,
        max_batch_size=args.max_batch,
        max_batch_tokens=args.max_batch_tokens,
        fleet=FleetConfig(
            shard=shard,
            route=args.route,
            overlap=not args.no_overlap,
            micro_batches=args.micro_batches,
            contention=(
                args.contention if args.contention is not None
                else DEFAULT_CONTENTION
            ),
        ),
    )
    report = engine.run(trace, rng=RngStream(args.seed))
    print(
        f"shard-sim: {args.num_requests} requests @ {args.rate:.0f} req/s, "
        f"mask {args.mask}, {shard.world_size}x {spec.name}\n"
    )
    print(report.summary())
    stats = engine.plan_cache.stats()
    print(
        f"  plan cache   : {stats['hit_rate']:.1%} hit rate "
        f"({stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['entries']} entries)"
    )
    return 0


def cmd_fleet_sim(args: argparse.Namespace) -> int:
    from repro.api import serve
    from repro.parallel import (
        FleetConfig,
        ShardConfig,
        cost_throughput_frontier,
        get_link,
    )
    from repro.serving import (
        ServingConfig,
        SLOPolicy,
        assign_adapters,
        make_scenario,
    )

    spec = get_spec(args.device)
    workload = make_scenario(
        args.scenario, n_requests=args.num_requests, rate_rps=args.rate
    )
    spec_decode, chunk_tokens, lora = _workload_knobs(args)
    if lora is not None:
        # Generate here (same stream serve() would use) so round-robin
        # adapter assignment can run over the concrete request list.
        workload = assign_adapters(
            workload.generate(RngStream(args.seed).fork("workload")),
            args.lora_adapters,
        )
    config = ServingConfig(
        heads=args.heads,
        head_size=args.head_size,
        n_layers=args.layers,
        kv_capacity_frac=args.kv_frac,
        kv_page_tokens=args.page_tokens,
        spec_decode=spec_decode,
        chunk_prefill_tokens=chunk_tokens,
        lora=lora,
    )
    fleet = FleetConfig(
        shard=ShardConfig(tp=args.tp, pp=args.pp, link=get_link(args.link)),
        autoscale=True,
        min_replicas=args.min_replicas,
        max_replicas=args.max_replicas,
        scale_up_latency_s=args.scale_up_latency,
        target_utilization=args.target_utilization,
    )
    slo = None if args.no_slo else SLOPolicy()
    print(
        f"fleet-sim: {args.scenario} scenario, {args.num_requests} requests "
        f"@ {args.rate:.0f} req/s peak-mean, {spec.name}\n"
    )
    report = serve(
        config, workload, device=spec, fleet=fleet, slo=slo, seed=args.seed,
        max_batch_size=args.max_batch, max_batch_tokens=args.max_batch_tokens,
    )
    print(report.summary())
    if args.frontier:
        trace = (
            workload if isinstance(workload, list)
            else workload.generate(RngStream(args.seed).fork("workload"))
        )
        print("\ncost/throughput frontier:")
        print(f"  {'point':>6} {'replicas':>9} {'GPU·s':>9} {'tok/s':>9} "
              f"{'tok/GPU·s':>10} {'TTFT p99':>10}")
        for pt in cost_throughput_frontier(
            spec, trace, config=config, fleet=fleet,
            dp_values=tuple(int(v) for v in args.dp_values.split(",")),
            slo=slo, rng=RngStream(args.seed),
        ):
            print(f"  {pt.label:>6} {pt.mean_replicas:>9.2f} "
                  f"{pt.gpu_s:>9.4f} {pt.tokens_per_s:>9,.0f} "
                  f"{pt.tokens_per_gpu_s:>10,.0f} "
                  f"{format_time(pt.ttft_p99_s):>10}")
    return 0


def cmd_plan_cache(args: argparse.Namespace) -> int:
    import dataclasses
    import time

    from repro.plan import PlanCache
    from repro.serving import (
        ServingConfig,
        ServingEngine,
        make_scheduler,
        synthetic_trace,
    )

    if args.load:
        cache = PlanCache(max_entries=None)
        n = cache.load(args.load)
        print(f"loaded {n} entries from {args.load}")
        kinds: dict[str, int] = {}
        for key, _ in cache.items():
            kinds[key.kind] = kinds.get(key.kind, 0) + 1
        fam_kinds = cache.stats()["symbolic"]["kinds"]
        for kind in sorted(kinds):
            fams = fam_kinds.get(kind, {}).get("families", 0)
            fam_note = f" ({fams} families)" if fams else ""
            print(f"  {kind:>16}: {kinds[kind]} entries{fam_note}")
        return 0

    spec = get_spec(args.device)
    trace = synthetic_trace(
        args.num_requests,
        args.rate,
        rng=RngStream(args.seed).fork("trace"),
        pattern=args.mask,
        prompt_range=(32, 64),
        max_new_range=(160, 256),
    )
    print(
        f"plan-cache: {args.num_requests} requests @ {args.rate:.0f} req/s, "
        f"mask {args.mask}, {spec.name}\n"
    )
    runs = {}
    for cached in (False, True):
        config = ServingConfig(
            use_plan_cache=cached,
            symbolic_plan_keys=args.symbolic_plan_keys,
        )
        engine = ServingEngine(
            spec, make_scheduler("continuous", 16, 65536), config
        )
        t0 = time.perf_counter()
        report = engine.run(trace, rng=RngStream(args.seed))
        wall = time.perf_counter() - t0
        runs[cached] = (engine, report, wall)
        label = "cache on " if cached else "cache off"
        print(f"  {label}: {wall * 1e3:8.1f} ms wall-clock "
              f"({report.total_tokens} tokens, {report.total_steps} steps)")
    _, cold_report, cold = runs[False]
    engine, warm_report, warm = runs[True]
    same = dataclasses.replace(warm_report, plan_cache=None) == cold_report
    print(f"  speedup : {cold / warm:8.2f}x   "
          f"reports identical: {'yes' if same else 'NO'}\n")

    stats = engine.plan_cache.stats()
    sym = stats["symbolic"]
    fam_kinds = sym["kinds"]
    print(f"{'kind':>16} {'hits':>8} {'misses':>8} {'hit rate':>9} "
          f"{'families':>9} {'checks':>7} {'splits':>7}")
    for kind, ks in stats["kinds"].items():
        fk = fam_kinds.get(kind, {})
        print(f"{kind:>16} {ks['hits']:>8} {ks['misses']:>8} "
              f"{ks['hit_rate']:>8.1%} {fk.get('families', 0):>9} "
              f"{fk.get('guard_checks', 0):>7} {fk.get('splits', 0):>7}")
    lookups = stats["hits"] + stats["misses"]
    checks_per = sym["guard_checks"] / lookups if lookups else 0.0
    print(f"{'total':>16} {stats['hits']:>8} {stats['misses']:>8} "
          f"{stats['hit_rate']:>8.1%} {sym['families']:>9} "
          f"{sym['guard_checks']:>7} {sym['splits']:>7}\n"
          f"  {stats['entries']} entries, {stats['evictions']} evictions, "
          f"{checks_per:.2f} guard checks per lookup")
    if args.save:
        engine.plan_cache.save(args.save)
        print(f"\nsaved {len(engine.plan_cache)} entries to {args.save}")
    return 0 if same else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.gpu.trace import export_chrome_trace

    compiled = compile_model(
        args.model, args.batch, args.seq_len,
        device=args.device, mask=args.mask, engine=args.engine, seed=args.seed,
    )
    path = export_chrome_trace(compiled.prepared, args.output)
    print(f"wrote {path} ({compiled.engine_name}, "
          f"{format_time(compiled.latency_s)} simulated)")
    print("open chrome://tracing or https://ui.perfetto.dev and load it")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer
    from repro.obs.export import (
        metrics_csv,
        prometheus_text,
        validate_chrome_trace,
        write_chrome_trace,
    )

    tracer = Tracer()
    metrics = MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        if args.workload == "compile":
            engine_kwargs = {}
            if getattr(args, "exec_backend", None):
                engine_kwargs["exec_backend"] = args.exec_backend
            compiled = compile_model(
                args.model, args.batch, args.seq_len,
                device=args.device, mask=args.mask, engine=args.engine,
                seed=args.seed, **engine_kwargs,
            )
            if engine_kwargs:
                # Functional forward pass so execution spans land in the
                # trace — for codegen, emission (cold) vs execution (every
                # call) separate into codegen.emit / codegen.exec lanes.
                compiled.run()
            meta = {
                "workload": "compile", "engine": compiled.engine_name,
                "model": args.model, "device": args.device, "mask": args.mask,
            }
            print(compiled.summary())
        else:   # serve-sim
            from repro.serving import (
                ServingConfig,
                ServingEngine,
                make_scheduler,
                synthetic_trace,
            )

            spec = get_spec(args.device)
            trace = synthetic_trace(
                args.num_requests, args.rate,
                rng=RngStream(args.seed).fork("trace"), pattern=args.mask,
            )
            engine = ServingEngine(
                spec, make_scheduler("continuous", 16, 65536), ServingConfig()
            )
            report = engine.run(trace, rng=RngStream(args.seed))
            meta = {
                "workload": "serve-sim", "policy": report.policy,
                "device": args.device, "mask": args.mask,
            }
            print(report.summary())

    path = write_chrome_trace(tracer, args.output, meta)
    print(f"\nwrote {path} ({len(tracer)} spans)")
    print("open chrome://tracing or https://ui.perfetto.dev and load it")
    if args.metrics_output:
        out = Path(args.metrics_output)
        text = (
            metrics_csv(metrics) if out.suffix == ".csv"
            else prometheus_text(metrics)
        )
        out.write_text(text)
        print(f"wrote {out}")
    if args.check:
        problems = validate_chrome_trace(json.loads(Path(path).read_text()))
        if problems:
            for problem in problems:
                print(f"trace schema: {problem}", file=sys.stderr)
            return 1
        print("trace schema: OK")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    results = Path(args.results_dir)
    files = sorted(results.glob("*.txt"))
    if not files:
        print(f"no result tables in {results}; run "
              "`pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 2
    lines = [
        "# STOF reproduction — collected results",
        "",
        "Generated from `benchmarks/results/` (see EXPERIMENTS.md for the",
        "paper-vs-measured discussion of every table).",
        "",
    ]
    for f in files:
        lines.append(f"## {f.stem}")
        lines.append("")
        lines.append("```")
        lines.append(f.read_text().rstrip())
        lines.append("```")
        lines.append("")
    out = Path(args.output)
    out.write_text("\n".join(lines))
    print(f"wrote {out} ({len(files)} tables)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STOF reproduction: sparse Transformer acceleration "
                    "on a simulated GPU.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("devices", help="list simulated GPUs")
    p.set_defaults(func=cmd_devices)

    p = sub.add_parser("masks", help="Table-2 style mask analysis")
    _add_mask(p, default=None,
              help="analyze one pattern (default: all; "
                   "--pattern is a deprecated alias)")
    p.add_argument("--seq-len", type=int, default=1024)
    p.add_argument("--show", action="store_true",
                   help="render the mask and its BSR block grid")
    p.add_argument("--show-width", type=int, default=64)
    p.add_argument("--block", type=int, default=64,
                   help="block size for the --show grid")
    _add_common(p)
    p.set_defaults(func=cmd_masks)

    p = sub.add_parser("mha", help="compare attention methods")
    _add_mask(p, default="bigbird", choices=sorted(PATTERN_REGISTRY))
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--seq-len", type=int, default=1024)
    p.add_argument("--heads", type=int, default=12)
    p.add_argument("--head-size", type=int, default=64)
    _add_common(p)
    p.set_defaults(func=cmd_mha)

    p = sub.add_parser("e2e", help="compare end-to-end engines")
    p.add_argument("--model", default="bert-base")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--seq-len", type=int, default=512)
    p.add_argument("--mask", default="bigbird")
    p.add_argument("--engines", default=None,
                   help="comma-separated subset (default: all)")
    _add_common(p)
    p.set_defaults(func=cmd_e2e)

    p = sub.add_parser("trace", help="export a Chrome-trace of a plan")
    p.add_argument("--model", default="bert-small")
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--seq-len", type=int, default=128)
    p.add_argument("--mask", default="bigbird")
    p.add_argument("--engine", default="stof")
    p.add_argument("--output", default="stof_trace.json")
    _add_common(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("report", help="collate benchmark tables to markdown")
    p.add_argument("--results-dir", default="benchmarks/results")
    p.add_argument("--output", default="REPORT.md")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("decode", help="KV-cache generation throughput")
    _add_mask(p, default="sliding_window", choices=sorted(PATTERN_REGISTRY))
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--heads", type=int, default=12)
    p.add_argument("--head-size", type=int, default=64)
    p.add_argument("--prompt", type=int, default=128)
    p.add_argument("--generate", type=int, default=128)
    _add_common(p)
    p.set_defaults(func=cmd_decode)

    p = sub.add_parser("serve-sim", help="continuous-batching serving simulation")
    p.add_argument("--policy", default="both",
                   choices=("static", "continuous", "both"))
    _add_mask(p, default="causal", choices=sorted(PATTERN_REGISTRY))
    p.add_argument("--num-requests", type=int, default=32)
    p.add_argument("--rate", type=float, default=500.0,
                   help="mean arrival rate (requests/s)")
    p.add_argument("--prompt-min", type=int, default=32)
    p.add_argument("--prompt-max", type=int, default=160)
    p.add_argument("--new-min", type=int, default=16)
    p.add_argument("--new-max", type=int, default=64)
    p.add_argument("--heads", type=int, default=12)
    p.add_argument("--head-size", type=int, default=64)
    p.add_argument("--layers", type=int, default=12)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--max-batch-tokens", type=int, default=65536)
    p.add_argument("--kv-frac", type=float, default=0.3,
                   help="fraction of device memory granted to the KV cache")
    p.add_argument("--page-tokens", type=int, default=16)
    p.add_argument("--symbolic-plan-keys", action="store_true",
                   help="share guarded decode-plan families across requests "
                        "(see docs/symbolic_shapes.md)")
    _add_workload_flags(p)
    _add_common(p)
    p.set_defaults(func=cmd_serve_sim)

    p = sub.add_parser(
        "shard-sim",
        help="multi-GPU serving simulation (tensor + data parallel)",
    )
    p.add_argument("--tp", type=int, default=2,
                   help="tensor-parallel ranks per replica")
    p.add_argument("--pp", type=int, default=1,
                   help="pipeline stages per replica (layers must divide)")
    p.add_argument("--dp", type=int, default=1,
                   help="data-parallel replicas")
    p.add_argument("--link", default="nvlink",
                   choices=("nvlink", "pcie", "ib"),
                   help="inter-GPU link for the TP collectives")
    p.add_argument("--inter-link", default=None,
                   choices=("nvlink", "pcie", "ib"),
                   help="inter-node link: makes collectives hierarchical "
                        "and carries pipeline sends")
    p.add_argument("--no-overlap", action="store_true",
                   help="serialize every collective at its sync point "
                        "(the pre-overlap pricing model)")
    p.add_argument("--micro-batches", type=int, default=None,
                   help="1F1B micro-batches per step (default: 8 when "
                        "--pp > 1, else 1)")
    p.add_argument("--contention", type=float, default=None,
                   help="overlap contention factor in [0, 1] "
                        "(default 0.25)")
    p.add_argument("--route", default="least-loaded",
                   choices=("round-robin", "least-loaded"),
                   help="request routing across DP replicas")
    p.add_argument("--policy", default="continuous",
                   choices=("static", "continuous"))
    _add_mask(p, default="causal", choices=sorted(PATTERN_REGISTRY))
    p.add_argument("--num-requests", type=int, default=32)
    p.add_argument("--rate", type=float, default=500.0,
                   help="mean arrival rate (requests/s)")
    p.add_argument("--prompt-min", type=int, default=32)
    p.add_argument("--prompt-max", type=int, default=160)
    p.add_argument("--new-min", type=int, default=16)
    p.add_argument("--new-max", type=int, default=64)
    p.add_argument("--heads", type=int, default=12)
    p.add_argument("--head-size", type=int, default=64)
    p.add_argument("--layers", type=int, default=12)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--max-batch-tokens", type=int, default=65536)
    p.add_argument("--kv-frac", type=float, default=0.3,
                   help="fraction of device memory granted to the KV cache")
    p.add_argument("--page-tokens", type=int, default=16)
    p.add_argument("--symbolic-plan-keys", action="store_true",
                   help="share guarded decode-plan families across requests "
                        "(see docs/symbolic_shapes.md)")
    _add_common(p)
    p.set_defaults(func=cmd_shard_sim)

    p = sub.add_parser(
        "fleet-sim",
        help="autoscaled multi-tenant fleet simulation with SLOs and "
             "prefix-sharing KV",
    )
    p.add_argument("--scenario", default="diurnal",
                   choices=("steady", "diurnal", "bursty"),
                   help="arrival-process shape over the default tenant mix")
    p.add_argument("--num-requests", type=int, default=48)
    p.add_argument("--rate", type=float, default=2000.0,
                   help="mean arrival rate (requests/s)")
    p.add_argument("--tp", type=int, default=1,
                   help="tensor-parallel ranks per replica")
    p.add_argument("--pp", type=int, default=1,
                   help="pipeline stages per replica")
    p.add_argument("--link", default="nvlink",
                   choices=("nvlink", "pcie", "ib"))
    p.add_argument("--min-replicas", type=int, default=1)
    p.add_argument("--max-replicas", type=int, default=8)
    p.add_argument("--scale-up-latency", type=float, default=2e-3,
                   help="seconds from scale-up decision to serving traffic")
    p.add_argument("--target-utilization", type=float, default=0.7,
                   help="fraction of probed capacity the autoscaler plans to")
    p.add_argument("--no-slo", action="store_true",
                   help="plain continuous batching instead of the "
                        "SLO-aware scheduler")
    p.add_argument("--frontier", action="store_true",
                   help="also sweep fixed DP widths vs the autoscaler")
    p.add_argument("--dp-values", default="1,2,4",
                   help="comma-separated fixed DP widths for --frontier")
    p.add_argument("--heads", type=int, default=12)
    p.add_argument("--head-size", type=int, default=64)
    p.add_argument("--layers", type=int, default=12)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--max-batch-tokens", type=int, default=65536)
    p.add_argument("--kv-frac", type=float, default=0.3)
    p.add_argument("--page-tokens", type=int, default=16)
    _add_workload_flags(p)
    _add_common(p)
    p.set_defaults(func=cmd_fleet_sim)

    p = sub.add_parser(
        "plan-cache",
        help="plan-cache effectiveness: serving sim with and without reuse",
    )
    _add_mask(p, default="causal", choices=sorted(PATTERN_REGISTRY))
    p.add_argument("--num-requests", type=int, default=12)
    p.add_argument("--rate", type=float, default=2000.0,
                   help="mean arrival rate (requests/s)")
    p.add_argument("--save", default=None,
                   help="persist the warm plan cache to this JSON file")
    p.add_argument("--load", default=None,
                   help="inspect a saved plan-cache file instead of running")
    p.add_argument("--symbolic-plan-keys", action="store_true",
                   help="share guarded decode-plan families across requests "
                        "(see docs/symbolic_shapes.md)")
    _add_common(p)
    p.set_defaults(func=cmd_plan_cache)

    p = sub.add_parser("tune", help="run STOF's two-stage tuner and inspect it")
    p.add_argument("--model", default="bert-small")
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--seq-len", type=int, default=128)
    p.add_argument("--mask", default="bigbird")
    _add_common(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "profile",
        help="run a workload under the observability layer and export "
             "spans + metrics",
    )
    p.add_argument("--workload", default="compile",
                   choices=("compile", "serve-sim"))
    p.add_argument("--model", default="bert-small")
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--seq-len", type=int, default=128)
    _add_mask(p, default="bigbird")
    p.add_argument("--engine", default="stof")
    p.add_argument("--exec-backend", default=None,
                   choices=("vectorized", "loop", "codegen"),
                   help="compile workload: also execute a forward pass "
                        "under this execution backend so kernel spans "
                        "(e.g. codegen.emit vs codegen.exec) are traced")
    p.add_argument("--num-requests", type=int, default=8,
                   help="serve-sim workload: trace size")
    p.add_argument("--rate", type=float, default=500.0,
                   help="serve-sim workload: mean arrival rate (req/s)")
    p.add_argument("--output", default="stof_profile.json",
                   help="Chrome-trace JSON output path")
    p.add_argument("--metrics-output", default=None,
                   help="also write metrics (.csv for CSV, else "
                        "Prometheus text)")
    p.add_argument("--check", action="store_true",
                   help="validate the emitted trace against the schema; "
                        "nonzero exit on problems")
    _add_common(p)
    p.set_defaults(func=cmd_profile)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    # Python hides DeprecationWarning outside __main__ by default; the
    # --gpu/--pattern alias warnings must reach terminal users.
    warnings.filterwarnings(
        "default", message=r"--\w+ is deprecated", category=DeprecationWarning
    )
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly like
        # well-behaved Unix tools do.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests/main
    raise SystemExit(main())
