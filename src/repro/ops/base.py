"""Operator abstraction.

An :class:`Operator` couples three views of one tensor computation:

* **functional** — ``compute(*arrays)`` produces real values with FP16
  storage semantics (tests verify kernels against these),
* **costed** — ``cost(in_shapes, spec, params)`` produces the
  :class:`~repro.gpu.cost.KernelCost` and :class:`~repro.gpu.cost.LaunchConfig`
  the simulated device turns into time,
* **tunable** — ``param_space()`` exposes the kernel parameters the search
  engine samples (§4.4); ``default_params`` gives the rule-based setting a
  framework would pick without tuning.

Operators are classified **CI** (compute-intensive — GEMMs) or **MI**
(memory-intensive — everything element-wise or reduction-shaped); §3.2 of
the paper builds its fusion taxonomy on this split.
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec

Shape = tuple[int, ...]


class OpCategory(enum.Enum):
    """Compute-intensive vs memory-intensive (paper §3.2)."""

    CI = "compute-intensive"
    MI = "memory-intensive"


def numel(shape: Shape) -> int:
    """Element count of a shape.

    >>> numel((2, 3, 4))
    24
    """
    n = 1
    for d in shape:
        n *= int(d)
    return n


class Operator(ABC):
    """Base class for all tensor operators.

    Subclasses set ``name`` and ``category`` and implement the three views.
    ``params`` passed to :meth:`cost` must come from :meth:`param_space` /
    :meth:`default_params`; invalid combinations raise
    :class:`~repro.core.errors.ConfigError` exactly like an over-subscribed
    CUDA launch, and tuners treat that as an infeasible sample.
    """

    name: str = "op"
    category: OpCategory = OpCategory.MI

    # --- functional view ------------------------------------------------------

    @abstractmethod
    def compute(self, *inputs: np.ndarray) -> np.ndarray:
        """Evaluate the operator on FP16-storage arrays."""

    @abstractmethod
    def infer_shape(self, *in_shapes: Shape) -> Shape:
        """Output shape from input shapes (validates arity and dims)."""

    # --- costed view ----------------------------------------------------------

    @abstractmethod
    def cost(
        self, in_shapes: Sequence[Shape], spec: GPUSpec, params: dict[str, Any]
    ) -> tuple[KernelCost, LaunchConfig]:
        """Kernel counters + launch configuration for the given shapes."""

    # --- tunable view ---------------------------------------------------------

    def param_space(self) -> dict[str, tuple]:
        """Tunable kernel parameters and their candidate values."""
        return {}

    def default_params(self, in_shapes: Sequence[Shape], spec: GPUSpec) -> dict[str, Any]:
        """Rule-based untuned parameter setting (first value of each axis)."""
        return {k: v[0] for k, v in self.param_space().items()}

    # --- misc -----------------------------------------------------------------

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        """Nominal FLOP count (used for reporting; cost() is authoritative)."""
        c, _ = self.cost(in_shapes, _REF_SPEC, self.default_params(in_shapes, _REF_SPEC))
        return c.flops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, {self.category.name})"


# A fixed spec for shape-only queries (flops()); any valid spec works since
# counters do not depend on the device.
from repro.gpu.specs import A100 as _REF_SPEC  # noqa: E402


# ---------------------------------------------------------------------------
# Shared cost builders
# ---------------------------------------------------------------------------

#: Elements processed per thread in element-wise kernels (vectorized loads).
ELEMS_PER_THREAD = 8


def elementwise_cost(
    name: str,
    n_elems: int,
    bytes_read: float,
    bytes_written: float,
    flops_per_elem: float,
    spec: GPUSpec,
    num_warps: int = 4,
) -> tuple[KernelCost, LaunchConfig]:
    """Cost of a streaming element-wise kernel.

    Grid-stride kernels: each thread handles :data:`ELEMS_PER_THREAD`
    elements; no SMEM, no barriers, purely bandwidth-shaped.
    """
    if n_elems < 1:
        raise ConfigError(f"element-wise kernel needs >= 1 element, got {n_elems}")
    threads = num_warps * spec.warp_size
    grid = max(1, math.ceil(n_elems / (threads * ELEMS_PER_THREAD)))
    cost = KernelCost(
        name=name,
        bytes_dram_read=bytes_read,
        bytes_dram_written=bytes_written,
        flops_simt=flops_per_elem * n_elems,
    )
    config = LaunchConfig(grid_blocks=grid, warps_per_block=num_warps, smem_per_block=0)
    return cost, config


def rowwise_reduction_cost(
    name: str,
    n_rows: int,
    row_len: int,
    passes_read: float,
    passes_write: float,
    flops_per_elem: float,
    spec: GPUSpec,
    rows_per_block: int = 4,
    num_warps: int = 4,
) -> tuple[KernelCost, LaunchConfig]:
    """Cost of a row-reduction kernel (Softmax, LayerNorm).

    Each block owns ``rows_per_block`` rows, stages them in SMEM, reduces
    with a small number of barrier rounds, and streams the result out.
    """
    if n_rows < 1 or row_len < 1:
        raise ConfigError(f"reduction needs positive rows/len, got {n_rows}x{row_len}")
    grid = max(1, math.ceil(n_rows / rows_per_block))
    row_bytes = row_len * FP16_BYTES
    smem_per_block = rows_per_block * row_bytes
    n_elems = n_rows * row_len
    cost = KernelCost(
        name=name,
        bytes_dram_read=passes_read * n_elems * FP16_BYTES,
        bytes_dram_written=passes_write * n_elems * FP16_BYTES,
        bytes_smem=2.0 * n_elems * FP16_BYTES,   # stage in + read back
        flops_simt=flops_per_elem * n_elems,
        sync_rounds=2.0 * math.ceil(math.log2(max(2, num_warps))),
    )
    config = LaunchConfig(
        grid_blocks=grid,
        warps_per_block=num_warps,
        smem_per_block=smem_per_block,
        pipelined=False,   # reduction reads must complete before compute
    )
    return cost, config
