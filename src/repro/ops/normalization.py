"""Row-reduction operators: LayerNorm and Softmax.

Both reduce along the last axis.  Numerics follow the standard deployed
kernels: FP32 statistics over FP16 storage, max-subtracted softmax, and the
all-masked-row convention (a row whose scores are all ``MASK_NEG``-level
still produces finite probabilities; fully *skipped* rows are only possible
in the sparse kernels, which emit zeros — see :mod:`repro.mha`).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import to_fp16
from repro.gpu.specs import GPUSpec
from repro.ops.base import (
    Operator,
    OpCategory,
    Shape,
    numel,
    rowwise_reduction_cost,
)


class _RowReduction(Operator):
    """Shared scaffolding for last-axis reductions."""

    category = OpCategory.MI
    flops_per_elem: float = 8.0
    passes_read: float = 1.0
    passes_write: float = 1.0

    def param_space(self) -> dict[str, tuple]:
        return {"rows_per_block": (4, 1, 2, 8, 16), "num_warps": (4, 1, 2, 8)}

    def default_params(self, in_shapes: Sequence[Shape], spec: GPUSpec) -> dict[str, Any]:
        return {"rows_per_block": 4, "num_warps": 4}

    def _rows_and_len(self, x_shape: Shape) -> tuple[int, int]:
        if len(x_shape) < 1:
            raise ConfigError(f"reduction input must have >= 1 dim, got {x_shape}")
        row_len = x_shape[-1]
        return numel(x_shape) // row_len, row_len

    def cost(self, in_shapes, spec, params):
        n_rows, row_len = self._rows_and_len(in_shapes[0])
        return rowwise_reduction_cost(
            self.name,
            n_rows,
            row_len,
            passes_read=self.passes_read,
            passes_write=self.passes_write,
            flops_per_elem=self.flops_per_elem,
            spec=spec,
            rows_per_block=params["rows_per_block"],
            num_warps=params["num_warps"],
        )


class LayerNorm(_RowReduction):
    """LayerNorm over the last axis with learned gain/shift.

    Inputs: ``(x, gamma, beta)``; statistics in FP32, output in FP16.
    """

    flops_per_elem = 9.0  # mean, var, normalize, scale, shift

    def __init__(self, eps: float = 1e-5, name: str = "layernorm"):
        self.name = name
        self.eps = float(eps)

    def compute(self, x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> np.ndarray:
        if gamma.shape != (x.shape[-1],) or beta.shape != (x.shape[-1],):
            raise ConfigError(
                f"LayerNorm affine shapes {gamma.shape}/{beta.shape} do not "
                f"match input {x.shape}"
            )
        xf = x.astype(np.float32)
        mean = xf.mean(axis=-1, keepdims=True)
        var = xf.var(axis=-1, keepdims=True)
        normed = (xf - mean) / np.sqrt(var + self.eps)
        return to_fp16(normed * gamma.astype(np.float32) + beta.astype(np.float32))

    def infer_shape(self, x_shape: Shape, g_shape: Shape, b_shape: Shape) -> Shape:
        if g_shape != (x_shape[-1],) or b_shape != (x_shape[-1],):
            raise ConfigError(
                f"LayerNorm affine shapes {g_shape}/{b_shape} do not match "
                f"input {x_shape}"
            )
        return x_shape


class RMSNorm(_RowReduction):
    """Root-mean-square normalization (T5-style: no mean, no shift).

    Inputs: ``(x, gamma)``.  One pass fewer statistics than LayerNorm —
    slightly lower FLOP count, same traffic shape.
    """

    flops_per_elem = 6.0  # square, mean, rsqrt, scale, gain

    def __init__(self, eps: float = 1e-6, name: str = "rmsnorm"):
        self.name = name
        self.eps = float(eps)

    def compute(self, x: np.ndarray, gamma: np.ndarray) -> np.ndarray:
        if gamma.shape != (x.shape[-1],):
            raise ConfigError(
                f"RMSNorm gain shape {gamma.shape} does not match input {x.shape}"
            )
        xf = x.astype(np.float32)
        rms = np.sqrt((xf * xf).mean(axis=-1, keepdims=True) + self.eps)
        return to_fp16(xf / rms * gamma.astype(np.float32))

    def infer_shape(self, x_shape: Shape, g_shape: Shape) -> Shape:
        if g_shape != (x_shape[-1],):
            raise ConfigError(
                f"RMSNorm gain shape {g_shape} does not match input {x_shape}"
            )
        return x_shape


class Softmax(_RowReduction):
    """Numerically stable softmax over the last axis."""

    flops_per_elem = 7.0  # max, subtract, exp, sum, divide (+reduction steps)

    def __init__(self, name: str = "softmax"):
        self.name = name

    def compute(self, x: np.ndarray) -> np.ndarray:
        xf = x.astype(np.float32)
        xmax = xf.max(axis=-1, keepdims=True)
        ex = np.exp(xf - xmax)
        denom = ex.sum(axis=-1, keepdims=True)
        return to_fp16(ex / denom)

    def infer_shape(self, x_shape: Shape) -> Shape:
        return x_shape
