"""Element-wise (memory-intensive) operators.

These are the MI side of the paper's fusion taxonomy: bias add, residual
add, activations, score scaling, and the additive mask application the
non-sparse baselines fall back to ("resetting the score matrix by
subtraction after GEMM", §3.1).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES, to_fp16
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.ops.base import Operator, OpCategory, Shape, elementwise_cost, numel

#: Additive value standing in for -inf in FP16 masked scores.  Real kernels
#: use a large negative constant because FP16 -inf poisons the softmax max.
MASK_NEG = -30000.0


class _ElementwiseBase(Operator):
    """Shared scaffolding: streaming kernels with a num_warps knob."""

    category = OpCategory.MI
    flops_per_elem: float = 1.0

    def param_space(self) -> dict[str, tuple]:
        return {"num_warps": (4, 1, 2, 8)}

    def default_params(self, in_shapes: Sequence[Shape], spec: GPUSpec) -> dict[str, Any]:
        return {"num_warps": 4}


class BiasAdd(_ElementwiseBase):
    """Broadcast bias over the last dimension: ``x + b``."""

    flops_per_elem = 1.0

    def __init__(self, name: str = "bias"):
        self.name = name

    def compute(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        if b.ndim != 1 or b.shape[0] != x.shape[-1]:
            raise ConfigError(f"bias shape {b.shape} does not match input {x.shape}")
        return to_fp16(x.astype(np.float32) + b.astype(np.float32))

    def infer_shape(self, x_shape: Shape, b_shape: Shape) -> Shape:
        if len(b_shape) != 1 or b_shape[0] != x_shape[-1]:
            raise ConfigError(f"bias shape {b_shape} does not match input {x_shape}")
        return x_shape

    def cost(self, in_shapes, spec, params):
        x_shape, b_shape = in_shapes
        n = numel(x_shape)
        return elementwise_cost(
            self.name,
            n,
            bytes_read=(n + b_shape[0]) * FP16_BYTES,
            bytes_written=n * FP16_BYTES,
            flops_per_elem=self.flops_per_elem,
            spec=spec,
            num_warps=params["num_warps"],
        )


class Add(_ElementwiseBase):
    """Residual add of two same-shaped tensors."""

    flops_per_elem = 1.0

    def __init__(self, name: str = "add"):
        self.name = name

    def compute(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if x.shape != y.shape:
            raise ConfigError(f"Add shape mismatch: {x.shape} vs {y.shape}")
        return to_fp16(x.astype(np.float32) + y.astype(np.float32))

    def infer_shape(self, x_shape: Shape, y_shape: Shape) -> Shape:
        if x_shape != y_shape:
            raise ConfigError(f"Add shape mismatch: {x_shape} vs {y_shape}")
        return x_shape

    def cost(self, in_shapes, spec, params):
        n = numel(in_shapes[0])
        return elementwise_cost(
            self.name,
            n,
            bytes_read=2 * n * FP16_BYTES,
            bytes_written=n * FP16_BYTES,
            flops_per_elem=self.flops_per_elem,
            spec=spec,
            num_warps=params["num_warps"],
        )


class _UnaryActivation(_ElementwiseBase):
    """Shared cost shape for one-in one-out activations."""

    def infer_shape(self, x_shape: Shape) -> Shape:
        return x_shape

    def cost(self, in_shapes, spec, params):
        n = numel(in_shapes[0])
        return elementwise_cost(
            self.name,
            n,
            bytes_read=n * FP16_BYTES,
            bytes_written=n * FP16_BYTES,
            flops_per_elem=self.flops_per_elem,
            spec=spec,
            num_warps=params["num_warps"],
        )


class Gelu(_UnaryActivation):
    """GELU activation (tanh approximation, as deployed kernels use)."""

    flops_per_elem = 12.0

    def __init__(self, name: str = "gelu"):
        self.name = name

    def compute(self, x: np.ndarray) -> np.ndarray:
        xf = x.astype(np.float32)
        inner = np.sqrt(2.0 / np.pi) * (xf + 0.044715 * xf**3)
        return to_fp16(0.5 * xf * (1.0 + np.tanh(inner)))


class Relu(_UnaryActivation):
    """ReLU activation."""

    flops_per_elem = 1.0

    def __init__(self, name: str = "relu"):
        self.name = name

    def compute(self, x: np.ndarray) -> np.ndarray:
        return to_fp16(np.maximum(x.astype(np.float32), 0.0))


class Scale(_UnaryActivation):
    """Multiply by a compile-time scalar (attention's ``1/sqrt(head_size)``)."""

    flops_per_elem = 1.0

    def __init__(self, factor: float, name: str = "scale"):
        self.name = name
        self.factor = float(factor)

    def compute(self, x: np.ndarray) -> np.ndarray:
        return to_fp16(x.astype(np.float32) * self.factor)


class Identity(_UnaryActivation):
    """No-op placeholder (dropout at inference time).

    Zero-cost: graph rewrites eliminate it; if executed it charges nothing.
    """

    flops_per_elem = 0.0

    def __init__(self, name: str = "identity"):
        self.name = name

    def compute(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x)

    def cost(self, in_shapes, spec, params):
        cost = KernelCost(name=self.name, launches=0)
        return cost, LaunchConfig(grid_blocks=1, warps_per_block=1)


class MaskAdd(_ElementwiseBase):
    """Additive mask application on a score tensor.

    ``scores + where(mask, 0, MASK_NEG)`` broadcast over leading batch/head
    dims — the fallback path of every baseline that lacks native sparse-mask
    support.  Reads the full score tensor plus the boolean mask (1 byte per
    element on device) and writes the full tensor back: this round trip is
    exactly the traffic the paper's fused kernels eliminate.
    """

    flops_per_elem = 2.0

    def __init__(self, name: str = "mask_add"):
        self.name = name

    def compute(self, scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
        if mask.shape != scores.shape[-2:]:
            raise ConfigError(
                f"mask shape {mask.shape} does not match scores {scores.shape}"
            )
        bias = np.where(mask, 0.0, MASK_NEG).astype(np.float32)
        return to_fp16(scores.astype(np.float32) + bias)

    def infer_shape(self, s_shape: Shape, m_shape: Shape) -> Shape:
        if tuple(m_shape) != tuple(s_shape[-2:]):
            raise ConfigError(
                f"mask shape {m_shape} does not match scores {s_shape}"
            )
        return s_shape

    def cost(self, in_shapes, spec, params):
        s_shape, m_shape = in_shapes
        n = numel(s_shape)
        return elementwise_cost(
            self.name,
            n,
            bytes_read=n * FP16_BYTES + numel(m_shape) * 1,  # bool mask: 1 B/elem
            bytes_written=n * FP16_BYTES,
            flops_per_elem=self.flops_per_elem,
            spec=spec,
            num_warps=params["num_warps"],
        )
