"""Tensor operator library.

Every Transformer building block the paper's downstream-operator fusion
works over: GEMM (the CI anchor), bias/residual/activation element-wise ops,
LayerNorm and Softmax reductions, and embedding lookup.  Each operator is
both *functional* (computes real FP16-storage NumPy values) and *costed*
(reports a :class:`~repro.gpu.cost.KernelCost` + launch configuration for
the simulated device), with a tunable parameter space — the raw material of
the fusion templates and the two-stage search engine.
"""

from repro.ops.base import Operator, OpCategory, elementwise_cost, rowwise_reduction_cost
from repro.ops.gemm import Gemm, BatchedGemm
from repro.ops.elementwise import BiasAdd, Add, Gelu, Relu, Scale, MaskAdd, Identity
from repro.ops.normalization import LayerNorm, RMSNorm, Softmax
from repro.ops.embedding import Embedding
from repro.ops.movement import SplitHeads, MergeHeads, TransposeLast2, Reshape

__all__ = [
    "Operator",
    "OpCategory",
    "elementwise_cost",
    "rowwise_reduction_cost",
    "Gemm",
    "BatchedGemm",
    "BiasAdd",
    "Add",
    "Gelu",
    "Relu",
    "Scale",
    "MaskAdd",
    "Identity",
    "LayerNorm",
    "RMSNorm",
    "Softmax",
    "Embedding",
    "SplitHeads",
    "MergeHeads",
    "TransposeLast2",
    "Reshape",
]
