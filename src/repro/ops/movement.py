"""Data-movement operators: head splitting/merging and transposes.

Real frameworks materialize these as copies when a downstream GEMM needs
contiguous operands, so they are MI ops with pure read+write traffic.
Fused engines absorb them into the attention kernel (strided loads) — the
runtime elides them around fused MHA nodes.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES, to_fp16
from repro.gpu.specs import GPUSpec
from repro.ops.base import Operator, OpCategory, Shape, elementwise_cost, numel


class _CopyBase(Operator):
    """Shared scaffolding for copy-shaped movement ops."""

    category = OpCategory.MI

    def param_space(self) -> dict[str, tuple]:
        return {"num_warps": (4, 1, 2, 8)}

    def default_params(self, in_shapes: Sequence[Shape], spec: GPUSpec) -> dict[str, Any]:
        return {"num_warps": 4}

    def cost(self, in_shapes, spec, params):
        n = numel(in_shapes[0])
        return elementwise_cost(
            self.name,
            n,
            bytes_read=n * FP16_BYTES,
            bytes_written=n * FP16_BYTES,
            flops_per_elem=0.0,
            spec=spec,
            num_warps=params["num_warps"],
        )


class SplitHeads(_CopyBase):
    """``(B*S, H) -> (B*heads, S, head_size)`` head split (copy).

    >>> import numpy as np
    >>> op = SplitHeads(batch=2, seq_len=3, heads=2)
    >>> op.infer_shape((6, 8))
    (4, 3, 4)
    """

    def __init__(self, batch: int, seq_len: int, heads: int, name: str = "split_heads"):
        self.name = name
        self.batch = int(batch)
        self.seq_len = int(seq_len)
        self.heads = int(heads)

    def _head_size(self, hidden: int) -> int:
        if hidden % self.heads != 0:
            raise ConfigError(
                f"hidden {hidden} not divisible by heads {self.heads}"
            )
        return hidden // self.heads

    def compute(self, x: np.ndarray) -> np.ndarray:
        b, s, h = self.batch, self.seq_len, self.heads
        if x.shape[0] != b * s:
            raise ConfigError(f"expected leading dim {b * s}, got {x.shape}")
        d = self._head_size(x.shape[1])
        return to_fp16(
            x.reshape(b, s, h, d).transpose(0, 2, 1, 3).reshape(b * h, s, d)
        )

    def infer_shape(self, x_shape: Shape) -> Shape:
        b, s, h = self.batch, self.seq_len, self.heads
        if len(x_shape) != 2 or x_shape[0] != b * s:
            raise ConfigError(
                f"SplitHeads expects ({b * s}, hidden), got {x_shape}"
            )
        d = self._head_size(x_shape[1])
        return (b * h, s, d)


class MergeHeads(_CopyBase):
    """``(B*heads, S, head_size) -> (B*S, H)`` head merge (copy)."""

    def __init__(self, batch: int, seq_len: int, heads: int, name: str = "merge_heads"):
        self.name = name
        self.batch = int(batch)
        self.seq_len = int(seq_len)
        self.heads = int(heads)

    def compute(self, x: np.ndarray) -> np.ndarray:
        b, s, h = self.batch, self.seq_len, self.heads
        if x.shape[0] != b * h or x.shape[1] != s:
            raise ConfigError(f"expected ({b * h}, {s}, d), got {x.shape}")
        d = x.shape[2]
        return to_fp16(
            x.reshape(b, h, s, d).transpose(0, 2, 1, 3).reshape(b * s, h * d)
        )

    def infer_shape(self, x_shape: Shape) -> Shape:
        b, s, h = self.batch, self.seq_len, self.heads
        if len(x_shape) != 3 or x_shape[0] != b * h or x_shape[1] != s:
            raise ConfigError(
                f"MergeHeads expects ({b * h}, {s}, d), got {x_shape}"
            )
        return (b * s, h * x_shape[2])


class Reshape(Operator):
    """Free reshape (a metadata-only view; no kernel, no traffic)."""

    category = OpCategory.MI

    def __init__(self, target: Shape, name: str = "reshape"):
        self.name = name
        self.target = tuple(int(d) for d in target)

    def compute(self, x: np.ndarray) -> np.ndarray:
        if numel(x.shape) != numel(self.target):
            raise ConfigError(
                f"cannot reshape {x.shape} ({numel(x.shape)} elems) to "
                f"{self.target} ({numel(self.target)} elems)"
            )
        return np.ascontiguousarray(x).reshape(self.target)

    def infer_shape(self, x_shape: Shape) -> Shape:
        if numel(x_shape) != numel(self.target):
            raise ConfigError(
                f"cannot reshape {x_shape} to {self.target}: element counts differ"
            )
        return self.target

    def cost(self, in_shapes, spec, params):
        from repro.gpu.cost import KernelCost, LaunchConfig

        return (
            KernelCost(name=self.name, launches=0),
            LaunchConfig(grid_blocks=1, warps_per_block=1),
        )

    def param_space(self) -> dict[str, tuple]:
        return {}


class TransposeLast2(_CopyBase):
    """Swap the last two axes with a materializing copy (for K^T)."""

    def __init__(self, name: str = "transpose"):
        self.name = name

    def compute(self, x: np.ndarray) -> np.ndarray:
        return to_fp16(np.ascontiguousarray(np.swapaxes(x, -1, -2)))

    def infer_shape(self, x_shape: Shape) -> Shape:
        if len(x_shape) < 2:
            raise ConfigError(f"TransposeLast2 needs >= 2 dims, got {x_shape}")
        return x_shape[:-2] + (x_shape[-1], x_shape[-2])
