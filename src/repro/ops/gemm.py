"""GEMM operators — the compute-intensive anchors of every fusion scheme.

:class:`Gemm` multiplies an activation ``(B, M, K)`` (or ``(M, K)``) by a
shared weight ``(K, N)``; :class:`BatchedGemm` multiplies two batched
operands (attention's ``Q @ K^T`` and ``P @ V`` in the unfused baselines).

The cost model is a tensor-core tiled GEMM: the grid is one block per
``(BLOCK_M, BLOCK_N)`` output tile, operand tiles stream DRAM → SMEM →
registers with ``num_stages``-deep async-copy pipelining, and operand
*re*-reads across tiles hit L2 when the operand fits there (the classic
reuse pattern the simulated L2 path exists for).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES, fp16_matmul
from repro.gpu.cost import KernelCost, LaunchConfig
from repro.gpu.specs import GPUSpec
from repro.ops.base import Operator, OpCategory, Shape

#: K-dimension chunk staged per pipeline step.
BLOCK_K = 32


def _as_bmk(shape: Shape) -> tuple[int, int, int]:
    """Normalize an activation shape to (batch, M, K)."""
    if len(shape) == 2:
        return 1, shape[0], shape[1]
    if len(shape) == 3:
        return shape[0], shape[1], shape[2]
    raise ConfigError(f"GEMM activation must be 2-D or 3-D, got {shape}")


def gemm_cost(
    name: str,
    batch: int,
    m: int,
    n: int,
    k: int,
    spec: GPUSpec,
    block_m: int,
    block_n: int,
    num_warps: int,
    num_stages: int,
    batched_rhs: bool,
) -> tuple[KernelCost, LaunchConfig]:
    """Shared cost builder for plain and batched GEMM."""
    if block_m < 16 or block_n < 16:
        raise ConfigError(f"GEMM blocks must be >= 16, got ({block_m}, {block_n})")
    tiles_m = math.ceil(m / block_m)
    tiles_n = math.ceil(n / block_n)
    grid = batch * tiles_m * tiles_n

    a_bytes = batch * m * k * FP16_BYTES
    w_batch = batch if batched_rhs else 1
    w_bytes = w_batch * k * n * FP16_BYTES
    out_bytes = batch * m * n * FP16_BYTES

    # First pass of each operand comes from DRAM; the (tiles - 1) re-reads
    # hit L2 when the operand fits there, else fall back to DRAM.
    a_reread = a_bytes * (tiles_n - 1)
    w_reread = w_bytes * (tiles_m - 1) * (1 if batched_rhs else batch)
    a_in_l2 = a_bytes <= spec.l2_bytes
    w_in_l2 = w_bytes <= spec.l2_bytes
    dram_read = a_bytes + w_bytes
    l2_read = 0.0
    if a_in_l2:
        l2_read += a_reread
    else:
        dram_read += a_reread
    if w_in_l2:
        l2_read += w_reread
    else:
        dram_read += w_reread

    total_tile_loads = a_bytes + a_reread + w_bytes + w_reread
    smem_per_block = num_stages * (block_m + block_n) * BLOCK_K * FP16_BYTES

    cost = KernelCost(
        name=name,
        bytes_dram_read=dram_read,
        bytes_dram_written=out_bytes,
        bytes_l2_read=l2_read,
        bytes_smem=2.0 * total_tile_loads,   # SMEM write + read per staged byte
        bank_conflict_factor=1.0,            # vendor-grade swizzled layout
        flops_tensor=2.0 * batch * m * n * k,
        sync_rounds=math.ceil(k / BLOCK_K) / max(1, num_stages),
    )
    config = LaunchConfig(
        grid_blocks=grid,
        warps_per_block=num_warps,
        smem_per_block=smem_per_block,
        pipelined=num_stages >= 2,
    )
    return cost, config


_GEMM_PARAM_SPACE: dict[str, tuple] = {
    "block_m": (64, 16, 32, 128),
    "block_n": (64, 16, 32, 128),
    "num_warps": (4, 1, 2, 8),
    "num_stages": (2, 1, 3, 4),
}


class Gemm(Operator):
    """Activation x shared-weight GEMM: ``(B, M, K) @ (K, N) -> (B, M, N)``."""

    category = OpCategory.CI

    def __init__(self, name: str = "gemm"):
        self.name = name

    def compute(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        if w.ndim != 2:
            raise ConfigError(f"Gemm weight must be 2-D, got {w.shape}")
        if x.shape[-1] != w.shape[0]:
            raise ConfigError(
                f"Gemm inner dims mismatch: {x.shape} @ {w.shape}"
            )
        return fp16_matmul(x, w)

    def infer_shape(self, x_shape: Shape, w_shape: Shape) -> Shape:
        if len(w_shape) != 2:
            raise ConfigError(f"Gemm weight must be 2-D, got {w_shape}")
        if x_shape[-1] != w_shape[0]:
            raise ConfigError(f"Gemm inner dims mismatch: {x_shape} @ {w_shape}")
        return x_shape[:-1] + (w_shape[1],)

    def cost(
        self, in_shapes: Sequence[Shape], spec: GPUSpec, params: dict[str, Any]
    ) -> tuple[KernelCost, LaunchConfig]:
        x_shape, w_shape = in_shapes
        b, m, k = _as_bmk(x_shape)
        n = w_shape[1]
        return gemm_cost(
            self.name, b, m, n, k, spec,
            block_m=params["block_m"],
            block_n=params["block_n"],
            num_warps=params["num_warps"],
            num_stages=params["num_stages"],
            batched_rhs=False,
        )

    def param_space(self) -> dict[str, tuple]:
        return dict(_GEMM_PARAM_SPACE)

    def default_params(self, in_shapes: Sequence[Shape], spec: GPUSpec) -> dict[str, Any]:
        x_shape, w_shape = in_shapes
        _, m, _ = _as_bmk(x_shape)
        n = w_shape[1]
        # Rule a framework would apply: shrink tiles for small problems so the
        # grid is not degenerate.
        return {
            "block_m": 64 if m >= 64 else 16,
            "block_n": 64 if n >= 64 else 16,
            "num_warps": 4,
            "num_stages": 2,
        }


class BatchedGemm(Operator):
    """Batched GEMM: ``(B, M, K) @ (B, K, N) -> (B, M, N)``.

    The unfused attention baselines use this for score (``Q @ K^T``) and
    context (``P @ V``) products; both operands are per-batch.
    """

    category = OpCategory.CI

    def __init__(self, name: str = "bgemm"):
        self.name = name

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim != b.ndim or a.ndim < 3:
            raise ConfigError(
                f"BatchedGemm needs matching >=3-D operands, got {a.shape}, {b.shape}"
            )
        if a.shape[:-2] != b.shape[:-2] or a.shape[-1] != b.shape[-2]:
            raise ConfigError(f"BatchedGemm shape mismatch: {a.shape} @ {b.shape}")
        return fp16_matmul(a, b)

    def infer_shape(self, a_shape: Shape, b_shape: Shape) -> Shape:
        if len(a_shape) != len(b_shape) or len(a_shape) < 3:
            raise ConfigError(
                f"BatchedGemm needs matching >=3-D shapes, got {a_shape}, {b_shape}"
            )
        if a_shape[:-2] != b_shape[:-2] or a_shape[-1] != b_shape[-2]:
            raise ConfigError(f"BatchedGemm shape mismatch: {a_shape} @ {b_shape}")
        return a_shape[:-1] + (b_shape[-1],)

    def cost(
        self, in_shapes: Sequence[Shape], spec: GPUSpec, params: dict[str, Any]
    ) -> tuple[KernelCost, LaunchConfig]:
        a_shape, b_shape = in_shapes
        batch = 1
        for d in a_shape[:-2]:
            batch *= d
        m, k = a_shape[-2], a_shape[-1]
        n = b_shape[-1]
        return gemm_cost(
            self.name, batch, m, n, k, spec,
            block_m=params["block_m"],
            block_n=params["block_n"],
            num_warps=params["num_warps"],
            num_stages=params["num_stages"],
            batched_rhs=True,
        )

    def param_space(self) -> dict[str, tuple]:
        return dict(_GEMM_PARAM_SPACE)

    def default_params(self, in_shapes: Sequence[Shape], spec: GPUSpec) -> dict[str, Any]:
        a_shape, _ = in_shapes
        m = a_shape[-2]
        return {
            "block_m": 64 if m >= 64 else 16,
            "block_n": 64,
            "num_warps": 4,
            "num_stages": 2,
        }
