"""Embedding lookup — the gather at the front of every model graph."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.core.fp16 import FP16_BYTES, to_fp16
from repro.gpu.specs import GPUSpec
from repro.ops.base import Operator, OpCategory, Shape, elementwise_cost, numel


class Embedding(Operator):
    """Token-id gather: ``table[ids]``.

    Inputs: ``(ids, table)`` where ids is integer ``(B, M)`` and table is
    ``(vocab, hidden)``.  Purely bandwidth: one gathered read of
    ``B*M*hidden`` elements plus the write.
    """

    category = OpCategory.MI

    def __init__(self, name: str = "embedding"):
        self.name = name

    def compute(self, ids: np.ndarray, table: np.ndarray) -> np.ndarray:
        if not np.issubdtype(ids.dtype, np.integer):
            raise ConfigError(f"embedding ids must be integer, got {ids.dtype}")
        if ids.min() < 0 or ids.max() >= table.shape[0]:
            raise ConfigError(
                f"embedding ids out of range [0, {table.shape[0]})"
            )
        return to_fp16(table[ids])

    def infer_shape(self, ids_shape: Shape, table_shape: Shape) -> Shape:
        if len(table_shape) != 2:
            raise ConfigError(f"embedding table must be 2-D, got {table_shape}")
        return tuple(ids_shape) + (table_shape[1],)

    def cost(self, in_shapes, spec, params):
        ids_shape, table_shape = in_shapes
        hidden = table_shape[1]
        n = numel(ids_shape) * hidden
        return elementwise_cost(
            self.name,
            n,
            bytes_read=n * FP16_BYTES + numel(ids_shape) * 4,  # int32 ids
            bytes_written=n * FP16_BYTES,
            flops_per_elem=0.0,
            spec=spec,
            num_warps=params["num_warps"],
        )

    def param_space(self) -> dict[str, tuple]:
        return {"num_warps": (4, 1, 2, 8)}

    def default_params(self, in_shapes: Sequence[Shape], spec: GPUSpec) -> dict[str, Any]:
        return {"num_warps": 4}
