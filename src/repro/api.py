"""High-level one-call API.

For users who want the paper's workflow without assembling the pieces:

>>> from repro.api import compile_model
>>> compiled = compile_model("bert-small", batch=1, seq_len=64,
...                          device="a100", mask="bigbird")
>>> compiled.engine_name
'stof'
>>> compiled.latency_s > 0
True

``compile_model`` builds the model graph, generates (or accepts) the
mask, prepares it under the chosen engine, and returns a
:class:`CompiledModel` that can report simulated latency, execute
functionally, and summarize itself.  ``compare_engines`` sweeps several
engines over one workload — the one-liner behind Fig. 12-style studies.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Mapping

import numpy as np

from repro.core.deprecation import warn_deprecated_kw
from repro.core.errors import ConfigError
from repro.core.rng import RngStream
from repro.core.units import format_time
from repro.gpu.specs import GPUSpec, get_spec
from repro.masks.patterns import causal_mask, make_pattern
from repro.models.build import ModelInstance, build_model
from repro.models.config import ModelConfig, get_model_config
from repro.obs.tracer import Tracer, use_tracer
from repro.plan import PlanCache
from repro.runtime.executor import EngineReport, PreparedModel
from repro.runtime.frameworks import (
    BoltEngine,
    ByteTransformerEngine,
    Engine,
    MCFuserEngine,
    PyTorchCompileEngine,
    PyTorchNativeEngine,
)
from repro.runtime.stof import STOFEngine

#: Engine registry for string lookup.
ENGINES: dict[str, type[Engine]] = {
    "stof": STOFEngine,
    "pytorch-native": PyTorchNativeEngine,
    "pytorch-compile": PyTorchCompileEngine,
    "bytetransformer": ByteTransformerEngine,
    "bolt": BoltEngine,
    "mcfuser": MCFuserEngine,
}


@dataclass
class CompiledModel:
    """A model prepared under one engine, ready to inspect or run."""

    instance: ModelInstance
    prepared: PreparedModel
    report: EngineReport
    masks: dict[str, np.ndarray]
    seed: int

    @property
    def engine_name(self) -> str:
        return self.prepared.engine_name

    @property
    def latency_s(self) -> float:
        """Simulated forward-pass latency."""
        return self.report.time_s

    @property
    def tuning_time_s(self) -> float:
        return self.report.tuning_time_s

    def run(self, inputs: Mapping[str, np.ndarray] | None = None) -> np.ndarray:
        """Functional forward pass; random token ids when inputs omitted."""
        if inputs is None:
            inputs = self.instance.make_inputs(
                self.masks, rng=RngStream(self.seed).fork("api-inputs")
            )
        return self.prepared.execute(dict(inputs))

    def summary(self) -> str:
        """Human-readable one-screen description."""
        r = self.report
        lines = [
            f"{self.instance.config.name} @ batch {self.instance.batch}, "
            f"seq {self.instance.seq_len} on {self.prepared.spec.name}",
            f"engine: {self.engine_name}",
            f"latency: {format_time(r.time_s)} "
            f"(mha {format_time(r.mha_time_s)}, "
            f"downstream {format_time(r.downstream_time_s)})",
            f"kernel launches: {r.kernel_launches}",
            f"memory: {r.memory_bytes / 2**30:.2f} GiB",
        ]
        if r.tuning_time_s:
            lines.append(f"tuning: {r.tuning_time_s:.1f} s (simulated)")
        return "\n".join(lines)


def _resolve_masks(
    mask: str | np.ndarray,
    inst: ModelInstance,
    seed: int,
) -> tuple[dict[str, np.ndarray], dict[str, str]]:
    """Instantiate one mask spec for every mask input of the model."""
    seq = inst.seq_len
    masks: dict[str, np.ndarray] = {}
    patterns: dict[str, str] = {}
    rng = RngStream(seed).fork("api-mask")
    if isinstance(mask, str):
        base = make_pattern(mask, seq, rng=rng)
        base_pattern = mask
    else:
        base = np.asarray(mask, dtype=bool)
        if base.shape != (seq, seq):
            raise ConfigError(
                f"mask array must be ({seq}, {seq}), got {base.shape}"
            )
        base_pattern = "custom"
    for name in inst.mask_inputs:
        if name == "cross_mask":
            masks[name] = np.ones((seq, seq), dtype=bool)
            patterns[name] = "custom"
        elif name == "dec_mask" or (
            name == "mask" and inst.config.is_decoder_only
        ):
            masks[name] = base & causal_mask(seq)
            patterns[name] = "custom"
        else:
            masks[name] = base
            patterns[name] = base_pattern
    return masks, patterns


def _pop_legacy(
    kwargs: dict[str, Any], old: str, new: str, explicit: bool
) -> Any:
    """Resolve a renamed keyword: warn on the old spelling, reject both."""
    if old not in kwargs:
        return _UNSET
    value = kwargs.pop(old)
    if explicit:
        raise ConfigError(f"got both {new!r} and its deprecated alias {old!r}")
    # stacklevel 3: above this frame and the public API function, i.e. the
    # user's own call site.
    warn_deprecated_kw(old, new, stacklevel=3)
    return value


_UNSET = object()


def compile_model(
    model: str | ModelConfig,
    batch: int,
    seq_len: int,
    device: str | GPUSpec | None = None,
    mask: str | np.ndarray | None = None,
    engine: str | Engine = "stof",
    seed: int = 0,
    check_memory: bool = True,
    plan_cache: PlanCache | None = None,
    trace: Tracer | None = None,
    parallel: Any = None,
    **engine_kwargs: Any,
) -> CompiledModel:
    """Build, mask, prepare, and plan a model in one call.

    ``model`` is a zoo name (``"bert-base"``...) or a custom
    :class:`ModelConfig`; ``mask`` a registered pattern name or an explicit
    boolean array (default ``"bigbird"``); ``device`` a spec name or
    :class:`GPUSpec` (default ``"a100"``); ``engine`` a registry name or an
    :class:`Engine` instance.  Raises the same
    :class:`UnsupportedInputError` / :class:`DeviceOutOfMemoryError` the
    engines raise.  The historical ``gpu=`` / ``pattern=`` spellings still
    work but emit a :class:`DeprecationWarning`.

    ``plan_cache`` (optional) is a shared :class:`repro.plan.PlanCache`:
    planning decisions are looked up there before being recomputed, so
    compiling several related workloads amortizes repeated layer plans,
    and ``plan_cache.stats()`` afterwards shows what was reused.

    ``trace`` (optional) is a :class:`repro.obs.Tracer` activated for the
    duration of the call: planner, tuner, and kernel-timeline spans land
    in it (see ``docs/observability.md``).

    ``parallel`` (optional) is a shard layout — a
    :class:`repro.parallel.ShardConfig` or a spec string like ``"tp4"``,
    ``"tp2pp2"``, ``"tp2dp2:pcie"``, or ``"tp4pp2:nvlink,ib"`` — switching
    to Megatron-style tensor/pipeline-parallel compilation: one rank's
    shard is planned and the layout's collectives are added on top,
    bucketed and overlapped with compute by default (see
    ``docs/sharding.md``).  Extra keywords ``overlap=`` (``False``
    restores the serialized sync-point model), ``micro_batches=`` and
    ``contention=`` ride through to
    :func:`repro.parallel.compile.compile_sharded`.  The result is a
    :class:`repro.parallel.ShardedCompiledModel`.
    """
    legacy_device = _pop_legacy(engine_kwargs, "gpu", "device", device is not None)
    if legacy_device is not _UNSET:
        device = legacy_device
    legacy_mask = _pop_legacy(engine_kwargs, "pattern", "mask", mask is not None)
    if legacy_mask is not _UNSET:
        mask = legacy_mask
    device = "a100" if device is None else device
    mask = "bigbird" if mask is None else mask

    if parallel is not None:
        # Lazy import: repro.parallel depends on this module.
        from repro.parallel.compile import compile_sharded

        return compile_sharded(
            model, batch, seq_len, parallel,
            device=device, mask=mask, engine=engine, seed=seed,
            check_memory=check_memory, plan_cache=plan_cache, trace=trace,
            **engine_kwargs,
        )

    with use_tracer(trace) if trace is not None else nullcontext():
        cfg = get_model_config(model) if isinstance(model, str) else model
        spec = get_spec(device) if isinstance(device, str) else device
        inst = build_model(cfg, batch, seq_len, seed=seed)
        masks, patterns = _resolve_masks(mask, inst, seed)

        if isinstance(engine, str):
            key = engine.strip().lower()
            if key not in ENGINES:
                raise ConfigError(
                    f"unknown engine {engine!r}; known: {sorted(ENGINES)}"
                )
            engine = ENGINES[key](**engine_kwargs)
        prepared = engine.prepare(inst, spec, masks, patterns)
        if plan_cache is not None:
            prepared.plan_cache = plan_cache
        report = prepared.plan(check_memory=check_memory)
    return CompiledModel(
        instance=inst, prepared=prepared, report=report, masks=masks, seed=seed
    )


def compare_engines(
    model: str | ModelConfig,
    batch: int,
    seq_len: int,
    device: str | GPUSpec | None = None,
    mask: str | np.ndarray | None = None,
    engines: tuple[str, ...] = tuple(ENGINES),
    seed: int = 0,
    **legacy: Any,
) -> dict[str, CompiledModel | str]:
    """Compile one workload under several engines.

    Returns ``{engine: CompiledModel}``, with ``"unsupported"`` /
    ``"oom"`` strings for engines that cannot run the workload (the
    missing bars of the paper's figures).  ``gpu=`` / ``pattern=`` are
    deprecated aliases of ``device=`` / ``mask=``.
    """
    from repro.core.errors import DeviceOutOfMemoryError, UnsupportedInputError

    legacy_device = _pop_legacy(legacy, "gpu", "device", device is not None)
    if legacy_device is not _UNSET:
        device = legacy_device
    legacy_mask = _pop_legacy(legacy, "pattern", "mask", mask is not None)
    if legacy_mask is not _UNSET:
        mask = legacy_mask
    if legacy:
        raise TypeError(
            f"compare_engines() got unexpected keyword arguments "
            f"{sorted(legacy)}"
        )
    device = "a100" if device is None else device
    mask = "bigbird" if mask is None else mask

    out: dict[str, CompiledModel | str] = {}
    for name in engines:
        try:
            out[name] = compile_model(
                model, batch, seq_len, device=device, mask=mask,
                engine=name, seed=seed,
            )
        except UnsupportedInputError:
            out[name] = "unsupported"
        except DeviceOutOfMemoryError:
            out[name] = "oom"
    return out


def serve(
    model: "str | ModelConfig | Any" = "bert-base",
    workload: "Any" = None,
    device: str | GPUSpec = "a100",
    policy: str = "continuous",
    fleet: "Any" = None,
    slo: "Any" = None,
    seed: int = 0,
    max_batch_size: int = 16,
    max_batch_tokens: int = 65536,
    tracer: Tracer | None = None,
    spec_decode: "Any" = None,
    chunk_prefill_tokens: int | None = None,
    lora: "Any" = None,
) -> "Any":
    """Simulate serving one workload — the single front door to the stack.

    ``model`` is a zoo name / :class:`~repro.models.ModelConfig` (its
    attention shape becomes the
    :class:`~repro.serving.engine.ServingConfig`) or a ``ServingConfig``
    directly.  ``workload`` is a
    :class:`~repro.serving.workload.WorkloadSpec` (generated with the
    run's seed) or an explicit list of
    :class:`~repro.serving.request.Request`.  The engine is picked by
    the fleet shape:

    * no ``fleet=`` — one replica, one GPU
      (:class:`~repro.serving.engine.ServingEngine`);
    * ``fleet=FleetConfig(...)`` — a fixed TP/PP/DP fleet
      (:class:`~repro.parallel.serving.ShardedServingEngine`);
    * ``fleet=FleetConfig(autoscale=True, ...)`` — a floating fleet
      (:class:`~repro.parallel.serving.AutoscalingServingEngine`).

    Passing ``slo=SLOPolicy(...)`` swaps in the deadline-aware scheduler
    regardless of fleet shape.  Three workload knobs override the
    resolved config: ``spec_decode=SpeculativeConfig(...)`` turns on
    draft-propose / target-verify decoding, ``chunk_prefill_tokens=N``
    caps the per-step prefill token budget (Sarathi-style chunked
    prefill), and ``lora=LoRAConfig(...)`` prices per-request adapters
    with an LRU residency budget.  Returns the engine's report
    (:class:`~repro.serving.metrics.ServingReport`,
    ``ShardedServingReport`` or ``FleetReport``); everything is a pure
    function of ``(model, workload, fleet, slo, seed)``.

    >>> from repro.serving import TenantSpec, WorkloadSpec, PoissonArrivals
    >>> wl = WorkloadSpec(8, PoissonArrivals(500.0),
    ...                   tenants=(TenantSpec(name="chat"),))
    >>> serve("bert-small", wl, seed=7).completed
    8
    """
    from repro.parallel.serving import (
        AutoscalingServingEngine,
        FleetConfig,
        ShardedServingEngine,
    )
    from repro.serving.engine import ServingConfig, ServingEngine
    from repro.serving.request import Request
    from repro.serving.scheduler import make_scheduler
    from repro.serving.slo import SLOScheduler
    from repro.serving.workload import WorkloadSpec

    spec = device if isinstance(device, GPUSpec) else get_spec(device)
    if isinstance(model, ServingConfig):
        config = model
    else:
        mc = model if isinstance(model, ModelConfig) else get_model_config(model)
        config = ServingConfig(
            heads=mc.heads,
            head_size=mc.head_size,
            n_layers=mc.encoder_layers + mc.decoder_layers,
        )

    overrides: dict[str, "Any"] = {}
    if spec_decode is not None:
        overrides["spec_decode"] = spec_decode
    if chunk_prefill_tokens is not None:
        overrides["chunk_prefill_tokens"] = chunk_prefill_tokens
    if lora is not None:
        overrides["lora"] = lora
    if overrides:
        config = dc_replace(config, **overrides)

    if isinstance(workload, WorkloadSpec):
        trace = workload.generate(RngStream(seed).fork("workload"))
    elif workload and all(isinstance(r, Request) for r in workload):
        trace = list(workload)
    else:
        raise ConfigError(
            "workload must be a WorkloadSpec or a non-empty list of Request"
        )

    if fleet is not None and not isinstance(fleet, FleetConfig):
        raise ConfigError(f"fleet must be a FleetConfig, got {type(fleet).__name__}")
    policy = "slo" if slo is not None else policy
    rng = RngStream(seed)
    if fleet is None:
        scheduler = (
            SLOScheduler(max_batch_size, max_batch_tokens, policy=slo)
            if slo is not None
            else make_scheduler(policy, max_batch_size, max_batch_tokens)
        )
        engine = ServingEngine(spec, scheduler, config, tracer=tracer)
        return engine.run(trace, rng=rng)
    cls = AutoscalingServingEngine if fleet.autoscale else ShardedServingEngine
    engine = cls(
        spec, policy, config, fleet=fleet, slo=slo,
        max_batch_size=max_batch_size, max_batch_tokens=max_batch_tokens,
        tracer=tracer,
    )
    return engine.run(trace, rng=rng)
