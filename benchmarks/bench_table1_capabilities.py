"""Table 1 — Comparison of representative works with STOF.

The qualitative capability matrix, emitted from the implemented engines'
actual properties (what they fuse, whether fusion expands, how the search
space is built/pruned/searched) rather than hard-coded strings where a
behavioural check exists.
"""

from harness import emit, format_table


def build_table():
    # (name, fusion category, expansion, construction, pruning, searching)
    return [
        ["AStitch", "MI-MI", "yes", "rule", "no", "breadth-first"],
        ["Welder", "CI-MI", "yes", "loop", "no", "cost model"],
        ["Chimera", "CI-CI", "no", "loop", "no", "analytical"],
        ["MCFuser", "CI-CI", "no", "loop", "rule", "analytical"],
        ["Bolt", "arbitrary", "no", "template", "no", "analytical"],
        ["STOF (ours)", "arbitrary", "yes", "template", "analytical", "reward-based"],
    ]


def test_table1_capabilities(benchmark):
    rows = benchmark(build_table)
    table = format_table(
        ["name", "op fusion", "expansion", "construction", "pruning", "searching"],
        rows,
        title="Table 1 reproduction (qualitative comparison)",
    )
    emit("table1_capabilities", table)

    # Behavioural spot checks against the implementation.
    from repro.fusion.rules import legal_moves
    from repro.ops.base import OpCategory
    from repro.tuner.baseline_tuners import ExhaustiveLoopTuner
    from repro.tuner.sampler import RewardSampler

    # STOF expansion: moves exist for a fusable scheme.
    cats = [OpCategory.CI, OpCategory.MI, OpCategory.MI]
    assert legal_moves((1, 1, 1), cats)
    # MCFuser tuner really enumerates (no budget), STOF samples by reward.
    assert ExhaustiveLoopTuner.max_settings_per_segment >= 32
    assert hasattr(RewardSampler, "reward")
