"""Table 4 — Tuning time of STOF vs MCFuser vs Bolt (A100, seconds).

Five models x three input settings.  Tuning cost is simulated: each
unseen (segment, parameter) candidate pays compile time plus measurement
repetitions (capped per candidate); cache hits are free.  Expected shape:
STOF cheapest everywhere, with the gap widening at (16, 2048) thanks to
reward-budgeted sampling and cross-layer caching.
"""

import pytest
from harness import E2E_MODELS, E2E_SETTINGS, emit, format_table, model_setup

from repro.gpu.specs import A100
from repro.runtime import BoltEngine, MCFuserEngine, STOFEngine

TUNERS = (("stof", STOFEngine), ("mcfuser", MCFuserEngine), ("bolt", BoltEngine))


def compute_table():
    rows = []
    raw = {}
    for bs, seq in E2E_SETTINGS:
        for model in E2E_MODELS:
            inst, masks, patterns = model_setup(model, bs, seq)
            cells = [f"({bs},{seq})", model]
            times = {}
            for label, cls in TUNERS:
                prepared = cls().prepare(inst, A100, masks, patterns)
                times[label] = prepared.tuning_time_s
                cells.append(times[label])
            rows.append(cells)
            raw[(model, bs, seq)] = times
    return rows, raw


@pytest.fixture(scope="module")
def table4():
    return compute_table()


def test_table4_table(benchmark, table4):
    rows, _ = table4

    def probe():
        inst, masks, patterns = model_setup("bert-small", 1, 128)
        return STOFEngine().prepare(inst, A100, masks, patterns).tuning_time_s

    benchmark(probe)
    emit(
        "table4_tuning_cost",
        format_table(
            ["(bs,seq)", "model", "STOF (s)", "MCFuser (s)", "Bolt (s)"],
            rows,
            title="Table 4 reproduction: end-to-end tuning time on A100",
        ),
    )


def test_table4_stof_cheapest_everywhere(table4):
    _, raw = table4
    for key, times in raw.items():
        assert times["stof"] < times["mcfuser"], key
        assert times["stof"] < times["bolt"], key


def test_table4_gap_widens_with_scale(table4):
    """Paper: STOF's advantage 'becomes more prominent when the input
    scale is large' (5.7x at (16,2048) vs ~2x at (1,128))."""
    _, raw = table4

    def avg_ratio(bs, seq):
        rs = [
            raw[(m, bs, seq)]["mcfuser"] / raw[(m, bs, seq)]["stof"]
            for m in E2E_MODELS
        ]
        return sum(rs) / len(rs)

    assert avg_ratio(16, 2048) > avg_ratio(1, 128)


def test_table4_cost_grows_with_scale(table4):
    _, raw = table4
    for model in E2E_MODELS:
        for tuner in ("stof", "mcfuser", "bolt"):
            assert raw[(model, 16, 2048)][tuner] > raw[(model, 1, 128)][tuner]


def test_table4_magnitudes_paper_order(table4):
    """Within the same order of magnitude as the paper's numbers."""
    _, raw = table4
    assert 10 < raw[("bert-base", 1, 128)]["stof"] < 300
    assert 50 < raw[("bert-base", 16, 2048)]["mcfuser"] < 3000
