"""Extension study — §5.3's closing claim on future GPUs.

"This demonstrates that STOF has the potential to be applied to future
GPU generations with larger memory."  We test it: the same MHA and
end-to-end workloads on a Hopper-class H100 spec (more SMEM, more SMs,
2 TB/s HBM, 80 GB).  Expected: STOF still wins everywhere, its MHA
advantage over FlexAttention persists, and MCFuser's (16,4096) OOM
disappears on the 80 GB part while STOF still beats it outright.
"""

import pytest
from harness import emit, engine_time, format_table, mha_problem, model_setup
from mha_methods import MHA_METHODS, method_time, stof_time

from repro.gpu.specs import A100, H100
from repro.runtime import PyTorchCompileEngine, PyTorchNativeEngine, STOFEngine


def mha_rows():
    rows = []
    raw = {}
    for pattern in ("sliding_window", "bigbird"):
        for bs, seq in ((8, 512), (16, 4096)):
            prob = mha_problem(pattern, bs, seq, name="h100")
            cells = [pattern, f"({bs},{seq})"]
            per = {}
            for label, cls, disp in MHA_METHODS:
                t = method_time(label, cls, disp, prob, H100)
                per[label] = t
                if t is None:
                    cells.append("--")
                elif t == "OOM":
                    cells.append("OOM")
                else:
                    cells.append(per["native"] / t)
            per["stof"] = stof_time(prob, H100)
            cells.append(per["native"] / per["stof"])
            rows.append(cells)
            raw[(pattern, bs, seq)] = per
    return rows, raw


def e2e_rows():
    rows = []
    raw = {}
    for bs, seq in ((8, 512), (16, 2048)):
        inst, masks, patterns = model_setup("bert-base", bs, seq)
        per = {}
        for label, engine in (
            ("native", PyTorchNativeEngine()),
            ("compile", PyTorchCompileEngine()),
            ("stof", STOFEngine()),
        ):
            per[label] = engine_time(engine, inst, H100, masks, patterns)
        rows.append(
            [
                f"({bs},{seq})",
                per["native"] / per["compile"],
                per["native"] / per["stof"],
            ]
        )
        raw[(bs, seq)] = per
    return rows, raw


@pytest.fixture(scope="module")
def h100_mha():
    return mha_rows()


@pytest.fixture(scope="module")
def h100_e2e():
    return e2e_rows()


def test_future_gpu_tables(benchmark, h100_mha, h100_e2e):
    benchmark(lambda: stof_time(mha_problem("bigbird", 8, 512, "h100b"), H100))
    emit(
        "future_gpu_mha",
        format_table(
            ["mask", "(bs,seq)"] + [m[0] for m in MHA_METHODS] + ["stof"],
            h100_mha[0],
            title="Extension: MHA speedups over Native on H100 (Hopper)",
        ),
    )
    emit(
        "future_gpu_e2e",
        format_table(
            ["(bs,seq)", "compile", "stof"],
            h100_e2e[0],
            title="Extension: BERT-Base end-to-end speedups over Native on H100",
        ),
    )


def test_stof_still_wins_on_hopper(h100_mha):
    _, raw = h100_mha
    for key, per in raw.items():
        for label, t in per.items():
            if isinstance(t, float):
                assert per["stof"] <= t + 1e-15, (key, label)


def test_larger_memory_revives_mcfuser_but_not_enough(h100_mha):
    """80 GB removes the (16,4096) OOM — and STOF still beats it outright."""
    _, raw = h100_mha
    per = raw[("bigbird", 16, 4096)]
    assert isinstance(per["mcfuser"], float)  # no OOM on 80 GB
    assert per["stof"] < per["mcfuser"]


def test_e2e_advantage_persists(h100_e2e):
    _, raw = h100_e2e
    for key, per in raw.items():
        assert per["stof"] < per["compile"] < per["native"], key
