"""Table 2 — Features of typical masking patterns.

Regenerates the sparsity / distribution table at ``seq_len = 1024`` with
the paper's ``sqrt(seq_len)`` band/global widths and 10% random fill.
Expected: sliding-window / dilated ~93.8% sparse, Longformer ~88%,
Bigbird ~80%, with the distribution and structure columns matching the
paper exactly.
"""

from harness import bench_rng, emit, format_table

from repro.masks import PATTERN_REGISTRY, analyze_mask, make_pattern

SEQ_LEN = 1024
PATTERNS = ("sliding_window", "dilated", "longformer", "bigbird")


def build_table():
    rows = []
    for name in PATTERNS:
        pat = PATTERN_REGISTRY[name]
        mask = make_pattern(name, SEQ_LEN, rng=bench_rng(f"t2-{name}"))
        params = {
            k: (v(SEQ_LEN) if callable(v) else v)
            for k, v in pat.default_params.items()
        }
        stats = analyze_mask(mask, name, params, known_random=pat.uses_randomness)
        r = stats.as_table_row()
        rows.append(
            [r["pattern"], r["parameters"], r["row"], r["column"], r["type"], r["sparsity_%"]]
        )
    return rows


def test_table2_mask_features(benchmark):
    rows = benchmark(build_table)
    table = format_table(
        ["pattern", "parameters", "row", "column", "type", "sparsity %"],
        rows,
        title=f"Table 2 reproduction (seq_len={SEQ_LEN})",
    )
    emit("table2_mask_features", table)

    by_name = {r[0]: r for r in rows}
    assert abs(by_name["sliding_window"][5] - 93.8) < 0.5
    assert abs(by_name["dilated"][5] - 93.8) < 0.5
    assert abs(by_name["longformer"][5] - 88.8) < 1.5
    assert abs(by_name["bigbird"][5] - 80.8) < 3.0
    assert by_name["sliding_window"][2] == "continuous"
    assert by_name["dilated"][2] == "discrete"
    assert by_name["bigbird"][4] == "unstructured"
