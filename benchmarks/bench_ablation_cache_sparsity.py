"""Ablation — the performance cache, and speedup vs mask sparsity.

Two studies beyond the paper's figures:

* **cache contribution**: STOF's tuning time with the performance cache
  disabled (every repeated layer re-pays its evaluations) vs enabled —
  quantifying the mechanism the paper credits for Table 4.
* **sparsity sweep**: STOF's MHA speedup over FlexAttention as the
  sliding-window band widens from very sparse to half-dense, locating the
  regime where block skipping pays.
"""

import pytest
from harness import bench_rng, emit, format_table, model_setup

from repro.gpu.specs import A100
from repro.mha.baselines import FlexAttention
from repro.mha.module import UnifiedMHA
from repro.mha.problem import AttentionProblem
from repro.runtime import STOFEngine
from repro.tuner.cache import EvalCostModel, PerformanceCache
from repro.tuner.engine import TwoStageEngine


def cache_study():
    inst, masks, patterns = model_setup("bert-base", 8, 512)
    rows = []
    raw = {}
    for label, enabled in (("cache on", True), ("cache off", False)):
        engine = STOFEngine()
        # Swap the cache behaviour underneath the tuner.
        engine.cost_model = EvalCostModel()
        prepared = None
        tw = TwoStageEngine(
            A100,
            rng=engine.rng,
            stage1_samples=engine.stage1_samples,
            stage2_rounds=engine.stage2_rounds,
            stage2_total=engine.stage2_total,
            cache=PerformanceCache(engine.cost_model, enabled=enabled),
        )
        results = tw.tune_graph(inst.graph, inst.tokens)
        rows.append(
            [label, tw.total_tuning_time_s, tw.cache.misses, tw.cache.hits]
        )
        raw[label] = tw.total_tuning_time_s
    return rows, raw


def sparsity_study():
    rows = []
    raw = {}
    seq, bs = 1024, 8
    for band in (8, 16, 32, 64, 128, 256):
        prob = AttentionProblem.build(
            "sliding_window", bs, 12, seq, 64,
            rng=bench_rng(f"sw-{band}"), band_width=band,
        )
        t_stof = UnifiedMHA(A100).plan(prob).estimated_s
        t_flex = FlexAttention().estimate_time(prob, A100)
        rows.append(
            [band, f"{1 - prob.density:.1%}", t_stof * 1e6, f"{t_flex / t_stof:.2f}x"]
        )
        raw[band] = (prob.density, t_stof, t_flex)
    return rows, raw


@pytest.fixture(scope="module")
def cache_rows():
    return cache_study()


@pytest.fixture(scope="module")
def sparsity_rows():
    return sparsity_study()


def test_ablation_tables(benchmark, cache_rows, sparsity_rows):
    benchmark(lambda: sparsity_study()[0][0])
    emit(
        "ablation_cache",
        format_table(
            ["variant", "tuning time (s)", "evaluations", "cache hits"],
            cache_rows[0],
            title="Ablation: performance cache (BERT-Base, (8,512), A100)",
        ),
    )
    emit(
        "ablation_sparsity",
        format_table(
            ["band width", "sparsity", "STOF us", "speedup over Flex"],
            sparsity_rows[0],
            title="Ablation: STOF-vs-FlexAttention gain across mask sparsity "
                  "(sliding window, (8,1024), A100)",
        ),
    )


def test_cache_saves_substantially(cache_rows):
    """Disabling the cache re-pays repeated layers: >=2x tuning time."""
    _, raw = cache_rows
    assert raw["cache off"] > 2.0 * raw["cache on"]


def test_sparsity_gain_grows_with_sparsity(sparsity_rows):
    """Finer-than-128 structure is invisible to Flex: the sparser the
    band, the bigger STOF's advantage."""
    _, raw = sparsity_rows
    gains = {band: t_flex / t_stof for band, (_, t_stof, t_flex) in raw.items()}
    assert gains[8] > gains[64] > gains[256]
    assert gains[8] > 2.0


def test_dense_limit_converges(sparsity_rows):
    """At near-dense masks both skip little; the gap narrows below 2x."""
    _, raw = sparsity_rows
    _, t_stof, t_flex = raw[256]
    assert t_flex / t_stof < 2.5
