"""Extension study — variable-length batching.

ByteTransformer's motivating workload: serving batches with mixed
sequence lengths.  STOF handles padding-free execution with no special
path — pack the sequences and hand the block-diagonal ∧ pattern mask to
the block-wise kernel, whose BSR skipping discards every cross-sequence
block.  The study sweeps length skew and compares packed STOF against the
pad-to-max strategy under both STOF's kernel and the dense-fused baseline.
"""

import pytest
from harness import emit, format_table

from repro.core.rng import RngStream
from repro.gpu.specs import A100
from repro.mha.baselines import FlashAttention2Attention
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.selector import select_block_params
from repro.mha.varlen import (
    VarLenBatch,
    packed_varlen_problem,
    padded_problem,
    padding_waste,
)

#: Batches from uniform to heavily skewed (same max length).
BATCHES = {
    "uniform": (1024, 1024, 1024, 1024),
    "mild skew": (768, 896, 960, 1024),
    "heavy skew": (128, 256, 512, 1024),
    "one straggler": (128, 128, 128, 1024),
}


def compute_rows():
    rows = []
    raw = {}
    kern = BlockWiseKernel()
    for label, lengths in BATCHES.items():
        batch = VarLenBatch(lengths, heads=12, head_size=64, pattern="causal")
        packed = packed_varlen_problem(batch, rng=RngStream(7))
        padded = padded_problem(batch, rng=RngStream(7))
        t_packed = kern.estimate_time(
            packed, A100, select_block_params(packed, A100)
        )
        t_padded = kern.estimate_time(
            padded, A100, select_block_params(padded, A100)
        )
        t_padded_fa2 = FlashAttention2Attention().estimate_time(padded, A100)
        rows.append(
            [
                label,
                f"{padding_waste(batch):.0%}",
                t_packed * 1e6,
                t_padded * 1e6,
                t_padded_fa2 * 1e6,
                f"{t_padded / t_packed:.2f}x",
            ]
        )
        raw[label] = (t_packed, t_padded, t_padded_fa2)
    return rows, raw


@pytest.fixture(scope="module")
def varlen():
    return compute_rows()


def test_varlen_table(benchmark, varlen):
    rows, _ = varlen
    benchmark(
        lambda: BlockWiseKernel().estimate_time(
            packed_varlen_problem(
                VarLenBatch((64, 128), 4, 32), rng=RngStream(9)
            ),
            A100,
        )
    )
    emit(
        "varlen_packing",
        format_table(
            ["batch", "padding waste", "packed us", "padded us",
             "padded fa2 us", "pack speedup"],
            rows,
            title="Extension: padding-free variable-length batching "
                  "(causal, 12 heads, A100)",
        ),
    )


def test_packing_gain_grows_with_skew(varlen):
    _, raw = varlen
    def gain(label):
        t_packed, t_padded, _ = raw[label]
        return t_padded / t_packed

    assert gain("one straggler") > gain("heavy skew") > gain("mild skew")
    assert gain("one straggler") > 1.5


def test_uniform_packing_costs_little(varlen):
    """With no padding waste, packing must not regress materially."""
    _, raw = varlen
    t_packed, t_padded, _ = raw["uniform"]
    assert t_packed < 1.2 * t_padded


def test_packed_stof_beats_padded_fa2(varlen):
    _, raw = varlen
    for label, (t_packed, _, t_fa2) in raw.items():
        assert t_packed < t_fa2, label
