"""Figure 10 — MHA performance on the RTX 4090, normalized to PyTorch
Native.

Four evaluation masks x (batch, seq) sweep x seven methods.  Expected
shape: STOF highest everywhere; ByteTransformer missing beyond seq 1,024;
MCFuser OOM at the largest scale; the row-wise kernel selected at the
smallest sliding-window setting.
"""

import pytest
from harness import MHA_PATTERNS, emit, format_table, mha_problem
from mha_methods import MHA_METHODS, mha_figure_rows, method_time, stof_time

from repro.gpu.specs import RTX4090

SETTINGS = ((1, 128), (1, 512), (8, 512), (16, 2048), (16, 4096))
HEADERS = ["mask", "(bs,seq)"] + [m[0] for m in MHA_METHODS] + ["stof", "stof kernel"]


@pytest.fixture(scope="module")
def fig10():
    return mha_figure_rows(
        RTX4090, MHA_PATTERNS, SETTINGS,
        lambda p, b, s: mha_problem(p, b, s, name="fig10"),
    )


def test_fig10_table(benchmark, fig10):
    rows, _ = fig10
    benchmark(lambda: stof_time(mha_problem("sliding_window", 8, 512, "f10b"), RTX4090))
    emit(
        "fig10_mha_rtx4090",
        format_table(HEADERS, rows, title="Figure 10 reproduction (RTX 4090)"),
    )


def test_fig10_stof_wins_everywhere(fig10):
    rows, _ = fig10
    for row in rows:
        numeric = [
            float(c[:-1]) for c in row[2:-1] if c not in ("--", "OOM")
        ]
        stof = float(row[-2][:-1])
        assert stof == max(numeric), row


def test_fig10_bytetransformer_gap(fig10):
    rows, _ = fig10
    for row in rows:
        seq = int(row[1].strip("()").split(",")[1])
        byte_cell = row[2 + 4]
        if seq > 1024:
            assert byte_cell == "--", row
        else:
            assert byte_cell != "--", row


def test_fig10_mcfuser_oom_at_largest(fig10):
    rows, _ = fig10
    oom_cells = [r for r in rows if r[2 + 5] == "OOM"]
    assert oom_cells, "MCFuser should OOM at (16, 4096)"
    for r in oom_cells:
        assert r[1] == "(16,4096)"


def test_fig10_small_scale_kernel_choice_is_close_call(fig10):
    """On the RTX 4090 the model puts row-wise and block-wise within ~10%
    at (1,128); whichever wins, STOF must beat every baseline there (the
    A100 figure asserts the paper's row-wise selection)."""
    rows, _ = fig10
    for row in rows:
        if row[0] == "sliding_window" and row[1] == "(1,128)":
            assert row[-1] in ("rowwise", "blockwise")
            numeric = [float(c[:-1]) for c in row[2:-1] if c not in ("--", "OOM")]
            assert float(row[-2][:-1]) == max(numeric)
