"""Shared MHA-method harness for the Figure 10/11 benchmarks.

Each method is one attention strategy plus its host dispatch style; the
per-problem time is the simulated kernel time(s) plus dispatch, exactly
how the engines price attention inside the end-to-end study.
"""

from __future__ import annotations

from harness import plan_time

from repro.core.errors import DeviceOutOfMemoryError, UnsupportedInputError
from repro.gpu.specs import GPUSpec
from repro.mha.baselines import (
    ByteTransformerAttention,
    FlashAttention2Attention,
    FlexAttention,
    MCFuserAttention,
    NaiveAttention,
)
from repro.mha.module import UnifiedMHA
from repro.mha.problem import AttentionProblem
from repro.runtime.frameworks import (
    COMPILED_DISPATCH_S,
    CPP_RUNTIME_DISPATCH_S,
    EAGER_DISPATCH_S,
    FLEX_DISPATCH_S,
    STANDALONE_DISPATCH_S,
)

#: (label, kernel factory, dispatch overhead) in the figures' bar order.
MHA_METHODS = (
    ("native", NaiveAttention, EAGER_DISPATCH_S),
    ("compile", FlashAttention2Attention, COMPILED_DISPATCH_S),
    ("fa2", FlashAttention2Attention, STANDALONE_DISPATCH_S),
    ("flex", FlexAttention, FLEX_DISPATCH_S),
    ("byte", ByteTransformerAttention, CPP_RUNTIME_DISPATCH_S),
    ("mcfuser", MCFuserAttention, COMPILED_DISPATCH_S),
)


def method_time(label: str, kernel_cls, dispatch_s: float,
                problem: AttentionProblem, spec: GPUSpec):
    """Simulated seconds, None (unsupported), or 'OOM'."""
    kernel = kernel_cls()
    ok, _ = kernel.supports(problem)
    if not ok:
        return None
    if label == "mcfuser":
        workspace = kernel.workspace_bytes(problem)
        if workspace + 4 * problem.qkv_bytes > spec.memory_bytes:
            return "OOM"
    try:
        return plan_time(kernel.plan(problem, spec), spec, dispatch_s)
    except UnsupportedInputError:
        return None
    except DeviceOutOfMemoryError:  # pragma: no cover - defensive
        return "OOM"


def stof_time(problem: AttentionProblem, spec: GPUSpec) -> float:
    plan = UnifiedMHA(spec).plan(problem)
    return plan.estimated_s + COMPILED_DISPATCH_S


def mha_figure_rows(spec: GPUSpec, patterns, settings, problem_factory):
    """Rows of one MHA figure: speedups over PyTorch Native per method."""
    rows = []
    kernels = {}
    for pattern in patterns:
        for bs, seq in settings:
            problem = problem_factory(pattern, bs, seq)
            native = method_time(*MHA_METHODS[0], problem, spec)
            assert isinstance(native, float)
            cells = [pattern, f"({bs},{seq})"]
            for label, cls, disp in MHA_METHODS:
                t = method_time(label, cls, disp, problem, spec)
                if t is None:
                    cells.append("--")
                elif t == "OOM":
                    cells.append("OOM")
                else:
                    cells.append(f"{native / t:.2f}x")
            plan = UnifiedMHA(spec).plan(problem)
            t_stof = plan.estimated_s + COMPILED_DISPATCH_S
            cells.append(f"{native / t_stof:.2f}x")
            cells.append(plan.kernel_name.replace("stof-", ""))
            rows.append(cells)
            kernels[(pattern, bs, seq)] = (native, t_stof, plan.kernel_name)
    return rows, kernels
