"""Figure 12 — End-to-end inference, normalized to PyTorch Native.

Five models (BERT-Small/Base/Large, GPT, T5) x three (batch, seq)
settings x both GPUs, Bigbird mask.  Expected shape: STOF highest nearly
everywhere, ByteTransformer absent at seq 2,048, MCFuser OOM at the
largest inputs on the 24 GB RTX 4090, and STOF ~1.4-2.9x over PyTorch
Compile at (16, 2048).
"""

import pytest
from harness import (
    E2E_MODELS,
    E2E_SETTINGS,
    emit,
    engine_time,
    format_table,
    model_setup,
    speedup_cell,
)

from repro.gpu.specs import A100, RTX4090
from repro.runtime import (
    BoltEngine,
    ByteTransformerEngine,
    MCFuserEngine,
    PyTorchCompileEngine,
    PyTorchNativeEngine,
    STOFEngine,
)

ENGINES = (
    ("native", PyTorchNativeEngine),
    ("compile", PyTorchCompileEngine),
    ("byte", ByteTransformerEngine),
    ("mcfuser", MCFuserEngine),
    ("bolt", BoltEngine),
    ("stof", STOFEngine),
)
HEADERS = ["model", "(bs,seq)"] + [e[0] for e in ENGINES]


def compute_rows(spec):
    rows = []
    raw = {}
    for model in E2E_MODELS:
        for bs, seq in E2E_SETTINGS:
            inst, masks, patterns = model_setup(model, bs, seq)
            times = {}
            for label, cls in ENGINES:
                times[label] = engine_time(cls(), inst, spec, masks, patterns)
            native = times["native"]
            cells = [model, f"({bs},{seq})"]
            cells += [speedup_cell(native, times[l]) for l, _ in ENGINES]
            rows.append(cells)
            raw[(model, bs, seq)] = times
    return rows, raw


@pytest.fixture(scope="module")
def fig12_4090():
    return compute_rows(RTX4090)


@pytest.fixture(scope="module")
def fig12_a100():
    return compute_rows(A100)


def test_fig12_tables(benchmark, fig12_4090, fig12_a100):
    def probe():
        inst, masks, patterns = model_setup("bert-small", 1, 128)
        return engine_time(STOFEngine(), inst, A100, masks, patterns)

    benchmark(probe)
    for name, (rows, _) in (
        ("fig12_end_to_end_rtx4090", fig12_4090),
        ("fig12_end_to_end_a100", fig12_a100),
    ):
        emit(name, format_table(HEADERS, rows, title=f"Figure 12 reproduction ({name.split('_')[-1]})"))


@pytest.mark.parametrize("which", ["fig12_4090", "fig12_a100"])
def test_fig12_stof_highest(which, request):
    rows, raw = request.getfixturevalue(which)
    for (model, bs, seq), times in raw.items():
        stof = times["stof"]
        for label, t in times.items():
            if isinstance(t, float):
                assert stof <= t + 1e-15, (model, bs, seq, label)


def test_fig12_stof_over_compile_at_scale(fig12_4090):
    """Paper: 2.4/2.3/2.2/1.4/1.4x over Compile at (16,2048) on the 4090."""
    _, raw = fig12_4090
    for model in E2E_MODELS:
        times = raw[(model, 16, 2048)]
        ratio = times["compile"] / times["stof"]
        assert 1.3 < ratio < 4.0, (model, ratio)


def test_fig12_bytetransformer_absent_at_2048(fig12_a100):
    rows, raw = fig12_a100
    for model in E2E_MODELS:
        assert raw[(model, 16, 2048)]["byte"] is None
        assert isinstance(raw[(model, 1, 128)]["byte"], float)


def test_fig12_mcfuser_oom_on_24gb_card(fig12_4090):
    _, raw = fig12_4090
    ooms = [k for k, t in raw.items() if t["mcfuser"] == "OOM"]
    assert ooms, "MCFuser should exceed 24 GB somewhere at (16, 2048)"
    for model, bs, seq in ooms:
        assert (bs, seq) == (16, 2048)


def test_fig12_advantage_grows_with_scale(fig12_a100):
    """'The advantages of STOF are particularly pronounced for larger
    input scales.'"""
    _, raw = fig12_a100
    for model in E2E_MODELS:
        small = raw[(model, 1, 128)]
        large = raw[(model, 16, 2048)]
        s_small = small["native"] / small["stof"]
        s_large = large["native"] / large["stof"]
        assert s_large > s_small, model
