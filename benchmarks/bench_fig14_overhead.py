"""Figure 14 — Breakdown of STOF's own overhead vs the tuning process.

The framework overhead has three parts: the analytical model (MHA kernel
selection + scheme initialization), scheme conversion (hash encode /
decode / template matching), and the reward algorithm.  The paper reports
the total under 2.8% of tuning time, with the analytical-model share
growing with input scale (mask-block analysis scales with sequence
length) while conversion/reward shares shrink (they depend only on model
structure).

Note: here the overheads are *measured host seconds* of the actual
bookkeeping code, while the tuning denominator is simulated seconds — so
the absolute percentages are far smaller than the paper's; the *shape*
(which share grows, total << tuning) is the reproduction target.
"""

import pytest
from harness import E2E_SETTINGS, emit, format_table, model_setup

from repro.gpu.specs import A100
from repro.runtime import STOFEngine

MODELS = ("bert-small", "bert-base", "bert-large", "gpt", "t5")


def compute_rows():
    rows = []
    raw = {}
    for model in MODELS:
        for bs, seq in E2E_SETTINGS:
            inst, masks, patterns = model_setup(model, bs, seq)
            engine = STOFEngine()
            prepared = engine.prepare(inst, A100, masks, patterns)
            overhead = prepared.extras["overhead"]
            tuning = prepared.tuning_time_s
            rows.append(
                [
                    model,
                    f"({bs},{seq})",
                    overhead.analytical_model_s * 1e3,
                    overhead.scheme_conversion_s * 1e3,
                    overhead.reward_algorithm_s * 1e3,
                    100.0 * overhead.total_s / tuning,
                ]
            )
            raw[(model, bs, seq)] = (overhead, tuning)
    return rows, raw


@pytest.fixture(scope="module")
def fig14():
    return compute_rows()


def test_fig14_table(benchmark, fig14):
    rows, _ = fig14

    def probe():
        inst, masks, patterns = model_setup("bert-small", 1, 128)
        return STOFEngine().prepare(inst, A100, masks, patterns).extras["overhead"]

    benchmark(probe)
    emit(
        "fig14_overhead",
        format_table(
            ["model", "(bs,seq)", "analytical (ms)", "conversion (ms)",
             "reward (ms)", "total % of tuning"],
            rows,
            title="Figure 14 reproduction: STOF overhead breakdown (A100)",
        ),
    )


def test_fig14_overhead_small_fraction(fig14):
    """Paper bound: overhead < 2.8% of tuning time (ours is far below,
    since tuning seconds are simulated)."""
    _, raw = fig14
    for key, (overhead, tuning) in raw.items():
        assert overhead.total_s < 0.028 * tuning, key


def test_fig14_analytical_share_grows_with_seq(fig14):
    """Mask-block analysis scales with sequence length: the analytical
    model's share of total overhead rises from (1,128) to (16,2048)."""
    _, raw = fig14
    grew = 0
    for model in MODELS:
        o_small, _ = raw[(model, 1, 128)]
        o_large, _ = raw[(model, 16, 2048)]
        share_small = o_small.analytical_model_s / o_small.total_s
        share_large = o_large.analytical_model_s / o_large.total_s
        grew += share_large > share_small
    assert grew >= 3  # majority of models show the trend

def test_fig14_all_components_nonzero(fig14):
    _, raw = fig14
    for key, (overhead, _) in raw.items():
        assert overhead.analytical_model_s > 0
        assert overhead.scheme_conversion_s > 0
        assert overhead.reward_algorithm_s > 0
