"""Figure 4 — Post-fusion tuning vs individually-tuned parameter transfer.

For each fused operator mix, tune each *member operator in isolation*,
transfer the overlapping parameter settings to the fused kernel, and
compare against tuning the fused kernel directly.  The paper's insight:
"the optimal parameter settings for individual and fused operators are
inherently distinct" — naive transfer leaves substantial performance on
the table (Bias+LN 1.5x, GEMM+LN 10.8x, GEMM+GEMM 2.2x average on A100).
"""

import itertools

import pytest
from bench_fig3_fusion_gain import CONFIGS, MIXES, build_segment
from harness import emit, format_table, plan_time

from repro.gpu.specs import A100, RTX4090
from repro.runtime.frameworks import COMPILED_DISPATCH_S


def tune_individual_then_transfer(template, spec) -> float:
    """Tune each member op alone; apply the union of settings to the fused
    kernel (unknown keys fall back to fused defaults)."""
    transferred = dict(template.default_params(spec))
    for i, op in enumerate(template.segment.ops):
        space = op.param_space()
        if not space:
            continue
        keys = list(space)
        best_t, best_p = float("inf"), None
        for combo in itertools.product(*space.values()):
            params = dict(zip(keys, combo))
            try:
                cost, cfg = op.cost(template.segment.in_shapes[i], spec, params)
                t = plan_time([(cost, cfg)], spec, 0.0)
            except Exception:
                continue
            if t < best_t:
                best_t, best_p = t, params
        if best_p:
            fused_space = template.param_space()
            for k, v in best_p.items():
                if k not in transferred:
                    continue
                # The fused template only accepts its own candidate values:
                # snap the transferred setting to the nearest one.
                choices = fused_space.get(k)
                if choices and v not in choices:
                    v = min(choices, key=lambda c: abs(c - v))
                transferred[k] = v
    try:
        return plan_time(template.plan(spec, transferred), spec, COMPILED_DISPATCH_S)
    except Exception:
        # Transferred setting does not even launch: fall back to defaults,
        # exactly what a runtime guard would do.
        return plan_time(
            template.plan(spec, template.default_params(spec)),
            spec,
            COMPILED_DISPATCH_S,
        )


def tune_post_fusion(template, spec) -> float:
    space = template.param_space()
    keys = list(space)
    best = None
    for combo in itertools.product(*space.values()):
        params = dict(zip(keys, combo))
        try:
            t = plan_time(template.plan(spec, params), spec, COMPILED_DISPATCH_S)
        except Exception:
            continue
        best = t if best is None else min(best, t)
    assert best is not None
    return best


def compute_fig4():
    rows = []
    for mix in MIXES:
        for b, s, h in CONFIGS:
            template = build_segment(mix, b, s, h)
            cells = [mix, f"({b},{s},{h})"]
            for spec in (RTX4090, A100):
                transferred = tune_individual_then_transfer(template, spec)
                fused_tuned = tune_post_fusion(template, spec)
                cells.append(transferred / fused_tuned)
            rows.append(cells)
    return rows


@pytest.fixture(scope="module")
def fig4_rows():
    return compute_fig4()


def test_fig4_tuning_transfer(benchmark, fig4_rows):
    benchmark(
        lambda: tune_post_fusion(build_segment(MIXES[1], 8, 512, 512), A100)
    )
    table = format_table(
        ["mix", "(bs,seq,hidden)", "RTX4090 speedup", "A100 speedup"],
        fig4_rows,
        title=(
            "Figure 4 reproduction: post-fusion tuning over "
            "individually-tuned parameter transfer"
        ),
    )
    emit("fig4_tuning_transfer", table)


def test_fig4_post_fusion_never_loses(fig4_rows):
    """Post-fusion tuning explores a superset: speedup >= 1 everywhere."""
    for row in fig4_rows:
        assert row[2] >= 1.0 - 1e-9 and row[3] >= 1.0 - 1e-9, row


def test_fig4_transfer_suboptimal_somewhere(fig4_rows):
    """The paper's point: naive transfer is measurably suboptimal."""
    gains_4090 = [r[2] for r in fig4_rows]
    gains_a100 = [r[3] for r in fig4_rows]
    assert max(gains_4090) > 1.2
    assert max(gains_a100) > 1.2
