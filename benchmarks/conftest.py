"""Benchmark-suite configuration.

Makes the repository root importable so ``bench_*`` modules can use the
shared :mod:`harness` helpers regardless of the pytest rootdir.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
