"""Figure 3 — Fused vs detached operators across configurations.

Reproduces the motivation study: Bias+LayerNorm (MI+MI), GEMM+LayerNorm
(CI+MI), and GEMM+GEMM (CI+CI) fused into one kernel vs the same ops
launched detached from an eager framework, on both GPUs, across
(batch, seq, hidden) configurations.

Expected shape (paper §3.2): gains vary wildly with configuration —
MI+MI always helps; CI+MI helps at hidden 512 and *hurts* at hidden 1024;
CI+CI helps only at the smallest scale and more on the RTX 4090 than on
the A100.
"""

import itertools

import numpy as np
import pytest
from harness import bench_rng, emit, format_table, plan_time

from repro.fusion.segment import SegmentSpec
from repro.fusion.templates import match_template
from repro.graph.trace import GraphBuilder
from repro.gpu.specs import A100, RTX4090
from repro.ops import BiasAdd, Gemm, LayerNorm
from repro.runtime.frameworks import COMPILED_DISPATCH_S, EAGER_DISPATCH_S

CONFIGS = [
    (1, 128, 512),
    (1, 128, 1024),
    (8, 512, 512),
    (8, 512, 1024),
    (16, 2048, 512),
    (16, 2048, 1024),
]
MIXES = ("bias+ln (MI+MI)", "gemm+ln (CI+MI)", "gemm+gemm (CI+CI)")


def build_segment(mix: str, b: int, s: int, h: int):
    gb = GraphBuilder("fig3", seed=1)
    x = gb.input("x", (b * s, h))
    g = gb.const_param("g", np.ones(h, np.float16))
    bt = gb.const_param("bt", np.zeros(h, np.float16))
    if mix.startswith("bias+ln"):
        bias = gb.param("b", (h,))
        out = gb.call(BiasAdd(), x, bias, name="bias")
        out = gb.call(LayerNorm(), out, g, bt, name="ln")
    elif mix.startswith("gemm+ln"):
        w = gb.param("w", (h, h))
        out = gb.call(Gemm(), x, w, name="mm")
        out = gb.call(LayerNorm(), out, g, bt, name="ln")
    else:
        w1 = gb.param("w1", (h, h))
        w2 = gb.param("w2", (h, h))
        out = gb.call(Gemm("g1"), x, w1, name="g1")
        out = gb.call(Gemm("g2"), out, w2, name="g2")
    gb.output(out)
    graph = gb.finish()
    names = [n.name for n in graph.op_nodes()]
    return match_template(SegmentSpec.from_graph(graph, names))


def best_fused_time(template, spec) -> float:
    space = template.param_space()
    keys = list(space)
    best = None
    for combo in itertools.product(*space.values()):
        params = dict(zip(keys, combo))
        try:
            t = plan_time(template.plan(spec, params), spec, COMPILED_DISPATCH_S)
        except Exception:
            continue
        best = t if best is None else min(best, t)
    assert best is not None
    return best


def compute_fig3():
    rows = []
    for mix in MIXES:
        for b, s, h in CONFIGS:
            template = build_segment(mix, b, s, h)
            cells = [mix, f"({b},{s},{h})"]
            for spec in (RTX4090, A100):
                fused = best_fused_time(template, spec)
                detached = plan_time(
                    template.detached_plan(spec), spec, EAGER_DISPATCH_S
                )
                cells.append(detached / fused)
            rows.append(cells)
    return rows


@pytest.fixture(scope="module")
def fig3_rows():
    return compute_fig3()


def test_fig3_fusion_gain(benchmark, fig3_rows):
    benchmark(lambda: best_fused_time(build_segment(MIXES[0], 8, 512, 512), A100))
    table = format_table(
        ["mix", "(bs,seq,hidden)", "RTX4090 speedup", "A100 speedup"],
        fig3_rows,
        title="Figure 3 reproduction: fused over detached (eager) operators",
    )
    emit("fig3_fusion_gain", table)


def test_fig3_mi_mi_always_helps(fig3_rows):
    for row in fig3_rows:
        if row[0].startswith("bias+ln"):
            assert row[2] > 1.0 and row[3] > 1.0, row


def test_fig3_ci_mi_hidden_dependence(fig3_rows):
    """GEMM+LN: better at hidden 512 than hidden 1024 (the paper's flip)."""
    gains = {tuple(r[1].strip("()").split(",")): (r[2], r[3])
             for r in fig3_rows if r[0].startswith("gemm+ln")}
    for (b, s) in (("1", "128"), ("8", "512")):
        g512 = gains[(b, s, "512")]
        g1024 = gains[(b, s, "1024")]
        assert g512[0] > g1024[0]  # 4090
        assert g512[1] > g1024[1]  # a100


def test_fig3_ci_ci_small_scale_only(fig3_rows):
    """GEMM+GEMM helps at (1,128,512) and collapses at large scale."""
    gains = {r[1]: (r[2], r[3]) for r in fig3_rows if r[0].startswith("gemm+gemm")}
    assert gains["(1,128,512)"][0] > 1.0          # wins small on 4090
    assert gains["(16,2048,1024)"][0] < 1.0       # loses at scale
    # More favourable on 4090 than A100 at the small end.
    assert gains["(1,128,512)"][0] > gains["(1,128,512)"][1]
