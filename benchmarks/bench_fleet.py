"""Extension study — autoscaled multi-tenant fleets under SLOs.

Million-user serving scaled down to a deterministic simulation: three
arrival scenarios (steady Poisson, diurnal sine, bursty square-wave)
over a tenant mix with shared system prompts are served by an autoscaled
data-parallel fleet with the SLO-aware scheduler, on the A100 spec.

Expected shapes: prefix sharing removes a large fraction (>= 30% on this
mix) of the peak KV footprint because every tenant's system prompt is
resident once instead of once per request; the diurnal and bursty
scenarios force the autoscaler above its floor while steady traffic
needs fewer scale events; and on the cost/throughput frontier, wider
fixed fleets buy tail latency with strictly more GPU-seconds per token
while the autoscaler lands between the fixed points.
"""

import pytest
from harness import bench_rng, emit, format_table

from repro.gpu.specs import A100
from repro.parallel import (
    AutoscalingServingEngine,
    FleetConfig,
    cost_throughput_frontier,
)
from repro.serving import (
    SCENARIOS,
    ServingConfig,
    SLOPolicy,
    TenantSpec,
    WorkloadSpec,
    make_scenario,
)

N_REQUESTS = 48
RATE_RPS = 3000.0

CONFIG = ServingConfig(heads=8, head_size=32, n_layers=4)

#: A system-prompt-heavy tenant mix: long shared prefixes over short
#: unique tails is the regime where radix caching pays (the >= 30%
#: savings bar below).
TENANTS = (
    TenantSpec(name="chat", weight=0.6, priority=2, prompt_range=(16, 48),
               max_new_range=(8, 24), system_prompt_len=192),
    TenantSpec(name="agent", weight=0.2, priority=1, prompt_range=(16, 64),
               max_new_range=(8, 16), system_prompt_len=256),
    TenantSpec(name="batch", weight=0.2, priority=0, prompt_range=(48, 128),
               max_new_range=(16, 48)),
)

FLEET = FleetConfig(autoscale=True, min_replicas=1, max_replicas=4)
SLO = SLOPolicy()


def scenario_workload(name: str) -> WorkloadSpec:
    return make_scenario(
        name, n_requests=N_REQUESTS, rate_rps=RATE_RPS, tenants=TENANTS
    )


def run_scenario(name: str):
    trace = scenario_workload(name).generate(bench_rng(f"fleet-{name}"))
    engine = AutoscalingServingEngine(
        A100, config=CONFIG, fleet=FLEET, slo=SLO
    )
    return engine.run(trace, rng=bench_rng("fleet-run"))


def prefix_saving(report) -> float:
    logical = report.sharded.kv_peak_logical_pages
    return 1.0 - report.sharded.kv_peak_used_pages / logical if logical else 0.0


def compute_rows():
    rows = []
    raw = {}
    for name in SCENARIOS:
        rep = run_scenario(name)
        rows.append(
            [
                name,
                f"{rep.completed}/{N_REQUESTS}",
                rep.tokens_per_s,
                rep.ttft_p(99) * 1e3,
                f"{prefix_saving(rep):.1%}",
                rep.peak_replicas,
                rep.gpu_s,
                rep.cost_per_1k_tokens,
            ]
        )
        raw[name] = rep
    return rows, raw


def frontier_rows():
    trace = scenario_workload("diurnal").generate(bench_rng("fleet-diurnal"))
    points = cost_throughput_frontier(
        A100, trace, config=CONFIG, fleet=FLEET, dp_values=(1, 2, 4),
        slo=SLO, rng=bench_rng("fleet-frontier"),
    )
    rows = [
        [p.label, p.mean_replicas, p.gpu_s, p.tokens_per_s,
         p.tokens_per_gpu_s, p.ttft_p99_s * 1e3]
        for p in points
    ]
    return rows, points


@pytest.fixture(scope="module")
def fleet_rows():
    return compute_rows()


@pytest.fixture(scope="module")
def fleet_frontier():
    return frontier_rows()


def test_fleet_scenarios_table(benchmark, fleet_rows, fleet_frontier):
    rows, _ = fleet_rows
    frontier, _ = fleet_frontier
    benchmark(lambda: run_scenario("steady").tokens_per_s)
    scenario_table = format_table(
        ["scenario", "completed", "fleet tok/s", "TTFT p99 (ms)",
         "prefix saved", "peak replicas", "GPU·s", "cost/1k tok"],
        rows,
        title=(
            "Extension: autoscaled multi-tenant fleet under SLOs "
            f"({N_REQUESTS} requests, {RATE_RPS:.0f} req/s mean, A100)"
        ),
    )
    frontier_table = format_table(
        ["point", "replicas", "GPU·s", "tok/s", "tok/GPU·s", "TTFT p99 (ms)"],
        frontier,
        title=(
            "Cost/throughput frontier (diurnal scenario, fixed DP widths "
            "vs autoscaler)"
        ),
    )
    emit("fleet_scenarios", scenario_table + "\n\n" + frontier_table)


def test_prefix_sharing_saves_at_least_30pct(fleet_rows):
    """The headline savings bar: on the shared-system-prompt mix the
    peak physical KV footprint is >= 30% below the unshared accounting,
    in every scenario."""
    _, raw = fleet_rows
    for name, rep in raw.items():
        assert prefix_saving(rep) >= 0.30, (name, prefix_saving(rep))


def test_all_scenarios_complete_under_slo_scheduler(fleet_rows):
    _, raw = fleet_rows
    for rep in raw.values():
        assert rep.completed == N_REQUESTS
        tenants = {t.tenant for t in rep.sharded.tenants}
        assert tenants == {"chat", "agent", "batch"}


def test_autoscaler_reacts_to_load(fleet_rows):
    _, raw = fleet_rows
    assert any(rep.peak_replicas > FLEET.min_replicas for rep in raw.values())


def test_frontier_monotone_in_cost(fleet_frontier):
    """Fixed widths: more replicas always bill more GPU-seconds, and the
    widest fleet cuts tail latency vs the single replica (intermediate
    widths may jitter as routing reshuffles arrival clusters)."""
    _, points = fleet_frontier
    fixed = [p for p in points if p.label != "auto"]
    for a, b in zip(fixed, fixed[1:]):
        assert b.gpu_s > a.gpu_s
        assert b.tokens_per_gpu_s <= a.tokens_per_gpu_s + 1e-12
    assert fixed[-1].ttft_p99_s <= fixed[0].ttft_p99_s + 1e-12
