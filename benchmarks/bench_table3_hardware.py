"""Table 3 — Hardware specifications of the two simulated GPUs."""

from harness import emit, format_table

from repro.core.units import format_bytes
from repro.gpu.specs import A100, RTX4090


def build_table():
    rows = []
    for label, spec in (("GPU1", RTX4090), ("GPU2", A100)):
        rows.append(
            [
                label,
                f"{spec.name} ({spec.arch})",
                f"{spec.cuda_cores} ({spec.sm_count} SMs)",
                format_bytes(spec.l1_smem_per_sm) + " (per SM)",
                format_bytes(spec.l2_bytes),
                format_bytes(spec.memory_bytes),
                f"{spec.dram_bandwidth / 1e9:.0f} GB/s",
            ]
        )
    return rows


def test_table3_hardware(benchmark):
    rows = benchmark(build_table)
    table = format_table(
        ["", "model", "cores", "L1/SMEM", "L2", "memory", "bandwidth"],
        rows,
        title="Table 3 reproduction (simulated device specs)",
    )
    emit("table3_hardware", table)
    assert rows[0][2].startswith("16384")
    assert rows[1][2].startswith("6912")
