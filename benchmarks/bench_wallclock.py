"""Wall-clock benchmark: vectorized and codegen backends vs the loop oracle.

Unlike every other ``bench_*`` module, this one measures *real* Python
wall-clock, not simulated device time: it times ``run()`` of both STOF
kernels under all three execution backends (``vectorized`` / ``loop`` /
``codegen``) on the Fig. 10/11 sweep shapes (BERT-Base geometry: 12 heads
x 64) and reports the speedup of the flat-gather engine and the
plan-specialized generated modules over the per-row/per-block loops.

Artifacts:

* ``benchmarks/results/wallclock.txt`` — human-readable table,
* ``BENCH_wallclock.json`` (repo root) — machine-readable records.

Because timings are host-dependent, neither artifact is golden-checked;
the committed copies document the run recorded in EXPERIMENTS-era docs
(see docs/fastpath.md for the measured numbers and why).

Modes: the default quick grid finishes in seconds (CI smoke); set
``STOF_WALLCLOCK_FULL=1`` for the full sweep (the large shapes run the
loop backend for tens of seconds per cell — minutes overall).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(Path(__file__).parent) not in sys.path:  # script mode, no conftest
    sys.path.insert(0, str(Path(__file__).parent))

from harness import MHA_PATTERNS, bench_rng, emit, format_table  # noqa: E402

from repro.gpu.specs import RTX4090  # noqa: E402
from repro.mha.blockwise import BlockWiseKernel  # noqa: E402
from repro.mha.problem import AttentionProblem  # noqa: E402
from repro.mha.rowwise import RowWiseKernel  # noqa: E402

#: Fig. 10/11 (batch, seq) sweep.
FULL_SETTINGS = ((1, 128), (1, 512), (8, 512), (16, 2048), (16, 4096))
QUICK_SETTINGS = ((1, 128), (1, 256), (1, 512))
QUICK_PATTERNS = ("sliding_window", "bigbird")

JSON_PATH = REPO_ROOT / "BENCH_wallclock.json"


def wallclock_problem(pattern: str, batch: int, seq_len: int) -> AttentionProblem:
    return AttentionProblem.build(
        pattern, batch, 12, seq_len, 64,
        rng=bench_rng(f"wallclock-{pattern}-{batch}-{seq_len}"),
        with_tensors=True,
    )


def _time_runs(kernels: dict, prob, params, reps: int) -> dict:
    """Best-of-``reps`` seconds per backend, interleaved round-robin.

    Interleaving matters on shared hosts: timing each backend's reps
    back-to-back lets slow drift (thermal state, noisy neighbours) land
    entirely on whichever backend ran during the bad window, skewing the
    ratios.  Round-robin spreads any drift across all backends equally.
    """
    best = {name: math.inf for name in kernels}
    for _ in range(reps):
        for name, kernel in kernels.items():
            t0 = time.perf_counter()
            kernel.run(prob, params)
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def run_wallclock(full: bool) -> list[dict]:
    patterns = MHA_PATTERNS if full else QUICK_PATTERNS
    settings = FULL_SETTINGS if full else QUICK_SETTINGS
    records = []
    for pattern in patterns:
        for batch, seq_len in settings:
            prob = wallclock_problem(pattern, batch, seq_len)
            # Small cells are interpreter-noise-bound: take best of 7.
            # Large cells run for seconds each: one rep is representative.
            reps = 7 if batch * seq_len <= 4096 else 1
            for cls, kname in (
                (RowWiseKernel, "rowwise"),
                (BlockWiseKernel, "blockwise"),
            ):
                vec = cls(exec_backend="vectorized")
                loop = cls(exec_backend="loop")
                cg = cls(exec_backend="codegen")
                params = vec.default_params(prob, RTX4090)
                # Warmup builds the shared mask caches (CSR/BSR, flat-COO
                # views, concat groups) both backends then reuse — the
                # amortized steady state the paper's repeated-serving
                # regime measures.  For codegen, warmup additionally pays
                # the one-time emission (or disk-cache load); the timed
                # reps measure the warm per-call path, matching how a
                # compiled plan is actually served.
                vec.run(prob, params)
                cg.run(prob, params)
                times = _time_runs(
                    {"vec": vec, "cg": cg, "loop": loop}, prob, params, reps
                )
                t_vec, t_cg, t_loop = times["vec"], times["cg"], times["loop"]
                records.append(
                    {
                        "pattern": pattern,
                        "batch": batch,
                        "seq_len": seq_len,
                        "kernel": kname,
                        "reps": reps,
                        "loop_ms": round(t_loop * 1e3, 3),
                        "vectorized_ms": round(t_vec * 1e3, 3),
                        "codegen_ms": round(t_cg * 1e3, 3),
                        "speedup": round(t_loop / t_vec, 2),
                        "codegen_speedup": round(t_loop / t_cg, 2),
                    }
                )
    return records


def _geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize(records: list[dict]) -> dict:
    speedups = [r["speedup"] for r in records]
    cg_speedups = [r["codegen_speedup"] for r in records]
    by_kernel = {}
    for kname in ("rowwise", "blockwise"):
        ks = [r["speedup"] for r in records if r["kernel"] == kname]
        cs = [r["codegen_speedup"] for r in records if r["kernel"] == kname]
        if ks:
            by_kernel[kname] = {
                "geomean_speedup": round(_geomean(ks), 2),
                "max_speedup": max(ks),
                "min_speedup": min(ks),
                "geomean_codegen_speedup": round(_geomean(cs), 2),
                "max_codegen_speedup": max(cs),
                "min_codegen_speedup": min(cs),
            }
    return {
        "geomean_speedup": round(_geomean(speedups), 2),
        "max_speedup": max(speedups),
        "min_speedup": min(speedups),
        "geomean_codegen_speedup": round(_geomean(cg_speedups), 2),
        "by_kernel": by_kernel,
    }


def emit_wallclock(records: list[dict], full: bool) -> dict:
    rows = [
        [
            r["pattern"],
            f"({r['batch']},{r['seq_len']})",
            r["kernel"],
            r["loop_ms"],
            r["vectorized_ms"],
            r["codegen_ms"],
            f"{r['speedup']:.2f}x",
            f"{r['codegen_speedup']:.2f}x",
        ]
        for r in records
    ]
    mode = "full" if full else "quick"
    emit(
        "wallclock",
        format_table(
            [
                "mask", "(bs,seq)", "kernel", "loop ms", "vec ms",
                "cg ms", "vec speedup", "cg speedup",
            ],
            rows,
            title=f"Execution-backend wall-clock ({mode} grid, 12 heads x 64)",
        ),
    )
    payload = {
        "mode": mode,
        "heads": 12,
        "head_size": 64,
        "records": records,
        "summary": summarize(records),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return payload


def test_wallclock_smoke():
    """CI smoke: the quick grid runs, the vectorized path never loses big.

    A genuine regression (vectorized slower than the loop it replaced)
    shows up as speedup << 1; shared-runner noise on the tiny quick shapes
    justifies nothing stricter than a generous floor.
    """
    records = run_wallclock(full=False)
    payload = emit_wallclock(records, full=False)
    assert JSON_PATH.exists()
    assert all(r["vectorized_ms"] > 0 and r["loop_ms"] > 0 for r in records)
    assert all(r["codegen_ms"] > 0 for r in records)
    assert payload["summary"]["geomean_speedup"] > 0.5
    assert payload["summary"]["geomean_codegen_speedup"] > 0.5


def main() -> None:
    full = os.environ.get("STOF_WALLCLOCK_FULL", "") == "1"
    records = run_wallclock(full=full)
    emit_wallclock(records, full=full)


if __name__ == "__main__":
    main()
