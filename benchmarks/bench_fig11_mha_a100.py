"""Figure 11 — MHA performance on the A100, normalized to PyTorch Native.

Same sweep as Figure 10 on the second GPU.  Additional paper anchors
checked here: ~4.7x over Native at (1,128) sliding window and >15x at the
largest scale, with STOF beating FlexAttention by ~1.5-2x on average.
"""

import pytest
from harness import MHA_PATTERNS, emit, format_table, mha_problem
from mha_methods import MHA_METHODS, mha_figure_rows, method_time, stof_time

from repro.gpu.specs import A100

SETTINGS = ((1, 128), (1, 512), (8, 512), (16, 2048), (16, 4096))
HEADERS = ["mask", "(bs,seq)"] + [m[0] for m in MHA_METHODS] + ["stof", "stof kernel"]


@pytest.fixture(scope="module")
def fig11():
    return mha_figure_rows(
        A100, MHA_PATTERNS, SETTINGS,
        lambda p, b, s: mha_problem(p, b, s, name="fig11"),
    )


def test_fig11_table(benchmark, fig11):
    rows, _ = fig11
    benchmark(lambda: stof_time(mha_problem("bigbird", 8, 512, "f11b"), A100))
    emit(
        "fig11_mha_a100",
        format_table(HEADERS, rows, title="Figure 11 reproduction (A100)"),
    )


def test_fig11_stof_wins_everywhere(fig11):
    rows, _ = fig11
    for row in rows:
        numeric = [float(c[:-1]) for c in row[2:-1] if c not in ("--", "OOM")]
        assert float(row[-2][:-1]) == max(numeric), row


def test_fig11_anchor_small_sliding_window(fig11):
    """Paper: 4.7x over Native at (1,128) sliding window on A100."""
    rows, _ = fig11
    for row in rows:
        if row[0] == "sliding_window" and row[1] == "(1,128)":
            stof = float(row[-2][:-1])
            assert 2.0 < stof < 12.0   # same order as the paper's 4.7x

def test_fig11_anchor_large_scale(fig11):
    """Paper: 33.5x over Native at (16,4096); we require >15x (shape)."""
    rows, _ = fig11
    for row in rows:
        if row[0] == "sliding_window" and row[1] == "(16,4096)":
            assert float(row[-2][:-1]) > 15.0


def test_fig11_stof_over_flex_average(fig11):
    """Paper: 1.6x average over FlexAttention on A100."""
    rows, _ = fig11
    ratios = []
    for row in rows:
        flex = row[2 + 3]
        stof = row[-2]
        if flex in ("--", "OOM"):
            continue
        ratios.append(float(stof[:-1]) / float(flex[:-1]))
    avg = sum(ratios) / len(ratios)
    assert avg > 1.3, f"average STOF/Flex speedup {avg:.2f}"


def test_fig11_atomic_gains_exceed_compound(fig11):
    """'The effect of STOF on atomic masks is better than compound.'"""
    rows, _ = fig11
    def flex_ratio(pattern):
        vals = []
        for row in rows:
            if row[0] != pattern or row[2 + 3] in ("--", "OOM"):
                continue
            vals.append(float(row[-2][:-1]) / float(row[2 + 3][:-1]))
        return sum(vals) / len(vals)

    atomic = (flex_ratio("sliding_window") + flex_ratio("dilated")) / 2
    compound = (flex_ratio("longformer") + flex_ratio("bigbird")) / 2
    assert atomic > compound


def test_fig11_rowwise_at_smallest_sliding_window(fig11):
    """Paper §5.2: 'At this time, STOF enables the row-wise kernel' for
    (1,128) sliding window on the A100."""
    rows, _ = fig11
    for row in rows:
        if row[0] == "sliding_window" and row[1] == "(1,128)":
            assert row[-1] == "rowwise"
