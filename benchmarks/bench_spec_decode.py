"""Extension study — the three production serving workloads.

Speculative decoding, chunked prefill, and multi-LoRA adapter serving on
the continuous-batching simulator, priced by the real cost model.

Expected shapes: speculative speedup grows with the acceptance rate (at
``accept_rate=1.0`` the step count collapses by roughly the draft depth
while token counts stay byte-identical to plain decode); chunked prefill
strictly improves the fleet p99 inter-token gap on a long-prompt mix —
the giant fused prefill no longer stalls every concurrent decoder — at a
modest throughput cost; and multi-LoRA serving pays a monotone overhead
in adapter count once the residency budget forces LRU swapping.
"""

import pytest
from harness import bench_rng, emit, format_table

from repro.gpu.specs import A100
from repro.serving import (
    LoRAConfig,
    Request,
    ServingConfig,
    SpeculativeConfig,
    assign_adapters,
    make_scheduler,
    simulate_serving,
    synthetic_trace,
)

N_REQUESTS = 16
RATE_RPS = 500.0

#: Decode-bound shape for the speculative and LoRA studies.
CONFIG = ServingConfig(heads=8, head_size=32, n_layers=4)

#: Full-grid shape for the chunked-prefill study: chunk rows must fill
#: the SMs, or the low-occupancy penalty prices a thin chunk as badly as
#: the whole fused prefill it was meant to replace.
CHUNK_CONFIG = ServingConfig(heads=32, head_size=64, n_layers=4)

SPEC_DEPTHS = (2, 4)
ACCEPT_RATES = (0.5, 0.8, 1.0)
CHUNK_BUDGETS = (0, 256, 512, 1024)
ADAPTER_COUNTS = (0, 2, 4, 8)
LORA = LoRAConfig(rank=16, max_resident=4)


def decode_trace():
    return synthetic_trace(
        N_REQUESTS, RATE_RPS, rng=bench_rng("spec-trace"),
        prompt_range=(32, 128), max_new_range=(32, 96),
    )


def long_prompt_mix():
    """Short decoders in flight while multi-thousand-token prompts land."""
    reqs = [
        Request(req_id=i, arrival_s=i * 1e-4, prompt_len=48 + 16 * i,
                max_new_tokens=48)
        for i in range(8)
    ]
    reqs += [
        Request(req_id=10 + i, arrival_s=2e-3 + i * 3e-3,
                prompt_len=3072 + 256 * i, max_new_tokens=16)
        for i in range(4)
    ]
    return reqs


def run(trace, config, seed_name="spec-run"):
    return simulate_serving(
        trace, A100, make_scheduler("continuous"), config,
        rng=bench_rng(seed_name),
    )


def spec_rows():
    trace = decode_trace()
    base = run(trace, CONFIG)
    rows = []
    for k in SPEC_DEPTHS:
        for rate in ACCEPT_RATES:
            cfg = ServingConfig(
                heads=CONFIG.heads, head_size=CONFIG.head_size,
                n_layers=CONFIG.n_layers,
                spec_decode=SpeculativeConfig(draft_tokens=k, accept_rate=rate),
            )
            rep = run(trace, cfg)
            measured = rep.spec_accepted / rep.spec_proposed
            rows.append([
                k, rate, f"{measured:.0%}", rep.total_steps,
                base.makespan_s / rep.makespan_s,
            ])
    return rows, base


def chunk_rows():
    trace = long_prompt_mix()
    rows = []
    raw = {}
    for budget in CHUNK_BUDGETS:
        cfg = ServingConfig(
            heads=CHUNK_CONFIG.heads, head_size=CHUNK_CONFIG.head_size,
            n_layers=CHUNK_CONFIG.n_layers, chunk_prefill_tokens=budget,
        )
        rep = run(trace, cfg, seed_name="chunk-run")
        rows.append([
            budget if budget else "off", rep.prefill_chunks,
            rep.itl_tail_p(99) * 1e3, rep.itl_max_s * 1e3,
            rep.tokens_per_s,
        ])
        raw[budget] = rep
    return rows, raw


def lora_rows():
    trace = decode_trace()
    rows = []
    raw = {}
    for n in ADAPTER_COUNTS:
        cfg = ServingConfig(
            heads=CONFIG.heads, head_size=CONFIG.head_size,
            n_layers=CONFIG.n_layers, lora=LORA,
        )
        t = assign_adapters(trace, n) if n else trace
        rep = run(t, cfg, seed_name="lora-run")
        base = raw.get(0, rep)
        rows.append([
            n, rep.lora_peak_resident, rep.lora_swaps,
            rep.makespan_s * 1e3,
            f"{rep.makespan_s / base.makespan_s - 1.0:+.1%}",
        ])
        raw[n] = rep
    return rows, raw


SPEC_TITLE = (
    "Extension: speculative decoding "
    f"({N_REQUESTS} requests, heads={CONFIG.heads}, A100; "
    "speedup = baseline makespan / speculative makespan)"
)
SPEC_HEADERS = ["draft k", "accept", "measured", "steps", "speedup"]
CHUNK_TITLE = (
    "Chunked prefill on a long-prompt mix "
    f"(heads={CHUNK_CONFIG.heads}, prompts up to 3840, A100)"
)
CHUNK_HEADERS = ["budget", "chunks", "p99 ITL (ms)", "max ITL (ms)", "tok/s"]
LORA_TITLE = (
    "Multi-LoRA serving overhead "
    f"(rank {LORA.rank}, {LORA.max_resident} resident slots, A100)"
)
LORA_HEADERS = ["adapters", "peak res", "swaps", "makespan (ms)", "overhead"]


def build_tables():
    spec, _ = spec_rows()
    chunk, _ = chunk_rows()
    lora, _ = lora_rows()
    return (
        format_table(SPEC_HEADERS, spec, title=SPEC_TITLE)
        + "\n\n"
        + format_table(CHUNK_HEADERS, chunk, title=CHUNK_TITLE)
        + "\n\n"
        + format_table(LORA_HEADERS, lora, title=LORA_TITLE)
    )


@pytest.fixture(scope="module")
def spec_results():
    return spec_rows()


@pytest.fixture(scope="module")
def chunk_results():
    return chunk_rows()


@pytest.fixture(scope="module")
def lora_results():
    return lora_rows()


def test_spec_decode_tables(benchmark, spec_results, chunk_results,
                            lora_results):
    benchmark(lambda: run(decode_trace(), CONFIG).tokens_per_s)
    spec, _ = spec_results
    chunk, _ = chunk_results
    lora, _ = lora_results
    emit(
        "spec_decode",
        format_table(SPEC_HEADERS, spec, title=SPEC_TITLE)
        + "\n\n"
        + format_table(CHUNK_HEADERS, chunk, title=CHUNK_TITLE)
        + "\n\n"
        + format_table(LORA_HEADERS, lora, title=LORA_TITLE),
    )


def test_speculative_speedup_grows_with_accept_rate(spec_results):
    rows, _ = spec_results
    for k in SPEC_DEPTHS:
        speedups = [r[4] for r in rows if r[0] == k]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 1.0


def test_chunked_prefill_improves_p99_itl(chunk_results):
    """The headline claim: every chunk budget beats the unchunked tail."""
    _, raw = chunk_results
    base = raw[0]
    for budget, rep in raw.items():
        if budget == 0:
            continue
        assert rep.itl_tail_p(99) < base.itl_tail_p(99), budget
        assert rep.itl_max_s < base.itl_max_s, budget


def test_lora_overhead_monotone_in_adapter_count(lora_results):
    _, raw = lora_results
    spans = [raw[n].makespan_s for n in ADAPTER_COUNTS]
    assert all(b >= a for a, b in zip(spans, spans[1:]))
    assert raw[8].lora_swaps > raw[4].lora_swaps > 0
