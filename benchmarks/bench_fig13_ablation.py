"""Figure 13 — Module ablation on the A100.

STOF with only the unified MHA module, only the operator-fusion module,
and both, as speedups over PyTorch Native.  Expected shape: the fusion
module contributes more at (1,128), the MHA module overtakes at
(16,2048), and both together are always the best.
"""

import pytest
from harness import E2E_MODELS, E2E_SETTINGS, emit, engine_time, format_table, model_setup

from repro.gpu.specs import A100
from repro.runtime import PyTorchNativeEngine, STOFEngine

VARIANTS = (
    ("mha-only", dict(use_mha_module=True, use_fusion_module=False)),
    ("fusion-only", dict(use_mha_module=False, use_fusion_module=True)),
    ("both", dict(use_mha_module=True, use_fusion_module=True)),
)


def compute_rows():
    rows = []
    raw = {}
    for model in E2E_MODELS:
        for bs, seq in E2E_SETTINGS:
            inst, masks, patterns = model_setup(model, bs, seq)
            native = engine_time(PyTorchNativeEngine(), inst, A100, masks, patterns)
            cells = [model, f"({bs},{seq})"]
            speeds = {}
            for label, kwargs in VARIANTS:
                t = engine_time(STOFEngine(**kwargs), inst, A100, masks, patterns)
                speeds[label] = native / t
                cells.append(f"{speeds[label]:.2f}x")
            rows.append(cells)
            raw[(model, bs, seq)] = speeds
    return rows, raw


@pytest.fixture(scope="module")
def fig13():
    return compute_rows()


def test_fig13_table(benchmark, fig13):
    rows, _ = fig13

    def probe():
        inst, masks, patterns = model_setup("bert-small", 1, 128)
        return engine_time(
            STOFEngine(use_fusion_module=False), inst, A100, masks, patterns
        )

    benchmark(probe)
    emit(
        "fig13_ablation",
        format_table(
            ["model", "(bs,seq)", "mha-only", "fusion-only", "both"],
            rows,
            title="Figure 13 reproduction: module ablation over Native (A100)",
        ),
    )


def test_fig13_both_always_highest(fig13):
    _, raw = fig13
    for key, speeds in raw.items():
        assert speeds["both"] >= speeds["mha-only"] - 1e-9, key
        assert speeds["both"] >= speeds["fusion-only"] - 1e-9, key


def test_fig13_fusion_dominates_small_scale(fig13):
    """Paper: at (1,128) the fusion-only speedup is ~39% above MHA-only
    on average."""
    _, raw = fig13
    ratios = [
        raw[(m, 1, 128)]["fusion-only"] / raw[(m, 1, 128)]["mha-only"]
        for m in E2E_MODELS
    ]
    assert sum(ratios) / len(ratios) > 1.1


def test_fig13_mha_dominates_large_scale(fig13):
    """Paper: at (16,2048) the MHA-only speedup is ~46% above fusion-only
    on average."""
    _, raw = fig13
    ratios = [
        raw[(m, 16, 2048)]["mha-only"] / raw[(m, 16, 2048)]["fusion-only"]
        for m in E2E_MODELS
    ]
    assert sum(ratios) / len(ratios) > 1.1
