"""Extension study — KV-cache autoregressive decoding.

Beyond the paper's full-forward evaluation: GPT-style generation with a
growing key/value cache, one query row per step, comparing STOF's
row-wise decode kernel against native and FlashAttention2 strategies,
with dense-causal vs sparse sliding-window patterns.

Expected shapes: STOF fastest at every cache length; with a window
pattern the per-step cost (and hence tokens/s) stays flat as the cache
grows, while dense-causal decode degrades ~linearly.
"""

import pytest
from harness import emit, format_table

from repro.gpu.specs import A100
from repro.mha.decode import simulate_decode
from repro.runtime.frameworks import COMPILED_DISPATCH_S, EAGER_DISPATCH_S

CASES = [
    # (pattern, prompt, generate, extra)
    ("causal", 128, 128, {}),
    ("causal", 1024, 256, {}),
    ("sliding_window", 128, 128, {"band_width": 32}),
    ("sliding_window", 1024, 256, {"band_width": 32}),
]

METHODS = (
    ("stof", "stof", COMPILED_DISPATCH_S),
    ("native", "pytorch-native", EAGER_DISPATCH_S),
    ("fa2", "flashattention2", COMPILED_DISPATCH_S),
)


def compute_rows():
    rows = []
    raw = {}
    for pattern, prompt, gen, extra in CASES:
        cells = [pattern, f"{prompt}+{gen}"]
        per = {}
        for label, method, disp in METHODS:
            rep = simulate_decode(
                pattern, A100, method,
                batch=8, heads=12, head_size=64,
                prompt_len=prompt, generate=gen,
                dispatch_s=disp, **extra,
            )
            per[label] = rep
            cells.append(rep.tokens_per_s)
        rows.append(cells)
        raw[(pattern, prompt, gen)] = per
    return rows, raw


@pytest.fixture(scope="module")
def decode_rows():
    return compute_rows()


def test_decode_table(benchmark, decode_rows):
    rows, _ = decode_rows
    benchmark(
        lambda: simulate_decode(
            "causal", A100, "stof", prompt_len=64, generate=16
        ).tokens_per_s
    )
    emit(
        "decode_throughput",
        format_table(
            ["pattern", "prompt+gen", "stof tok/s", "native tok/s", "fa2 tok/s"],
            rows,
            title="Extension: KV-cache decode throughput (batch 8, GPT heads, A100)",
        ),
    )


def test_stof_fastest_decode(decode_rows):
    _, raw = decode_rows
    for key, per in raw.items():
        assert per["stof"].total_s <= per["native"].total_s, key
        assert per["stof"].total_s <= per["fa2"].total_s, key


def test_window_decode_does_not_degrade(decode_rows):
    """Sparse pattern => per-step cost independent of cache length."""
    _, raw = decode_rows
    short = raw[("sliding_window", 128, 128)]["stof"]
    long = raw[("sliding_window", 1024, 256)]["stof"]
    assert long.mean_step_s < 1.3 * short.mean_step_s


def test_causal_decode_degrades(decode_rows):
    """Dense causal decode slows as the cache grows."""
    _, raw = decode_rows
    short = raw[("causal", 128, 128)]["stof"]
    long = raw[("causal", 1024, 256)]["stof"]
    assert long.mean_step_s > 1.5 * short.mean_step_s
