"""Extension study — multi-GPU sharded execution scaling curves.

Beyond the paper's single-GPU evaluation: the same compiled plans are
sharded Megatron-style across tensor-parallel ranks (ring all-reduce
collectives priced by the α–β interconnect model) and behind a
data-parallel request router.

Expected shapes: near-linear TP speedup while per-rank work is
compute-bound (the large batch×seq setting), flattening once the ring
all-reduces dominate at small per-rank work (the small setting, and any
setting on PCIe, whose α and 1/β are both an order of magnitude worse
than NVLink); per-rank memory shrinks with TP; DP replicas multiply
serving throughput under bursty load without changing per-pass latency.
"""

import pytest
from harness import bench_rng, emit, format_table

from repro.api import compile_model
from repro.gpu.specs import A100
from repro.models import ModelConfig
from repro.parallel import ShardedServingEngine
from repro.serving import ServingConfig, synthetic_trace

#: A TP-friendly backbone: 16 heads and a 4096-wide FFN divide evenly
#: through tp=8 (the zoo's BERT-Base, with 12 heads, stops at tp=4).
MODEL = ModelConfig("shard-bench", 4, 0, 1024, 16, 4096)

TPS = (1, 2, 4, 8)
SHAPES = (("large", 8, 512), ("small", 1, 128))
LINKS = ("nvlink", "pcie")

#: Serving layouts swept at one bursty arrival rate.
LAYOUTS = ("tp1", "tp2", "tp4", "dp2", "dp4", "tp2dp2")

SERVE_CONFIG = ServingConfig(heads=16, head_size=64, n_layers=4)
N_REQUESTS = 48
ARRIVAL_RPS = 20000.0


def compile_rows():
    """TP scaling of one forward pass, per shape and link."""
    rows = []
    raw = {}
    for label, batch, seq in SHAPES:
        for link in LINKS:
            base = None
            for tp in TPS:
                c = compile_model(
                    MODEL, batch, seq, mask="causal",
                    parallel=f"tp{tp}:{link}",
                )
                if base is None:
                    base = c.latency_s     # tp1: no collectives, any link
                rows.append(
                    [
                        label,
                        f"{batch}x{seq}",
                        link,
                        tp,
                        c.latency_s * 1e3,
                        c.comm_time_s * 1e3,
                        f"{base / c.latency_s:.2f}x",
                        c.report.memory_bytes / 2**30,
                    ]
                )
                raw[(label, link, tp)] = c
    return rows, raw


def serving_rows():
    """Aggregate serving throughput across parallel layouts."""
    trace = synthetic_trace(
        N_REQUESTS,
        ARRIVAL_RPS,
        rng=bench_rng("shard-serve"),
        prompt_range=(32, 96),
        max_new_range=(16, 48),
    )
    rows = []
    raw = {}
    for layout in LAYOUTS:
        engine = ShardedServingEngine(
            A100, config=SERVE_CONFIG, shard=layout
        )
        report = engine.run(trace, rng=bench_rng("shard-serve-masks"))
        rows.append(
            [
                layout,
                report.tokens_per_s,
                report.goodput_rps,
                report.comm_s * 1e3,
                f"{report.plan_cache['hit_rate']:.1%}",
            ]
        )
        raw[layout] = report
    return rows, raw


@pytest.fixture(scope="module")
def sharding_tables():
    return compile_rows(), serving_rows()


def render(compile_table_rows, serving_table_rows):
    compile_table = format_table(
        ["shape", "batch x seq", "link", "tp", "latency (ms)",
         "comm (ms)", "speedup", "mem/rank (GiB)"],
        compile_table_rows,
        title=(
            "Extension: tensor-parallel scaling of one forward pass "
            f"({MODEL.name}: {MODEL.total_layers}L, {MODEL.heads}H, "
            f"hidden {MODEL.hidden}, A100 ranks)"
        ),
    )
    serving_table = format_table(
        ["layout", "tok/s", "goodput req/s", "comm (ms)", "plan-cache hits"],
        serving_table_rows,
        title=(
            "Extension: sharded serving throughput "
            f"({N_REQUESTS} requests @ {ARRIVAL_RPS:.0f} req/s, "
            f"{SERVE_CONFIG.n_layers}L x {SERVE_CONFIG.heads}H, A100)"
        ),
    )
    return compile_table + "\n\n" + serving_table


def test_sharding_table(benchmark, sharding_tables):
    (compile_table_rows, _), (serving_table_rows, _) = sharding_tables
    benchmark(
        lambda: compile_model(
            MODEL, 1, 128, mask="causal", parallel="tp4"
        ).latency_s
    )
    emit("sharding_scaling", render(compile_table_rows, serving_table_rows))


def speedup(raw, label, link, tp):
    return raw[(label, link, 1)].latency_s / raw[(label, link, tp)].latency_s


def test_tp_speedup_monotone_while_compute_bound(sharding_tables):
    """On NVLink at the large shape every added rank still pays off."""
    (_, raw), _ = sharding_tables
    lats = [raw[("large", "nvlink", tp)].latency_s for tp in TPS]
    assert all(b < a for a, b in zip(lats, lats[1:])), lats


def test_small_shapes_flatten(sharding_tables):
    """Comm-bound regime on NVLink: the small shape scales worse than the
    large one at every rank count past tp1."""
    (_, raw), _ = sharding_tables
    for tp in TPS[1:]:
        assert (
            speedup(raw, "small", "nvlink", tp)
            < speedup(raw, "large", "nvlink", tp)
        )


def test_pcie_is_comm_bound_everywhere(sharding_tables):
    """On PCIe the all-reduces cost more than the compute they save: every
    multi-rank layout is slower than one GPU — the curve's hard floor."""
    (_, raw), _ = sharding_tables
    for label, _, _ in SHAPES:
        for tp in TPS[1:]:
            assert speedup(raw, label, "pcie", tp) < 1.0


def test_pcie_pays_more_comm(sharding_tables):
    (_, raw), _ = sharding_tables
    for label, _, _ in SHAPES:
        for tp in TPS[1:]:
            assert (
                raw[(label, "pcie", tp)].comm_time_s
                > raw[(label, "nvlink", tp)].comm_time_s
            )
            assert (
                raw[(label, "pcie", tp)].rank_time_s
                == raw[(label, "nvlink", tp)].rank_time_s
            )


def test_per_rank_memory_shrinks(sharding_tables):
    (_, raw), _ = sharding_tables
    mems = [raw[("large", "nvlink", tp)].report.memory_bytes for tp in TPS]
    assert all(b < a for a, b in zip(mems, mems[1:]))


def test_dp_multiplies_serving_throughput(sharding_tables):
    """Under bursty load, replicas drain the queue roughly in parallel."""
    _, (_, raw) = sharding_tables
    assert raw["dp2"].tokens_per_s > raw["tp1"].tokens_per_s
    assert raw["dp4"].tokens_per_s > raw["dp2"].tokens_per_s


def test_tp_decode_is_comm_bound(sharding_tables):
    """Serving decode moves a handful of rows per step, so TP's per-layer
    all-reduces cost more than the sharded compute saves — TP buys memory
    headroom here, not throughput."""
    _, (_, raw) = sharding_tables
    assert raw["tp2"].tokens_per_s < raw["tp1"].tokens_per_s
    assert raw["tp2"].comm_s > 0


def test_serving_plan_cache_replays(sharding_tables):
    """Every layout's steady state replays most plans from the shared
    cache."""
    _, (_, raw) = sharding_tables
    for layout, report in raw.items():
        assert report.plan_cache["hit_rate"] >= 0.9, layout
