"""Extension study — multi-GPU sharded execution scaling curves.

Beyond the paper's single-GPU evaluation: the same compiled plans are
sharded Megatron-style across tensor-parallel ranks (ring all-reduce
collectives priced by the α–β interconnect model) and behind a
data-parallel request router.  This study prices every layout under BOTH
execution models:

* **serialized** — every all-reduce stalls its sync point (the original
  model; the ``sharding_scaling_serialized.txt`` artifact keeps this
  table byte-identical across versions).
* **overlapped** — each layer's collectives are bucketed into one
  all-reduce and overlapped with the next layer's compute under a
  contention factor; pipeline layouts run 1F1B micro-batch schedules
  with explicit bubbles, and dual-link layouts price hierarchical
  (intra-node ring + inter-node tree) collectives.

Expected shapes: near-linear TP speedup while per-rank work is
compute-bound, flattening once the all-reduces dominate; overlap claws
back a large share of the PCIe-vs-NVLink gap at compute-dense shapes
(the fig10 setting recovers > 50%); pipeline parallelism converts a
slow-link TP layout into fewer, cheaper boundary sends (tp2pp2 with
enough micro-batches beats serialized tp4 on PCIe); hierarchical
collectives keep the slow link to 1/node_size of the payload.
"""

import pytest
from harness import bench_rng, emit, format_table

from repro.api import compile_model
from repro.gpu.specs import A100
from repro.models import ModelConfig
from repro.parallel import FleetConfig, ShardedServingEngine
from repro.plan import PlanCache
from repro.serving import ServingConfig, synthetic_trace

#: A TP-friendly backbone: 16 heads and a 4096-wide FFN divide evenly
#: through tp=8 (the zoo's BERT-Base, with 12 heads, stops at tp=4).
MODEL = ModelConfig("shard-bench", 4, 0, 1024, 16, 4096)

#: The Fig. 10-style large setting: same width, 4x the FFN — the
#: compute-dense regime where comm–compute overlap pays off (collective
#: payloads scale with hidden only, FFN compute with hidden * ffn_dim).
FIG10_MODEL = ModelConfig("shard-bench-xl", 4, 0, 1024, 16, 16384)

TPS = (1, 2, 4, 8)
SHAPES = (
    ("large", MODEL, 8, 512),
    ("small", MODEL, 1, 128),
    ("fig10", FIG10_MODEL, 8, 2048),
)
#: The PR-5 serialized golden covers these shapes (fig10 came later).
SERIALIZED_SHAPES = ("large", "small")
LINKS = ("nvlink", "pcie")

#: 1F1B micro-batch sweep of the pipeline study (fig10 shape, PCIe).
MICRO_SWEEP = (1, 2, 4, 8, 16)

#: Hierarchical-collective layouts compared at tp8 (fig10 shape).
HIER_LAYOUTS = ("tp8:nvlink", "tp8:pcie", "tp8:nvlink,pcie", "tp8:nvlink,ib")

#: Serving layouts swept at one bursty arrival rate.
LAYOUTS = ("tp1", "tp2", "tp4", "dp2", "dp4", "tp2dp2", "tp2pp2")
#: The PR-5 serving table listed exactly these (pre-pipeline) layouts.
SERIALIZED_LAYOUTS = ("tp1", "tp2", "tp4", "dp2", "dp4", "tp2dp2")

SERVE_CONFIG = ServingConfig(heads=16, head_size=64, n_layers=4)
N_REQUESTS = 48
ARRIVAL_RPS = 20000.0


def compile_rows():
    """TP scaling of one forward pass, per shape and link, both modes.

    One compile per layout carries both prices: ``serial_latency_s`` is
    the sync-point model bit for bit, ``latency_s`` the overlapped
    timeline.  "recovered" is the share of the serialized PCIe-vs-NVLink
    gap that overlap claws back."""
    rows = []
    raw = {}
    cache = PlanCache(max_entries=None)
    for label, model, batch, seq in SHAPES:
        for link in LINKS:
            for tp in TPS:
                raw[(label, link, tp)] = compile_model(
                    model, batch, seq, mask="causal",
                    parallel=f"tp{tp}:{link}", plan_cache=cache,
                )
    for label, model, batch, seq in SHAPES:
        for link in LINKS:
            base = raw[(label, link, 1)].latency_s   # tp1: no collectives
            for tp in TPS:
                c = raw[(label, link, tp)]
                if link == "pcie" and tp > 1:
                    nv = raw[(label, "nvlink", tp)]
                    gap = c.serial_latency_s - nv.serial_latency_s
                    recovered = f"{(c.serial_latency_s - c.latency_s) / gap:.0%}"
                else:
                    recovered = "--"
                rows.append(
                    [
                        label,
                        f"{batch}x{seq}",
                        link,
                        tp,
                        c.serial_latency_s * 1e3,
                        c.latency_s * 1e3,
                        c.serial_comm_time_s * 1e3,
                        recovered,
                        f"{base / c.latency_s:.2f}x",
                        c.report.memory_bytes / 2**30,
                    ]
                )
    return rows, raw


def pipeline_rows(raw):
    """1F1B micro-batch sweep: tp2pp2 on PCIe at the fig10 shape, with
    the serialized tp4 row it is trying to beat."""
    label, model, batch, seq = SHAPES[2]
    assert label == "fig10"
    cache = PlanCache(max_entries=None)
    ref = raw[(label, "pcie", 4)]
    rows = [
        ["tp4:pcie (serialized)", "--", ref.serial_latency_s * 1e3,
         0.0, "--", 0.0],
    ]
    sweep = {}
    for m in MICRO_SWEEP:
        c = compile_model(
            model, batch, seq, mask="causal", parallel="tp2pp2:pcie",
            micro_batches=m, plan_cache=cache,
        )
        sweep[m] = c
        rows.append(
            [
                "tp2pp2:pcie",
                m,
                c.latency_s * 1e3,
                c.bubble_time_s * 1e3,
                f"{c.bubble_fraction:.1%}",
                c.p2p_time_s * 1e3,
            ]
        )
    return rows, sweep


def hierarchy_rows():
    """Flat vs hierarchical collectives at tp8 on the fig10 shape."""
    label, model, batch, seq = SHAPES[2]
    cache = PlanCache(max_entries=None)
    rows = []
    raw = {}
    for layout in HIER_LAYOUTS:
        c = compile_model(
            model, batch, seq, mask="causal", parallel=layout,
            plan_cache=cache,
        )
        raw[layout] = c
        rows.append(
            [
                layout,
                "hierarchical" if c.shard.inter_link else "flat ring",
                c.serial_latency_s * 1e3,
                c.latency_s * 1e3,
                c.serial_comm_time_s * 1e3,
            ]
        )
    return rows, raw


def serving_rows():
    """Aggregate serving throughput across parallel layouts, both modes."""
    trace = synthetic_trace(
        N_REQUESTS,
        ARRIVAL_RPS,
        rng=bench_rng("shard-serve"),
        prompt_range=(32, 96),
        max_new_range=(16, 48),
    )
    rows = []
    raw = {}
    for layout in LAYOUTS:
        reports = {}
        for mode, overlap in (("serial", False), ("overlap", True)):
            engine = ShardedServingEngine(
                A100, config=SERVE_CONFIG,
                fleet=FleetConfig(shard=layout, overlap=overlap),
            )
            reports[mode] = engine.run(
                trace, rng=bench_rng("shard-serve-masks")
            )
        serial, over = reports["serial"], reports["overlap"]
        rows.append(
            [
                layout,
                serial.tokens_per_s,
                over.tokens_per_s,
                over.goodput_rps,
                over.comm_s * 1e3,
                f"{over.bubble_fraction:.1%}" if over.bubble_s else "--",
                f"{over.plan_cache['hit_rate']:.1%}",
            ]
        )
        raw[layout] = reports
    return rows, raw


@pytest.fixture(scope="module")
def sharding_tables():
    compile_table = compile_rows()
    return (
        compile_table,
        pipeline_rows(compile_table[1]),
        hierarchy_rows(),
        serving_rows(),
    )


def render(compile_table_rows, pipeline_table_rows, hierarchy_table_rows,
           serving_table_rows):
    compile_table = format_table(
        ["shape", "batch x seq", "link", "tp", "serial (ms)",
         "overlap (ms)", "comm (ms)", "recovered", "speedup",
         "mem/rank (GiB)"],
        compile_table_rows,
        title=(
            "Extension: tensor-parallel scaling of one forward pass, "
            "serialized vs overlapped collectives "
            f"({MODEL.name}: {MODEL.total_layers}L, {MODEL.heads}H, "
            f"hidden {MODEL.hidden}; fig10: {FIG10_MODEL.name}, "
            f"ffn {FIG10_MODEL.ffn_dim}; A100 ranks)"
        ),
    )
    pipeline_table = format_table(
        ["layout", "micro-batches", "latency (ms)", "bubble (ms)",
         "bubble frac", "p2p (ms)"],
        pipeline_table_rows,
        title=(
            "Extension: 1F1B pipeline micro-batch sweep "
            f"({FIG10_MODEL.name} @ 8x2048, PCIe, overlapped)"
        ),
    )
    hierarchy_table = format_table(
        ["layout", "collectives", "serial (ms)", "overlap (ms)",
         "comm (ms)"],
        hierarchy_table_rows,
        title=(
            "Extension: flat vs hierarchical collectives at tp8 "
            f"({FIG10_MODEL.name} @ 8x2048, node size 4)"
        ),
    )
    serving_table = format_table(
        ["layout", "serial tok/s", "overlap tok/s", "goodput req/s",
         "comm (ms)", "bubble", "plan-cache hits"],
        serving_table_rows,
        title=(
            "Extension: sharded serving throughput "
            f"({N_REQUESTS} requests @ {ARRIVAL_RPS:.0f} req/s, "
            f"{SERVE_CONFIG.n_layers}L x {SERVE_CONFIG.heads}H, A100)"
        ),
    )
    return "\n\n".join(
        [compile_table, pipeline_table, hierarchy_table, serving_table]
    )


def render_serialized_compile(compile_raw):
    """The pre-overlap compile table, unchanged: byte for byte.

    Regenerated from the same compiles via their ``serial_*`` fields, so
    any drift in the serialized pricing path shows up as a diff against
    ``sharding_scaling_serialized.txt``."""
    compile_table_rows = []
    for label, model, batch, seq in SHAPES:
        if label not in SERIALIZED_SHAPES:
            continue
        for link in LINKS:
            base = compile_raw[(label, link, 1)].serial_latency_s
            for tp in TPS:
                c = compile_raw[(label, link, tp)]
                compile_table_rows.append(
                    [
                        label,
                        f"{batch}x{seq}",
                        link,
                        tp,
                        c.serial_latency_s * 1e3,
                        c.serial_comm_time_s * 1e3,
                        f"{base / c.serial_latency_s:.2f}x",
                        c.report.memory_bytes / 2**30,
                    ]
                )
    compile_table = format_table(
        ["shape", "batch x seq", "link", "tp", "latency (ms)",
         "comm (ms)", "speedup", "mem/rank (GiB)"],
        compile_table_rows,
        title=(
            "Extension: tensor-parallel scaling of one forward pass "
            f"({MODEL.name}: {MODEL.total_layers}L, {MODEL.heads}H, "
            f"hidden {MODEL.hidden}, A100 ranks)"
        ),
    )
    return compile_table


def render_serialized(compile_raw, serving_raw):
    """The whole pre-overlap study: the PR-5 artifact, byte for byte."""
    compile_table = render_serialized_compile(compile_raw)
    serving_table_rows = [
        [
            layout,
            serving_raw[layout]["serial"].tokens_per_s,
            serving_raw[layout]["serial"].goodput_rps,
            serving_raw[layout]["serial"].comm_s * 1e3,
            f"{serving_raw[layout]['serial'].plan_cache['hit_rate']:.1%}",
        ]
        for layout in SERIALIZED_LAYOUTS
    ]
    serving_table = format_table(
        ["layout", "tok/s", "goodput req/s", "comm (ms)", "plan-cache hits"],
        serving_table_rows,
        title=(
            "Extension: sharded serving throughput "
            f"({N_REQUESTS} requests @ {ARRIVAL_RPS:.0f} req/s, "
            f"{SERVE_CONFIG.n_layers}L x {SERVE_CONFIG.heads}H, A100)"
        ),
    )
    return compile_table + "\n\n" + serving_table


def test_sharding_table(benchmark, sharding_tables):
    ((compile_table_rows, compile_raw), (pipeline_table_rows, _),
     (hierarchy_table_rows, _), (serving_table_rows, serving_raw)) = (
        sharding_tables
    )
    benchmark(
        lambda: compile_model(
            MODEL, 1, 128, mask="causal", parallel="tp4"
        ).latency_s
    )
    emit(
        "sharding_scaling",
        render(compile_table_rows, pipeline_table_rows,
               hierarchy_table_rows, serving_table_rows),
    )
    emit(
        "sharding_scaling_serialized",
        render_serialized(compile_raw, serving_raw),
    )


def speedup(raw, label, link, tp):
    """Serialized-mode speedup over tp1 (the PR-5 scaling claim)."""
    return (
        raw[(label, link, 1)].serial_latency_s
        / raw[(label, link, tp)].serial_latency_s
    )


def test_tp_speedup_monotone_while_compute_bound(sharding_tables):
    """On NVLink at the large shape every added rank still pays off —
    in both pricing modes."""
    (_, raw), _, _, _ = sharding_tables
    for attr in ("serial_latency_s", "latency_s"):
        lats = [
            getattr(raw[("large", "nvlink", tp)], attr) for tp in TPS
        ]
        assert all(b < a for a, b in zip(lats, lats[1:])), (attr, lats)


def test_small_shapes_flatten(sharding_tables):
    """Comm-bound regime on NVLink: the small shape scales worse than the
    large one at every rank count past tp1."""
    (_, raw), _, _, _ = sharding_tables
    for tp in TPS[1:]:
        assert (
            speedup(raw, "small", "nvlink", tp)
            < speedup(raw, "large", "nvlink", tp)
        )


def test_pcie_is_comm_bound_everywhere(sharding_tables):
    """Serialized on PCIe, the all-reduces cost more than the compute
    they save at the original shapes: every multi-rank layout is slower
    than one GPU — the curve's hard floor."""
    (_, raw), _, _, _ = sharding_tables
    for label in SERIALIZED_SHAPES:
        for tp in TPS[1:]:
            assert speedup(raw, label, "pcie", tp) < 1.0


def test_pcie_pays_more_comm(sharding_tables):
    (_, raw), _, _, _ = sharding_tables
    for label, _, _, _ in SHAPES:
        for tp in TPS[1:]:
            assert (
                raw[(label, "pcie", tp)].serial_comm_time_s
                > raw[(label, "nvlink", tp)].serial_comm_time_s
            )
            assert (
                raw[(label, "pcie", tp)].rank_time_s
                == raw[(label, "nvlink", tp)].rank_time_s
            )


def test_per_rank_memory_shrinks(sharding_tables):
    (_, raw), _, _, _ = sharding_tables
    mems = [raw[("large", "nvlink", tp)].report.memory_bytes for tp in TPS]
    assert all(b < a for a, b in zip(mems, mems[1:]))


def test_overlap_bounded_by_serialized_and_floor(sharding_tables):
    """Every layout: serialized >= overlapped >= max(compute, comm)."""
    (_, raw), _, _, _ = sharding_tables
    for c in raw.values():
        assert c.latency_s <= c.serial_latency_s
        assert c.latency_s >= c.rank_time_s
        assert c.latency_s >= c.comm_time_s


def test_overlap_recovers_half_the_pcie_gap_at_fig10(sharding_tables):
    """The headline: at the compute-dense fig10 shape, overlapped PCIe
    tp4 recovers >= 50% of the serialized PCIe-vs-NVLink gap."""
    (_, raw), _, _, _ = sharding_tables
    pcie = raw[("fig10", "pcie", 4)]
    nv = raw[("fig10", "nvlink", 4)]
    gap = pcie.serial_latency_s - nv.serial_latency_s
    recovered = (pcie.serial_latency_s - pcie.latency_s) / gap
    assert recovered >= 0.5, recovered


def test_pipeline_beats_serialized_tp4_on_pcie(sharding_tables):
    """tp2pp2 with >= 8 micro-batches: half the ranks per all-reduce and
    cheap boundary sends beat serialized tp4 on the slow link."""
    (_, raw), (_, sweep), _, _ = sharding_tables
    ref = raw[("fig10", "pcie", 4)].serial_latency_s
    for m in (8, 16):
        assert sweep[m].latency_s < ref, (m, sweep[m].latency_s, ref)


def test_pipeline_bubble_fraction_monotone(sharding_tables):
    _, (_, sweep), _, _ = sharding_tables
    fracs = [sweep[m].bubble_fraction for m in MICRO_SWEEP]
    assert all(b < a for a, b in zip(fracs, fracs[1:])), fracs
    assert all(sweep[m].bubble_time_s > 0 for m in MICRO_SWEEP)


def test_hierarchical_beats_flat_slow_ring(sharding_tables):
    """Two-tier collectives keep the slow link to 1/node_size of the
    payload: tp8 over nvlink+pcie out-prices the flat pcie ring."""
    _, _, (_, raw), _ = sharding_tables
    assert (
        raw["tp8:nvlink,pcie"].serial_comm_time_s
        < raw["tp8:pcie"].serial_comm_time_s
    )
    assert (
        raw["tp8:nvlink,pcie"].latency_s < raw["tp8:pcie"].latency_s
    )
    # The flat all-NVLink clique is still the best place to be.
    assert (
        raw["tp8:nvlink"].serial_comm_time_s
        < raw["tp8:nvlink,pcie"].serial_comm_time_s
    )


def test_dp_multiplies_serving_throughput(sharding_tables):
    """Under bursty load, replicas drain the queue roughly in parallel."""
    _, _, _, (_, raw) = sharding_tables
    for mode in ("serial", "overlap"):
        assert raw["dp2"][mode].tokens_per_s > raw["tp1"][mode].tokens_per_s
        assert raw["dp4"][mode].tokens_per_s > raw["dp2"][mode].tokens_per_s


def test_tp_decode_is_comm_bound(sharding_tables):
    """Serving decode moves a handful of rows per step, so TP's per-layer
    all-reduces cost more than the sharded compute saves — TP buys memory
    headroom here, not throughput."""
    _, _, _, (_, raw) = sharding_tables
    assert raw["tp2"]["serial"].tokens_per_s < raw["tp1"]["serial"].tokens_per_s
    assert raw["tp2"]["serial"].comm_s > 0


def test_serving_overlap_beats_serialized(sharding_tables):
    """Bucketed, overlapped collectives lift every comm-paying layout."""
    _, _, _, (_, raw) = sharding_tables
    for layout in ("tp2", "tp4", "tp2dp2"):
        assert (
            raw[layout]["overlap"].tokens_per_s
            > raw[layout]["serial"].tokens_per_s
        ), layout


def test_serving_pipeline_reports_bubble(sharding_tables):
    _, _, _, (_, raw) = sharding_tables
    over = raw["tp2pp2"]["overlap"]
    assert over.bubble_s > 0
    assert over.micro_batches == 8
    assert 0 < over.bubble_fraction < 0.2


def test_serving_plan_cache_replays(sharding_tables):
    """Every layout's steady state replays most plans from the shared
    cache."""
    _, _, _, (_, raw) = sharding_tables
    for layout, reports in raw.items():
        for mode, report in reports.items():
            assert report.plan_cache["hit_rate"] >= 0.9, (layout, mode)
