"""Numerical-accuracy study — every kernel vs the FP32 dense reference.

The paper's kernels are exact (no approximation); the only error source
is FP16 storage rounding.  This study measures the maximum absolute error
of every attention implementation against the FP32 reference across the
evaluation masks, confirming all implementations sit at the FP16 noise
floor — i.e. the speedups in Figs. 10-12 are not bought with accuracy.
"""

import numpy as np
import pytest
from harness import bench_rng, emit, format_table

from repro.mha.baselines import (
    ByteTransformerAttention,
    FlashAttention2Attention,
    FlexAttention,
    MCFuserAttention,
    NaiveAttention,
)
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.problem import AttentionProblem
from repro.mha.reference import reference_attention
from repro.mha.rowwise import RowWiseKernel

PATTERNS = ("sliding_window", "dilated", "longformer", "bigbird", "causal")

KERNELS = (
    ("stof-blockwise", lambda p: BlockWiseKernel().run(
        p, {"block_m": 32, "block_n": 32, "num_warps": 4, "padding": 16})),
    ("stof-rowwise", lambda p: RowWiseKernel().run(p)),
    ("pytorch-native", lambda p: NaiveAttention().run(p)),
    ("flashattention2", lambda p: FlashAttention2Attention().run(p)),
    ("flexattention", lambda p: FlexAttention().run(p)),
    ("bytetransformer", lambda p: ByteTransformerAttention().run(p)),
    ("mcfuser", lambda p: MCFuserAttention().run(p)),
)


def fp32_reference(problem: AttentionProblem) -> np.ndarray:
    """The reference without the final FP16 rounding (pure FP32)."""
    q = problem.q.astype(np.float32)
    k = problem.k.astype(np.float32)
    v = problem.v.astype(np.float32)
    scores = (q @ np.swapaxes(k, -1, -2)) * problem.scale
    scores = np.where(problem.mask, scores, -np.inf)
    m = scores.max(axis=-1, keepdims=True)
    safe = np.where(np.isfinite(m), m, 0.0)
    ex = np.where(np.isfinite(scores), np.exp(scores - safe), 0.0)
    den = ex.sum(axis=-1, keepdims=True)
    p = np.divide(ex, den, out=np.zeros_like(ex), where=den > 0)
    return p @ v


def compute_rows():
    rows = []
    raw = {}
    for pattern in PATTERNS:
        problem = AttentionProblem.build(
            pattern, 2, 4, 192, 64, rng=bench_rng(f"acc-{pattern}"),
            with_tensors=True,
        )
        ref = fp32_reference(problem)
        cells = [pattern]
        for name, run in KERNELS:
            out = run(problem).astype(np.float32)
            err = float(np.abs(out - ref).max())
            raw[(pattern, name)] = err
            cells.append(err)
        rows.append(cells)
    return rows, raw


@pytest.fixture(scope="module")
def accuracy():
    return compute_rows()


def test_accuracy_table(benchmark, accuracy):
    rows, _ = accuracy
    benchmark(
        lambda: fp32_reference(
            AttentionProblem.build(
                "causal", 1, 2, 64, 32, rng=bench_rng("acc-probe"),
                with_tensors=True,
            )
        )
    )
    emit(
        "accuracy_study",
        format_table(
            ["mask"] + [k for k, _ in KERNELS],
            rows,
            title="Max |error| vs FP32 dense reference (FP16 storage pipeline)",
        ),
    )


def test_all_kernels_at_fp16_noise_floor(accuracy):
    """Every implementation's error is FP16 rounding, not approximation."""
    _, raw = accuracy
    for key, err in raw.items():
        assert err < 5e-3, key


def test_stof_no_worse_than_baselines(accuracy):
    """Sparse skipping adds no error beyond the dense FP16 pipeline."""
    _, raw = accuracy
    for pattern in PATTERNS:
        stof = max(raw[(pattern, "stof-blockwise")], raw[(pattern, "stof-rowwise")])
        native = raw[(pattern, "pytorch-native")]
        assert stof <= native + 2e-3, pattern
