"""Plan-cache effectiveness — serving simulation with and without reuse.

The compiled-plan layer (``repro.plan``) memoizes planning decisions
behind content-addressed keys.  The serving engine is its hottest
client: every decode step of every request re-prices a packed row-wise
problem, and with the cache on those steps replay cached per-row mask
statistics instead of re-scanning masks.

Expected shapes: steady-state decode hit rates above 90% on every
pattern (a bucket of row statistics serves ``plan_bucket_tokens``
consecutive steps), cached and uncached runs produce *identical*
serving reports (the cache is pure memoization), and the cached
simulation is at least 1.3x faster wall-clock on the decode-heavy
workload below.

The golden table records only deterministic cache statistics; measured
wall-clock is asserted, printed to stdout, and kept out of the golden.

A second section stresses the *symbolic* key path: prompts drawn
uniformly from 64-4096 tokens, so concrete keys see a near-unique shape
per request while guarded plan families (``symbolic_plan_keys=True``)
keep sharing row statistics across requests.  The golden records hit
rate, entry count, family count, splits, and guard checks per lookup
for both key schemes on the same trace.
"""

import dataclasses
import time

import pytest
from harness import bench_rng, emit, format_table

from repro.gpu.specs import A100
from repro.serving import ServingConfig, ServingEngine, make_scheduler, synthetic_trace

N_REQUESTS = 24

#: Small prompts, long generations: a decode-dominated steady state,
#: the regime the plan cache is built for.
PROMPT_RANGE = (32, 64)
MAX_NEW_RANGE = (320, 512)
RATE = 2000.0

PATTERNS = (
    ("causal", {}),
    ("sliding_window", {"band_width": 32}),
    ("bigbird", {}),
)

#: Random-length traffic for the symbolic-keys section: prompts uniform
#: over the full serving range, short generations (the prompt diversity,
#: not the decode length, is what defeats concrete keys).
RANDOM_PROMPT_RANGE = (64, 4096)
RANDOM_MAX_NEW_RANGE = (256, 384)
RANDOM_N_REQUESTS = 16

#: Wall-clock repetitions; the minimum is the least-noisy estimate.
TIMING_REPS = 3


def _trace(pattern: str, overrides: dict):
    return synthetic_trace(
        N_REQUESTS,
        RATE,
        rng=bench_rng(f"plan-cache-{pattern}"),
        pattern=pattern,
        pattern_overrides=overrides,
        prompt_range=PROMPT_RANGE,
        max_new_range=MAX_NEW_RANGE,
    )


def _run(trace, cached: bool):
    engine = ServingEngine(
        A100,
        make_scheduler("continuous"),
        ServingConfig(use_plan_cache=cached),
    )
    t0 = time.perf_counter()
    report = engine.run(trace, rng=bench_rng("plan-cache-masks"))
    return report, time.perf_counter() - t0


def compute_results():
    out = {}
    for pattern, overrides in PATTERNS:
        trace = _trace(pattern, overrides)
        cold_s = []
        warm_s = []
        for _ in range(TIMING_REPS):
            cold_report, s = _run(trace, cached=False)
            cold_s.append(s)
            warm_report, s = _run(trace, cached=True)
            warm_s.append(s)
        out[pattern] = {
            "cold": cold_report,
            "warm": warm_report,
            "cold_s": min(cold_s),
            "warm_s": min(warm_s),
        }
    return out


def _random_length_trace():
    return synthetic_trace(
        RANDOM_N_REQUESTS,
        RATE,
        rng=bench_rng("plan-cache-random-lengths"),
        pattern="causal",
        prompt_range=RANDOM_PROMPT_RANGE,
        max_new_range=RANDOM_MAX_NEW_RANGE,
    )


def run_random_lengths(symbolic: bool):
    """One cached run of the random-length trace under either key scheme."""
    engine = ServingEngine(
        A100,
        make_scheduler("continuous"),
        ServingConfig(use_plan_cache=True, symbolic_plan_keys=symbolic),
    )
    trace = _random_length_trace()
    t0 = time.perf_counter()
    report = engine.run(trace, rng=bench_rng("plan-cache-masks"))
    return report, time.perf_counter() - t0


def compute_random_length_results():
    out = {}
    for symbolic in (False, True):
        report, wall = run_random_lengths(symbolic)
        out[symbolic] = {"report": report, "wall_s": wall}
    return out


@pytest.fixture(scope="module")
def random_length_results():
    return compute_random_length_results()


@pytest.fixture(scope="module")
def results():
    return compute_results()


def test_plan_cache_table(benchmark, results, random_length_results):
    benchmark(lambda: _run(_trace("causal", {}), cached=True)[0].total_steps)
    rows = []
    for pattern, r in results.items():
        stats = r["warm"].plan_cache
        mha = stats["kinds"]["mha"]
        decode = stats["kinds"]["serving-decode"]
        identical = dataclasses.replace(r["warm"], plan_cache=None) == r["cold"]
        rows.append(
            [
                pattern,
                f"{r['warm'].total_steps}",
                f"{r['warm'].total_tokens}",
                f"{mha['hits']}/{mha['hits'] + mha['misses']}",
                f"{decode['hits']}/{decode['hits'] + decode['misses']}",
                f"{decode['hit_rate']:.1%}",
                f"{stats['hit_rate']:.1%}",
                f"{stats['entries']}",
                "yes" if identical else "NO",
            ]
        )
    reuse = format_table(
        [
            "pattern",
            "steps",
            "tokens",
            "mha hit/req",
            "decode hit/req",
            "decode rate",
            "overall rate",
            "entries",
            "report id.",
        ],
        rows,
        title=(
            "Plan-cache reuse in the serving simulation "
            f"({N_REQUESTS} requests, prompts {PROMPT_RANGE}, "
            f"generations {MAX_NEW_RANGE}, A100)"
        ),
    )

    sym_rows = []
    for symbolic in (False, True):
        stats = random_length_results[symbolic]["report"].plan_cache
        decode = stats["kinds"]["serving-decode"]
        sym = stats["symbolic"]
        lookups = stats["hits"] + stats["misses"]
        sym_rows.append(
            [
                "symbolic" if symbolic else "concrete",
                f"{decode['hit_rate']:.1%}",
                f"{stats['hit_rate']:.1%}",
                f"{stats['entries']}",
                f"{sym['families']}",
                f"{sym['splits']}",
                f"{sym['guard_checks'] / lookups:.2f}",
            ]
        )
    random_lengths = format_table(
        [
            "plan keys",
            "decode rate",
            "overall rate",
            "entries",
            "families",
            "splits",
            "checks/lookup",
        ],
        sym_rows,
        title=(
            "Symbolic plan families under random-length traffic "
            f"({RANDOM_N_REQUESTS} requests, prompts uniform "
            f"{RANDOM_PROMPT_RANGE}, generations {RANDOM_MAX_NEW_RANGE}, "
            "causal, A100)"
        ),
    )
    emit("plan_cache", reuse + "\n\n" + random_lengths)


def test_reports_identical_with_and_without_cache(results):
    """Caching is pure memoization: serving outcomes never change."""
    for pattern, r in results.items():
        assert r["cold"].plan_cache is None
        assert r["warm"].plan_cache is not None
        assert dataclasses.replace(r["warm"], plan_cache=None) == r["cold"], pattern


def test_steady_state_decode_hit_rate(results):
    """Nearly every decode step replays cached row statistics."""
    for pattern, r in results.items():
        decode = r["warm"].plan_cache["kinds"]["serving-decode"]
        assert decode["hit_rate"] > 0.9, (pattern, decode)


def test_random_length_reports_identical(random_length_results):
    """Key scheme changes caching, never serving outcomes."""
    concrete = random_length_results[False]["report"]
    symbolic = random_length_results[True]["report"]
    assert dataclasses.replace(symbolic, plan_cache=None) == dataclasses.replace(
        concrete, plan_cache=None
    )


def test_random_length_symbolic_wins(random_length_results):
    """Guarded families beat concrete keys on random-length traffic:
    higher decode hit rate with strictly fewer cache entries."""
    concrete = random_length_results[False]["report"].plan_cache
    symbolic = random_length_results[True]["report"].plan_cache
    c_dec = concrete["kinds"]["serving-decode"]
    s_dec = symbolic["kinds"]["serving-decode"]
    print(f"concrete: {c_dec['hit_rate']:.2%} decode hit rate, "
          f"{concrete['entries']} entries")
    print(f"symbolic: {s_dec['hit_rate']:.2%} decode hit rate, "
          f"{symbolic['entries']} entries, "
          f"{symbolic['symbolic']['families']} families, "
          f"{symbolic['symbolic']['splits']} splits")
    assert s_dec["hit_rate"] > c_dec["hit_rate"]
    assert s_dec["hit_rate"] >= 0.99
    assert symbolic["entries"] < concrete["entries"]


def test_wall_clock_speedup(results):
    """The cached simulation is measurably faster end to end.

    Per-pattern noise is real (host timers, small absolute times), so the
    gate is on time aggregated across patterns; per-pattern speedups are
    printed for inspection.
    """
    cold = sum(r["cold_s"] for r in results.values())
    warm = sum(r["warm_s"] for r in results.values())
    for pattern, r in results.items():
        print(f"{pattern}: {r['cold_s'] * 1e3:.1f} ms -> "
              f"{r['warm_s'] * 1e3:.1f} ms "
              f"({r['cold_s'] / r['warm_s']:.2f}x)")
    print(f"aggregate: {cold * 1e3:.1f} ms -> {warm * 1e3:.1f} ms "
          f"({cold / warm:.2f}x)")
    assert cold / warm >= 1.3, (cold, warm)
