"""Ablation — the block-wise kernel's micro-optimizations.

Quantifies two design choices the paper describes but does not ablate
individually:

* **bank-conflict-free padding** (Fig. 7): block-wise kernel with
  ``padding=16`` vs ``padding=0`` — unpadded 64-wide FP16 tiles serialize
  32-way on column access;
* **analytical block selection**: the verbatim Eq. 2 choice (always
  16x16 under our substrate, see EXPERIMENTS.md) vs the device-model
  selection STOF defaults to.
"""

import pytest
from harness import emit, format_table, mha_problem

from repro.gpu.specs import A100
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.selector import select_block_params

CONFIGS = [("sliding_window", 8, 512), ("bigbird", 8, 512),
           ("sliding_window", 16, 2048), ("bigbird", 16, 2048)]


def compute_rows():
    rows = []
    raw = {}
    kernel = BlockWiseKernel()
    for pattern, bs, seq in CONFIGS:
        prob = mha_problem(pattern, bs, seq, name="abl-k")
        model_params = select_block_params(prob, A100, mode="model")
        paper_params = select_block_params(prob, A100, mode="paper")
        t_model = kernel.estimate_time(prob, A100, model_params)
        t_paper = kernel.estimate_time(prob, A100, paper_params)
        t_unpadded = kernel.estimate_time(prob, A100, {**model_params, "padding": 0})
        rows.append(
            [
                pattern,
                f"({bs},{seq})",
                f"{model_params['block_m']}x{model_params['block_n']}",
                t_model * 1e6,
                f"{t_paper / t_model:.2f}x",
                f"{t_unpadded / t_model:.2f}x",
            ]
        )
        raw[(pattern, bs, seq)] = (t_model, t_paper, t_unpadded)
    return rows, raw


@pytest.fixture(scope="module")
def ablation():
    return compute_rows()


def test_ablation_table(benchmark, ablation):
    rows, _ = ablation
    benchmark(
        lambda: BlockWiseKernel().estimate_time(
            mha_problem("bigbird", 8, 512, name="abl-probe"), A100
        )
    )
    emit(
        "ablation_kernel_opts",
        format_table(
            ["mask", "(bs,seq)", "model blocks", "model us",
             "eq2-verbatim slowdown", "no-padding slowdown"],
            rows,
            title="Ablation: block selection mode and SMEM padding (A100)",
        ),
    )


def test_padding_never_helps_to_remove(ablation):
    _, raw = ablation
    for key, (t_model, _, t_unpadded) in raw.items():
        assert t_unpadded >= t_model, key


def test_eq2_verbatim_costs_at_scale(ablation):
    """The documented Eq. 2 degeneration: 16x16 blocks lose at scale."""
    _, raw = ablation
    t_model, t_paper, _ = raw[("sliding_window", 16, 2048)]
    assert t_paper > 1.3 * t_model
