"""Extension study — continuous vs static batching under serving traffic.

Beyond the paper's single-batch evaluation: a stream of requests is served
under request-level (static) and iteration-level (continuous) batching,
across mask patterns and arrival rates, on the A100 spec.

Expected shapes: continuous batching matches or beats static batching in
fleet tokens/s on *every* pattern, the margin widens as the arrival rate
grows (head-of-line blocking dominates static batching under load), and
sparse patterns (sliding-window) sustain higher absolute throughput than
dense-causal serving because each decode row gathers only O(window) KV.
"""

import pytest
from harness import bench_rng, emit, format_table

from repro.gpu.specs import A100
from repro.serving import ServingConfig, make_scheduler, simulate_serving, synthetic_trace

N_REQUESTS = 30

#: (pattern, pattern overrides) — dense-causal plus the sparse patterns.
PATTERNS = (
    ("causal", {}),
    ("sliding_window", {"band_width": 32}),
    ("bigbird", {}),
)

#: Mean arrival rates (requests/s), light to saturating.
RATES = (100.0, 500.0, 2000.0)

CONFIG = ServingConfig()


def run_pair(pattern: str, overrides: dict, rate: float):
    trace = synthetic_trace(
        N_REQUESTS,
        rate,
        rng=bench_rng(f"serving-{pattern}-{rate}"),
        pattern=pattern,
        pattern_overrides=overrides,
    )
    out = {}
    for policy in ("static", "continuous"):
        out[policy] = simulate_serving(
            trace,
            A100,
            make_scheduler(policy),
            CONFIG,
            rng=bench_rng("serving-masks"),
        )
    return out


def compute_rows():
    rows = []
    raw = {}
    for pattern, overrides in PATTERNS:
        for rate in RATES:
            pair = run_pair(pattern, overrides, rate)
            st, ct = pair["static"], pair["continuous"]
            rows.append(
                [
                    pattern,
                    f"{rate:.0f}",
                    st.tokens_per_s,
                    ct.tokens_per_s,
                    f"{ct.tokens_per_s / st.tokens_per_s:.2f}x",
                    st.ttft_p(95) * 1e3,
                    ct.ttft_p(95) * 1e3,
                ]
            )
            raw[(pattern, rate)] = pair
    return rows, raw


@pytest.fixture(scope="module")
def serving_rows():
    return compute_rows()


def test_serving_table(benchmark, serving_rows):
    rows, _ = serving_rows
    benchmark(lambda: run_pair("causal", {}, 2000.0)["continuous"].tokens_per_s)
    emit(
        "serving_throughput",
        format_table(
            [
                "pattern",
                "req/s",
                "static tok/s",
                "cont tok/s",
                "speedup",
                "static TTFT p95 (ms)",
                "cont TTFT p95 (ms)",
            ],
            rows,
            title=(
                "Extension: continuous vs static batching "
                f"({N_REQUESTS} requests, BERT-Base shape, A100)"
            ),
        ),
    )


def test_continuous_never_slower(serving_rows):
    """Iteration-level batching wins (or ties) on every pattern and rate."""
    _, raw = serving_rows
    # Exact: both policies price steps through the one shared loop (decode
    # covers live rows only; an admit-while-decoding step is one fused
    # forward), so joining mid-flight never costs extra.
    for key, pair in raw.items():
        assert (
            pair["continuous"].tokens_per_s >= pair["static"].tokens_per_s
        ), key


def test_margin_widens_with_rate(serving_rows):
    """Head-of-line blocking grows with load: the continuous/static ratio
    is non-decreasing in arrival rate for every pattern."""
    _, raw = serving_rows
    for pattern, _ in PATTERNS:
        ratios = [
            raw[(pattern, rate)]["continuous"].tokens_per_s
            / raw[(pattern, rate)]["static"].tokens_per_s
            for rate in RATES
        ]
        assert all(b >= a - 1e-6 for a, b in zip(ratios, ratios[1:])), (
            pattern,
            ratios,
        )


def test_sparse_masks_raise_sustainable_throughput(serving_rows):
    """At saturation, O(window) decode rows serve more tokens/s than
    dense-causal rows."""
    _, raw = serving_rows
    dense = raw[("causal", RATES[-1])]["continuous"].tokens_per_s
    window = raw[("sliding_window", RATES[-1])]["continuous"].tokens_per_s
    assert window > dense


def test_continuous_improves_ttft_under_load(serving_rows):
    """Joining mid-flight removes batch-drain queueing delay."""
    _, raw = serving_rows
    for pattern, _ in PATTERNS:
        pair = raw[(pattern, RATES[-1])]
        assert pair["continuous"].ttft_p(95) <= pair["static"].ttft_p(95), pattern


def test_serving_run_is_deterministic():
    """Two invocations with the same seed are bit-identical."""
    a = run_pair("sliding_window", {"band_width": 32}, 500.0)
    b = run_pair("sliding_window", {"band_width": 32}, 500.0)
    for policy in ("static", "continuous"):
        assert a[policy] == b[policy]
