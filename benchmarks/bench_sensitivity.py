"""Robustness study — are the headline orderings calibration artifacts?

The device model carries behavioural constants (saturation knees, launch
overhead, SMEM bandwidth).  If the paper-reproducing orderings only held
at the calibrated point, the reproduction would be fragile.  This study
perturbs each constant by 0.5x and 2x and re-checks the two headline
orderings at a representative operating point:

* STOF's selected MHA kernel beats FlexAttention (Figs. 10-11),
* GEMM+Bias fusion beats detached execution (Fig. 3's robust case).

Every perturbation must preserve both orderings (asserted).
"""

import numpy as np
import pytest
from harness import bench_rng, emit, format_table, mha_problem

from repro.fusion.segment import SegmentSpec
from repro.fusion.templates import match_template
from repro.graph.trace import GraphBuilder
from repro.gpu.specs import A100
from repro.mha.baselines import FlexAttention
from repro.mha.blockwise import BlockWiseKernel
from repro.mha.selector import select_block_params
from repro.ops import BiasAdd, Gemm

PERTURBATIONS = [
    ("baseline", {}),
    # Halving the DRAM knee to the compute knee is unphysical
    # (DRAM saturation needs MORE latency hiding than the FUs);
    # kept to show the model is sensitive there, excluded from
    # the ordering assertions below.
    ("mem knee x0.5 (unphysical)", {"mem_saturation_knee": 0.125}),
    ("mem knee x2", {"mem_saturation_knee": 0.5}),
    ("comp knee x0.5", {"comp_saturation_knee": 0.0625}),
    ("comp knee x2", {"comp_saturation_knee": 0.25}),
    ("launch x0.5", {"kernel_launch_overhead_s": 2e-6}),
    ("launch x2", {"kernel_launch_overhead_s": 8e-6}),
    ("smem bw x0.5", {"smem_bytes_per_clk_per_sm": 64.0}),
    ("smem bw x2", {"smem_bytes_per_clk_per_sm": 256.0}),
    ("l2 bw x0.5", {"l2_bandwidth": 2.35e12}),
    ("barrier x2", {"barrier_latency_s": 60e-9}),
]


def gemm_bias_template():
    gb = GraphBuilder("sens", seed=2)
    x = gb.input("x", (4096, 768))
    w = gb.param("w", (768, 768))
    b = gb.param("b", (768,))
    h = gb.call(Gemm(), x, w, name="mm")
    h = gb.call(BiasAdd(), h, b, name="bias")
    gb.output(h)
    g = gb.finish()
    return match_template(SegmentSpec.from_graph(g, ["mm", "bias"]))


def compute_rows():
    problem = mha_problem("bigbird", 8, 1024, name="sens")
    template = gemm_bias_template()
    rows = []
    raw = {}
    for label, overrides in PERTURBATIONS:
        spec = A100.with_overrides(**overrides)
        t_stof = BlockWiseKernel().estimate_time(
            problem, spec, select_block_params(problem, spec)
        )
        t_flex = FlexAttention().estimate_time(problem, spec)
        t_fused = template.estimate_time(spec)
        t_detached = template.detached_time(spec)
        rows.append(
            [
                label,
                f"{t_flex / t_stof:.2f}x",
                f"{t_detached / t_fused:.2f}x",
            ]
        )
        raw[label] = (t_flex / t_stof, t_detached / t_fused)
    return rows, raw


@pytest.fixture(scope="module")
def sensitivity():
    return compute_rows()


def test_sensitivity_table(benchmark, sensitivity):
    rows, _ = sensitivity
    benchmark(lambda: gemm_bias_template().estimate_time(A100))
    emit(
        "sensitivity",
        format_table(
            ["perturbation", "STOF over Flex", "fused over detached"],
            rows,
            title="Robustness: headline orderings under +/-2x constant "
                  "perturbations (bigbird (8,1024) MHA; GEMM+Bias, A100)",
        ),
    )


def test_stof_over_flex_survives_physical_perturbations(sensitivity):
    _, raw = sensitivity
    for label, (stof_gain, _) in raw.items():
        if "unphysical" in label:
            continue
        assert stof_gain > 1.0, label


def test_unphysical_corner_is_detectably_different(sensitivity):
    """The excluded corner really is the model's edge: pushing DRAM
    saturation below compute saturation erases sparse-skipping's traffic
    advantage at this operating point."""
    _, raw = sensitivity
    gain, _ = raw["mem knee x0.5 (unphysical)"]
    assert gain < 1.2


def test_fusion_gain_survives_all_perturbations(sensitivity):
    _, raw = sensitivity
    for label, (_, fuse_gain) in raw.items():
        assert fuse_gain > 1.0, label


def test_gains_vary_but_modestly(sensitivity):
    """The orderings are stable; the magnitudes move with the constants —
    evidence the knobs are live, not dead parameters."""
    _, raw = sensitivity
    stof_gains = [g for g, _ in raw.values()]
    assert max(stof_gains) != min(stof_gains)
    assert max(stof_gains) / min(stof_gains) < 4.0
