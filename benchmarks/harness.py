"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md §3 for the index).  Results print to stdout (run
with ``pytest benchmarks/ --benchmark-only -s`` to watch) and are written
as text files under ``benchmarks/results/`` so EXPERIMENTS.md can cite
them.  The pytest-benchmark fixture times one representative harness call
per experiment; the *simulated* latencies inside the tables are what
reproduce the paper.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.errors import DeviceOutOfMemoryError, UnsupportedInputError
from repro.core.rng import RngStream
from repro.gpu.cost import estimate_kernel_time
from repro.gpu.specs import GPUSpec
from repro.masks.patterns import causal_mask, make_pattern
from repro.mha.problem import AttentionProblem
from repro.models.build import ModelInstance, build_model
from repro.models.config import get_model_config

RESULTS_DIR = Path(__file__).parent / "results"

#: Root seed for every benchmark (bit-identical tables across runs).
BENCH_SEED = 0xBE7C

#: The (batch, seq) settings of the end-to-end study (§5.3).
E2E_SETTINGS = ((1, 128), (8, 512), (16, 2048))

#: The five end-to-end models (§5.3).
E2E_MODELS = ("bert-small", "bert-base", "bert-large", "gpt", "t5")

#: Evaluation mask patterns (§5.1.2).
MHA_PATTERNS = ("sliding_window", "dilated", "longformer", "bigbird")


def bench_rng(name: str) -> RngStream:
    return RngStream(BENCH_SEED).fork(name)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Plain-text table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n=== {name} ===")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def plan_time(launches, spec: GPUSpec, dispatch_s: float) -> float:
    """Total simulated seconds of a list of kernel launches."""
    return sum(
        estimate_kernel_time(spec, cost, config).total + dispatch_s * cost.launches
        for cost, config in launches
    )


def mha_problem(pattern: str, batch: int, seq_len: int, name: str = "") -> AttentionProblem:
    """BERT-Base-shaped attention problem (12 heads x 64), §5.1.2."""
    return AttentionProblem.build(
        pattern, batch, 12, seq_len, 64,
        rng=bench_rng(f"mha-{pattern}-{batch}-{seq_len}-{name}"),
    )


def model_setup(model_name: str, batch: int, seq_len: int):
    """Build a model instance plus its Bigbird mask set (§5.3 fixes the
    mask to Bigbird; decoder self-attention additionally applies causality)."""
    cfg = get_model_config(model_name)
    inst = build_model(cfg, batch, seq_len, seed=BENCH_SEED)
    rng = bench_rng(f"e2e-{model_name}-{batch}-{seq_len}")
    base = make_pattern("bigbird", seq_len, rng=rng)
    masks: dict[str, np.ndarray] = {}
    patterns: dict[str, str] = {}
    for name in inst.mask_inputs:
        if name == "cross_mask":
            masks[name] = np.ones((seq_len, seq_len), dtype=bool)
            patterns[name] = "custom"
        elif name == "dec_mask" or (name == "mask" and cfg.is_decoder_only):
            masks[name] = base & causal_mask(seq_len)
            patterns[name] = "custom"
        else:
            masks[name] = base
            patterns[name] = "bigbird"
    return inst, masks, patterns


def engine_time(engine, inst: ModelInstance, spec: GPUSpec, masks, patterns):
    """Plan an engine; returns seconds, 'OOM', or None (unsupported)."""
    try:
        prepared = engine.prepare(inst, spec, masks, patterns)
        return prepared.plan().time_s
    except UnsupportedInputError:
        return None
    except DeviceOutOfMemoryError:
        return "OOM"


def speedup_cell(base: float, value) -> str:
    if value is None:
        return "--"
    if value == "OOM":
        return "OOM"
    return f"{base / value:.2f}x"
